"""Setuptools shim for offline editable installs (`pip install -e .`).

All project metadata lives in pyproject.toml; this file only exists so pip can
use the legacy `setup.py develop` path in environments without the `wheel`
package (such as the offline reproduction environment).
"""

from setuptools import setup

setup()
