"""Ablation: fine-grained capacity-ratio sweep beyond the paper's three points.

The paper evaluates 75/50/25% local capacity.  This sweep adds intermediate
points to locate where each application's remote access ratio crosses the
bandwidth-ratio reference (the point where the pool starts to throttle memory
performance), which is exactly the deployment decision the methodology is
meant to inform.
"""

from repro.profiler.level2 import Level2Profiler
from repro.sim.platform import Platform
from repro.workloads import build_workload

FRACTIONS = (0.9, 0.75, 0.6, 0.5, 0.4, 0.25, 0.1)
WORKLOADS = ("Hypre", "BFS", "XSBench")


def _sweep():
    profiler = Level2Profiler(seed=0)
    rows = {}
    for name in WORKLOADS:
        spec = build_workload(name, 1.0)
        series = []
        for fraction in FRACTIONS:
            platform = Platform.pooled(spec.footprint_bytes, fraction)
            profile = profiler.profile(spec, platform)
            series.append(
                {
                    "local_fraction": fraction,
                    "remote_access": profile.phase_report("p2").remote_access_ratio,
                    "bandwidth_ratio": profile.remote_bandwidth_ratio,
                }
            )
        rows[name] = series
    return rows


def test_ablation_capacity_sweep(benchmark, once, capsys):
    rows = once(benchmark, _sweep)
    with capsys.disabled():
        print("\n=== Ablation: capacity-ratio sweep (p2 remote access ratio) ===")
        header = f"{'workload':<10}" + "".join(f"  {int(f * 100):>3}%" for f in FRACTIONS)
        print(header + "   (local capacity fraction)")
        for name, series in rows.items():
            cells = "".join(f"  {point['remote_access']:>4.0%}" for point in series)
            print(f"{name:<10}{cells}")
        r_bw = rows["Hypre"][0]["bandwidth_ratio"]
        print(f"\nbandwidth-ratio reference R_BW = {r_bw:.0%}")
    # Remote access grows monotonically as local capacity shrinks for the
    # capacity-driven codes, while XSBench stays essentially local throughout.
    for name in ("Hypre", "BFS"):
        series = [p["remote_access"] for p in rows[name]]
        assert all(b >= a - 0.03 for a, b in zip(series, series[1:]))
    xs_paper_range = [
        p["remote_access"] for p in rows["XSBench"] if p["local_fraction"] >= 0.25
    ]
    assert max(xs_paper_range) < 0.15
