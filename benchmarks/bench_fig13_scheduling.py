"""Figure 13: interference-aware job scheduling (Section 7.2)."""

from repro.analysis.figures import figure13_scheduling


def test_fig13_scheduling(benchmark, once, capsys):
    data = once(benchmark, figure13_scheduling, n_runs=100)
    assert len(data["per_workload"]) == 6
    with capsys.disabled():
        print("\n=== Figure 13: execution time over 100 runs, random vs interference-aware ===")
        print(f"{'workload':<10} {'policy':<20} {'min':>8} {'q1':>8} {'median':>8} {'q3':>8} {'max':>8}")
        for name, summary in data["per_workload"].items():
            for policy_key, label in (("baseline", "random baseline"), ("interference_aware", "interference-aware")):
                s = summary[policy_key]
                print(
                    f"{name:<10} {label:<20} {s['min']:>8.1f} {s['q1']:>8.1f} "
                    f"{s['median']:>8.1f} {s['q3']:>8.1f} {s['max']:>8.1f}"
                )
        print("\nMean speedup / p75 reduction from interference awareness:")
        for name, summary in data["per_workload"].items():
            print(
                f"  {name:<10} speedup {summary['mean_speedup']:>5.1%}   "
                f"p75 reduction {summary['p75_reduction']:>5.1%}"
            )
        print(f"Most improved workload: {data['most_improved']}")
