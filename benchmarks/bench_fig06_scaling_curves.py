"""Figure 6: bandwidth-capacity scaling curves for six workloads x three inputs."""

from repro.analysis.figures import figure6_scaling_curves


def test_fig06_scaling_curves(benchmark, once, capsys):
    panels = once(benchmark, figure6_scaling_curves)
    assert len(panels) == 6
    with capsys.disabled():
        print("\n=== Figure 6: cumulative access vs footprint (hottest pages first) ===")
        marks = (10, 25, 50, 75, 100)
        for workload, curves in panels.items():
            print(f"\n{workload}:")
            header = "  " + f"{'input':<32}" + "".join(f"  @{m:>3}%" for m in marks) + "   skew"
            print(header)
            for label, curve in curves.items():
                import numpy as np

                pct = np.asarray(curve["footprint_pct"])
                acc = np.asarray(curve["access_pct"])
                samples = [float(np.interp(m, pct, acc)) for m in marks]
                row = "  " + f"{label:<32}" + "".join(f" {s:>5.1f}%" for s in samples)
                print(row + f"   {curve['skewness']:.2f}")
