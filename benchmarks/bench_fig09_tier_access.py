"""Figure 9: remote access ratio per phase on the three capacity-ratio systems."""

from repro.analysis.figures import figure9_tier_access


def test_fig09_tier_access(benchmark, once, capsys):
    panels = once(benchmark, figure9_tier_access)
    assert set(panels) == {"75-25", "50-50", "25-75"}
    with capsys.disabled():
        print("\n=== Figure 9: access ratio to the pooled tier (per phase) ===")
        for label, panel in panels.items():
            print(
                f"\n-- {label} capacity split: R_cap = {panel['capacity_ratio']:.0%}, "
                f"R_BW = {panel['bandwidth_ratio']:.0%} --"
            )
            for row in panel["phases"]:
                marker = ""
                if row["remote_access_ratio"] > panel["bandwidth_ratio"]:
                    marker = "  [above R_BW: slow tier limits memory performance]"
                elif row["remote_access_ratio"] < panel["capacity_ratio"]:
                    marker = "  [below R_cap: pool capacity headroom unused]"
                print(f"  {row['label']:<14} {row['remote_access_ratio']:>6.1%}{marker}")
