"""Ablation: static first-touch vs manual optimisation vs dynamic page migration.

Section 5.2 argues that transparent runtimes (NUMA balancing, Thermostat/TPP
style promotion) need time to find hot pages and adapt slowly to phase
changes, which is why the paper prefers application-level (static) placement
for HPC.  This ablation puts the three options side by side for BFS at 75%
memory pooling: the unmodified first-touch run, the paper's manual
optimisation (case study 1) and the hot-page migration runtime with two
different epoch lengths.
"""

from repro.casestudies.bfs_placement import baseline_spec, optimized_spec
from repro.runtime import MigratingExecutionEngine, MigrationPolicy
from repro.sim import ExecutionEngine, Platform


def _compare():
    spec = baseline_spec(1.0)
    platform = Platform.pooled(spec.footprint_bytes, 0.25)
    results = {}
    results["static first-touch"] = ExecutionEngine(platform, seed=0).run(spec)
    results["manual optimisation"] = ExecutionEngine(
        Platform.pooled(optimized_spec(1.0).footprint_bytes, 0.25), seed=0
    ).run(optimized_spec(1.0))
    for label, epoch in (("migration (5s epochs)", 5.0), ("migration (20s epochs)", 20.0)):
        engine = MigratingExecutionEngine(
            Platform.pooled(spec.footprint_bytes, 0.25),
            MigrationPolicy(epoch_seconds=epoch, promotion_budget_pages=50_000),
            seed=0,
        )
        results[label] = engine.run(spec)
        results[label + " stats"] = engine.last_migration_stats
    return results


def test_ablation_dynamic_migration(benchmark, once, capsys):
    results = once(benchmark, _compare)
    with capsys.disabled():
        print("\n=== Ablation: static vs manual vs dynamic placement (BFS, 75% pooled) ===")
        print(f"{'variant':<24} {'runtime s':>10} {'remote access':>14} {'promoted pages':>15}")
        for label in ("static first-touch", "manual optimisation",
                      "migration (5s epochs)", "migration (20s epochs)"):
            run = results[label]
            stats = results.get(label + " stats")
            promoted = stats.promoted_pages if stats else 0
            print(f"{label:<24} {run.total_runtime:>10.1f} {run.remote_access_ratio:>13.1%} "
                  f"{promoted:>15}")
    static = results["static first-touch"]
    manual = results["manual optimisation"]
    dynamic = results["migration (5s epochs)"]
    slow_dynamic = results["migration (20s epochs)"]
    # Dynamic migration helps over plain first-touch, but the manual (static)
    # optimisation remains at least as good, and slower reaction helps less.
    assert dynamic.total_runtime < static.total_runtime
    assert manual.remote_access_ratio <= dynamic.remote_access_ratio + 0.05
    assert slow_dynamic.total_runtime >= dynamic.total_runtime - 1e-6
