"""Figure 11: LBench validation and per-application interference coefficients."""

from repro.analysis.figures import figure11_lbench


def test_fig11_lbench(benchmark, once, capsys):
    data = once(benchmark, figure11_lbench)
    with capsys.disabled():
        print("\n=== Figure 11 (left): measured LoI vs configured intensity ===")
        for threads, points in data["loi_scaling"].items():
            series = ", ".join(f"{p['configured']:.0f}->{p['measured']:.1f}" for p in points)
            print(f"  {threads}: {series}")
        print("\n=== Section 3.2: LoI calibration (flops/element per LoI, 2 threads) ===")
        print("  " + ", ".join(f"LoI {k:.0f}%: NFLOP={v}" for k, v in data["loi_calibration"].items()))
        print("\n=== Figure 11 (middle): LBench IC vs PCM traffic ===")
        print(f"{'flops/elem':>10} {'IC':>6} {'PCM GB/s':>10}")
        for point in data["contention_curve"]:
            print(
                f"{point['flops_per_element']:>10.0f} {point['interference_coefficient']:>6.2f} "
                f"{point['pcm_traffic'] / 1e9:>10.1f}"
            )
        print("\n=== Figure 11 (right): interference coefficient per application (50% pooling) ===")
        for name, row in sorted(
            data["application_ic"].items(), key=lambda kv: -kv[1]["interference_coefficient"]
        ):
            phases = ", ".join(f"{p}={v:.2f}" for p, v in row["phase_coefficients"].items())
            print(f"  {name:<10} IC={row['interference_coefficient']:.2f}  ({phases})")
