"""Figure 12: the BFS data-placement optimisation case study (Section 7.1)."""

from repro.analysis.figures import figure12_bfs_case_study


def test_fig12_bfs_case_study(benchmark, once, capsys):
    data = once(benchmark, figure12_bfs_case_study)
    with capsys.disabled():
        print("\n=== Figure 12: BFS placement optimisation ===")
        print(f"{'variant':<11} {'config':<12} {'runtime s':>10} {'remote access':>14} "
              f"{'remote GB':>10} {'max interference loss':>22}")
        for row in data["rows"]:
            loss = row["max_interference_loss"]
            loss_s = f"{loss:.1%}" if loss is not None else "-"
            print(
                f"{row['variant']:<11} {row['config']:<12} {row['runtime_s']:>10.1f} "
                f"{row['remote_access_ratio']:>13.1%} {row['remote_bytes'] / 1e9:>10.1f} {loss_s:>22}"
            )
        print("\nSpeedups over baseline:")
        for config, speedups in data["speedups"].items():
            print(
                f"  {config}: reorder allocations +{speedups['reordered']:.0%}, "
                f"reorder + free init temp +{speedups['optimized']:.0%}"
            )
        print("Remote-access reduction (absolute):")
        for config, reduction in data["remote_reduction"].items():
            print(
                f"  {config}: reordered -{reduction['reordered']:.0%}, "
                f"optimized -{reduction['optimized']:.0%}"
            )
