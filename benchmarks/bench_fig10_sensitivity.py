"""Figure 10: application sensitivity to memory-pool interference."""

from repro.analysis.figures import figure10_sensitivity


def test_fig10_sensitivity(benchmark, once, capsys):
    panels = once(benchmark, figure10_sensitivity)
    assert set(panels) == {"75-25", "50-50", "25-75"}
    with capsys.disabled():
        print("\n=== Figure 10: relative performance under LBench interference ===")
        for label, rows in panels.items():
            print(f"\n-- {label} capacity split --")
            lois = rows["Hypre"]["loi"]
            header = f"{'workload':<10}" + "".join(f"  LoI={int(l):>3}" for l in lois)
            print(header)
            for name, series in rows.items():
                cells = "".join(f"  {p:>7.3f}" for p in series["relative_performance"])
                print(f"{name:<10}{cells}")
