"""Figure 8: prefetch accuracy, coverage, excessive traffic and performance gain."""

from repro.analysis.figures import figure8_prefetch_metrics


def test_fig08_prefetch_metrics(benchmark, once, capsys):
    rows = once(benchmark, figure8_prefetch_metrics)
    assert len(rows) == 6
    with capsys.disabled():
        print("\n=== Figure 8: prefetching suitability per application ===")
        print(f"{'workload':<10} {'accuracy':>9} {'coverage':>9} {'excess traffic':>15} {'perf gain':>10}")
        for name, row in rows.items():
            print(
                f"{name:<10} {row['accuracy']:>8.0%} {row['coverage']:>8.0%} "
                f"{row['excess_traffic']:>14.0%} {row['performance_gain']:>9.0%}"
            )
