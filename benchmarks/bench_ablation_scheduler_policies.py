"""Ablation: rack-scale placement policies beyond the paper's LoI emulation.

Extends Section 7.2 with an event-driven rack-scale simulation where a mixed
job stream is placed by three policies: random, least-loaded and the
interference-aware policy fed with the submission-time hints the paper
proposes.  Results are averaged over several seeds so the comparison reflects
the expected behaviour of the random baseline rather than one lucky draw.
"""

import numpy as np

from repro.casestudies.scheduling import SchedulingCaseStudy
from repro.scheduler.cluster import Cluster
from repro.scheduler.job import JobProfile
from repro.scheduler.policies import (
    InterferenceAwarePlacement,
    LeastLoadedPlacement,
    RandomPlacement,
)
from repro.scheduler.simulator import ClusterSimulator
from repro.workloads import build_workload

#: Seeds over which each policy's outcome is averaged.
SEEDS = tuple(range(8))


def _job_stream():
    """Alternating sensitive / interference-heavy jobs with staggered arrivals."""
    study = SchedulingCaseStudy(local_fraction=0.5, n_runs=1, seed=0)
    sensitive_names = ("Hypre", "NekRS")
    profiles: list[JobProfile] = []
    for name in sensitive_names:
        base = study.job_profile_of(build_workload(name, 1.0))
        profiles.append(
            JobProfile(
                workload=base.workload,
                baseline_runtime=base.baseline_runtime,
                sensitivity=base.sensitivity,
                induced_loi=10.0,
                pool_gb=base.pool_gb,
            )
        )
        profiles.append(
            JobProfile(
                workload=f"noisy-{name}",
                baseline_runtime=base.baseline_runtime,
                sensitivity=None,
                induced_loi=45.0,
                pool_gb=base.pool_gb,
            )
        )
    arrivals = [i * 2.0 for i in range(len(profiles))]
    return profiles, arrivals


def _run_policies():
    profiles, arrivals = _job_stream()
    policies = {
        "random": RandomPlacement,
        "least-loaded": LeastLoadedPlacement,
        "interference-aware": InterferenceAwarePlacement,
    }
    results = {}
    for name, policy_cls in policies.items():
        slowdowns = []
        p75s = []
        for seed in SEEDS:
            cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=4096.0)
            outcome = ClusterSimulator(cluster, policy_cls(), seed=seed).run(profiles, arrivals)
            slowdowns.append(outcome.mean_slowdown)
            p75s.append(outcome.p75_slowdown)
        results[name] = {
            "mean_slowdown": float(np.mean(slowdowns)),
            "p75_slowdown": float(np.mean(p75s)),
        }
    return results


def test_ablation_scheduler_policies(benchmark, once, capsys):
    results = once(benchmark, _run_policies)
    with capsys.disabled():
        print("\n=== Ablation: rack-scale placement policies (mean over seeds) ===")
        print(f"{'policy':<20} {'mean slowdown':>14} {'p75 slowdown':>13}")
        for name, row in results.items():
            print(f"{name:<20} {row['mean_slowdown']:>14.3f} {row['p75_slowdown']:>13.3f}")
    # Interference awareness should not be worse than random placement in
    # expectation, and the sensitive jobs' tail should improve.
    assert (
        results["interference-aware"]["mean_slowdown"]
        <= results["random"]["mean_slowdown"] + 1e-6
    )
