"""Table 2: the evaluated workloads and their three input problems."""

from repro.analysis.tables import format_table, table2_workloads


def test_table2_workloads(benchmark, once, capsys):
    rows = once(benchmark, table2_workloads)
    assert len(rows) == 6
    with capsys.disabled():
        print("\n=== Table 2: evaluated workloads (1:2:4 footprints) ===")
        print(
            format_table(
                rows,
                columns=["application", "parallelization", "input_problems", "footprints_gb"],
            )
        )
