"""Ablation: prefetcher aggressiveness (degree) and the on/off switch.

The paper only toggles the prefetcher through MSR 0x1a4; this ablation sweeps
the stream-prefetcher degree to show how the coverage-vs-waste trade-off moves
for a prefetch-friendly code (NekRS) and a prefetch-hostile one (XSBench).
"""

from dataclasses import replace

from repro.config import SKYLAKE_EMULATION
from repro.profiler.level1 import Level1Profiler
from repro.sim.platform import Platform
from repro.workloads import build_workload


def _sweep():
    results = {}
    for degree in (2, 8, 32):
        prefetcher = replace(SKYLAKE_EMULATION.prefetcher, degree=degree)
        testbed = replace(SKYLAKE_EMULATION, prefetcher=prefetcher)
        profiler = Level1Profiler(platform=Platform.local_only(testbed), seed=0)
        for name in ("NekRS", "XSBench"):
            report = profiler.profile(build_workload(name, 1.0)).prefetch
            results[(name, degree)] = report
    return results


def test_ablation_prefetcher_degree(benchmark, once, capsys):
    results = once(benchmark, _sweep)
    with capsys.disabled():
        print("\n=== Ablation: L2 prefetcher degree ===")
        print(f"{'workload':<10} {'degree':>7} {'coverage':>9} {'excess':>8} {'gain':>7}")
        for (name, degree), report in results.items():
            print(
                f"{name:<10} {degree:>7} {report.coverage:>8.0%} "
                f"{report.excess_traffic:>7.0%} {report.performance_gain:>6.0%}"
            )
    # A more aggressive prefetcher never reduces NekRS coverage, and XSBench
    # stays uncovered regardless of the degree.
    assert results[("NekRS", 32)].coverage >= results[("NekRS", 2)].coverage - 0.02
    assert results[("XSBench", 32)].coverage < 0.05
