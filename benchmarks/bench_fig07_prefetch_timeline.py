"""Figure 7: L2 cacheline timeline with and without hardware prefetching."""

import numpy as np

from repro.analysis.figures import figure7_prefetch_timeline


def test_fig07_prefetch_timeline(benchmark, once, capsys):
    panels = once(benchmark, figure7_prefetch_timeline, workloads=("NekRS", "HPL", "XSBench"))
    assert set(panels) == {"NekRS", "HPL", "XSBench"}
    with capsys.disabled():
        print("\n=== Figure 7: memory traffic timeline with/without L2 prefetching ===")
        for name, series in panels.items():
            with_pf = series["with-prefetch"]
            without_pf = series["without-prefetch"]
            total_with = with_pf["l2_lines"].sum()
            total_without = without_pf["l2_lines"].sum()
            rate_with = total_with / with_pf["time"][-1]
            rate_without = total_without / without_pf["time"][-1]
            print(
                f"{name:<8} runtime: {with_pf['time'][-1]:7.1f}s (pf on) vs "
                f"{without_pf['time'][-1]:7.1f}s (pf off) | "
                f"total lines: {total_with:.3e} vs {total_without:.3e} "
                f"(+{(total_with / total_without - 1) * 100:4.1f}%) | "
                f"line rate: {rate_with:.2e}/s vs {rate_without:.2e}/s"
            )
