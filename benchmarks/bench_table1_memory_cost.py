"""Table 1: memory configuration and estimated cost of the Top-10 systems."""

from repro.analysis.tables import format_table, table1_memory_cost


def test_table1_memory_cost(benchmark, once, capsys):
    rows = once(benchmark, table1_memory_cost)
    assert len(rows) == 10
    with capsys.disabled():
        print("\n=== Table 1: Top-10 memory configuration and estimated cost ===")
        print(
            format_table(
                rows,
                columns=[
                    "rank",
                    "system",
                    "ddr_gb_per_node",
                    "hbm_gb_per_node",
                    "nodes",
                    "est_ddr_cost_musd",
                    "est_hbm_cost_musd_mid",
                ],
            )
        )
