"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (captured by ``--benchmark-only`` runs
with ``-s``).  Benchmarks run each builder once (``rounds=1``) because the
builders are deterministic and some of them are full experiments rather than
micro-kernels.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
