"""Figure 1: evolution of memory characteristics of leadership supercomputers."""

from repro.analysis.figures import figure1_memory_evolution


def test_fig01_memory_evolution(benchmark, once, capsys):
    data = once(benchmark, figure1_memory_evolution)
    assert len(data["years"]) >= 8
    with capsys.disabled():
        print("\n=== Figure 1: memory capacity / bandwidth per node of No. 1 systems ===")
        print(f"{'year':>6} {'system':<22} {'GB/node':>10} {'GB/s/node':>12} {'GB/s/core':>10}")
        for year, system, cap, bw, bw_core in zip(
            data["years"],
            data["systems"],
            data["memory_gb_per_node"],
            data["bandwidth_gbs_per_node"],
            data["bandwidth_per_core_gbs"],
        ):
            print(f"{year:>6} {system:<22} {cap:>10.0f} {bw:>12.0f} {bw_core:>10.2f}")
