"""Ablation: which link-contention model is needed to reproduce Figure 10/11.

Compares the default M/M/1 queueing model against M/D/1 and a plain linear
model for (a) the interference sensitivity of the most sensitive application
(Hypre) and (b) the LBench interference coefficient at saturation.  The
linear model under-states the contention growth near saturation, which is the
behaviour the paper attributes to queueing.
"""

from repro.interconnect.queueing import LinearQueueingModel, MD1QueueingModel, MM1QueueingModel
from repro.profiler.level3 import Level3Profiler
from repro.sim.platform import Platform
from repro.workloads import LBench, build_workload


def _sensitivity_and_ic(queueing):
    spec = build_workload("Hypre", 1.0)
    platform = Platform.pooled(spec.footprint_bytes, 0.50, queueing=queueing)
    curve = Level3Profiler(seed=0).sensitivity(spec, platform, (0.0, 50.0))
    lbench = LBench(platform.testbed, platform.link)
    ic = lbench.interference_coefficient(lbench.offered_bandwidth(1, threads=12))
    return curve.max_performance_loss, ic


def test_ablation_queueing_models(benchmark, once, capsys):
    results = once(
        benchmark,
        lambda: {
            "mm1": _sensitivity_and_ic(MM1QueueingModel()),
            "md1": _sensitivity_and_ic(MD1QueueingModel()),
            "linear": _sensitivity_and_ic(LinearQueueingModel()),
        },
    )
    with capsys.disabled():
        print("\n=== Ablation: link contention model ===")
        print(f"{'model':<8} {'Hypre loss @ LoI=50':>20} {'LBench IC @ saturation':>24}")
        for name, (loss, ic) in results.items():
            print(f"{name:<8} {loss:>19.1%} {ic:>24.2f}")
    # Every contention model must reproduce the two qualitative facts the
    # paper relies on: a saturated link slows the probe substantially (IC well
    # above 1) and a memory-bound application loses a noticeable-but-bounded
    # share of performance at LoI=50.
    assert all(ic > 1.3 for _, ic in results.values())
    assert all(0.02 < loss < 0.5 for loss, _ in results.values())
