"""Rack co-simulation sweep: tenant count × pool capacity (fabric extension).

Sweeps how per-tenant runtimes degrade as more tenants share one pool port
(emergent interference), and how shrinking the pool trades that contention
against admission queueing (tenants wait for leases instead of running
concurrently).
"""

from repro.config.units import GiB
from repro.fabric import MemoryPool, RackCoSimulator, uniform_tenants
from repro.parallel import SweepRunner
from repro.workloads import build_workload


TENANT_COUNTS = (1, 2, 4, 6, 8)
#: Pool capacity as a multiple of one tenant's lease (None = fits everyone).
POOL_FACTORS = (None, 4, 2)


def run_point(workload, scale, factor, tenants):
    """One sweep point: a full rack co-simulation, returned as a plain row.

    Module-level and keyword-driven so :class:`repro.parallel.SweepRunner`
    can pickle it into worker processes and fingerprint its parameters.
    """
    spec = build_workload(workload, scale)
    lease = uniform_tenants(spec, 1)[0].lease_bytes
    pool = None
    if factor is not None:
        pool = MemoryPool(min(factor, tenants) * lease + 1)
    result = RackCoSimulator(uniform_tenants(spec, tenants), pool=pool).run()
    return {
        "pool": "unbounded" if factor is None else f"{factor}x-lease",
        "tenants": tenants,
        "mean_runtime": result.mean_runtime,
        "mean_slowdown": result.mean_slowdown,
        "mean_wait": float(
            sum(t.wait_time for t in result.finished_tenants)
            / max(len(result.finished_tenants), 1)
        ),
        "makespan": result.makespan,
        "max_leased_gb": result.max_leased_bytes / GiB,
        "pool_gb": result.pool_capacity_bytes / GiB,
    }


def run_sweep(workload="Hypre", scale=1.0, jobs=1):
    points = [
        {"workload": workload, "scale": scale, "factor": factor, "tenants": n}
        for factor in POOL_FACTORS
        for n in TENANT_COUNTS
    ]
    return SweepRunner(jobs=jobs).map(run_point, points, seed_param=None)


def test_fabric_cosim_sweep(benchmark, once, capsys):
    rows = once(benchmark, run_sweep)
    # Emergent interference: runtimes degrade monotonically with tenant count
    # when everyone is admitted at once.
    unbounded = [r for r in rows if r["pool"] == "unbounded"]
    for earlier, later in zip(unbounded, unbounded[1:]):
        assert later["mean_runtime"] >= earlier["mean_runtime"] - 1e-9
    assert unbounded[-1]["mean_slowdown"] > unbounded[0]["mean_slowdown"]
    # Leases never exceed the pool's capacity.
    for r in rows:
        assert r["max_leased_gb"] <= r["pool_gb"] + 1e-9
    with capsys.disabled():
        print("\n=== Rack co-simulation: tenant count x pool capacity (Hypre, 50-50) ===")
        print(
            f"{'pool':<12} {'tenants':>7} {'runtime':>9} {'slowdown':>9} "
            f"{'wait':>8} {'makespan':>9} {'leased':>8}"
        )
        for r in rows:
            print(
                f"{r['pool']:<12} {r['tenants']:>7} {r['mean_runtime']:>9.1f} "
                f"{r['mean_slowdown']:>9.2f} {r['mean_wait']:>8.1f} "
                f"{r['makespan']:>9.1f} {r['max_leased_gb']:>7.2f}G"
            )
