"""Figure 5: roofline model with per-phase points for all evaluated workloads."""

from repro.analysis.figures import figure5_roofline


def test_fig05_roofline(benchmark, once, capsys):
    series = once(benchmark, figure5_roofline)
    assert len(series["points"]) >= 12
    with capsys.disabled():
        print("\n=== Figure 5: roofline placement of application phases ===")
        print(f"peak = {series['peak_gflops']:.0f} Gflop/s, "
              f"ridge (local tier) = {series['base_roof']['ridge']:.1f} flop/B, "
              f"ridge (with pool tier) = {series['extended_roof']['ridge']:.1f} flop/B")
        print(f"{'phase':<14} {'AI (flop/B)':>12} {'Gflop/s':>10} {'bound':>10} {'efficiency':>11}")
        for point in sorted(series["points"], key=lambda p: p["intensity"]):
            bound = "memory" if point["memory_bound"] else "compute"
            print(
                f"{point['label']:<14} {point['intensity']:>12.3f} {point['gflops']:>10.1f} "
                f"{bound:>10} {point['efficiency']:>10.0%}"
            )
