#!/usr/bin/env python3
"""Check intra-repo links in the repository's Markdown documentation.

Scans ``README.md`` and every ``docs/*.md`` file for Markdown links and
reference-style definitions, and verifies that every *relative* target (not
``http(s)://``, ``mailto:`` or a pure ``#anchor``) resolves to an existing
file or directory, relative to the file containing the link.

Exits non-zero listing every broken link — the CI docs job runs this, and
``tests/docs/test_docs.py`` runs it in-process so the tier-1 suite catches
broken links too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links ``[text](target)``; images share the syntax via a leading ``!``.
_INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions ``[label]: target``.
_REF_DEF = re.compile(r"^\[[^\]]+\]:\s*(\S+)", re.MULTILINE)

_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files(root: Path) -> list[Path]:
    """The Markdown files whose links we guarantee."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def iter_links(text: str) -> list[str]:
    """All link targets in one Markdown document."""
    targets = _INLINE_LINK.findall(text)
    targets.extend(_REF_DEF.findall(text))
    return targets


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """(file, target) pairs whose relative target does not exist."""
    broken: list[tuple[Path, str]] = []
    for doc in iter_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for target in iter_links(text):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((doc, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = broken_links(root)
    if broken:
        for doc, target in broken:
            print(f"{doc.relative_to(root)}: broken link -> {target}", file=sys.stderr)
        return 1
    checked = len(iter_doc_files(root))
    print(f"docs link check: {checked} files OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
