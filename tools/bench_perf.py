#!/usr/bin/env python3
"""Repeatable perf harness behind the ``BENCH_cosim.json`` trajectory.

Times the hot paths every "made it faster" claim must be measured against,
and the overhead of the telemetry layer itself:

1. ``fabric_solver`` — :meth:`FabricTopology.resolve_detailed` under
   all-nodes-overloaded demand, at small/medium/large rack wirings;
2. ``rack_cosim_step`` — epoch stepping of an incrementally driven
   :class:`RackCoSimulator` with co-located tenants;
3. ``cluster_events`` — :class:`ClusterSimulator` event throughput on a
   synthetic job stream (static progress, no fabric coupling), run once
   with telemetry disabled and once enabled so both overheads are recorded;
4. ``solver_vectorized`` — the 100-rack contention sweep through
   :meth:`ClusterFabric.resolve_all`, scalar reference vs batched NumPy
   (the recorded speedup is the acceptance number of the vectorized path);
5. ``cluster_fabric`` — epoch stepping of the whole-cluster
   :class:`ClusterCoSimulator` with tenants in every rack;
6. ``fault_injection`` — the fault layer's disabled-path cost on the epoch
   loop (its ``extra.disabled_overhead_pct`` is the < 2% acceptance bound
   of ``docs/failure_model.md``) plus a seeded chaos scenario;
7. ``cluster_step_batched`` — cluster epoch stepping at 100 racks through
   the fused batched rollover path vs the per-rack reference loop (the
   recorded ``extra.speedup_vs_per_rack`` is the acceptance number of the
   batched path);
8. ``sweep_sharded`` — a repeated-query parameter sweep executed through
   :class:`repro.parallel.SweepRunner` at 8 workers vs a naive serial loop
   over the same query stream (``extra.speedup_vs_serial`` is the
   acceptance number of the sweep engine);
9. ``trace_ingest`` — streaming ``sacct`` trace ingestion through
   :func:`repro.data.slurm.read_sacct` on a synthetic dump
   (``extra.rows_per_s`` is the recorded ingestion rate).

The emitted JSON validates against
:mod:`repro.telemetry.benchjson` (``--check FILE`` re-validates any existing
document, which is what CI's perf-smoke job and the regression test use),
and ``--compare BASELINE`` additionally diffs the fresh run against a
committed baseline document, exiting non-zero when a benchmark with an
identical config regressed past the threshold.  ``--quick`` shrinks repeat
counts and problem sizes for CI smoke runs — but keeps the configs of the
``fabric_solver``, ``solver_vectorized`` and ``cluster_fabric`` groups
identical to a full run, so exactly those groups stay comparable across
quick and full documents.  The committed ``BENCH_cosim.json`` at the
repository root is a full run — one recorded point of the perf trajectory
per PR.

Usage::

    python tools/bench_perf.py --out BENCH_cosim.json           # full run
    python tools/bench_perf.py --quick --out bench_quick.json   # CI smoke
    python tools/bench_perf.py --check BENCH_cosim.json         # validate only
    python tools/bench_perf.py --quick --compare BENCH_cosim.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
import warnings
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.fabric.cluster import ClusterCoSimulator, ClusterFabric  # noqa: E402
from repro.fabric.faults import FaultSchedule  # noqa: E402
from repro.fabric.topology import FabricTopology  # noqa: E402
from repro.fabric.cosim import RackCoSimulator, uniform_tenants  # noqa: E402
from repro.scheduler.cluster import Cluster  # noqa: E402
from repro.scheduler.job import JobProfile  # noqa: E402
from repro.scheduler.simulator import ClusterSimulator  # noqa: E402
from repro.telemetry.benchjson import (  # noqa: E402
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    DEFAULT_REGRESSION_THRESHOLD,
    compare_bench,
    validate_bench,
)
from repro.workloads.registry import build_workload  # noqa: E402

#: Solver rack wirings: (label, nodes, ports).
SOLVER_CONFIGS = (("small", 4, 1), ("medium", 16, 2), ("large", 64, 4))

#: The 100-rack sweep of the ``solver_vectorized`` group — the acceptance
#: configuration of the batched solver (identical in quick and full runs so
#: the recorded speedup is always measured at the same scale).
SWEEP_RACKS = 100
SWEEP_NODES = 16
SWEEP_PORTS = 2


def _timeit(fn, repeats: int) -> dict:
    """Wall times of ``repeats`` calls: mean/min plus per-second throughput."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    mean = statistics.fmean(samples)
    return {
        "repeats": repeats,
        "mean_s": mean,
        "min_s": min(samples),
        "throughput_per_s": 1.0 / mean if mean > 0 else 0.0,
    }


def bench_fabric_solver(quick: bool) -> list[dict]:
    """Fixed-point contention solves, every node demanding its full link."""
    from repro.fabric.topology import FabricConvergenceWarning

    repeats = 10 if quick else 50
    rows = []
    for label, n_nodes, n_ports in SOLVER_CONFIGS:
        topology = FabricTopology(n_nodes=n_nodes, n_ports=n_ports)
        demands = {n: topology.testbed.remote_bandwidth for n in range(n_nodes)}
        # Full-link demand on every node deliberately includes oversubscribed
        # cases; whether the budget sufficed is recorded in ``extra``, so the
        # per-call warning is just noise here.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FabricConvergenceWarning)
            diag = topology.resolve_detailed(demands)
            timing = _timeit(lambda: topology.resolve_detailed(demands), repeats)
        rows.append(
            {
                "name": f"fabric_solver.{label}",
                "group": "fabric_solver",
                "config": {"n_nodes": n_nodes, "n_ports": n_ports},
                **timing,
                "extra": {
                    "iterations": diag.iterations,
                    "converged": diag.converged,
                    "residual_bytes_s": diag.residual,
                },
            }
        )
    return rows


def bench_rack_cosim_step(quick: bool) -> dict:
    """Epoch stepping of one rack with co-located identical tenants."""
    n_tenants = 4
    steps = 60 if quick else 300
    spec = build_workload("XSBench")
    tenants = uniform_tenants(spec, n_tenants, local_fraction=0.5)
    sim = RackCoSimulator.incremental(n_nodes=n_tenants)
    for tenant in tenants:
        sim.admit(tenant)
    # Step one epoch at a time; the baseline is ~40 epochs long, so scale the
    # epoch down to keep every tenant running for the whole measurement.
    epoch = sim.baseline_runtime_of(tenants[0].name) / (steps * 4)
    start = time.perf_counter()
    for _ in range(steps):
        sim.step(epoch)
    wall = time.perf_counter() - start
    return {
        "name": "rack_cosim_step",
        "group": "rack_cosim_step",
        "config": {
            "n_tenants": n_tenants,
            "workload": spec.name,
            "steps": steps,
            "epoch_seconds": epoch,
        },
        "repeats": steps,
        "mean_s": wall / steps,
        "min_s": wall / steps,
        "throughput_per_s": steps / wall if wall > 0 else 0.0,
        "extra": {"wall_s": wall, "simulated_s": steps * epoch},
    }


def bench_solver_vectorized(quick: bool) -> list[dict]:
    """Scalar vs batched-NumPy cluster contention solving, 100-rack sweep.

    Every node demands its full link (the oversubscribed worst case), and the
    same demand matrices are resolved through both solver paths.  The
    vectorized row's ``extra.speedup_vs_scalar`` is the acceptance number:
    it must stay >= 5.
    """
    from repro.fabric.topology import FabricConvergenceWarning

    scalar_repeats = 3 if quick else 10
    vector_repeats = 10 if quick else 30
    fabric = ClusterFabric(
        n_racks=SWEEP_RACKS, nodes_per_rack=SWEEP_NODES, n_ports=SWEEP_PORTS
    )
    bandwidth = fabric.testbed.remote_bandwidth
    demands = [
        {n: bandwidth for n in range(SWEEP_NODES)} for _ in range(SWEEP_RACKS)
    ]
    config = {
        "n_racks": SWEEP_RACKS,
        "nodes_per_rack": SWEEP_NODES,
        "n_ports": SWEEP_PORTS,
    }
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FabricConvergenceWarning)
        solve = fabric.resolve_all(demands, solver="vectorized")
        timings = {
            solver: _timeit(
                lambda solver=solver: fabric.resolve_all(demands, solver=solver),
                repeats,
            )
            for solver, repeats in (
                ("scalar", scalar_repeats),
                ("vectorized", vector_repeats),
            )
        }
    speedup = (
        timings["scalar"]["min_s"] / timings["vectorized"]["min_s"]
        if timings["vectorized"]["min_s"] > 0
        else 0.0
    )
    for solver in ("scalar", "vectorized"):
        extra = {
            "iterations": solve.iterations,
            "converged": solve.converged,
            "residual_bytes_s": solve.residual,
        }
        if solver == "vectorized":
            extra["speedup_vs_scalar"] = speedup
        rows.append(
            {
                "name": f"solver_vectorized.{solver}",
                "group": "solver_vectorized",
                "config": {**config, "solver": solver},
                **timings[solver],
                "extra": extra,
            }
        )
    return rows


def bench_cluster_fabric(quick: bool) -> dict:
    """Epoch stepping of the whole-cluster co-simulator, tenants in every rack.

    The cluster wiring (racks, nodes, tenants) is identical in quick and full
    runs — only the number of timed steps differs — and the recorded
    ``mean_s`` is per cluster step, so quick and full documents are directly
    comparable on this group.
    """
    n_racks, nodes_per_rack, n_tenants = 6, 4, 4
    steps = 40 if quick else 200
    spec = build_workload("XSBench")
    fabric = ClusterFabric(n_racks=n_racks, nodes_per_rack=nodes_per_rack, n_ports=2)
    sim = ClusterCoSimulator(fabric, seed=0)
    tenants = uniform_tenants(spec, n_tenants, local_fraction=0.5)
    for rack in range(n_racks):
        for tenant in tenants:
            sim.admit(rack, replace(tenant, name=f"rack{rack}-{tenant.name}"))
    # Step one fraction of an epoch at a time, like the rack bench, so every
    # tenant stays running for the whole measurement.
    epoch = sim.epoch_seconds / 4
    start = time.perf_counter()
    for _ in range(steps):
        sim.step(epoch)
    wall = time.perf_counter() - start
    return {
        "name": "cluster_fabric",
        "group": "cluster_fabric",
        "config": {
            "n_racks": n_racks,
            "nodes_per_rack": nodes_per_rack,
            "n_tenants_per_rack": n_tenants,
            "workload": spec.name,
        },
        "repeats": steps,
        "mean_s": wall / steps,
        "min_s": wall / steps,
        "throughput_per_s": steps / wall if wall > 0 else 0.0,
        "extra": {
            "wall_s": wall,
            "steps": steps,
            "simulated_s": steps * epoch,
            "total_tenants": n_racks * n_tenants,
        },
    }


def bench_fault_injection(quick: bool) -> list[dict]:
    """Cost of the fault layer: disabled-path overhead + a seeded chaos run.

    * ``fault_injection.disabled_check`` — with no faults injected the fault
      layer's hot-path cost is one ``_faults_active`` boolean check per step
      chunk.  The row times the same epoch loop as ``rack_cosim_step`` with
      the layer disarmed, measures the per-check cost standalone, and records
      ``extra.disabled_overhead_pct`` = checks x cost / wall time — the
      < 2% acceptance bound of ``docs/failure_model.md``.
    * ``fault_injection.seeded_chaos`` — wall time of a batch chaos run under
      a seeded port-fault schedule; the blast radius goes into ``extra`` so
      the scenario's determinism is visible in the trajectory.  The scenario
      config is identical in quick and full runs (only repeats differ), so
      the two document kinds stay comparable on this row.
    """
    n_tenants = 4
    steps = 60 if quick else 300
    spec = build_workload("XSBench")
    tenants = uniform_tenants(spec, n_tenants, local_fraction=0.5)
    sim = RackCoSimulator.incremental(n_nodes=n_tenants)
    for tenant in tenants:
        sim.admit(tenant)
    epoch = sim.baseline_runtime_of(tenants[0].name) / (steps * 4)
    start = time.perf_counter()
    for _ in range(steps):
        sim.step(epoch)
    step_wall = time.perf_counter() - start

    # Price of the disarmed guard, measured standalone.
    loops = 50_000 if quick else 200_000
    armed = False
    start = time.perf_counter()
    for _ in range(loops):
        if sim._faults_active:
            armed = True
    check_ns = (time.perf_counter() - start) / loops * 1e9
    assert not armed
    disabled_overhead_pct = steps * check_ns / (step_wall * 1e9) * 100.0

    rows = [
        {
            "name": "fault_injection.disabled_check",
            "group": "fault_injection",
            "config": {
                "n_tenants": n_tenants,
                "workload": spec.name,
                "steps": steps,
                "faults": "none",
            },
            "repeats": steps,
            "mean_s": step_wall / steps,
            "min_s": step_wall / steps,
            "throughput_per_s": steps / step_wall if step_wall > 0 else 0.0,
            "extra": {
                "check_ns": check_ns,
                "checks_per_run": steps,
                "disabled_overhead_pct": disabled_overhead_pct,
            },
        }
    ]

    schedule = FaultSchedule.seeded(
        seed=0,
        horizon=20.0,
        n_events=4,
        kinds=("port-kill", "port-degrade"),
        n_ports=1,
    )
    repeats = 3 if quick else 10

    def chaos_run():
        chaos = RackCoSimulator(
            uniform_tenants(spec, n_tenants, local_fraction=0.5), seed=0
        )
        chaos.inject_faults(schedule)
        return chaos.run()

    result = chaos_run()
    timing = _timeit(chaos_run, repeats)
    report = result.blast_radius
    rows.append(
        {
            "name": "fault_injection.seeded_chaos",
            "group": "fault_injection",
            "config": {
                "n_tenants": n_tenants,
                "workload": spec.name,
                "fault_seed": 0,
                "n_events": 4,
                "kinds": "port-kill,port-degrade",
            },
            **timing,
            "extra": {
                "faults_injected": report.faults_injected,
                "stalled_tenants": len(report.stalled_tenants),
                "total_stall_seconds": report.total_stall_seconds,
                "makespan_s": result.makespan,
            },
        }
    )
    return rows


#: The 100-rack wiring of the ``cluster_step_batched`` group — dense enough
#: that the per-rack Python loop, not the shared tenant models, dominates
#: (identical in quick and full runs so the recorded speedup is always
#: measured at the same scale).
BATCHED_RACKS = 100
BATCHED_NODES = 8
BATCHED_TENANTS = 8


def _batched_cluster(solver: str, batched: bool) -> ClusterCoSimulator:
    fabric = ClusterFabric(
        n_racks=BATCHED_RACKS, nodes_per_rack=BATCHED_NODES, n_ports=1, solver=solver
    )
    sim = ClusterCoSimulator(fabric, seed=0)
    sim.batched_stepping = batched
    spec = build_workload("Hypre", 4.0)
    tenants = uniform_tenants(spec, BATCHED_TENANTS, local_fraction=0.5)
    for rack in range(BATCHED_RACKS):
        for tenant in tenants:
            sim.admit(rack, replace(tenant, name=f"rack{rack}-{tenant.name}"))
    # Time the rollover machinery itself, not the skip fast path: every epoch
    # re-solves all 100 racks, which is the worst case the batched path fuses.
    for rack_sim in sim.rack_sims:
        rack_sim.skip_unchanged_epochs = False
    return sim


def bench_cluster_step_batched(quick: bool) -> list[dict]:
    """Fused batched cluster epoch stepping vs the per-rack reference loop.

    Both paths step the identical 100-rack, 800-tenant cluster one epoch per
    step with epoch skipping disabled, so every step pays a full cross-rack
    contention re-solve.  The per-rack row drives the scalar reference
    solver through N independent ``RackCoSimulator.step`` calls; the batched
    row advances all racks under frozen backgrounds and folds the rollovers
    into one vectorized ``resolve_racks`` call.  ``extra.speedup_vs_per_rack``
    on the batched row is the acceptance number: it must stay >= 2.
    """
    steps = 6 if quick else 30
    config = {
        "n_racks": BATCHED_RACKS,
        "nodes_per_rack": BATCHED_NODES,
        "n_ports": 1,
        "n_tenants_per_rack": BATCHED_TENANTS,
        "workload": "Hypre",
        "scale": 4.0,
        "skip_unchanged_epochs": False,
    }
    rows = []
    walls = {}
    for label, solver, batched in (
        ("per_rack", "scalar", False),
        ("batched", "vectorized", True),
    ):
        sim = _batched_cluster(solver, batched)
        epoch = sim.epoch_seconds
        start = time.perf_counter()
        for _ in range(steps):
            sim.step(epoch)
        wall = time.perf_counter() - start
        walls[label] = wall
        extra = {"wall_s": wall, "steps": steps, "simulated_s": steps * epoch}
        if label == "batched":
            extra["speedup_vs_per_rack"] = (
                walls["per_rack"] / wall if wall > 0 else 0.0
            )
        rows.append(
            {
                "name": f"cluster_step_batched.{label}",
                "group": "cluster_step_batched",
                "config": {**config, "solver": solver, "batched_stepping": batched},
                "repeats": steps,
                "mean_s": wall / steps,
                "min_s": wall / steps,
                "throughput_per_s": steps / wall if wall > 0 else 0.0,
                "extra": extra,
            }
        )
    return rows


#: The ``sweep_sharded`` query stream: 4 unique rack co-simulation configs,
#: each requested 5 times (20 points) — the repeated-query shape of the
#: ROADMAP's memoized what-if service, where parameter studies revisit
#: baseline configurations.
SWEEP_TENANT_POINTS = (2, 4, 6, 8)
SWEEP_REPEATS_PER_POINT = 5
SWEEP_JOBS = 8


def _sweep_point(workload: str, scale: float, tenants: int, request: int) -> dict:
    """One sharded-sweep query: a full rack co-simulation, as a plain row.

    ``request`` tags which repetition of the query this is; it is dropped
    from the parameters before fingerprinting so repeated requests share one
    fingerprint (and therefore one execution).
    """
    spec = build_workload(workload, scale)
    result = RackCoSimulator(uniform_tenants(spec, tenants)).run()
    return {
        "tenants": tenants,
        "mean_runtime": result.mean_runtime,
        "mean_slowdown": result.mean_slowdown,
        "makespan": result.makespan,
    }


def bench_sweep_sharded(quick: bool) -> list[dict]:
    """Repeated-query sweep through ``SweepRunner`` vs a naive serial loop.

    The stream holds 20 queries over 4 unique configurations.  The serial
    row executes every query; the sharded row runs the same stream through
    ``SweepRunner(jobs=8)``, which deduplicates repeated fingerprints (each
    unique configuration is solved once) and shards the fresh ones over
    worker processes.  On a single-core runner the recorded speedup is
    therefore delivered by fingerprint memoization; on multicore hardware
    process sharding compounds it.  ``extra.speedup_vs_serial`` on the
    sharded row is the acceptance number: it must stay >= 3 at 8 workers.
    """
    from repro.parallel import SweepRunner

    points = [
        {"workload": "Hypre", "scale": 1.0, "tenants": tenants, "request": request}
        for request in range(SWEEP_REPEATS_PER_POINT)
        for tenants in SWEEP_TENANT_POINTS
    ]
    repeats = 2 if quick else 5
    config = {
        "workload": "Hypre",
        "scale": 1.0,
        "points": len(points),
        "unique_points": len(SWEEP_TENANT_POINTS),
    }

    def run_serial():
        return [_sweep_point(**params) for params in points]

    def run_sharded():
        runner = SweepRunner(jobs=SWEEP_JOBS)
        fingerprinted = [
            {k: v for k, v in params.items() if k != "request"} for params in points
        ]
        return runner.map(_sweep_point_query, fingerprinted, seed_param=None)

    serial_rows = run_serial()
    sharded_rows = run_sharded()
    assert serial_rows == sharded_rows, "sharded sweep diverged from serial"
    serial = _timeit(run_serial, repeats)
    sharded = _timeit(run_sharded, repeats)
    speedup = serial["min_s"] / sharded["min_s"] if sharded["min_s"] > 0 else 0.0
    return [
        {
            "name": "sweep_sharded.serial",
            "group": "sweep_sharded",
            "config": {**config, "jobs": 1},
            **serial,
            "extra": {"executions": len(points)},
        },
        {
            "name": "sweep_sharded.jobs8",
            "group": "sweep_sharded",
            "config": {**config, "jobs": SWEEP_JOBS},
            **sharded,
            "extra": {
                "executions": len(SWEEP_TENANT_POINTS),
                "memo_hits": len(points) - len(SWEEP_TENANT_POINTS),
                "speedup_vs_serial": speedup,
            },
        },
    ]


def _sweep_point_query(workload: str, scale: float, tenants: int) -> dict:
    """The fingerprinted form of :func:`_sweep_point` (no request tag)."""
    return _sweep_point(workload, scale, tenants, request=0)


#: The ``trace_ingest`` dump size — identical in quick and full runs (only
#: repeats differ) so quick CI documents stay config-comparable with the
#: committed full-run baseline on this group.
TRACE_JOBS = 400
TRACE_SEED = 0


def bench_trace_ingest(quick: bool) -> dict:
    """Streaming ``read_sacct`` throughput on a synthetic ``sacct`` dump.

    The dump (~1.6k rows for 400 jobs: allocation + ``.batch``/``.extern`` +
    numbered steps, with the generator's usual sprinkling of cancelled and
    malformed rows) is synthesized once in memory; each repeat streams it
    through :func:`read_sacct` end to end, folding steps and skipping bad
    rows exactly as a replay would.  ``extra.rows_per_s`` (best-of) is the
    recorded ingestion rate of the trajectory.
    """
    from repro.data.slurm import IngestReport, read_sacct, synthesize_sacct_lines

    lines = list(synthesize_sacct_lines(TRACE_JOBS, seed=TRACE_SEED))
    repeats = 3 if quick else 10

    def ingest():
        report = IngestReport()
        jobs = sum(1 for _ in read_sacct(lines, report=report))
        return jobs, report

    jobs, report = ingest()
    timing = _timeit(lambda: ingest(), repeats)
    rows_per_s = report.rows_read / timing["min_s"] if timing["min_s"] > 0 else 0.0
    return {
        "name": "trace_ingest.synthetic",
        "group": "trace_ingest",
        "config": {"n_jobs": TRACE_JOBS, "seed": TRACE_SEED},
        **timing,
        "extra": {
            "rows": report.rows_read,
            "jobs_yielded": jobs,
            "steps_folded": report.steps_folded,
            "rows_skipped": report.rows_skipped,
            "conserved": report.conserved,
            "rows_per_s": rows_per_s,
        },
    }


def _synthetic_jobs(n_jobs: int) -> tuple[list[JobProfile], list[float]]:
    """A deterministic job stream exercising placement, waiting and retiring."""
    profiles = []
    arrivals = []
    for i in range(n_jobs):
        profiles.append(
            JobProfile(
                workload=f"synthetic-{i % 7}",
                baseline_runtime=50.0 + 10.0 * (i % 13),
                induced_loi=float(i % 5) * 4.0,
                pool_gb=1.0 + (i % 3),
            )
        )
        arrivals.append(2.5 * i)
    return profiles, arrivals


def _run_cluster(n_racks: int, nodes_per_rack: int, profiles, arrivals):
    cluster = Cluster.build(
        n_racks=n_racks, nodes_per_rack=nodes_per_rack, pool_capacity_gb=64.0
    )
    simulator = ClusterSimulator(cluster, seed=0)
    return simulator.run(profiles, arrivals)


def bench_cluster_events(quick: bool) -> tuple[dict, dict]:
    """Event throughput of the scheduler loop + telemetry overhead on it.

    Runs the same deterministic job stream three ways: telemetry disabled
    (timed twice, best-of for the recorded number), and telemetry enabled
    (to count events/spans and measure the enabled-mode cost).  The
    disabled-mode overhead is the measured no-op hook cost times the hook
    call count, as a fraction of the disabled wall time — the number the
    acceptance bound (< 2%) refers to.
    """
    n_racks, nodes_per_rack = (2, 4) if quick else (4, 8)
    n_jobs = 120 if quick else 400
    profiles, arrivals = _synthetic_jobs(n_jobs)

    telemetry.disable()
    disabled_walls = []
    for _ in range(2):
        start = time.perf_counter()
        outcome = _run_cluster(n_racks, nodes_per_rack, profiles, arrivals)
        disabled_walls.append(time.perf_counter() - start)
    disabled_wall = min(disabled_walls)

    telemetry.enable(reset=True)
    start = time.perf_counter()
    _run_cluster(n_racks, nodes_per_rack, profiles, arrivals)
    enabled_wall = time.perf_counter() - start
    registry = telemetry.registry()
    events = int(registry.counter("scheduler.events").value)
    hook_calls = (
        events
        + int(registry.counter("scheduler.jobs.started").value)
        + int(registry.counter("scheduler.jobs.finished").value)
        + len(telemetry.tracer().spans)
    )
    telemetry.disable()

    # Cost of one disabled-mode hook: the flag check + no-op instrument.
    loops = 50_000 if quick else 200_000
    start = time.perf_counter()
    for _ in range(loops):
        with telemetry.trace_span("bench.noop"):
            pass
    noop_span_ns = (time.perf_counter() - start) / loops * 1e9
    start = time.perf_counter()
    for _ in range(loops):
        telemetry.metrics().counter("bench.noop").inc()
    noop_counter_ns = (time.perf_counter() - start) / loops * 1e9

    noop_ns = max(noop_span_ns, noop_counter_ns)
    disabled_overhead_pct = hook_calls * noop_ns / (disabled_wall * 1e9) * 100.0
    bench = {
        "name": "cluster_events",
        "group": "cluster_events",
        "config": {
            "n_racks": n_racks,
            "nodes_per_rack": nodes_per_rack,
            "n_jobs": n_jobs,
            "policy": "random",
            "progress": "static-curve",
        },
        "repeats": 2,
        "mean_s": statistics.fmean(disabled_walls),
        "min_s": disabled_wall,
        "throughput_per_s": events / disabled_wall if disabled_wall > 0 else 0.0,
        "extra": {
            "events": events,
            "makespan_s": outcome.makespan,
            "events_per_s": events / disabled_wall if disabled_wall > 0 else 0.0,
        },
    }
    overhead = {
        "noop_span_ns": noop_span_ns,
        "noop_counter_ns": noop_counter_ns,
        "events": events,
        "hook_calls": hook_calls,
        "disabled_wall_s": disabled_wall,
        "enabled_wall_s": enabled_wall,
        "enabled_overhead_pct": (enabled_wall - disabled_wall) / disabled_wall * 100.0,
        "disabled_overhead_pct": disabled_overhead_pct,
    }
    return bench, overhead


def run_benchmarks(quick: bool) -> dict:
    """The full schema-versioned bench document."""
    telemetry.disable()
    benchmarks = []
    benchmarks.extend(bench_fabric_solver(quick))
    benchmarks.append(bench_rack_cosim_step(quick))
    cluster_bench, overhead = bench_cluster_events(quick)
    benchmarks.append(cluster_bench)
    benchmarks.extend(bench_solver_vectorized(quick))
    benchmarks.append(bench_cluster_fabric(quick))
    benchmarks.extend(bench_fault_injection(quick))
    benchmarks.extend(bench_cluster_step_batched(quick))
    benchmarks.extend(bench_sweep_sharded(quick))
    benchmarks.append(bench_trace_ingest(quick))
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": benchmarks,
        "telemetry_overhead": overhead,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument(
        "--out", default="BENCH_cosim.json", help="output path (default: %(default)s)"
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        default=None,
        help="validate an existing bench document instead of measuring",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="after measuring, diff against BASELINE (a committed bench "
        "document) and exit non-zero on a perf regression",
    )
    parser.add_argument(
        "--compare-threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="relative slowdown tolerated before --compare fails "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        errors = validate_bench(data)
        if errors:
            for error in errors:
                print(f"{args.check}: {error}", file=sys.stderr)
            return 1
        print(f"{args.check}: valid {BENCH_SCHEMA} v{BENCH_SCHEMA_VERSION} document")
        return 0

    data = run_benchmarks(quick=args.quick)
    errors = validate_bench(data)
    if errors:  # pragma: no cover - harness bug guard
        for error in errors:
            print(f"internal schema violation: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    events_per_s = next(
        b["throughput_per_s"] for b in data["benchmarks"] if b["group"] == "cluster_events"
    )
    speedup = next(
        b["extra"]["speedup_vs_scalar"]
        for b in data["benchmarks"]
        if b["name"] == "solver_vectorized.vectorized"
    )
    overhead = data["telemetry_overhead"]
    print(f"wrote {args.out}")
    print(f"  cluster events/s: {events_per_s:.0f}")
    print(f"  vectorized solver speedup (100 racks): {speedup:.1f}x")
    print(f"  telemetry overhead: disabled {overhead['disabled_overhead_pct']:.3f}% "
          f"enabled {overhead['enabled_overhead_pct']:.1f}%")
    fault_pct = next(
        b["extra"]["disabled_overhead_pct"]
        for b in data["benchmarks"]
        if b["name"] == "fault_injection.disabled_check"
    )
    print(f"  fault layer disabled overhead: {fault_pct:.3f}%")
    batched_speedup = next(
        b["extra"]["speedup_vs_per_rack"]
        for b in data["benchmarks"]
        if b["name"] == "cluster_step_batched.batched"
    )
    print(f"  batched cluster stepping speedup (100 racks): {batched_speedup:.1f}x")
    sweep_speedup = next(
        b["extra"]["speedup_vs_serial"]
        for b in data["benchmarks"]
        if b["name"] == "sweep_sharded.jobs8"
    )
    print(f"  sharded sweep speedup (8 workers, repeated queries): {sweep_speedup:.1f}x")
    rows_per_s = next(
        b["extra"]["rows_per_s"]
        for b in data["benchmarks"]
        if b["name"] == "trace_ingest.synthetic"
    )
    print(f"  sacct trace ingestion: {rows_per_s:.0f} rows/s")

    if args.compare is not None:
        with open(args.compare, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        errors = validate_bench(baseline)
        if errors:
            for error in errors:
                print(f"{args.compare}: {error}", file=sys.stderr)
            return 1
        regressions, skipped = compare_bench(
            baseline, data, threshold=args.compare_threshold
        )
        for line in skipped:
            print(f"  compare skipped {line}")
        if regressions:
            for line in regressions:
                print(f"PERF REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"  no perf regressions vs {args.compare} "
              f"(threshold {args.compare_threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
