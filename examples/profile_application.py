#!/usr/bin/env python3
"""Three-level profiling workflow (the paper's Figure 4, steps II-V).

Level 1 captures general characteristics on node-local memory (roofline
placement, bandwidth-capacity scaling curve, prefetch suitability).
Level 2 measures the access ratios to each memory tier against the R_cap and
R_BW reference points.  Level 3 quantifies interference sensitivity and the
interference coefficient on the pooled configuration.

Run with::

    python examples/profile_application.py [workload] [local_fraction]
"""

from __future__ import annotations

import sys

from repro.models.memory_roofline import MemoryRoofline
from repro.profiler import MultiLevelProfiler
from repro.sim import Platform
from repro.workloads import build_workload, workload_names


def ascii_curve(curve, width: int = 50) -> str:
    """Render a bandwidth-capacity scaling curve as a small ASCII chart."""
    rows = []
    for footprint_pct in (5, 10, 25, 50, 75, 100):
        access = curve.access_share_at(footprint_pct / 100.0)
        bar = "#" * int(round(access * width))
        rows.append(f"    {footprint_pct:>3}% of footprint |{bar:<{width}}| {access:.0%} of accesses")
    return "\n".join(rows)


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "XSBench"
    local_fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if name not in workload_names():
        print(f"unknown workload {name!r}; choose one of {', '.join(workload_names())}")
        return 2

    spec = build_workload(name, 1.0)
    profiler = MultiLevelProfiler(seed=0)

    # -- Level 1 ---------------------------------------------------------------
    level1 = profiler.level1(spec)
    print(f"=== Level 1: general characteristics of {name} ===")
    print(f"peak memory usage: {level1.peak_rss_gib:.2f} GiB")
    for phase in level1.phases:
        print(f"  {phase.phase}: AI {phase.arithmetic_intensity:7.2f} flop/B, "
              f"{phase.achieved_gflops:8.1f} Gflop/s, {phase.achieved_bandwidth_gbs:5.1f} GB/s")
    p = level1.prefetch
    print(f"prefetching: accuracy {p.accuracy:.0%}, coverage {p.coverage:.0%}, "
          f"excess traffic {p.excess_traffic:.0%}, performance gain {p.performance_gain:.0%}")
    print("bandwidth-capacity scaling curve:")
    print(ascii_curve(level1.scaling_curve))
    print()

    # -- Level 2 ---------------------------------------------------------------
    level2 = profiler.level2(spec, local_fraction=local_fraction)
    print(f"=== Level 2: tier access on the {level2.config_label} system ===")
    print(f"reference points: R_cap = {level2.remote_capacity_ratio:.0%}, "
          f"R_BW = {level2.remote_bandwidth_ratio:.0%}")
    roofline = MemoryRoofline.from_config(
        Platform.pooled(spec.footprint_bytes, local_fraction).tier_config
    )
    for phase in level2.phases:
        verdict = roofline.classify(phase.remote_access_ratio, phase.remote_capacity_ratio)
        print(f"  {phase.label}: remote access {phase.remote_access_ratio:.0%}  -> {verdict} "
              f"(headroom {phase.optimization_headroom:.0%})")
    print()

    # -- Level 3 ---------------------------------------------------------------
    level3 = profiler.level3(spec, local_fraction=local_fraction)
    print(f"=== Level 3: interference on the {level3.config_label} memory pool ===")
    print("sensitivity (relative performance vs LoI):")
    for loi, rel in zip(level3.sensitivity.loi_levels, level3.sensitivity.relative_performance):
        print(f"  LoI {loi:>4.0f}%: {rel:.3f}")
    print(f"interference coefficient caused by {name}: {level3.interference_coefficient:.2f}")
    for phase, ic in level3.phase_interference_coefficients:
        print(f"  {phase}: IC {ic:.2f}")

    # -- user guidance, as the paper frames it ----------------------------------
    print()
    loss = level3.sensitivity.max_performance_loss
    if loss < 0.05:
        print(f"{name} is insensitive to pool interference: it can lean on the pool "
              f"to reduce the number of compute nodes it needs.")
    else:
        print(f"{name} loses {loss:.0%} at LoI=50: deploy it with more node-local "
              f"memory or ask the scheduler to avoid interference-heavy co-runners.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
