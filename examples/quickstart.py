#!/usr/bin/env python3
"""Quickstart: run one workload on the emulated disaggregated-memory platform.

This example mirrors the first step a user of the methodology takes: pick an
application, run it on a node-local memory system to capture its intrinsic
requirements, then run it again with half of its footprint backed by the
rack-level memory pool and compare.

Run with::

    python examples/quickstart.py [workload]
"""

from __future__ import annotations

import sys

from repro.sim import ConstantInterference, ExecutionEngine, Platform
from repro.workloads import build_workload, workload_names


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "Hypre"
    if name not in workload_names():
        print(f"unknown workload {name!r}; choose one of {', '.join(workload_names())}")
        return 2

    spec = build_workload(name, scale=1.0)
    print(f"Workload: {spec.name} ({spec.input_label})")
    print(f"Memory footprint: {spec.footprint_bytes / 1e9:.2f} GB "
          f"across {len(spec.objects)} allocations")
    print(f"Phases: {', '.join(spec.phase_names)}")
    print()

    # 1. Node-local memory only: the application's intrinsic behaviour.
    local = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
    print("--- node-local memory only ---")
    for phase in local.phases:
        print(f"  {phase.name}: {phase.runtime:7.1f} s | "
              f"AI = {phase.arithmetic_intensity:6.2f} flop/B | "
              f"{phase.achieved_flops / 1e9:7.1f} Gflop/s | "
              f"{phase.achieved_bandwidth / 1e9:5.1f} GB/s | "
              f"prefetch coverage {phase.prefetch_coverage:.0%}")
    print(f"  total runtime: {local.total_runtime:.1f} s")
    print()

    # 2. Half of the footprint on the rack memory pool (the 50-50 system).
    pooled_platform = Platform.pooled(spec.footprint_bytes, local_fraction=0.5)
    pooled = ExecutionEngine(pooled_platform, seed=0).run(spec)
    print("--- 50% node-local / 50% memory pool ---")
    print(f"  remote capacity ratio: {pooled.remote_capacity_ratio:.0%}")
    print(f"  remote access ratio:   {pooled.remote_access_ratio:.0%}")
    print(f"  total runtime:         {pooled.total_runtime:.1f} s "
          f"({pooled.total_runtime / local.total_runtime - 1:+.1%} vs local-only)")
    print()

    # 3. The same pooled system while another node floods the pool link.
    noisy = ExecutionEngine(pooled_platform, seed=0).run(
        spec, interference=ConstantInterference(50.0)
    )
    print("--- 50-50 system with LoI=50% interference on the pool link ---")
    print(f"  total runtime: {noisy.total_runtime:.1f} s "
          f"({noisy.total_runtime / pooled.total_runtime - 1:+.1%} vs idle pool)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
