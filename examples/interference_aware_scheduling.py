#!/usr/bin/env python3
"""Case study 2: interference-aware job scheduling (Section 7.2).

Part 1 reproduces the paper's experiment: each workload runs many times at 50%
memory pooling against a background Level of Interference redrawn every 60 s —
0-50% for the random baseline, 0-20% when the scheduler avoids co-locating
interference-heavy jobs with sensitive ones.

Part 2 goes one step further than the paper and simulates an actual rack-scale
cluster where a placement policy uses the submission-time hints (sensitivity
curve + induced interference) to choose racks.

Run with::

    python examples/interference_aware_scheduling.py [n_runs]
"""

from __future__ import annotations

import sys

from repro.casestudies.scheduling import SchedulingCaseStudy
from repro.scheduler import (
    Cluster,
    ClusterSimulator,
    InterferenceAwarePlacement,
    JobProfile,
    RandomPlacement,
)
from repro.workloads import build_workload, workload_names


def loi_emulation_study(n_runs: int) -> SchedulingCaseStudy:
    print(f"=== LoI-emulation study ({n_runs} runs per workload and policy) ===")
    study = SchedulingCaseStudy(local_fraction=0.50, n_runs=n_runs, seed=0)
    result = study.run()
    print(f"{'workload':<10} {'baseline median':>16} {'aware median':>13} "
          f"{'mean speedup':>13} {'p75 reduction':>14}")
    for row in result.results:
        print(f"{row.workload:<10} {row.baseline.median:>15.1f}s {row.aware.median:>12.1f}s "
              f"{row.mean_speedup:>12.1%} {row.p75_reduction:>13.1%}")
    print(f"most improved workload: {result.most_improved()}\n")
    return study


def rack_scale_study(study: SchedulingCaseStudy) -> None:
    print("=== Rack-scale placement simulation (2 racks x 4 nodes) ===")
    profiles: list[JobProfile] = []
    for name in workload_names():
        base = study.job_profile_of(build_workload(name, 1.0))
        # Estimate the LoI a job injects from the share of the pool it uses.
        induced_loi = min(45.0, 12.0 * base.pool_gb)
        profiles.append(
            JobProfile(
                workload=base.workload,
                baseline_runtime=base.baseline_runtime,
                sensitivity=base.sensitivity,
                induced_loi=induced_loi,
                pool_gb=base.pool_gb,
            )
        )
    arrivals = [i * 5.0 for i in range(len(profiles))]
    for policy in (RandomPlacement(), InterferenceAwarePlacement(max_seen_loi=20.0)):
        cluster = Cluster.build(n_racks=2, nodes_per_rack=4, pool_capacity_gb=4096.0)
        outcome = ClusterSimulator(cluster, policy, seed=11).run(profiles, arrivals)
        print(f"  {policy.name:<20} mean slowdown {outcome.mean_slowdown:5.3f}   "
              f"p75 slowdown {outcome.p75_slowdown:5.3f}   makespan {outcome.makespan:6.1f} s")
    print("\nThe interference-aware policy uses the submission-time hints (sensitivity +")
    print("induced interference) the paper proposes exposing to SLURM.  A single job")
    print("stream is noisy; benchmarks/bench_ablation_scheduler_policies.py averages the")
    print("same comparison over many seeds.")


def main() -> int:
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    study = loi_emulation_study(n_runs)
    rack_scale_study(study)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
