#!/usr/bin/env python3
"""Co-simulation-in-the-loop scheduling: the fabric drives the scheduler.

The rack-scale :class:`ClusterSimulator` usually prices co-location with the
paper's static ``slowdown_at(LoI)`` curves.  This example couples it to the
:mod:`repro.fabric` co-simulation instead: every rack gets its own
incrementally-stepped :class:`RackCoSimulator`, each placed job becomes a
fabric tenant on its node, and job progress rates are the emergent per-epoch
rates the shared pool ports resolve.

Three parts:

1. the same job stream scheduled with static pricing and with the fabric in
   the loop — under pool-port contention the two schedules diverge;
2. a placement bake-off where :class:`FabricCoupledPlacement` reads the live
   co-simulated fabric instead of submission-time hints;
3. the epoch checkpoint/rollover API that makes incremental stepping safe for
   speculative schedulers.

This is also the worked example referenced by ``docs/architecture.md``.

Run with::

    python examples/fabric_scheduling.py
"""

from __future__ import annotations

from repro.casestudies.scheduling import CoupledSchedulingStudy
from repro.fabric import RackCoSimulator, TenantSpec
from repro.scheduler import (
    Cluster,
    ClusterSimulator,
    FabricCoupledPlacement,
    FabricCoupledProgress,
    RandomPlacement,
    fabric_job_profile,
)
from repro.workloads import build_workload


WORKLOADS = ("Hypre", "XSBench", "BFS")


def static_vs_coupled() -> None:
    print("=== 1. Static curves vs fabric-coupled progress (1 rack x 6 nodes) ===")
    study = CoupledSchedulingStudy(
        n_racks=1, nodes_per_rack=6, pool_capacity_gb=2048.0, seed=0
    )
    specs = [build_workload(name, 1.0) for name in WORKLOADS]
    result = study.run(specs=specs, copies=2)
    print(f"{'progress model':<16} {'makespan':>10} {'mean slowdown':>14} {'p75 slowdown':>13}")
    for label, outcome in (("static-curve", result.static), ("fabric-coupled", result.coupled)):
        print(
            f"{label:<16} {outcome.makespan:>9.1f}s {outcome.mean_slowdown:>14.3f} "
            f"{outcome.p75_slowdown:>13.3f}"
        )
    print(
        f"makespan delta {result.makespan_delta:+.1%}, largest per-job finish-time "
        f"shift {result.max_finish_time_shift:.1f} s\n"
        "The static proxy cannot see the contention the shared pool port\n"
        "resolves epoch by epoch; the coupled schedule can.\n"
    )


def placement_bakeoff() -> None:
    print("=== 2. Placement with live fabric state (3 racks x 2 nodes) ===")
    specs = {name: build_workload(name, 1.0) for name in WORKLOADS}
    profiles = [fabric_job_profile(spec, local_fraction=0.5) for spec in specs.values()]
    for policy_factory in (
        lambda progress: RandomPlacement(),
        lambda progress: FabricCoupledPlacement(progress=progress),
    ):
        progress = FabricCoupledProgress(workloads=specs, local_fraction=0.5)
        cluster = Cluster.build(n_racks=3, nodes_per_rack=2, pool_capacity_gb=2048.0)
        policy = policy_factory(progress)
        outcome = ClusterSimulator(cluster, policy, seed=7, progress=progress).run(profiles)
        print(
            f"  {policy.name:<16} mean slowdown {outcome.mean_slowdown:5.3f}   "
            f"p75 slowdown {outcome.p75_slowdown:5.3f}   makespan {outcome.makespan:6.1f} s"
        )
    print(
        "Both runs use fabric-coupled progress; only the placement differs.\n"
        "Random packs two jobs onto one rack's pool port; the fabric-coupled\n"
        "policy projects each candidate rack's port utilisation from the\n"
        "tenants' *current phases* and isolates all three.\n"
    )


def checkpoint_rollover() -> None:
    print("=== 3. Epoch checkpoint / rollover (speculative stepping) ===")
    spec = build_workload("Hypre", 1.0)
    sim = RackCoSimulator.incremental(n_nodes=2, epoch_seconds=1.0)
    for i in range(2):
        sim.admit(TenantSpec(name=f"job-{i}", workload=spec, local_fraction=0.5))
    sim.step(5.0)
    checkpoint = sim.checkpoint()
    speculative = sim.step(20.0)  # step past an estimated completion ...
    sim.rollover(checkpoint)      # ... an earlier arrival invalidated it
    replay = sim.step(20.0)
    identical = all(
        speculative[name] == replay[name] for name in speculative
    ) and sim.clock == checkpoint.clock + 20.0
    print(f"  speculative step == replayed step after rollover: {identical}")
    print(f"  progress rates now: "
          + ", ".join(f"{k}={v:.3f}" for k, v in sorted(sim.progress_rates().items())))


def main() -> int:
    static_vs_coupled()
    placement_bakeoff()
    checkpoint_rollover()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
