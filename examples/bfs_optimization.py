#!/usr/bin/env python3
"""Case study 1: optimising BFS's data placement on pooled memory (Section 7.1).

The example has two parts:

1. A *real* (reduced-scale) Ligra-style BFS on an RMAT graph, used to verify
   the behavioural model's key assumption: the per-vertex ``Parents`` array is
   tiny compared with the adjacency lists, and adjacency traffic concentrates
   on a small set of high-degree vertices.
2. The placement case study itself on the simulator: baseline allocation
   order, reordered allocations (Parents first) and the reorder + free-the-
   initialisation-temporary variant, at 50% and 75% memory pooling.

Run with::

    python examples/bfs_optimization.py
"""

from __future__ import annotations

import numpy as np

from repro.casestudies.bfs_placement import BFSPlacementCaseStudy
from repro.workloads.rmat import adjacency_access_counts, bfs, rmat_graph


def validate_model_assumptions() -> None:
    """Check the hot-object assumption on an actual small RMAT graph."""
    print("=== Reduced-scale RMAT BFS (real traversal) ===")
    graph = rmat_graph(scale=14, edge_factor=16, seed=7)
    result = bfs(graph, source=0)
    parents_bytes = result.parents.nbytes
    graph_bytes = graph.memory_bytes()
    counts = adjacency_access_counts(graph, result)
    ordered = np.sort(counts)[::-1]
    top5pct = ordered[: max(len(ordered) // 20, 1)].sum() / max(ordered.sum(), 1)
    print(f"graph: 2^14 vertices, {graph.n_edges} directed edges "
          f"({graph_bytes / 1e6:.1f} MB CSR)")
    print(f"BFS reached {result.n_reached} vertices in {result.n_iterations} iterations "
          f"(max frontier {result.max_frontier})")
    print(f"Parents array is only {parents_bytes / graph_bytes:.1%} of the graph footprint")
    print(f"the top 5% highest-degree vertices receive {top5pct:.0%} of adjacency traffic")
    print("-> a small, very hot object plus skewed adjacency access: exactly what the\n"
          "   behavioural model assumes and what first-touch placement gets wrong.\n")


def run_case_study() -> None:
    print("=== Placement case study on the emulated platform ===")
    study = BFSPlacementCaseStudy(scale=1.0, seed=0)
    result = study.run(pool_fractions=(0.50, 0.75), with_sensitivity=True,
                       loi_levels=(0.0, 25.0, 50.0))
    for config in ("50%-pooled", "75%-pooled"):
        print(f"\n-- {config} --")
        baseline = result.variant("baseline", config)
        for variant in ("baseline", "reordered", "optimized"):
            v = result.variant(variant, config)
            speedup = baseline.runtime / v.runtime - 1.0
            loss = v.sensitivity.max_performance_loss if v.sensitivity else float("nan")
            print(f"  {variant:<10} runtime {v.runtime:6.1f} s ({speedup:+5.0%})  "
                  f"remote access {v.remote_access_ratio:5.0%}  "
                  f"remote traffic {v.remote_bytes / 1e9:7.1f} GB  "
                  f"interference loss @LoI=50 {loss:5.1%}")
    print("\nPaper's reference numbers at 75% pooling: remote access 99% -> 80% -> 50%,")
    print("total speedup 13%, and a clearly reduced interference sensitivity.")


def main() -> int:
    validate_model_assumptions()
    run_case_study()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
