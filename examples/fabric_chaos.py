#!/usr/bin/env python3
"""Chaos-testing the fabric: fault injection, elastic leases, blast radius.

The rack co-simulation of :mod:`repro.fabric` is deterministic all the way
down, and that includes its failures: a :class:`FaultSchedule` fires port
kills, degradations, lease revocations and capacity loss at exact simulated
times, elastic pools shrink running tenants to admit newcomers at a modeled
page-give-back migration cost, and every run summarises the damage as a
:class:`BlastRadiusReport`.  The full failure model is documented in
``docs/failure_model.md``.

Four parts:

1. an explicit port-kill schedule — the blast radius vs the clean baseline;
2. a lease revocation — migration drain, stall and re-admission latency;
3. elastic overcommit — a newcomer admitted by shrinking a running tenant;
4. seeded chaos — same seed, same faults, bit-identical reports — and the
   checkpoint/rollback contract around pending vs applied faults.

Run with::

    python examples/fabric_chaos.py
"""

from __future__ import annotations

from repro.config.errors import FabricError
from repro.fabric import (
    FaultEvent,
    FaultSchedule,
    MemoryPool,
    RackCoSimulator,
    uniform_tenants,
)
from repro.workloads import build_workload


def port_kill_blast_radius() -> None:
    print("=== 1. Port kill: blast radius vs clean baseline ===")
    spec = build_workload("XSBench", 1.0)
    tenants = uniform_tenants(spec, 2, local_fraction=0.5)
    baseline = RackCoSimulator(tenants, seed=0).run()

    chaos = RackCoSimulator(uniform_tenants(spec, 2, local_fraction=0.5), seed=0)
    chaos.inject_faults(
        FaultSchedule(
            (FaultEvent(time=5.0, kind="port-kill", port=0, duration=2.0),)
        )
    )
    result = chaos.run()
    report = result.blast_radius
    print(f"  makespan: clean {baseline.makespan:.2f} s -> faulted {result.makespan:.2f} s")
    print(f"  stalled tenants: {report.stalled_tenants}")
    print(f"  total stall: {report.total_stall_seconds:.1f} s "
          f"(= kill window x {len(report.stalled_tenants)} tenants on the dead port)\n")


def lease_revocation() -> None:
    print("=== 2. Lease revocation: migration drain + re-admission ===")
    spec = build_workload("XSBench", 1.0)
    sim = RackCoSimulator(uniform_tenants(spec, 2, local_fraction=0.5), seed=0)
    # Revoke one tenant's lease at t=5; its 2 GB drain back at 1 GB/s.
    sim.inject_faults(
        FaultSchedule((FaultEvent(time=5.0, kind="lease-revoke", tenant="XSBench-1"),)),
        drain_bytes_per_s=1e9,
    )
    result = sim.run()
    impact = {t.name: t for t in result.blast_radius.tenants}["XSBench-1"]
    print(f"  migrated: {impact.migrated_bytes / 1e9:.1f} GB, "
          f"stall {impact.stall_seconds:.1f} s, "
          f"re-admission latency {impact.readmission_latency:.1f} s")
    print("  The un-revoked co-tenant is untouched: "
          f"{ {t.name: t.stall_seconds for t in result.blast_radius.tenants} }\n")


def elastic_overcommit() -> None:
    print("=== 3. Elastic overcommit: admit by shrinking (floors + drain cost) ===")
    spec = build_workload("XSBench", 1.0)
    # Two 2 GB leases against a 3 GB elastic pool: the second arrival fits
    # only because the first tenant is shrunk to its 50% floor (1 GB), and
    # that give-back is charged to the first tenant as a migration stall.
    tenants = uniform_tenants(spec, 2, local_fraction=0.5, stagger=5.0)
    lease = tenants[0].lease_bytes
    pool = MemoryPool(int(1.5 * lease), elastic=True, min_lease_fraction=0.5)
    sim = RackCoSimulator(tenants, pool=pool, seed=0)
    result = sim.run()
    report = result.blast_radius
    shrunk = {t.name: t for t in report.tenants}["XSBench-0"]
    print(f"  pool {pool.capacity_bytes / 1e9:.1f} GB, leases 2 x {lease / 1e9:.1f} GB")
    print(f"  XSBench-0 gave back {shrunk.migrated_bytes / 1e9:.1f} GB "
          f"and stalled {shrunk.stall_seconds:.3f} s while its pages drained")
    print(f"  both finished: { {t.name: t.lease_state for t in result.tenants} }\n")


def seeded_chaos_and_rollback() -> None:
    print("=== 4. Seeded chaos is replayable; rollback respects applied faults ===")
    spec = build_workload("XSBench", 1.0)

    def run_once():
        sim = RackCoSimulator(uniform_tenants(spec, 2, local_fraction=0.5), seed=0)
        sim.inject_faults(
            FaultSchedule.seeded(
                seed=7, horizon=20.0, n_events=4,
                kinds=("port-kill", "port-degrade"), n_ports=1,
            )
        )
        return sim.run().blast_radius.summary()

    a, b = run_once(), run_once()
    print(f"  seeded run twice, identical reports: {a == b} "
          f"({a['faults_injected']} faults, {a['total_stall_seconds']:.2f} s stall)")

    # Checkpoints tolerate *pending* faults but refuse to cross *applied* ones.
    sim = RackCoSimulator.incremental(n_nodes=2, epoch_seconds=1.0)
    from repro.fabric import TenantSpec

    for i in range(2):
        sim.admit(TenantSpec(name=f"job-{i}", workload=spec, local_fraction=0.5))
    sim.inject_faults(
        FaultSchedule((FaultEvent(time=10.0, kind="port-kill", port=0, duration=2.0),))
    )
    sim.step(5.0)
    checkpoint = sim.checkpoint()   # fault at t=10 still pending: legal
    sim.step(3.0)
    sim.rollover(checkpoint)        # bit-identical replay up to t=8
    sim.step(7.0)                   # crosses t=10 -> the fault is now applied
    try:
        sim.rollover(checkpoint)
    except FabricError as exc:
        print(f"  rollback across an applied fault refused: {str(exc)[:60]}...")


def main() -> int:
    port_kill_blast_radius()
    lease_revocation()
    elastic_overcommit()
    seeded_chaos_and_rollback()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
