#!/usr/bin/env python3
"""Deployment planning with the bandwidth-capacity scaling curve (Section 4.1).

A user deciding how to run a job on a disaggregated-memory system needs to
answer: how many nodes do I need if I only use node-local memory, and what
happens if I run on fewer nodes and take the overflow from the rack pool?
The answer depends on the application's access distribution — exactly what the
bandwidth-capacity scaling curve captures — and on the cost side, on how much
memory the facility no longer has to provision per node.

Run with::

    python examples/capacity_planning.py [workload]
"""

from __future__ import annotations

import sys

from repro.models.capacity_planning import NodeResources, compare_plans
from repro.models.cost import MemoryPriceModel, utilization_based_scenario
from repro.profiler.level1 import Level1Profiler
from repro.workloads import build_workload, workload_names


def plan_job(name: str) -> None:
    spec = build_workload(name, scale=4.0)  # the largest input problem
    profile = Level1Profiler(seed=0).profile(spec)
    curve = profile.scaling_curve

    # Pretend the job is a distributed run needing 16x the single-node footprint.
    total_footprint_gb = 16 * spec.footprint_bytes / 1e9
    node = NodeResources(
        memory_gb=64.0,             # deliberately small nodes to force the trade-off
        memory_bandwidth_gbs=73.0,
        pool_gb_available=512.0,
        pool_bandwidth_gbs=34.0,
    )
    comparison = compare_plans(total_footprint_gb, node, scaling_curve=curve)
    local_plan = comparison["local_only"]
    pooled_plan = comparison["pooled"]

    print(f"=== Deployment planning for {name} (total footprint {total_footprint_gb:.0f} GB) ===")
    print(f"scaling-curve skew: {curve.skewness:.2f} "
          f"(0 = uniform access, 1 = tiny hot set)")
    print(f"  local-only plan : {local_plan.description}")
    print(f"  pooled plan     : {pooled_plan.description}")
    print(f"  nodes saved     : {comparison['node_saving']}")
    print(f"  memory-roofline bandwidth limit of the pooled plan: "
          f"{comparison['pooled_bandwidth_limit_gbs']:.0f} GB/s per node")
    if pooled_plan.expected_remote_access_ratio < 0.15:
        print("  -> the hot set fits locally; pooling is nearly free for this code.")
    else:
        print("  -> a noticeable share of accesses would hit the pool; check the")
        print("     Level-3 sensitivity before shrinking the node count.")
    print()


def facility_view() -> None:
    print("=== Facility view: provisioning a 16-node rack ===")
    # Per-job memory utilisation samples echoing the studies the paper cites
    # (most jobs use a small fraction of node memory, a few use nearly all).
    samples = [0.08, 0.12, 0.15, 0.2, 0.25, 0.3, 0.45, 0.75, 0.9, 0.1, 0.18, 0.05]
    scenario = utilization_based_scenario(
        n_nodes=16, node_capacity_gb=512.0, utilization_samples=samples, node_local_fraction=0.5
    )
    prices = MemoryPriceModel()
    print(f"  sum-of-peaks provisioning : {scenario.sum_of_peaks_gb():8.0f} GB")
    print(f"  peak-of-sums (pooled)     : {scenario.peak_of_sums_gb():8.0f} GB")
    print(f"  capacity saved            : {scenario.savings_gb():8.0f} GB "
          f"({scenario.savings_fraction():.0%})")
    print(f"  estimated DDR cost saved  : ${scenario.cost_savings(prices) / 1e3:.0f}k per rack")


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "XSBench"
    if name not in workload_names():
        print(f"unknown workload {name!r}; choose one of {', '.join(workload_names())}")
        return 2
    plan_job(name)
    facility_view()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
