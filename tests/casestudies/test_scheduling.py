"""Tests for the interference-aware scheduling case study (Section 7.2)."""

import pytest

from repro.casestudies.scheduling import SchedulingCaseStudy
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def small_study():
    """A reduced-run-count study over two contrasting workloads."""
    study = SchedulingCaseStudy(local_fraction=0.50, n_runs=25, seed=0)
    specs = [build_workload("Hypre", 1.0), build_workload("XSBench", 1.0)]
    return study.run(specs)


def test_job_profile_construction():
    study = SchedulingCaseStudy(n_runs=5, seed=0)
    spec = build_workload("Hypre", 1.0)
    profile = study.job_profile_of(spec)
    assert profile.workload == "Hypre"
    assert profile.baseline_runtime > 0
    assert profile.sensitivity is not None
    assert profile.pool_gb == pytest.approx(spec.footprint_bytes * 0.5 / 1e9, rel=1e-6)


def test_sensitive_workload_benefits_from_awareness(small_study):
    hypre = small_study.result("Hypre")
    assert hypre.mean_speedup > 0.0
    assert hypre.p75_reduction > 0.0
    assert hypre.baseline.mean > hypre.aware.mean


def test_insensitive_workload_sees_little_benefit(small_study):
    xs = small_study.result("XSBench")
    assert xs.mean_speedup < 0.01
    assert abs(xs.p75_reduction) < 0.01


def test_sensitive_beats_insensitive(small_study):
    assert small_study.result("Hypre").mean_speedup > small_study.result("XSBench").mean_speedup
    assert small_study.most_improved() == "Hypre"
    assert set(small_study.speedups()) == {"Hypre", "XSBench"}


def test_summary_structure(small_study):
    summary = small_study.result("Hypre").summary()
    assert summary["workload"] == "Hypre"
    assert set(summary["baseline"]) == {"min", "q1", "median", "q3", "max"}
    assert summary["baseline"]["q3"] >= summary["interference_aware"]["q3"]


def test_unknown_workload_lookup(small_study):
    with pytest.raises(KeyError):
        small_study.result("NAMD")


def test_sharded_study_matches_serial():
    """Sharding the per-workload studies over processes is bit-identical."""
    study = SchedulingCaseStudy(n_runs=5, seed=0)
    specs = [build_workload("Hypre", 1.0), build_workload("XSBench", 1.0)]
    serial = study.run(specs, jobs=1)
    sharded = study.run(specs, jobs=2)
    assert [r.workload for r in sharded.results] == ["Hypre", "XSBench"]
    import numpy as np

    for a, b in zip(serial.results, sharded.results):
        assert a.workload == b.workload
        # Bit-identity, not approximate agreement: the sharded run must
        # reproduce the serial execution-time arrays exactly.
        assert np.array_equal(a.baseline.times, b.baseline.times)
        assert np.array_equal(a.aware.times, b.aware.times)


def test_coupled_sweep_shards_and_memoizes():
    """The coupled-study sweep dedups repeated configs and keeps order."""
    from repro.casestudies.scheduling import CoupledSchedulingStudy

    point = {
        "n_racks": 1,
        "nodes_per_rack": 2,
        "pool_capacity_gb": 64.0,
        "seed": 0,
        "run": {"specs": [build_workload("XSBench", 1.0)], "copies": 2},
    }
    serial = CoupledSchedulingStudy.sweep([point, point], jobs=1)
    sharded = CoupledSchedulingStudy.sweep([point, point], jobs=2)
    assert serial == sharded
    assert serial[0] == serial[1]
    assert {"static", "fabric_coupled", "makespan_delta"} <= set(serial[0])
