"""Tests for the BFS data-placement case study (Section 7.1)."""

import pytest

from repro.casestudies.bfs_placement import (
    BASELINE_ORDER,
    BFSPlacementCaseStudy,
    OPTIMIZED_ORDER,
    baseline_spec,
    optimized_spec,
    reordered_spec,
)


@pytest.fixture(scope="module")
def study_result():
    return BFSPlacementCaseStudy(scale=1.0, seed=0).run(
        pool_fractions=(0.50, 0.75), with_sensitivity=True, loi_levels=(0.0, 50.0)
    )


class TestVariantSpecs:
    def test_baseline_matches_model_order(self):
        assert baseline_spec().object_names() == BASELINE_ORDER

    def test_reordered_puts_parents_first(self):
        assert reordered_spec().object_names() == OPTIMIZED_ORDER
        assert reordered_spec().object_names()[0] == "parents"
        assert reordered_spec().init_only_objects == ()

    def test_optimized_also_frees_init_temp(self):
        spec = optimized_spec()
        assert spec.object_names() == OPTIMIZED_ORDER
        assert spec.init_only_objects == ("init-temp",)

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            BFSPlacementCaseStudy().build_variant("turbo")


class TestCaseStudyResults:
    def test_all_cells_present(self, study_result):
        assert len(study_result.variants) == 6
        for config in ("50%-pooled", "75%-pooled"):
            for variant in ("baseline", "reordered", "optimized"):
                assert study_result.variant(variant, config) is not None
        with pytest.raises(KeyError):
            study_result.variant("baseline", "10%-pooled")

    def test_remote_access_drops_with_each_optimisation(self, study_result):
        """The paper's progression at 75% pooling: 99% -> 80% -> 50%."""
        for config in ("50%-pooled", "75%-pooled"):
            base = study_result.variant("baseline", config).remote_access_ratio
            reordered = study_result.variant("reordered", config).remote_access_ratio
            optimized = study_result.variant("optimized", config).remote_access_ratio
            assert base > reordered > optimized

    def test_baseline_remote_access_is_very_high_at_75_pooled(self, study_result):
        assert study_result.variant("baseline", "75%-pooled").remote_access_ratio > 0.8

    def test_optimized_halves_remote_access(self, study_result):
        reduction = study_result.remote_access_reduction("75%-pooled", "optimized")
        assert reduction > 0.4

    def test_optimisations_speed_up_the_run(self, study_result):
        for config in ("50%-pooled", "75%-pooled"):
            assert study_result.speedup(config, "reordered") > 0.0
            assert study_result.speedup(config, "optimized") > study_result.speedup(
                config, "reordered"
            ) * 0.99

    def test_remote_bytes_drop(self, study_result):
        base = study_result.variant("baseline", "75%-pooled").remote_bytes
        opt = study_result.variant("optimized", "75%-pooled").remote_bytes
        assert opt < base

    def test_optimized_version_is_less_interference_sensitive(self, study_result):
        """Figure 12 right: the optimised placement reduces sensitivity."""
        for config in ("50%-pooled", "75%-pooled"):
            base = study_result.variant("baseline", config).sensitivity
            opt = study_result.variant("optimized", config).sensitivity
            assert opt.max_performance_loss <= base.max_performance_loss + 1e-9

    def test_summary_rows_shape(self, study_result):
        rows = study_result.summary_rows()
        assert len(rows) == 6
        assert {"variant", "config", "runtime_s", "remote_access_ratio"} <= set(rows[0])
