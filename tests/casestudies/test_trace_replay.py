"""Tests for trace replay: TraceReplayStudy, its CLI path, and the fixture.

The committed fixture (``tests/data/fixtures/sacct_synthetic.txt``, a ~1k-row
anonymized synthetic ``sacct -P`` dump) must replay end to end through
``scheduling --trace`` with a conserved ingest report and no unexplained
skips — the acceptance scenario of the ingestion tentpole, and what CI's
trace-replay smoke step runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.casestudies.trace_replay import (
    TraceJobMapper,
    TraceReplayStudy,
)
from repro.cli import main
from repro.config.errors import SchedulingError
from repro.config.units import GiB, bytes_to_gb
from repro.data.slurm import TraceJob, synthesize_sacct_lines

FIXTURE = Path(__file__).resolve().parents[1] / "data" / "fixtures" / "sacct_synthetic.txt"

HEADER = "JobIDRaw|State|NNodes|ElapsedRaw|MaxRSS|Submit|Start|End\n"


def trace_job(**overrides):
    base = dict(
        job_id="1",
        state="COMPLETED",
        nnodes=4,
        elapsed_s=600.0,
        max_rss_bytes=2 * GiB,
        ave_rss_bytes=GiB,
        submit_unix=0.0,
        start_unix=60.0,
        end_unix=660.0,
    )
    base.update(overrides)
    return TraceJob(**base)


class TestTraceJobMapper:
    def test_pool_gb_is_decimal_gb_of_the_remote_share(self):
        mapper = TraceJobMapper(local_fraction=0.25)
        job = trace_job()
        profile = mapper.profile_of(job)
        assert profile.pool_gb == pytest.approx(
            bytes_to_gb(job.footprint_bytes * 0.75)
        )
        assert profile.baseline_runtime == 600.0
        assert profile.workload == "trace"

    def test_short_jobs_are_clamped_not_dropped(self):
        profile = TraceJobMapper(min_runtime_s=5.0).profile_of(
            trace_job(elapsed_s=0.25)
        )
        assert profile.baseline_runtime == 5.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(SchedulingError):
            TraceJobMapper(local_fraction=1.5)
        with pytest.raises(SchedulingError):
            TraceJobMapper(min_runtime_s=0.0)
        with pytest.raises(SchedulingError):
            TraceJobMapper(default_induced_loi=-1.0)


class TestTraceReplayStudy:
    def test_fixture_replays_end_to_end(self):
        result = TraceReplayStudy(n_racks=4, nodes_per_rack=16, seed=0).run(FIXTURE)
        summary = result.summary()
        assert summary["jobs_replayed"] > 200
        assert summary["jobs_finished"] == summary["jobs_replayed"]
        assert summary["unplaceable_jobs"] == 0
        assert summary["ingest"]["conserved"] is True
        # Zero *unexplained* skips: every skip carries a known reason.
        assert set(summary["ingest"]["skipped_by_reason"]) <= {
            "cancelled-no-runtime",
            "column-count",
        }
        assert summary["makespan_s"] > 0
        assert summary["peak_pool_demand_gb"] > 0

    def test_deterministic_in_seed(self):
        lines = list(synthesize_sacct_lines(40, seed=5))
        a = TraceReplayStudy(seed=3).run(lines).summary()
        b = TraceReplayStudy(seed=3).run(lines).summary()
        assert a == b

    def test_oversized_jobs_counted_unplaceable(self):
        lines = [
            HEADER,
            "1|COMPLETED|64|3600|100G|2024-01-01T00:00:00|2024-01-01T00:01:00|2024-01-01T01:01:00\n",
            "2|COMPLETED|1|3600|1024K|2024-01-01T00:10:00|2024-01-01T00:11:00|2024-01-01T01:11:00\n",
        ]
        result = TraceReplayStudy(pool_capacity_gb=64.0).run(lines)
        assert result.unplaceable_jobs == 1
        assert result.jobs_replayed == 1

    def test_arrivals_follow_submit_offsets(self):
        lines = [
            HEADER,
            "1|COMPLETED|1|60|1024K|2024-01-01T00:00:00|2024-01-01T00:00:10|2024-01-01T00:01:10\n",
            "2|COMPLETED|1|60|1024K|2024-01-01T01:00:00|2024-01-01T01:00:10|2024-01-01T01:01:10\n",
        ]
        result = TraceReplayStudy().run(lines)
        assert result.trace_span_s == 3600.0
        # The second job cannot have finished before it arrived.
        assert result.outcome.makespan >= 3600.0

    def test_empty_replay_raises_with_report(self):
        lines = [HEADER, "1|RUNNING|1|0|1024K|2024-01-01T00:00:00|Unknown|Unknown\n"]
        with pytest.raises(SchedulingError, match="no replayable jobs"):
            TraceReplayStudy().run(lines)

    def test_limit_and_window_thread_through(self):
        lines = list(synthesize_sacct_lines(40, seed=5))
        limited = TraceReplayStudy().run(lines, limit=5)
        assert limited.jobs_replayed == 5
        windowed = TraceReplayStudy().run(list(lines), window=(0.0, 900.0))
        assert windowed.jobs_replayed < limited.jobs_replayed + 40
        assert "outside-window" in windowed.ingest["skipped_by_reason"]


class TestTraceCLI:
    def run_json(self, capsys, *argv):
        assert main(["--json", *argv]) == 0
        return json.loads(capsys.readouterr().out)

    def test_scheduling_trace_fixture(self, capsys):
        data = self.run_json(
            capsys, "scheduling", "--trace", str(FIXTURE),
            "--racks", "4", "--nodes-per-rack", "16", "--policy", "pool-aware",
        )
        assert data["jobs_replayed"] > 200
        assert data["ingest"]["conserved"] is True

    def test_trace_limit_and_window_flags(self, capsys):
        data = self.run_json(
            capsys, "scheduling", "--trace", str(FIXTURE), "--trace-limit", "10",
        )
        assert data["jobs_replayed"] == 10
        data = self.run_json(
            capsys, "scheduling", "--trace", str(FIXTURE),
            "--trace-window", "0:3600",
        )
        assert "outside-window" in data["ingest"]["skipped_by_reason"]

    def test_trace_conflicts_with_coupled_and_faults(self, capsys):
        assert main(["scheduling", "--trace", str(FIXTURE), "--coupled"]) == 2
        assert "--trace" in capsys.readouterr().err
        assert (
            main(
                ["scheduling", "--trace", str(FIXTURE),
                 "--inject", "port-kill@5:port=0", "--overcommit"]
            )
            == 2
        )

    def test_missing_trace_file_is_a_clean_error(self, capsys):
        assert main(["scheduling", "--trace", "/nonexistent/trace.psv"]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_structural_trace_error_is_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.psv"
        bad.write_text("NotAHeader|At|All\n1|2|3\n", encoding="utf-8")
        assert main(["scheduling", "--trace", str(bad)]) == 2
        assert "trace replay failed" in capsys.readouterr().err

    def test_bad_window_spec_exits_with_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["scheduling", "--trace", str(FIXTURE), "--trace-window", "bogus"])
        assert exc.value.code == 2

    def test_window_end_before_start_rejected(self):
        with pytest.raises(SystemExit):
            main(["scheduling", "--trace", str(FIXTURE), "--trace-window", "100:50"])
