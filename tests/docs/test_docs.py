"""The documentation subsystem's guarantees: links resolve, snippets run.

The CI docs job runs the same two checks standalone
(``python tools/check_docs.py`` and ``python -m doctest docs/cli.md``);
having them in the tier-1 suite means a broken doc cannot even land locally.
"""

import doctest
import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestIntraRepoLinks:
    def test_docs_exist(self):
        for name in (
            "architecture.md",
            "cli.md",
            "benchmarks.md",
            "failure_model.md",
            "parallelism.md",
            "data.md",
        ):
            assert (ROOT / "docs" / name).exists(), f"docs/{name} is missing"

    def test_no_broken_relative_links(self):
        checker = _load_checker()
        broken = checker.broken_links(ROOT)
        assert broken == [], "broken intra-repo links: " + ", ".join(
            f"{doc.name} -> {target}" for doc, target in broken
        )

    def test_checker_catches_breakage(self, tmp_path):
        """The link checker itself works (guards against silent regressions)."""
        checker = _load_checker()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("[gone](docs/nope.md) [ok](docs/ok.md)")
        (tmp_path / "docs" / "ok.md").write_text("x")
        broken = checker.broken_links(tmp_path)
        assert [target for _, target in broken] == ["docs/nope.md"]


class TestCliReferenceSnippets:
    def test_cli_md_doctests_pass(self):
        failures, tests = doctest.testfile(
            str(ROOT / "docs" / "cli.md"),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        )
        assert tests > 0, "docs/cli.md contains no runnable snippets"
        assert failures == 0

    def test_failure_model_md_doctests_pass(self):
        """The failure-model page's worked blast-radius example reproduces."""
        failures, tests = doctest.testfile(
            str(ROOT / "docs" / "failure_model.md"),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        )
        assert tests > 0, "docs/failure_model.md contains no runnable snippets"
        assert failures == 0

    def test_parallelism_md_doctests_pass(self):
        """The sweep-engine page's determinism/fingerprint examples run."""
        failures, tests = doctest.testfile(
            str(ROOT / "docs" / "parallelism.md"),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        )
        assert tests > 0, "docs/parallelism.md contains no runnable snippets"
        assert failures == 0

    def test_data_md_doctests_pass(self):
        """The trace-replay page's worked ingestion example reproduces."""
        failures, tests = doctest.testfile(
            str(ROOT / "docs" / "data.md"),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        )
        assert tests > 0, "docs/data.md contains no runnable snippets"
        assert failures == 0

    def test_every_subcommand_is_documented(self):
        """docs/cli.md must mention each CLI subcommand by name."""
        from repro.cli import build_parser

        text = (ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if action.__class__.__name__ == "_SubParsersAction"
        )
        for name in subparsers.choices:
            assert f"`{name}`" in text, f"subcommand {name!r} undocumented in docs/cli.md"
