"""Tests for Level-3 profiling (interference sensitivity and coefficient)."""

import pytest

from repro.config.errors import ProfilerError
from repro.profiler.level3 import Level3Profiler, SensitivityCurve
from repro.sim.platform import Platform
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def profiler():
    return Level3Profiler(seed=0)


@pytest.fixture(scope="module")
def hypre_platform(hypre_spec):
    return Platform.pooled(hypre_spec.footprint_bytes, 0.5)


class TestSensitivityCurve:
    def test_requires_pooled_platform(self, profiler, hypre_spec):
        with pytest.raises(ProfilerError):
            profiler.sensitivity(hypre_spec, Platform.local_only())

    def test_curve_structure(self, profiler, hypre_spec, hypre_platform):
        curve = profiler.sensitivity(hypre_spec, hypre_platform, (0, 25, 50))
        assert curve.loi_levels == (0.0, 25.0, 50.0)
        assert curve.baseline_runtime == curve.runtimes[0]
        assert curve.relative_performance[0] == pytest.approx(1.0)

    def test_performance_degrades_with_loi(self, profiler, hypre_spec, hypre_platform):
        curve = profiler.sensitivity(hypre_spec, hypre_platform)
        rel = curve.relative_performance
        assert all(b <= a + 1e-9 for a, b in zip(rel, rel[1:]))
        assert curve.max_performance_loss > 0.02

    def test_slowdown_interpolation(self, profiler, hypre_spec, hypre_platform):
        curve = profiler.sensitivity(hypre_spec, hypre_platform, (0, 50))
        assert curve.slowdown_at(0.0) == pytest.approx(1.0)
        assert 1.0 <= curve.slowdown_at(25.0) <= curve.slowdown_at(50.0)

    def test_missing_baseline_level_is_added(self, profiler, hypre_spec, hypre_platform):
        curve = profiler.sensitivity(hypre_spec, hypre_platform, (10, 30))
        assert curve.loi_levels[0] == 0.0

    def test_curve_validation(self):
        with pytest.raises(ProfilerError):
            SensitivityCurve("w", "c", (10.0, 20.0), (1.0, 2.0))
        with pytest.raises(ProfilerError):
            SensitivityCurve("w", "c", (0.0, 20.0), (1.0,))

    def test_across_configs(self, profiler, hypre_spec):
        curves = profiler.sensitivity_across_configs(hypre_spec, (0.75, 0.25), (0, 50))
        assert set(curves) == {"75-25", "25-75"}
        # Less local capacity -> more remote access -> more sensitive.
        assert curves["25-75"].max_performance_loss >= curves["75-25"].max_performance_loss


class TestInterferenceCoefficient:
    def test_report_contents(self, profiler, hypre_spec, hypre_platform):
        report = profiler.interference_coefficient(hypre_spec, hypre_platform)
        assert report.interference_coefficient >= 1.0
        assert report.remote_bandwidth_demand > 0
        assert report.link_traffic_bytes > 0
        assert dict(report.phase_interference_coefficients).keys() == {"p1", "p2"}

    def test_memory_bound_apps_cause_more_interference(self, profiler):
        specs = [build_workload(name, 1.0) for name in ("Hypre", "XSBench")]
        reports = profiler.interference_coefficients(specs, local_fraction=0.5)
        assert (
            reports["Hypre"].interference_coefficient
            > reports["XSBench"].interference_coefficient
        )
        assert reports["XSBench"].interference_coefficient == pytest.approx(1.0, abs=0.05)

    def test_requires_pooled_platform(self, profiler, hypre_spec):
        with pytest.raises(ProfilerError):
            profiler.interference_coefficient(hypre_spec, Platform.local_only())
