"""Tests for Level-2 profiling (multi-tier access ratios)."""

import pytest

from repro.config.errors import ProfilerError
from repro.profiler.level2 import Level2Profiler
from repro.sim.platform import Platform
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def profiler():
    return Level2Profiler(seed=0)


def test_requires_pooled_platform(profiler, hypre_spec):
    with pytest.raises(ProfilerError):
        profiler.profile(hypre_spec, Platform.local_only())


def test_profile_reports_reference_points(profiler, hypre_spec):
    platform = Platform.pooled(hypre_spec.footprint_bytes, 0.5)
    profile = profiler.profile(hypre_spec, platform)
    assert profile.remote_capacity_ratio == pytest.approx(0.5, abs=0.05)
    assert profile.remote_bandwidth_ratio == pytest.approx(34 / 107, abs=0.01)
    assert profile.config_label == "50-50"
    assert 0.0 < profile.overall_remote_access_ratio < 1.0
    assert profile.phase_report("p2").label == "Hypre-p2"
    with pytest.raises(KeyError):
        profile.phase_report("p7")


def test_uniform_workload_access_tracks_capacity_ratio(profiler, hypre_spec):
    """Hypre accesses memory uniformly, so its access ratio ~= the capacity ratio."""
    for fraction in (0.75, 0.50, 0.25):
        platform = Platform.pooled(hypre_spec.footprint_bytes, fraction)
        profile = profiler.profile(hypre_spec, platform)
        p2 = profile.phase_report("p2")
        assert p2.remote_access_ratio == pytest.approx(1.0 - fraction, abs=0.08)


def test_xsbench_remote_access_stays_low(profiler, xsbench_spec):
    """The paper: XSBench stays below ~6% remote access on every configuration."""
    for fraction in (0.75, 0.50, 0.25):
        platform = Platform.pooled(xsbench_spec.footprint_bytes, fraction)
        profile = profiler.profile(xsbench_spec, platform)
        assert profile.phase_report("p2").remote_access_ratio < 0.10


def test_remote_access_grows_as_local_capacity_shrinks(profiler, bfs_spec):
    ratios = []
    for fraction in (0.75, 0.50, 0.25):
        platform = Platform.pooled(bfs_spec.footprint_bytes, fraction)
        ratios.append(profiler.profile(bfs_spec, platform).overall_remote_access_ratio)
    assert ratios[0] < ratios[1] < ratios[2]


def test_reference_band_classification(profiler, hpl_spec):
    platform = Platform.pooled(hpl_spec.footprint_bytes, 0.25)
    profile = profiler.profile(hpl_spec, platform)
    p2 = profile.phase_report("p2")
    # HPL spills heavily at 25% local: accesses exceed the bandwidth ratio.
    assert p2.above_bandwidth_reference
    assert p2.optimization_headroom > 0
    # A phase inside the band has zero headroom by definition.
    assert p2.below_capacity_reference is (p2.remote_access_ratio < p2.remote_capacity_ratio)


def test_profile_capacity_ratios_helper(profiler, xsbench_spec):
    profiles = profiler.profile_capacity_ratios(xsbench_spec, (0.75, 0.5))
    assert set(profiles) == {"75-25", "50-50"}
