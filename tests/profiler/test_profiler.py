"""Tests for the multi-level profiler facade and the pf_start/pf_stop tracer."""

import pytest

from repro.cache.events import CounterSet
from repro.config.errors import ProfilerError
from repro.profiler.profiler import MultiLevelProfiler, RegionTracer


class TestRegionTracer:
    def test_basic_region(self):
        tracer = RegionTracer()
        tracer.pf_start("kernel-a")
        tracer.advance_clock(2.5)
        region = tracer.pf_stop(CounterSet({"FLOPS": 10.0}))
        assert region.tag == "kernel-a"
        assert region.elapsed == pytest.approx(2.5)
        assert region.closed
        assert region.counters["FLOPS"] == 10.0
        assert tracer.region("kernel-a") is region

    def test_nested_start_rejected(self):
        tracer = RegionTracer()
        tracer.pf_start("a")
        with pytest.raises(ProfilerError):
            tracer.pf_start("b")

    def test_stop_without_start_rejected(self):
        with pytest.raises(ProfilerError):
            RegionTracer().pf_stop()

    def test_clock_cannot_go_backwards(self):
        with pytest.raises(ProfilerError):
            RegionTracer().advance_clock(-1.0)

    def test_total_time_accumulates_repeated_tags(self):
        tracer = RegionTracer()
        for _ in range(3):
            tracer.pf_start("loop")
            tracer.advance_clock(1.0)
            tracer.pf_stop()
        assert tracer.total_time("loop") == pytest.approx(3.0)
        assert len(tracer.regions) == 3

    def test_unknown_region_lookup(self):
        with pytest.raises(KeyError):
            RegionTracer().region("nope")


class TestMultiLevelProfiler:
    @pytest.fixture(scope="class")
    def profiler(self):
        return MultiLevelProfiler(seed=0)

    def test_level1(self, profiler, xsbench_spec):
        profile = profiler.level1(xsbench_spec)
        assert profile.workload == "XSBench"
        assert len(profile.phases) == 2

    def test_level2(self, profiler, xsbench_spec):
        profile = profiler.level2(xsbench_spec, local_fraction=0.5)
        assert profile.config_label == "50-50"
        assert profile.overall_remote_access_ratio < 0.10

    def test_level2_sweep(self, profiler, xsbench_spec):
        profiles = profiler.level2_sweep(xsbench_spec, (0.75, 0.25))
        assert set(profiles) == {"75-25", "25-75"}

    def test_level3(self, profiler, xsbench_spec):
        report = profiler.level3(xsbench_spec, local_fraction=0.5)
        assert report.interference_coefficient >= 1.0
        assert report.sensitivity.loi_levels[0] == 0.0

    def test_level3_custom_levels(self, profiler, xsbench_spec):
        report = profiler.level3(xsbench_spec, loi_levels=(0, 40))
        assert report.sensitivity.loi_levels == (0.0, 40.0)

    def test_pf_api_delegates_to_tracer(self, profiler):
        profiler.pf_start("tagged")
        region = profiler.pf_stop()
        assert region.tag == "tagged"
