"""Tests for Level-1 profiling (general characteristics)."""

import numpy as np
import pytest

from repro.profiler.level1 import Level1Profiler
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def profiler():
    return Level1Profiler(seed=0)


@pytest.fixture(scope="module")
def hypre_profile(profiler):
    return profiler.profile(build_workload("Hypre", 1.0))


@pytest.fixture(scope="module")
def xsbench_profile(profiler):
    return profiler.profile(build_workload("XSBench", 1.0))


class TestPhaseCharacteristics:
    def test_phases_reported_in_order(self, hypre_profile):
        assert [p.phase for p in hypre_profile.phases] == ["p1", "p2"]
        assert hypre_profile.total_runtime > 0
        assert hypre_profile.peak_rss_gib > 0

    def test_arithmetic_intensity_matches_spec(self, hypre_profile):
        spec = build_workload("Hypre", 1.0)
        p2 = hypre_profile.phases[-1]
        assert p2.arithmetic_intensity == pytest.approx(
            spec.phase("p2").arithmetic_intensity, rel=1e-6
        )

    def test_bandwidth_below_platform_peak(self, hypre_profile):
        for phase in hypre_profile.phases:
            assert phase.achieved_bandwidth_gbs <= 73.0 * 1.01

    def test_roofline_points_format(self, hypre_profile):
        points = hypre_profile.phase_points()
        assert points[0][0] == "Hypre-p1"
        assert all(len(p) == 3 for p in points)


class TestPrefetchReport:
    def test_prefetch_metrics_in_range(self, hypre_profile, xsbench_profile):
        for profile in (hypre_profile, xsbench_profile):
            report = profile.prefetch
            assert 0.0 <= report.accuracy <= 1.0
            assert 0.0 <= report.coverage <= 1.0
            assert report.excess_traffic >= 0.0

    def test_hypre_is_far_more_prefetchable_than_xsbench(self, hypre_profile, xsbench_profile):
        assert hypre_profile.prefetch.coverage > 0.6
        assert xsbench_profile.prefetch.coverage < 0.1
        assert hypre_profile.prefetch.performance_gain > xsbench_profile.prefetch.performance_gain

    def test_traffic_with_prefetch_not_lower_than_without(self, hypre_profile):
        report = hypre_profile.prefetch
        assert report.traffic_with_prefetch >= report.traffic_without_prefetch * 0.999


class TestScalingCurves:
    def test_curves_for_three_inputs(self, profiler):
        from repro.workloads import get_model

        model = get_model("Hypre")
        curves = profiler.scaling_curves(model.inputs())
        assert len(curves) == 3
        for curve in curves.values():
            assert curve.access_pct[-1] == pytest.approx(100.0)

    def test_hypre_uniform_vs_xsbench_skewed(self, hypre_profile, xsbench_profile):
        assert hypre_profile.scaling_curve.skewness < 0.2
        assert xsbench_profile.scaling_curve.skewness > 0.5
        # XSBench: a small footprint share captures most accesses.
        assert xsbench_profile.scaling_curve.access_share_at(0.2) > 0.6


class TestPrefetchTimeline:
    def test_timeline_with_and_without_prefetch(self, profiler):
        spec = build_workload("NekRS", 1.0)
        timelines = profiler.prefetch_timeline(spec, steps_per_phase=20)
        assert set(timelines) == {"with-prefetch", "without-prefetch"}
        with_t, with_lines = timelines["with-prefetch"]
        without_t, without_lines = timelines["without-prefetch"]
        assert len(with_t) == len(with_lines) == 40
        # Prefetching makes the run faster while moving at least as much data.
        assert with_t[-1] < without_t[-1]
        assert with_lines.sum() >= without_lines.sum() * 0.999
