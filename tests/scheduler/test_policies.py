"""Tests for placement policies."""

import numpy as np
import pytest

from repro.config.errors import SchedulingError
from repro.profiler.level3 import SensitivityCurve
from repro.scheduler.cluster import Cluster
from repro.scheduler.job import Job, JobProfile
from repro.scheduler.policies import (
    InterferenceAwarePlacement,
    LeastLoadedPlacement,
    PoolAwarePlacement,
    RandomPlacement,
    make_policy,
)


def sensitive_profile(name="sensitive", induced=5.0):
    curve = SensitivityCurve(name, "50-50", (0.0, 50.0), (100.0, 130.0))
    return JobProfile(workload=name, baseline_runtime=100.0, sensitivity=curve,
                      induced_loi=induced, pool_gb=10.0)


def insensitive_profile(name="insensitive", induced=30.0):
    return JobProfile(workload=name, baseline_runtime=100.0, induced_loi=induced, pool_gb=10.0)


@pytest.fixture()
def cluster():
    return Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=1000.0)


def test_random_placement_picks_a_candidate(cluster, rng):
    policy = RandomPlacement()
    rack = policy.choose_rack(cluster, Job(0, insensitive_profile()), rng)
    assert rack in cluster.racks


def test_random_placement_returns_none_when_full(rng):
    cluster = Cluster.build(n_racks=1, nodes_per_rack=1)
    cluster.racks[0].place(Job(0, insensitive_profile()))
    assert RandomPlacement().choose_rack(cluster, Job(1, insensitive_profile()), rng) is None


def test_least_loaded_prefers_quieter_rack(cluster, rng):
    noisy = Job(0, insensitive_profile(induced=40.0))
    cluster.racks[0].place(noisy)
    rack = LeastLoadedPlacement().choose_rack(cluster, Job(1, insensitive_profile()), rng)
    assert rack is cluster.racks[1]


def test_interference_aware_keeps_sensitive_jobs_away_from_noise(cluster, rng):
    policy = InterferenceAwarePlacement(max_seen_loi=20.0)
    # Rack 0 carries heavy interference.
    cluster.racks[0].place(Job(0, insensitive_profile(induced=45.0)))
    rack = policy.choose_rack(cluster, Job(1, sensitive_profile()), rng)
    assert rack is cluster.racks[1]


def test_interference_aware_protects_running_sensitive_jobs(cluster, rng):
    policy = InterferenceAwarePlacement(max_seen_loi=20.0)
    # A sensitive job runs alone on rack 0.
    cluster.racks[0].place(Job(0, sensitive_profile(induced=5.0)))
    # Rack 1 hosts moderate noise, still below the threshold for newcomers.
    cluster.racks[1].place(Job(1, insensitive_profile(induced=15.0)))
    noisy_newcomer = Job(2, insensitive_profile(induced=30.0))
    rack = policy.choose_rack(cluster, noisy_newcomer, rng)
    # Placing the noisy job next to the sensitive one would push it over the
    # limit, so the policy prefers rack 1 even though it is busier.
    assert rack is cluster.racks[1]


def test_interference_aware_strict_mode_waits(cluster, rng):
    policy = InterferenceAwarePlacement(max_seen_loi=10.0, strict=True)
    cluster.racks[0].place(Job(0, insensitive_profile(induced=45.0)))
    cluster.racks[1].place(Job(1, insensitive_profile(induced=45.0)))
    assert policy.choose_rack(cluster, Job(2, sensitive_profile()), rng) is None


def test_interference_aware_fallback_when_not_strict(cluster, rng):
    policy = InterferenceAwarePlacement(max_seen_loi=10.0, strict=False)
    cluster.racks[0].place(Job(0, insensitive_profile(induced=45.0)))
    cluster.racks[1].place(Job(1, insensitive_profile(induced=30.0)))
    rack = policy.choose_rack(cluster, Job(2, sensitive_profile()), rng)
    assert rack is cluster.racks[1]  # least-loaded fallback


def test_pool_aware_prefers_pool_capacity_headroom(cluster, rng):
    policy = PoolAwarePlacement(capacity_weight=1.0)
    # Rack 0's pool is nearly full.
    cluster.racks[0].pool_used_gb = 900.0
    rack = policy.choose_rack(cluster, Job(0, insensitive_profile()), rng)
    assert rack is cluster.racks[1]


def test_pool_aware_prefers_calm_port(cluster, rng):
    policy = PoolAwarePlacement(capacity_weight=0.0)
    # Rack 0's port runs hot, pools are equally empty.
    cluster.racks[0].place(Job(0, insensitive_profile(induced=45.0)))
    rack = policy.choose_rack(cluster, Job(1, insensitive_profile()), rng)
    assert rack is cluster.racks[1]


def test_pool_aware_avoids_hot_ports_until_forced(rng):
    cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=1000.0)
    policy = PoolAwarePlacement(max_port_utilization=0.5, capacity_weight=1.0)
    # Rack 1 has the emptier pool but a port already at 60% utilisation.
    cluster.racks[0].pool_used_gb = 500.0
    cluster.racks[1].place(Job(0, insensitive_profile(induced=60.0)))
    rack = policy.choose_rack(cluster, Job(1, insensitive_profile(induced=0.0)), rng)
    assert rack is cluster.racks[0]
    # When every port is hot the policy degrades to best-score placement
    # instead of stalling the job.
    cluster.racks[0].place(Job(2, insensitive_profile(induced=70.0)))
    rack = policy.choose_rack(cluster, Job(3, insensitive_profile(induced=0.0)), rng)
    assert rack is not None


def test_pool_aware_returns_none_when_nothing_fits(rng):
    cluster = Cluster.build(n_racks=1, nodes_per_rack=1)
    cluster.racks[0].place(Job(0, insensitive_profile()))
    policy = PoolAwarePlacement()
    assert policy.choose_rack(cluster, Job(1, insensitive_profile()), rng) is None


def test_pool_aware_validation():
    with pytest.raises(SchedulingError):
        PoolAwarePlacement(capacity_weight=1.5)
    with pytest.raises(SchedulingError):
        PoolAwarePlacement(max_port_utilization=0.0)


def test_make_policy_factory():
    assert isinstance(make_policy("random"), RandomPlacement)
    assert isinstance(make_policy("interference-aware", max_seen_loi=15.0), InterferenceAwarePlacement)
    assert isinstance(make_policy("pool-aware", capacity_weight=0.3), PoolAwarePlacement)
    with pytest.raises(SchedulingError):
        make_policy("fifo")
