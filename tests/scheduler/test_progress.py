"""Tests for the progress models coupling the scheduler to the fabric."""

import numpy as np
import pytest

from repro.config.errors import SchedulingError
from repro.config.units import MiB
from repro.memory.objects import MemoryObject
from repro.scheduler import (
    Cluster,
    ClusterSimulator,
    FabricCoupledPlacement,
    FabricCoupledProgress,
    LeastLoadedPlacement,
    RandomPlacement,
    StaticCurveProgress,
    fabric_baseline_runtime,
    fabric_job_profile,
    make_progress_model,
)
from repro.scheduler.job import Job, JobProfile
from repro.trace.patterns import SequentialPattern
from repro.workloads.base import PhaseSpec, WorkloadSpec


def stream_spec(name="stream", dram_mib=60_000):
    """A small synthetic workload streaming most traffic from the pool."""
    data = MemoryObject(name="data", size_bytes=256 * MiB, pattern=SequentialPattern())
    phases = (
        PhaseSpec(
            name="p1",
            flops=2e10,
            dram_bytes=dram_mib * MiB,
            object_traffic={"data": 1.0},
            mlp=8.0,
        ),
    )
    return WorkloadSpec(
        name=name, input_label="t1", scale=1.0, objects=(data,), phases=phases
    )


@pytest.fixture(scope="module")
def spec():
    return stream_spec()


@pytest.fixture(scope="module")
def profile(spec):
    return fabric_job_profile(spec, local_fraction=0.5)


def coupled_progress(spec, **kwargs):
    return FabricCoupledProgress(workloads={spec.name: spec}, **kwargs)


class TestStaticCurveProgress:
    def _profiles(self):
        from repro.profiler.level3 import SensitivityCurve

        curve = SensitivityCurve(
            workload="sensitive",
            config_label="50-50",
            loi_levels=(0.0, 50.0),
            runtimes=(100.0, 140.0),
        )
        sensitive = JobProfile(
            workload="sensitive",
            baseline_runtime=100.0,
            sensitivity=curve,
            induced_loi=5.0,
            pool_gb=10.0,
        )
        noisy = JobProfile(
            workload="noisy", baseline_runtime=100.0, induced_loi=45.0, pool_gb=10.0
        )
        return [sensitive, noisy, sensitive, noisy]

    def test_default_model_is_static_curve(self):
        simulator = ClusterSimulator(Cluster.build(), RandomPlacement())
        assert simulator.progress.name == "static-curve"

    def test_explicit_static_matches_default(self):
        profiles = self._profiles()
        default = ClusterSimulator(
            Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=500.0),
            RandomPlacement(),
            seed=3,
        ).run(profiles)
        explicit = ClusterSimulator(
            Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=500.0),
            RandomPlacement(),
            seed=3,
            progress=StaticCurveProgress(),
        ).run(profiles)
        for a, b in zip(default.jobs, explicit.jobs):
            assert a.finish_time == b.finish_time
        assert default.makespan == explicit.makespan

    def test_unbound_model_raises(self):
        with pytest.raises(SchedulingError):
            StaticCurveProgress().rates(0.0)


class TestFabricCoupledProgress:
    def test_agrees_with_static_when_uncontended(self, spec, profile):
        """One job per rack: no port sharing, so both models price rate 1."""
        profiles = [profile] * 3

        def cluster():
            return Cluster.build(n_racks=3, nodes_per_rack=1, pool_capacity_gb=64.0)

        static = ClusterSimulator(
            cluster(), LeastLoadedPlacement(), seed=0, progress=StaticCurveProgress()
        ).run(profiles)
        coupled = ClusterSimulator(
            cluster(), LeastLoadedPlacement(), seed=0, progress=coupled_progress(spec)
        ).run(profiles)
        assert coupled.makespan == pytest.approx(static.makespan, rel=1e-9)
        for a, b in zip(static.jobs, coupled.jobs):
            assert b.finish_time == pytest.approx(a.finish_time, rel=1e-9)

    def test_diverges_from_static_under_pool_pressure(self, spec, profile):
        """Three tenants on one shared port: only the coupled model sees the
        emergent contention (the acceptance regression of the ISSUE)."""
        profiles = [profile] * 3

        def cluster():
            return Cluster.build(n_racks=1, nodes_per_rack=3, pool_capacity_gb=64.0)

        static = ClusterSimulator(
            cluster(), RandomPlacement(), seed=0, progress=StaticCurveProgress()
        ).run(profiles)
        coupled = ClusterSimulator(
            cluster(), RandomPlacement(), seed=0, progress=coupled_progress(spec)
        ).run(profiles)
        # The profiles carry no sensitivity curve, so the static proxy prices
        # every co-location at 1; the fabric resolves real port contention.
        assert static.mean_slowdown == pytest.approx(1.0)
        assert coupled.mean_slowdown > 1.2
        assert coupled.makespan > static.makespan * 1.2

    def test_matches_batch_rack_cosimulation(self, spec, profile):
        """Scheduling 3 identical jobs onto one rack reproduces the batch
        RackCoSimulator's makespan: same fabric, same epochs, same answer."""
        from repro.fabric import RackCoSimulator, TenantSpec

        batch = RackCoSimulator(
            [
                TenantSpec(name=f"t{i}", workload=spec, local_fraction=0.5)
                for i in range(3)
            ]
        ).run()
        cluster = Cluster.build(n_racks=1, nodes_per_rack=3, pool_capacity_gb=64.0)
        coupled = ClusterSimulator(
            cluster, RandomPlacement(), seed=0, progress=coupled_progress(spec)
        ).run([profile] * 3)
        assert coupled.makespan == pytest.approx(batch.makespan, rel=1e-6)

    def test_isolated_ports_remove_the_divergence(self, spec, profile):
        """One pool port per node: emergent contention disappears again."""
        cluster = Cluster.build(n_racks=1, nodes_per_rack=3, pool_capacity_gb=64.0)
        coupled = ClusterSimulator(
            cluster,
            RandomPlacement(),
            seed=0,
            progress=coupled_progress(spec, ports_per_rack=3),
        ).run([profile] * 3)
        assert coupled.mean_slowdown == pytest.approx(1.0, rel=1e-6)

    def test_deterministic_given_seed(self, spec, profile):
        def once():
            cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=64.0)
            return ClusterSimulator(
                cluster, RandomPlacement(), seed=7, progress=coupled_progress(spec)
            ).run([profile] * 4)

        a, b = once(), once()
        for ja, jb in zip(a.jobs, b.jobs):
            assert ja.finish_time == jb.finish_time
        assert a.makespan == b.makespan

    def test_arrivals_resync_fabric_clocks(self, spec, profile):
        """A job arriving after an idle gap is coupled at the right time."""
        cluster = Cluster.build(n_racks=1, nodes_per_rack=2, pool_capacity_gb=64.0)
        baseline = fabric_baseline_runtime(spec, local_fraction=0.5)
        late_arrival = baseline * 2.0
        outcome = ClusterSimulator(
            cluster, RandomPlacement(), seed=0, progress=coupled_progress(spec)
        ).run([profile] * 2, arrivals=[0.0, late_arrival])
        first, second = outcome.jobs
        # No overlap: both run alone and see no contention.
        assert first.finish_time == pytest.approx(baseline, rel=1e-6)
        assert second.start_time >= late_arrival
        assert second.slowdown == pytest.approx(1.0, rel=1e-6)

    def test_unresolvable_workload_raises(self):
        profile = JobProfile(workload="no-such-app", baseline_runtime=10.0, pool_gb=1.0)
        cluster = Cluster.build(n_racks=1, nodes_per_rack=1, pool_capacity_gb=64.0)
        simulator = ClusterSimulator(
            cluster, RandomPlacement(), seed=0, progress=FabricCoupledProgress()
        )
        with pytest.raises(SchedulingError):
            simulator.run([profile])

    def test_registry_workloads_resolve_by_name(self):
        """The paper's applications couple without an explicit mapping."""
        from repro.workloads.registry import build_workload

        spec = build_workload("XSBench", 1.0)
        profile = fabric_job_profile(spec, local_fraction=0.5)
        cluster = Cluster.build(n_racks=1, nodes_per_rack=2, pool_capacity_gb=2048.0)
        outcome = ClusterSimulator(
            cluster, RandomPlacement(), seed=0, progress=FabricCoupledProgress()
        ).run([profile] * 2)
        assert all(job.finished for job in outcome.jobs)
        assert outcome.mean_slowdown >= 1.0

    def test_make_progress_model(self):
        assert make_progress_model("static").name == "static-curve"
        assert make_progress_model("fabric").name == "fabric-coupled"
        with pytest.raises(SchedulingError):
            make_progress_model("nope")


class TestFabricCoupledPlacement:
    def test_prefers_the_calm_rack(self, spec, profile):
        """With one rack already loaded, the policy picks the idle one based
        on live fabric pressure, not submission-time hints."""
        progress = coupled_progress(spec)
        cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=64.0)
        progress.bind(cluster)
        busy = cluster.racks[0]
        first = Job(job_id=0, profile=profile)
        busy.place(first)
        first.start_time = 0.0
        progress.job_started(first, busy, 0.0)

        policy = FabricCoupledPlacement(progress=progress)
        rng = np.random.default_rng(0)
        chosen = policy.choose_rack(cluster, Job(job_id=1, profile=profile), rng)
        assert chosen is not None and chosen.rack_id == 1

    def test_falls_back_to_loi_without_progress_model(self, profile):
        cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=64.0)
        policy = FabricCoupledPlacement()
        rng = np.random.default_rng(0)
        assert policy.choose_rack(cluster, Job(job_id=0, profile=profile), rng) is not None

    def test_simulation_with_coupled_policy_and_progress(self, spec, profile):
        progress = coupled_progress(spec)
        cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=64.0)
        outcome = ClusterSimulator(
            cluster,
            FabricCoupledPlacement(progress=progress),
            seed=0,
            progress=progress,
        ).run([profile] * 3)
        assert all(job.finished for job in outcome.jobs)
        # Two jobs share a rack, one runs alone: the shared pair is slower.
        slowdowns = sorted(job.slowdown for job in outcome.jobs)
        assert slowdowns[0] == pytest.approx(1.0, rel=1e-3)
        assert slowdowns[-1] > 1.0


class TestCoupledSchedulingStudy:
    def test_static_and_coupled_schedules_differ_under_contention(self, spec):
        from repro.casestudies.scheduling import CoupledSchedulingStudy

        study = CoupledSchedulingStudy(
            n_racks=1, nodes_per_rack=3, pool_capacity_gb=64.0, seed=0
        )
        result = study.run(specs=[spec], copies=3)
        assert result.coupled.makespan > result.static.makespan
        assert result.max_finish_time_shift > 0
        summary = result.summary()
        assert {"static", "fabric_coupled", "makespan_delta"} <= set(summary)


class TestUnitsConvention:
    """Regression pin: scheduler-layer capacities are decimal GB end to end."""

    def test_fabric_job_profile_pool_gb_is_decimal(self, spec):
        from repro.config.units import bytes_to_gb

        profile = fabric_job_profile(spec, local_fraction=0.25)
        assert profile.pool_gb == pytest.approx(
            bytes_to_gb(spec.footprint_bytes * 0.75)
        )

    def test_tenant_lease_round_trips_pool_gb(self, spec, profile):
        # The GB->bytes conversion of the tenant lease must invert the
        # bytes->GB conversion of the profile, not mix in a binary unit.
        model = coupled_progress(spec)
        job = Job(job_id=1, profile=profile)
        tenant = model._tenant_spec(job, arrival=0.0)
        assert tenant.lease_bytes == int(round(profile.pool_gb * 1e9))
