"""Tests for the co-location study and the cluster scheduling simulator."""

import numpy as np
import pytest

from repro.config.errors import SchedulingError
from repro.profiler.level3 import SensitivityCurve
from repro.scheduler.cluster import Cluster
from repro.scheduler.job import JobProfile
from repro.scheduler.policies import InterferenceAwarePlacement, RandomPlacement
from repro.scheduler.simulator import ClusterSimulator, CoLocationStudy


def curve(loss_at_50=0.2, baseline=120.0, name="app"):
    return SensitivityCurve(
        workload=name,
        config_label="50-50",
        loi_levels=(0.0, 50.0),
        runtimes=(baseline, baseline * (1 + loss_at_50)),
    )


class TestCoLocationStudy:
    def test_zero_interference_returns_baseline(self):
        study = CoLocationStudy(120.0, curve(0.2))
        time = study.run_once(0.0, 0.0, np.random.default_rng(0))
        assert time == pytest.approx(120.0)

    def test_constant_interference_matches_slowdown(self):
        study = CoLocationStudy(120.0, curve(0.2))
        time = study.run_once(50.0, 50.0, np.random.default_rng(0))
        assert time == pytest.approx(120.0 * 1.2, rel=1e-6)

    def test_narrower_loi_range_is_faster_and_less_variable(self):
        study = CoLocationStudy(120.0, curve(0.25))
        outcomes = study.compare_policies(n_runs=60, seed=1)
        baseline = outcomes["baseline"]
        aware = outcomes["interference-aware"]
        assert aware.mean < baseline.mean
        assert aware.percentile(75) <= baseline.percentile(75)
        assert aware.variability <= baseline.variability + 1e-9

    def test_insensitive_workload_sees_no_benefit(self):
        study = CoLocationStudy(100.0, curve(0.0))
        outcomes = study.compare_policies(n_runs=20, seed=2)
        assert outcomes["baseline"].mean == pytest.approx(outcomes["interference-aware"].mean)

    def test_results_are_deterministic_given_seed(self):
        study = CoLocationStudy(100.0, curve(0.3))
        a = study.run_many(10, 0, 50, "baseline", seed=5)
        b = study.run_many(10, 0, 50, "baseline", seed=5)
        np.testing.assert_allclose(a.times, b.times)

    def test_five_number_summary(self):
        study = CoLocationStudy(100.0, curve(0.3))
        result = study.run_many(30, 0, 50, "baseline", seed=3)
        summary = result.five_number_summary()
        assert summary["min"] <= summary["q1"] <= summary["median"] <= summary["q3"] <= summary["max"]
        assert result.median == summary["median"]

    def test_validation(self):
        with pytest.raises(SchedulingError):
            CoLocationStudy(0.0, curve())
        with pytest.raises(SchedulingError):
            CoLocationStudy(10.0, curve(), interval=0.0)
        study = CoLocationStudy(10.0, curve())
        with pytest.raises(SchedulingError):
            study.run_once(30.0, 10.0, np.random.default_rng(0))
        with pytest.raises(SchedulingError):
            study.run_many(0, 0, 50, "x")


class TestClusterSimulator:
    def _profiles(self):
        sensitive = JobProfile(
            workload="sensitive",
            baseline_runtime=100.0,
            sensitivity=curve(0.4, 100.0, "sensitive"),
            induced_loi=5.0,
            pool_gb=10.0,
        )
        noisy = JobProfile(
            workload="noisy", baseline_runtime=100.0, induced_loi=45.0, pool_gb=10.0
        )
        return [sensitive, noisy, sensitive, noisy]

    def test_all_jobs_finish(self):
        cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=500.0)
        outcome = ClusterSimulator(cluster, RandomPlacement(), seed=0).run(self._profiles())
        assert all(job.finished for job in outcome.jobs)
        assert outcome.makespan > 0
        assert outcome.mean_slowdown >= 1.0

    def test_interference_aware_policy_reduces_slowdown(self):
        random_outcome = ClusterSimulator(
            Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=500.0),
            RandomPlacement(),
            seed=3,
        ).run(self._profiles())
        aware_outcome = ClusterSimulator(
            Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=500.0),
            InterferenceAwarePlacement(max_seen_loi=20.0),
            seed=3,
        ).run(self._profiles())
        assert aware_outcome.mean_slowdown <= random_outcome.mean_slowdown + 1e-9
        assert aware_outcome.p75_slowdown <= random_outcome.p75_slowdown + 1e-9

    def test_queueing_when_cluster_smaller_than_job_stream(self):
        cluster = Cluster.build(n_racks=1, nodes_per_rack=1, pool_capacity_gb=500.0)
        outcome = ClusterSimulator(cluster, RandomPlacement(), seed=0).run(self._profiles()[:3])
        assert all(job.finished for job in outcome.jobs)
        # Jobs ran one after another, so some had to wait.
        assert outcome.mean_wait > 0
        assert outcome.makespan >= 300.0 * 0.99

    def test_arrivals_are_respected(self):
        cluster = Cluster.build(n_racks=1, nodes_per_rack=2, pool_capacity_gb=500.0)
        profiles = self._profiles()[:2]
        outcome = ClusterSimulator(cluster, RandomPlacement(), seed=0).run(
            profiles, arrivals=[0.0, 50.0]
        )
        late_job = outcome.jobs[1]
        assert late_job.start_time >= 50.0

    def test_per_workload_slowdowns_grouping(self):
        cluster = Cluster.build(n_racks=2, nodes_per_rack=2, pool_capacity_gb=500.0)
        outcome = ClusterSimulator(cluster, RandomPlacement(), seed=1).run(self._profiles())
        grouped = outcome.per_workload_slowdowns()
        assert set(grouped) == {"sensitive", "noisy"}
        assert len(grouped["sensitive"]) == 2

    def test_validation(self):
        simulator = ClusterSimulator(Cluster.build(), RandomPlacement())
        with pytest.raises(SchedulingError):
            simulator.run([])
        with pytest.raises(SchedulingError):
            simulator.run(self._profiles(), arrivals=[0.0])
