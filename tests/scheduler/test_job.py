"""Tests for job profiles and job bookkeeping."""

import pytest

from repro.config.errors import SchedulingError
from repro.profiler.level3 import SensitivityCurve
from repro.scheduler.job import Job, JobProfile


def curve(loss_at_50=0.2):
    return SensitivityCurve(
        workload="app",
        config_label="50-50",
        loi_levels=(0.0, 50.0),
        runtimes=(100.0, 100.0 * (1 + loss_at_50)),
    )


class TestJobProfile:
    def test_slowdown_uses_sensitivity_curve(self):
        profile = JobProfile(workload="app", baseline_runtime=100.0, sensitivity=curve(0.2))
        assert profile.slowdown_at(0.0) == pytest.approx(1.0)
        assert profile.slowdown_at(50.0) == pytest.approx(1.2)
        assert profile.slowdown_at(25.0) == pytest.approx(1.1)
        assert profile.runtime_at(50.0) == pytest.approx(120.0)

    def test_without_curve_job_is_insensitive(self):
        profile = JobProfile(workload="app", baseline_runtime=100.0)
        assert profile.slowdown_at(50.0) == 1.0

    def test_validation(self):
        with pytest.raises(SchedulingError):
            JobProfile(workload="x", baseline_runtime=0.0)
        with pytest.raises(SchedulingError):
            JobProfile(workload="x", baseline_runtime=1.0, interference_coefficient=0.5)
        with pytest.raises(SchedulingError):
            JobProfile(workload="x", baseline_runtime=1.0, induced_loi=-1.0)
        with pytest.raises(SchedulingError):
            JobProfile(workload="x", baseline_runtime=1.0, pool_gb=-1.0)


class TestJob:
    def test_lifecycle_metrics(self):
        job = Job(job_id=0, profile=JobProfile(workload="a", baseline_runtime=50.0), submit_time=5.0)
        assert not job.started and not job.finished
        assert job.execution_time == 0.0 and job.slowdown == 1.0
        job.start_time = 10.0
        job.finish_time = 70.0
        assert job.started and job.finished
        assert job.wait_time == pytest.approx(5.0)
        assert job.execution_time == pytest.approx(60.0)
        assert job.slowdown == pytest.approx(1.2)
