"""Tests for the rack/cluster topology."""

import pytest

from repro.config.errors import SchedulingError
from repro.scheduler.cluster import Cluster
from repro.scheduler.job import Job, JobProfile


def profile(name="app", runtime=100.0, induced=10.0, pool=64.0):
    return JobProfile(
        workload=name, baseline_runtime=runtime, induced_loi=induced, pool_gb=pool
    )


def test_cluster_build_topology():
    cluster = Cluster.build(n_racks=2, nodes_per_rack=4)
    assert cluster.n_nodes == 8
    assert cluster.free_nodes == 8
    assert len(cluster.racks) == 2
    node_ids = [n.node_id for rack in cluster.racks for n in rack.nodes]
    assert node_ids == list(range(8))


def test_cluster_build_validation():
    with pytest.raises(SchedulingError):
        Cluster.build(n_racks=0)


def test_place_and_release():
    cluster = Cluster.build(n_racks=1, nodes_per_rack=2, pool_capacity_gb=100.0)
    rack = cluster.racks[0]
    job = Job(job_id=0, profile=profile(pool=60.0))
    node = rack.place(job)
    assert node.busy
    assert job.assigned_rack == 0
    assert rack.pool_free_gb == pytest.approx(40.0)
    assert cluster.rack_of(job) is rack
    rack.release(job)
    assert not node.busy
    assert rack.pool_free_gb == pytest.approx(100.0)


def test_can_host_respects_nodes_and_pool():
    cluster = Cluster.build(n_racks=1, nodes_per_rack=1, pool_capacity_gb=100.0)
    rack = cluster.racks[0]
    rack.place(Job(job_id=0, profile=profile(pool=90.0)))
    # No free node left.
    assert not rack.can_host(Job(job_id=1, profile=profile(pool=1.0)))
    with pytest.raises(SchedulingError):
        rack.place(Job(job_id=2, profile=profile(pool=1.0)))


def test_pool_capacity_blocks_placement():
    cluster = Cluster.build(n_racks=1, nodes_per_rack=4, pool_capacity_gb=100.0)
    rack = cluster.racks[0]
    rack.place(Job(job_id=0, profile=profile(pool=80.0)))
    assert not rack.can_host(Job(job_id=1, profile=profile(pool=50.0)))
    assert rack.can_host(Job(job_id=2, profile=profile(pool=10.0)))


def test_aggregate_loi_sums_running_jobs():
    cluster = Cluster.build(n_racks=1, nodes_per_rack=3, pool_capacity_gb=1000.0)
    rack = cluster.racks[0]
    a = Job(job_id=0, profile=profile(induced=15.0))
    b = Job(job_id=1, profile=profile(induced=25.0))
    rack.place(a)
    rack.place(b)
    assert rack.aggregate_loi() == pytest.approx(40.0)
    assert rack.aggregate_loi(excluding=a) == pytest.approx(25.0)


def test_aggregate_loi_capped_at_100():
    cluster = Cluster.build(n_racks=1, nodes_per_rack=4, pool_capacity_gb=1000.0)
    rack = cluster.racks[0]
    for i in range(4):
        rack.place(Job(job_id=i, profile=profile(induced=40.0)))
    assert rack.aggregate_loi() == 100.0


def test_release_unknown_job_rejected():
    cluster = Cluster.build(n_racks=1, nodes_per_rack=1)
    with pytest.raises(SchedulingError):
        cluster.racks[0].release(Job(job_id=9, profile=profile()))


def test_rack_of_unplaced_job_rejected():
    cluster = Cluster.build()
    with pytest.raises(SchedulingError):
        cluster.rack_of(Job(job_id=0, profile=profile()))


def test_candidate_racks():
    cluster = Cluster.build(n_racks=2, nodes_per_rack=1, pool_capacity_gb=100.0)
    big = Job(job_id=0, profile=profile(pool=200.0))
    assert cluster.candidate_racks(big) == []
    small = Job(job_id=1, profile=profile(pool=10.0))
    assert len(cluster.candidate_racks(small)) == 2
