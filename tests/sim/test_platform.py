"""Tests for platform assembly."""

import pytest

from repro.config import ConfigurationError, SKYLAKE_EMULATION
from repro.config.units import GiB
from repro.interconnect.queueing import MD1QueueingModel
from repro.sim.platform import Platform


def test_local_only_platform():
    platform = Platform.local_only()
    assert platform.tier_config is None
    assert platform.label == "local-only"
    assert not platform.is_pooled
    config = platform.tier_config_for(4 * GiB)
    assert config.n_tiers == 1
    assert config.total_capacity >= 4 * GiB


def test_pooled_platform_labels_and_ratios():
    platform = Platform.pooled(4 * GiB, 0.25)
    assert platform.label == "25-75"
    assert platform.is_pooled
    assert platform.tier_config.remote_capacity_ratio == pytest.approx(0.75, abs=0.05)


def test_pooled_platform_tier_config_for_checks_capacity():
    platform = Platform.pooled(2 * GiB, 0.5)
    with pytest.raises(ConfigurationError):
        platform.tier_config_for(100 * GiB)
    assert platform.tier_config_for(2 * GiB) is platform.tier_config


def test_explicit_platform():
    platform = Platform.explicit(2 * GiB, 6 * GiB, label="custom")
    assert platform.label == "custom"
    assert platform.tier_config.remote_capacity_ratio == pytest.approx(0.75)


def test_default_label_from_ratios():
    platform = Platform.explicit(GiB, GiB)
    assert platform.label == "50-50"


def test_custom_queueing_model_propagates():
    platform = Platform.pooled(GiB, 0.5, queueing=MD1QueueingModel())
    assert isinstance(platform.link.queueing, MD1QueueingModel)


def test_tier_config_for_rejects_bad_footprint():
    with pytest.raises(ConfigurationError):
        Platform.local_only().tier_config_for(0)


def test_describe():
    info = Platform.pooled(GiB, 0.5).describe()
    assert info["label"] == "50-50"
    assert info["tiers"] is not None
    assert info["testbed"]["local_bandwidth_gbs"] == pytest.approx(73.0)
