"""Tests for interference sources."""

import pytest

from repro.config import ConfigurationError, SKYLAKE_EMULATION
from repro.interconnect.link import RemoteLink
from repro.sim.interference import ConstantInterference, NoInterference, RandomInterference


@pytest.fixture(scope="module")
def link():
    return RemoteLink(SKYLAKE_EMULATION)


def test_no_interference(link):
    source = NoInterference()
    assert source.background_bandwidth(link, 0.0) == 0.0
    assert source.mean_loi() == 0.0


def test_constant_interference_matches_loi(link):
    source = ConstantInterference(50.0)
    bandwidth = source.background_bandwidth(link, 123.0)
    assert link.loi(bandwidth) == pytest.approx(50.0)
    assert source.mean_loi() == 50.0


def test_constant_interference_validation():
    with pytest.raises(ConfigurationError):
        ConstantInterference(-5.0)


class TestRandomInterference:
    def test_deterministic_given_seed(self, link):
        a = RandomInterference(0.0, 50.0, interval=60.0, seed=7)
        b = RandomInterference(0.0, 50.0, interval=60.0, seed=7)
        times = [0.0, 59.0, 60.0, 125.0, 600.0]
        assert [a.background_bandwidth(link, t) for t in times] == [
            b.background_bandwidth(link, t) for t in times
        ]

    def test_constant_within_interval(self, link):
        source = RandomInterference(0.0, 50.0, interval=60.0, seed=3)
        assert source.background_bandwidth(link, 10.0) == source.background_bandwidth(link, 59.9)

    def test_changes_across_intervals(self, link):
        source = RandomInterference(0.0, 50.0, interval=60.0, seed=3)
        values = {source.background_bandwidth(link, 60.0 * k) for k in range(20)}
        assert len(values) > 5

    def test_range_respected(self, link):
        source = RandomInterference(10.0, 20.0, interval=60.0, seed=11)
        _, lois = source.loi_timeline(60.0 * 200)
        assert lois.min() >= 10.0
        assert lois.max() <= 20.0
        assert source.mean_loi() == pytest.approx(15.0)
        assert 10.0 <= source.average_loi_over(60.0 * 200) <= 20.0

    def test_aware_range_has_lower_mean_than_baseline(self, link):
        baseline = RandomInterference(0.0, 50.0, seed=1)
        aware = RandomInterference(0.0, 20.0, seed=1)
        assert aware.average_loi_over(6000) < baseline.average_loi_over(6000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomInterference(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            RandomInterference(30.0, 10.0)
        with pytest.raises(ConfigurationError):
            RandomInterference(0.0, 10.0, interval=0.0)
