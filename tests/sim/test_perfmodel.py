"""Tests for the extended-roofline performance model."""

import pytest

from repro.config import SKYLAKE_EMULATION
from repro.interconnect.link import RemoteLink
from repro.sim.perfmodel import PerformanceModel, PhaseInputs


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(SKYLAKE_EMULATION, RemoteLink(SKYLAKE_EMULATION))


def test_compute_bound_phase(model):
    flops = 1e13
    inputs = PhaseInputs(flops=flops, local_demand_bytes=1e9, remote_demand_bytes=0.0,
                         prefetch_coverage=0.9, mlp=16)
    breakdown = model.phase_time(inputs)
    assert breakdown.runtime == pytest.approx(flops / SKYLAKE_EMULATION.peak_flops, rel=0.05)
    assert breakdown.bound_by == "compute"


def test_local_bandwidth_bound_phase(model):
    nbytes = 730e9  # 10 seconds at 73 GB/s
    inputs = PhaseInputs(flops=1e9, local_demand_bytes=nbytes, remote_demand_bytes=0.0,
                         prefetch_coverage=1.0, mlp=16)
    breakdown = model.phase_time(inputs)
    assert breakdown.runtime == pytest.approx(10.0, rel=0.05)
    assert breakdown.bound_by == "local-bw"


def test_remote_traffic_is_slower_than_local(model):
    nbytes = 100e9
    local = model.phase_time(PhaseInputs(flops=1e9, local_demand_bytes=nbytes,
                                         remote_demand_bytes=0.0, prefetch_coverage=0.9, mlp=10))
    remote = model.phase_time(PhaseInputs(flops=1e9, local_demand_bytes=0.0,
                                          remote_demand_bytes=nbytes, prefetch_coverage=0.9, mlp=10))
    assert remote.runtime > local.runtime


def test_tiers_overlap_gives_aggregate_bandwidth(model):
    # Splitting traffic between the tiers at the bandwidth ratio beats local-only.
    nbytes = 500e9
    r_bw = SKYLAKE_EMULATION.bandwidth_ratio_remote
    split = model.phase_time(PhaseInputs(
        flops=1e9,
        local_demand_bytes=nbytes * (1 - r_bw),
        remote_demand_bytes=nbytes * r_bw,
        prefetch_coverage=1.0,
        mlp=16,
    ))
    local_only = model.phase_time(PhaseInputs(
        flops=1e9, local_demand_bytes=nbytes, remote_demand_bytes=0.0,
        prefetch_coverage=1.0, mlp=16,
    ))
    assert split.runtime < local_only.runtime


def test_low_coverage_low_mlp_exposes_latency(model):
    nbytes = 100e9
    covered = model.phase_time(PhaseInputs(flops=1e6, local_demand_bytes=nbytes,
                                           remote_demand_bytes=0.0, prefetch_coverage=0.95, mlp=2))
    uncovered = model.phase_time(PhaseInputs(flops=1e6, local_demand_bytes=nbytes,
                                             remote_demand_bytes=0.0, prefetch_coverage=0.0, mlp=2))
    assert uncovered.runtime > covered.runtime
    assert uncovered.latency_stall_time > covered.latency_stall_time


def test_high_mlp_hides_latency(model):
    nbytes = 100e9
    low_mlp = model.phase_time(PhaseInputs(flops=1e6, local_demand_bytes=nbytes,
                                           remote_demand_bytes=0.0, prefetch_coverage=0.0, mlp=2))
    high_mlp = model.phase_time(PhaseInputs(flops=1e6, local_demand_bytes=nbytes,
                                            remote_demand_bytes=0.0, prefetch_coverage=0.0, mlp=32))
    assert high_mlp.runtime < low_mlp.runtime


def test_background_interference_slows_remote_phase(model):
    inputs = dict(flops=1e9, local_demand_bytes=50e9, remote_demand_bytes=100e9,
                  prefetch_coverage=0.7, mlp=8)
    idle = model.phase_time(PhaseInputs(**inputs, background_bandwidth=0.0))
    loaded = model.phase_time(PhaseInputs(**inputs, background_bandwidth=30e9))
    assert loaded.runtime > idle.runtime


def test_background_interference_barely_affects_local_phase(model):
    inputs = dict(flops=1e9, local_demand_bytes=150e9, remote_demand_bytes=0.0,
                  prefetch_coverage=0.7, mlp=8)
    idle = model.phase_time(PhaseInputs(**inputs, background_bandwidth=0.0))
    loaded = model.phase_time(PhaseInputs(**inputs, background_bandwidth=30e9))
    assert loaded.runtime == pytest.approx(idle.runtime, rel=1e-6)


def test_compute_bound_phase_absorbs_interference(model):
    inputs = dict(flops=5e13, local_demand_bytes=10e9, remote_demand_bytes=10e9,
                  prefetch_coverage=0.6, mlp=8)
    idle = model.phase_time(PhaseInputs(**inputs, background_bandwidth=0.0))
    loaded = model.phase_time(PhaseInputs(**inputs, background_bandwidth=25e9))
    assert loaded.runtime < idle.runtime * 1.02


def test_roofline_time_helper(model):
    assert model.roofline_time(1e12, 1e9) == pytest.approx(1e12 / SKYLAKE_EMULATION.peak_flops)
    assert model.roofline_time(1e6, 73e9) == pytest.approx(1.0, rel=0.01)


def test_zero_work_phase(model):
    breakdown = model.phase_time(PhaseInputs(flops=0.0, local_demand_bytes=0.0,
                                             remote_demand_bytes=1e6, prefetch_coverage=0.0, mlp=1))
    assert breakdown.runtime > 0.0


def test_phase_inputs_totals():
    inputs = PhaseInputs(flops=1.0, local_demand_bytes=10.0, remote_demand_bytes=20.0,
                         local_extra_bytes=1.0, remote_extra_bytes=2.0)
    assert inputs.local_bytes == 11.0
    assert inputs.remote_bytes == 22.0
