"""Tests for the transparent hot-page migration runtime (dynamic placement)."""

import pytest

from repro.config.errors import ConfigurationError
from repro.runtime import MigratingExecutionEngine, MigrationPolicy
from repro.sim import ExecutionEngine, Platform
from repro.casestudies.bfs_placement import baseline_spec, optimized_spec
from repro.workloads import build_workload


class TestMigrationPolicy:
    def test_defaults_valid(self):
        policy = MigrationPolicy()
        assert policy.epoch_seconds > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationPolicy(epoch_seconds=0.0)
        with pytest.raises(ConfigurationError):
            MigrationPolicy(promotion_budget_pages=-1)
        with pytest.raises(ConfigurationError):
            MigrationPolicy(hotness_quantile=1.0)
        with pytest.raises(ConfigurationError):
            MigrationPolicy(migration_bandwidth=0.0)


@pytest.fixture(scope="module")
def bfs_platform():
    spec = baseline_spec(1.0)
    return Platform.pooled(spec.footprint_bytes, 0.25)


class TestMigratingEngine:
    def test_promotes_pages_and_reduces_remote_access(self, bfs_platform):
        """BFS's hot Parents/frontier pages start remote; the runtime pulls them in."""
        spec = baseline_spec(1.0)
        static = ExecutionEngine(bfs_platform, seed=0).run(spec)
        dynamic_engine = MigratingExecutionEngine(
            bfs_platform, MigrationPolicy(epoch_seconds=5.0, promotion_budget_pages=50_000), seed=0
        )
        dynamic = dynamic_engine.run(spec)
        stats = dynamic_engine.last_migration_stats
        assert stats is not None
        assert stats.promoted_pages > 0
        assert stats.epochs > 1
        assert dynamic.remote_access_ratio < static.remote_access_ratio
        assert dynamic.total_runtime < static.total_runtime

    def test_dynamic_placement_lags_behind_static_optimum(self, bfs_platform):
        """The manually optimised allocation order still beats the runtime (Section 5.2)."""
        dynamic_engine = MigratingExecutionEngine(bfs_platform, seed=0)
        dynamic = dynamic_engine.run(baseline_spec(1.0))
        manual_platform = Platform.pooled(optimized_spec(1.0).footprint_bytes, 0.25)
        manual = ExecutionEngine(manual_platform, seed=0).run(optimized_spec(1.0))
        assert manual.remote_access_ratio <= dynamic.remote_access_ratio + 0.05

    def test_single_tier_run_is_untouched(self):
        spec = build_workload("Hypre", 1.0)
        engine = MigratingExecutionEngine(Platform.local_only(), seed=0)
        dynamic = engine.run(spec)
        static = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        assert dynamic.total_runtime == pytest.approx(static.total_runtime, rel=1e-6)
        assert engine.last_migration_stats.promoted_pages == 0

    def test_zero_budget_disables_promotions(self, bfs_platform):
        spec = baseline_spec(1.0)
        engine = MigratingExecutionEngine(
            bfs_platform, MigrationPolicy(promotion_budget_pages=0), seed=0
        )
        dynamic = engine.run(spec)
        static = ExecutionEngine(bfs_platform, seed=0).run(spec)
        assert engine.last_migration_stats.promoted_pages == 0
        assert dynamic.remote_access_ratio == pytest.approx(static.remote_access_ratio, abs=0.02)

    def test_migration_time_is_charged(self, bfs_platform):
        spec = baseline_spec(1.0)
        slow_copy = MigratingExecutionEngine(
            bfs_platform,
            MigrationPolicy(migration_bandwidth=0.2e9, promotion_budget_pages=50_000),
            seed=0,
        )
        fast_copy = MigratingExecutionEngine(
            bfs_platform,
            MigrationPolicy(migration_bandwidth=50e9, promotion_budget_pages=50_000),
            seed=0,
        )
        slow = slow_copy.run(spec)
        fast = fast_copy.run(spec)
        assert slow_copy.last_migration_stats.migration_seconds > fast_copy.last_migration_stats.migration_seconds
        assert slow.total_runtime > fast.total_runtime

    def test_counters_remain_consistent(self, bfs_platform):
        from repro.cache import events

        spec = baseline_spec(1.0)
        engine = MigratingExecutionEngine(bfs_platform, seed=0)
        result = engine.run(spec)
        counters = result.counters
        assert counters[events.FP_ARITH_OPS] == pytest.approx(spec.total_flops)
        total_lines = counters[events.OFFCORE_LOCAL_DRAM] + counters[events.OFFCORE_REMOTE_DRAM]
        assert total_lines == pytest.approx(spec.total_dram_bytes / 64, rel=0.01)
