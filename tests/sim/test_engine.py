"""Tests for the execution engine."""

import numpy as np
import pytest

from repro.cache import events
from repro.sim import ConstantInterference, ExecutionEngine, Platform
from repro.workloads import build_workload
from repro.workloads.base import PhaseSpec, WorkloadSpec
from repro.memory.objects import MemoryObject
from repro.trace.patterns import SequentialPattern
from repro.config.units import MiB


def tiny_spec(local_hot_first=True):
    """A small synthetic workload with a hot and a cold object."""
    hot = MemoryObject(name="hot", size_bytes=64 * MiB, pattern=SequentialPattern())
    cold = MemoryObject(name="cold", size_bytes=192 * MiB, pattern=SequentialPattern())
    objects = (hot, cold) if local_hot_first else (cold, hot)
    phases = (
        PhaseSpec(
            name="p1",
            flops=1e9,
            dram_bytes=256 * MiB,
            object_traffic={"hot": 0.5, "cold": 0.5},
            mlp=8.0,
        ),
        PhaseSpec(
            name="p2",
            flops=5e10,
            dram_bytes=2_000 * MiB,
            object_traffic={"hot": 0.8, "cold": 0.2},
            mlp=8.0,
        ),
    )
    return WorkloadSpec(
        name="tiny", input_label="t1", scale=1.0, objects=objects, phases=phases
    )


class TestBasicRuns:
    def test_local_only_run_has_no_remote_traffic(self):
        spec = tiny_spec()
        result = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        assert result.total_remote_bytes == 0.0
        assert result.remote_access_ratio == 0.0
        assert result.remote_capacity_ratio == 0.0
        assert result.total_runtime > 0
        assert [p.name for p in result.phases] == ["p1", "p2"]

    def test_counters_populated(self):
        spec = tiny_spec()
        result = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        counters = result.counters
        assert counters[events.FP_ARITH_OPS] == pytest.approx(spec.total_flops)
        assert counters[events.L2_LINES_IN] > 0
        assert counters[events.OFFCORE_LOCAL_DRAM] > 0
        assert counters[events.OFFCORE_REMOTE_DRAM] == 0

    def test_pooled_run_splits_traffic(self):
        spec = tiny_spec()
        platform = Platform.pooled(spec.footprint_bytes, 0.5)
        result = ExecutionEngine(platform, seed=0).run(spec)
        assert result.total_remote_bytes > 0
        assert 0.0 < result.remote_access_ratio < 1.0
        assert result.remote_capacity_ratio == pytest.approx(0.5, abs=0.05)
        assert result.config_label == "50-50"

    def test_determinism(self):
        spec = tiny_spec()
        platform = Platform.pooled(spec.footprint_bytes, 0.5)
        a = ExecutionEngine(platform, seed=3).run(spec)
        b = ExecutionEngine(platform, seed=3).run(spec)
        assert a.total_runtime == b.total_runtime
        assert a.remote_access_ratio == b.remote_access_ratio

    def test_allocation_order_changes_placement(self):
        hot_first = tiny_spec(local_hot_first=True)
        cold_first = tiny_spec(local_hot_first=False)
        # Local tier sized to hold only the hot object.
        platform_a = Platform.explicit(80 * MiB, 400 * MiB)
        platform_b = Platform.explicit(80 * MiB, 400 * MiB)
        a = ExecutionEngine(platform_a, seed=0).run(hot_first)
        b = ExecutionEngine(platform_b, seed=0).run(cold_first)
        # With the hot object first it is local, so remote access is lower.
        assert a.remote_access_ratio < b.remote_access_ratio
        assert a.placement("hot").remote_fraction < 0.1
        assert b.placement("hot").remote_fraction > 0.9

    def test_reserved_local_bytes_pushes_traffic_remote(self):
        spec = tiny_spec()
        platform = Platform.explicit(300 * MiB, 400 * MiB)
        free = ExecutionEngine(platform, seed=0).run(spec)
        platform2 = Platform.explicit(300 * MiB, 400 * MiB)
        wasted = ExecutionEngine(platform2, seed=0).run(spec, reserved_local_bytes=200 * MiB)
        assert wasted.remote_access_ratio > free.remote_access_ratio


class TestPrefetchingAndInterference:
    def test_prefetch_toggle_changes_counters_and_runtime(self):
        spec = build_workload("NekRS", 1.0)
        engine = ExecutionEngine(Platform.local_only(), seed=0)
        on = engine.run(spec, prefetch_enabled=True)
        off = engine.run(spec, prefetch_enabled=False)
        assert on.counters[events.PF_L2_DATA_RD] > 0
        assert off.counters[events.PF_L2_DATA_RD] == 0
        assert off.total_runtime > on.total_runtime
        assert on.prefetch_enabled and not off.prefetch_enabled

    def test_interference_slows_pooled_run(self):
        spec = build_workload("Hypre", 1.0)
        platform = Platform.pooled(spec.footprint_bytes, 0.5)
        engine = ExecutionEngine(platform, seed=0)
        idle = engine.run(spec)
        loaded = engine.run(spec, interference=ConstantInterference(50.0))
        assert loaded.total_runtime > idle.total_runtime
        assert loaded.interference_loi == 50.0
        assert loaded.phases[-1].background_bandwidth > 0

    def test_interference_loi_recorded_as_zero_when_idle(self):
        spec = tiny_spec()
        result = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        assert result.interference_loi == 0.0


class TestLateAndFreedObjects:
    def test_late_object_placed_after_init(self, bfs_spec):
        platform = Platform.pooled(bfs_spec.footprint_bytes, 0.25)
        result = ExecutionEngine(platform, seed=0).run(bfs_spec)
        # The dynamically allocated frontier exists in the placement report.
        frontier = result.placement("frontier-heap")
        assert sum(frontier.bytes_per_tier) > 0

    def test_init_only_object_frees_local_memory(self):
        spec = tiny_spec()
        freed = WorkloadSpec(
            name=spec.name,
            input_label=spec.input_label,
            scale=spec.scale,
            objects=spec.objects,
            phases=spec.phases,
            init_only_objects=("cold",),
        )
        platform = Platform.explicit(80 * MiB, 400 * MiB)
        result = ExecutionEngine(platform, seed=0).run(freed)
        # After freeing, the cold object's p2 traffic is attributed locally.
        assert result.phases[1].remote_bytes <= result.phases[0].remote_bytes * 5


class TestMiddleTierAccounting:
    def three_tier_platform(self):
        """local DRAM + a middle CXL tier + a bottom pool tier."""
        from repro.config.tiers import TieredMemoryConfig, TierSpec
        from repro.config import SKYLAKE_EMULATION as tb

        config = TieredMemoryConfig(
            tiers=(
                TierSpec("local-dram", 100 * MiB, tb.local_bandwidth, tb.local_latency),
                TierSpec(
                    "cxl-direct", 100 * MiB, tb.remote_bandwidth, tb.remote_latency, pooled=True
                ),
                TierSpec(
                    "memory-pool", 200 * MiB, tb.remote_bandwidth, tb.remote_latency, pooled=True
                ),
            )
        )
        return Platform(tier_config=config, label="3-tier")

    def test_three_tier_traffic_conserved(self):
        """Middle-tier bytes must be routed, not dropped (local+remote == total)."""
        spec = tiny_spec()
        platform = self.three_tier_platform()
        result = ExecutionEngine(platform, seed=0).run(spec)
        for phase in result.phases:
            assert phase.local_bytes + phase.remote_bytes == pytest.approx(
                phase.dram_bytes, rel=1e-6
            )
        # The middle tier holds pages, so the pooled share exceeds what the
        # bottom tier alone could serve.
        assert result.total_remote_bytes > 0

    def test_tier_traffic_default_mask_counts_middle_as_remote(self):
        from repro.sim import TierTraffic

        traffic = TierTraffic(per_tier=(10.0, 5.0, 2.0))
        assert traffic.local == 10.0
        assert traffic.remote == 7.0
        assert traffic.total == 17.0

    def test_tier_traffic_explicit_mask(self):
        from repro.sim import TierTraffic

        traffic = TierTraffic(per_tier=(10.0, 5.0, 2.0), pooled=(False, False, True))
        assert traffic.local == 15.0
        assert traffic.remote == 2.0

    def test_tier_traffic_mismatched_mask_raises(self):
        from repro.config.errors import ConfigurationError
        from repro.sim import TierTraffic

        with pytest.raises(ConfigurationError):
            TierTraffic(per_tier=(10.0, 5.0, 2.0), pooled=(False, True))


class TestDerivedOutputs:
    def test_access_profile_covers_footprint_traffic(self):
        spec = tiny_spec()
        engine = ExecutionEngine(Platform.local_only(), seed=0)
        profile = engine.access_profile(spec)
        line_bytes = 64
        expected_lines = spec.total_dram_bytes / line_bytes
        assert profile.total_accesses == pytest.approx(expected_lines, rel=0.01)
        assert profile.n_pages <= spec.footprint_bytes // 4096 + len(spec.objects)

    def test_access_profile_phase_filter(self):
        spec = tiny_spec()
        engine = ExecutionEngine(Platform.local_only(), seed=0)
        p1_only = engine.access_profile(spec, phases=["p1"])
        assert p1_only.total_accesses == pytest.approx(spec.phase("p1").dram_bytes / 64, rel=0.01)

    def test_l2_timeline_conserves_lines(self):
        spec = tiny_spec()
        engine = ExecutionEngine(Platform.local_only(), seed=0)
        result = engine.run(spec)
        times, lines = engine.l2_timeline(spec, result, steps_per_phase=20)
        assert len(times) == len(lines) == 40
        assert np.all(np.diff(times) > 0)
        assert lines.sum() == pytest.approx(result.counters[events.L2_LINES_IN], rel=0.01)

    def test_run_result_lookups(self):
        spec = tiny_spec()
        result = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        assert result.phase("p2").name == "p2"
        with pytest.raises(KeyError):
            result.phase("p9")
        with pytest.raises(KeyError):
            result.placement("nothing")
        assert result.phase_label("p2") == "tiny-p2"
        assert result.summary()["workload"] == "tiny"
