"""Tests for memory objects and the virtual address space."""

import numpy as np
import pytest

from repro.config.errors import AllocationError
from repro.memory.objects import (
    AddressSpace,
    MemoryObject,
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_LOCAL,
)
from repro.trace.patterns import SequentialPattern


def make_object(name="obj", size=4096 * 10, **kwargs):
    return MemoryObject(name=name, size_bytes=size, pattern=SequentialPattern(), **kwargs)


class TestMemoryObject:
    def test_defaults(self):
        obj = make_object()
        assert obj.placement == PLACEMENT_FIRST_TOUCH
        assert not obj.registered

    def test_invalid_size(self):
        with pytest.raises(AllocationError):
            make_object(size=0)

    def test_invalid_placement(self):
        with pytest.raises(AllocationError):
            make_object(placement="somewhere")

    def test_page_range_requires_registration(self):
        obj = make_object()
        with pytest.raises(AllocationError):
            obj.page_range()
        with pytest.raises(AllocationError):
            _ = obj.last_page


class TestAddressSpace:
    def test_layout_is_contiguous_in_allocation_order(self):
        space = AddressSpace(page_bytes=4096, line_bytes=64)
        a = space.register(make_object("a", 4096 * 3))
        b = space.register(make_object("b", 4096 * 2 + 1))
        assert a.first_page == 0 and a.n_pages == 3
        assert b.first_page == 3 and b.n_pages == 3  # rounded up
        assert space.total_pages == 6
        assert space.total_bytes == a.size_bytes + b.size_bytes

    def test_double_registration_rejected(self):
        space = AddressSpace()
        obj = space.register(make_object())
        with pytest.raises(AllocationError):
            space.register(obj)

    def test_lookup_by_name_and_id(self):
        space = AddressSpace()
        a = space.register(make_object("alpha"))
        assert space.get("alpha") is a
        assert space.by_id(a.object_id) is a
        with pytest.raises(KeyError):
            space.get("missing")
        with pytest.raises(KeyError):
            space.by_id(99)

    def test_object_of_page(self):
        space = AddressSpace(page_bytes=4096)
        a = space.register(make_object("a", 4096 * 2))
        b = space.register(make_object("b", 4096 * 2))
        assert space.object_of_page(0) is a
        assert space.object_of_page(2) is b
        assert space.object_of_page(10) is None

    def test_page_object_ids(self):
        space = AddressSpace(page_bytes=4096)
        a = space.register(make_object("a", 4096 * 2))
        b = space.register(make_object("b", 4096))
        ids = space.page_object_ids()
        np.testing.assert_array_equal(ids, [a.object_id, a.object_id, b.object_id])

    def test_line_range(self):
        space = AddressSpace(page_bytes=4096, line_bytes=64)
        a = space.register(make_object("a", 4096))
        start, end = a.line_range(space.lines_per_page)
        assert start == 0 and end == 64
        assert a.n_lines(space.lines_per_page) == 64

    def test_invalid_geometry(self):
        with pytest.raises(AllocationError):
            AddressSpace(page_bytes=4096, line_bytes=100)
        with pytest.raises(AllocationError):
            AddressSpace(page_bytes=0)

    def test_iteration_and_len(self):
        space = AddressSpace()
        space.register_all([make_object("a"), make_object("b", placement=PLACEMENT_LOCAL)])
        assert len(space) == 2
        assert [o.name for o in space] == ["a", "b"]
