"""Tests for tiered memory placement, including first-touch semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.errors import AllocationError, PlacementError
from repro.config.tiers import two_tier_config
from repro.memory.objects import (
    AddressSpace,
    MemoryObject,
    PLACEMENT_INTERLEAVE,
    PLACEMENT_LOCAL,
    PLACEMENT_REMOTE,
)
from repro.memory.tiered import TieredMemory, UNPLACED

PAGE = 4096


def build(local_pages, remote_pages, objects, reserved=0):
    """Helper: an address space + tiered memory with page-granular capacities."""
    space = AddressSpace(page_bytes=PAGE, line_bytes=64)
    space.register_all(objects)
    config = two_tier_config(local_pages * PAGE, remote_pages * PAGE)
    return space, TieredMemory(config, space, reserved_local_bytes=reserved)


def obj(name, pages, **kwargs):
    return MemoryObject(name=name, size_bytes=pages * PAGE, **kwargs)


class TestFirstTouch:
    def test_fills_local_then_spills(self):
        a = obj("a", 6)
        _, memory = build(4, 10, [a])
        placement = memory.touch(a)
        assert (placement == 0).sum() == 4
        assert (placement == 1).sum() == 2

    def test_order_matters(self):
        hot = obj("hot", 2)
        big = obj("big", 4)
        _, memory = build(4, 10, [big, hot])
        memory.touch_in_order([big, hot])
        assert np.all(memory.placement_of(big) == 0)
        assert np.all(memory.placement_of(hot) == 1)

        # Reversed order places the hot object locally instead.
        hot2 = obj("hot", 2)
        big2 = obj("big", 4)
        _, memory2 = build(4, 10, [hot2, big2])
        memory2.touch_in_order([hot2, big2])
        assert np.all(memory2.placement_of(hot2) == 0)
        assert (memory2.placement_of(big2) == 1).sum() == 2

    def test_touch_is_idempotent(self):
        a = obj("a", 3)
        _, memory = build(8, 8, [a])
        first = memory.touch(a)
        second = memory.touch(a)
        np.testing.assert_array_equal(first, second)
        assert memory.usage[0].used_bytes == 3 * PAGE

    def test_reserved_local_bytes_shrinks_local_tier(self):
        a = obj("a", 4)
        _, memory = build(4, 10, [a], reserved=2 * PAGE)
        placement = memory.touch(a)
        assert (placement == 0).sum() == 2
        assert (placement == 1).sum() == 2

    def test_oom_when_nothing_fits(self):
        a = obj("a", 10)
        _, memory = build(2, 2, [a])
        with pytest.raises(AllocationError, match="out of memory"):
            memory.touch(a)


class TestExplicitPlacement:
    def test_local_and_remote_policies(self):
        a = obj("a", 2, placement=PLACEMENT_LOCAL)
        b = obj("b", 2, placement=PLACEMENT_REMOTE)
        _, memory = build(4, 4, [a, b])
        memory.touch_in_order([a, b])
        assert np.all(memory.placement_of(a) == 0)
        assert np.all(memory.placement_of(b) == 1)

    def test_local_policy_respects_capacity(self):
        a = obj("a", 6, placement=PLACEMENT_LOCAL)
        _, memory = build(4, 10, [a])
        with pytest.raises(AllocationError):
            memory.touch(a)

    def test_interleave_spreads_over_tiers(self):
        a = obj("a", 8, placement=PLACEMENT_INTERLEAVE)
        _, memory = build(8, 8, [a])
        placement = memory.touch(a)
        assert (placement == 0).sum() == 4
        assert (placement == 1).sum() == 4


class TestFreeAndMigrate:
    def test_free_releases_capacity(self):
        a = obj("a", 4)
        _, memory = build(4, 4, [a])
        memory.touch(a)
        released = memory.free(a)
        assert released == 4 * PAGE
        assert memory.usage[0].used_bytes == 0
        assert np.all(memory.placement_of(a) == UNPLACED)

    def test_free_then_reuse_local(self):
        a = obj("a", 4)
        b = obj("b", 3)
        _, memory = build(4, 6, [a, b])
        memory.touch(a)
        memory.free(a)
        memory.touch(b)
        assert np.all(memory.placement_of(b) == 0)

    def test_migrate_moves_pages(self):
        a = obj("a", 6)
        _, memory = build(4, 10, [a])
        memory.touch(a)
        moved = memory.migrate(a, to_tier=1)
        assert moved == 4
        assert np.all(memory.placement_of(a) == 1)
        assert memory.migrations == 4

    def test_migrate_respects_capacity_and_max_pages(self):
        a = obj("a", 6)
        _, memory = build(4, 10, [a])
        memory.touch(a)
        moved = memory.migrate(a, to_tier=0, max_pages=1)
        assert moved <= 1

    def test_migrate_invalid_tier(self):
        a = obj("a", 2)
        _, memory = build(4, 4, [a])
        memory.touch(a)
        with pytest.raises(PlacementError):
            memory.migrate(a, to_tier=5)

    def test_migrate_clamped_by_destination_capacity(self):
        """Asking for more pages than the destination holds moves only what fits."""
        a = obj("a", 2)
        b = obj("b", 6)
        _, memory = build(2, 10, [a, b])
        memory.touch(a)  # fills the local tier completely
        memory.touch(b)  # all 6 pages spill remote
        memory.free(a)  # 2 local pages free again
        moved = memory.migrate(b, to_tier=0)
        assert moved == 2
        placement = memory.placement_of(b)
        assert (placement == 0).sum() == 2
        assert (placement == 1).sum() == 4
        # Accounting stays consistent: the local tier is exactly full again.
        assert memory.usage[0].used_bytes == 2 * PAGE
        assert memory.usage[1].used_bytes == 4 * PAGE

    def test_migrate_zero_max_pages_is_a_noop(self):
        a = obj("a", 4)
        _, memory = build(4, 10, [a])
        memory.touch(a)
        before = [u.used_bytes for u in memory.usage]
        assert memory.migrate(a, to_tier=1, max_pages=0) == 0
        assert memory.migrations == 0
        assert [u.used_bytes for u in memory.usage] == before

    def test_migrate_negative_max_pages_treated_as_zero(self):
        a = obj("a", 4)
        _, memory = build(4, 10, [a])
        memory.touch(a)
        assert memory.migrate(a, to_tier=1, max_pages=-3) == 0

    def test_double_free_is_idempotent(self):
        a = obj("a", 4)
        _, memory = build(4, 4, [a])
        memory.touch(a)
        assert memory.free(a) == 4 * PAGE
        # Freeing again releases nothing and never drives usage negative.
        assert memory.free(a) == 0
        assert memory.usage[0].used_bytes == 0
        assert memory.usage[1].used_bytes == 0
        assert np.all(memory.placement_of(a) == UNPLACED)

    def test_free_untouched_object_is_a_noop(self):
        a = obj("a", 4)
        _, memory = build(4, 4, [a])
        assert memory.free(a) == 0
        assert memory.usage[0].used_bytes == 0


class TestQueries:
    def test_remote_capacity_ratio(self):
        a = obj("a", 8)
        _, memory = build(4, 8, [a])
        memory.touch(a)
        assert memory.remote_capacity_ratio() == pytest.approx(0.5)

    def test_tier_of_lines(self):
        a = obj("a", 4)
        space, memory = build(2, 4, [a])
        memory.touch(a)
        lines_per_page = space.lines_per_page
        lines = np.array([0, lines_per_page * 2, lines_per_page * 3])
        tiers = memory.tier_of_lines(lines)
        np.testing.assert_array_equal(tiers, [0, 1, 1])

    def test_object_tier_bytes(self):
        a = obj("a", 6)
        _, memory = build(4, 10, [a])
        memory.touch(a)
        by_tier = memory.object_tier_bytes(a)
        assert by_tier["local-dram"] == 4 * PAGE
        assert by_tier["memory-pool"] == 2 * PAGE

    def test_describe(self):
        a = obj("a", 2)
        _, memory = build(4, 4, [a])
        memory.touch(a)
        info = memory.describe()
        assert info["migrations"] == 0
        assert len(info["tiers"]) == 2

    def test_reserved_bytes_validation(self):
        a = obj("a", 2)
        space = AddressSpace(page_bytes=PAGE)
        space.register(a)
        config = two_tier_config(4 * PAGE, 4 * PAGE)
        with pytest.raises(AllocationError):
            TieredMemory(config, space, reserved_local_bytes=-1)
        with pytest.raises(AllocationError):
            TieredMemory(config, space, reserved_local_bytes=5 * PAGE)


# -- property-based invariants ----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
    local_pages=st.integers(min_value=1, max_value=100),
)
def test_first_touch_conserves_pages(sizes, local_pages):
    """Every touched page lands in exactly one tier and capacity is never exceeded."""
    objects = [obj(f"o{i}", pages) for i, pages in enumerate(sizes)]
    total_pages = sum(sizes)
    space = AddressSpace(page_bytes=PAGE, line_bytes=64)
    space.register_all(objects)
    config = two_tier_config(local_pages * PAGE, (total_pages + 1) * PAGE)
    memory = TieredMemory(config, space)
    memory.touch_in_order(objects)

    tiers = memory.page_tiers()
    assert len(tiers) == total_pages
    assert np.all(tiers >= 0)  # everything placed
    placed_local = int((tiers == 0).sum())
    placed_remote = int((tiers == 1).sum())
    assert placed_local + placed_remote == total_pages
    assert placed_local * PAGE <= config.tiers[0].capacity_bytes
    assert memory.usage[0].used_bytes == placed_local * PAGE
    assert memory.usage[1].used_bytes == placed_remote * PAGE
    # Local tier is filled greedily: remote only used once local is full.
    if placed_remote > 0:
        assert config.tiers[0].capacity_bytes - placed_local * PAGE < PAGE
