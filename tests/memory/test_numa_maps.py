"""Tests for the numa_maps sampling layer."""

import pytest

from repro.config.tiers import two_tier_config
from repro.memory.numa_maps import NumaMapsSampler
from repro.memory.objects import AddressSpace, MemoryObject
from repro.memory.tiered import TieredMemory

PAGE = 4096


def setup_memory():
    space = AddressSpace(page_bytes=PAGE, line_bytes=64)
    a = MemoryObject(name="hot", size_bytes=2 * PAGE)
    b = MemoryObject(name="cold", size_bytes=6 * PAGE)
    space.register_all([a, b])
    memory = TieredMemory(two_tier_config(4 * PAGE, 8 * PAGE), space)
    return space, memory, a, b


def test_snapshot_reflects_placement():
    _, memory, a, b = setup_memory()
    sampler = NumaMapsSampler(memory)
    memory.touch(a)
    snap1 = sampler.sample(timestamp=0.0)
    assert snap1.rss_bytes == 2 * PAGE
    assert snap1.entry_for("hot").pages_per_tier == (2, 0)
    assert snap1.entry_for("cold").resident_pages == 0

    memory.touch(b)
    snap2 = sampler.sample(timestamp=1.0)
    assert snap2.rss_bytes == 8 * PAGE
    # cold spills: 2 pages fit locally after hot, 4 go remote.
    assert snap2.entry_for("cold").pages_per_tier == (2, 4)
    assert snap2.remote_capacity_ratio() == pytest.approx(4 / 8)


def test_entry_tier_fraction_and_lookup_errors():
    _, memory, a, b = setup_memory()
    sampler = NumaMapsSampler(memory)
    memory.touch_in_order([a, b])
    snap = sampler.sample(0.0)
    assert snap.entry_for("cold").tier_fraction(1) == pytest.approx(4 / 6)
    with pytest.raises(KeyError):
        snap.entry_for("unknown")


def test_timelines_and_peak_rss():
    _, memory, a, b = setup_memory()
    sampler = NumaMapsSampler(memory)
    memory.touch(a)
    sampler.sample(0.0)
    memory.touch(b)
    sampler.sample(5.0)
    memory.free(b)
    sampler.sample(9.0)

    times, rss = sampler.rss_timeline()
    assert list(times) == [0.0, 5.0, 9.0]
    assert rss[1] == sampler.peak_rss_bytes() == 8 * PAGE
    assert rss[2] == 2 * PAGE

    _, local = sampler.tier_timeline(0)
    assert local[0] == 2 * PAGE

    sampler.clear()
    assert sampler.snapshots == ()
    assert sampler.peak_rss_bytes() == 0


def test_empty_snapshot_ratio():
    _, memory, a, b = setup_memory()
    sampler = NumaMapsSampler(memory)
    snap = sampler.sample(0.0)
    assert snap.remote_capacity_ratio() == 0.0
    assert snap.n_tiers == 2
