"""Tests for the deployment-planning helpers."""

import numpy as np
import pytest

from repro.config.errors import ConfigurationError
from repro.models.capacity_planning import (
    NodeResources,
    compare_plans,
    minimum_nodes_for_capacity,
    nodes_for_bandwidth,
    plan_local_only,
    plan_with_pool,
)
from repro.trace.footprint import scaling_curve_from_counts


NODE = NodeResources(
    memory_gb=256.0,
    memory_bandwidth_gbs=73.0,
    pool_gb_available=512.0,
    pool_bandwidth_gbs=34.0,
)


def test_minimum_nodes_for_capacity():
    assert minimum_nodes_for_capacity(1000.0, NODE) == 4
    assert minimum_nodes_for_capacity(256.0, NODE) == 1
    with pytest.raises(ConfigurationError):
        minimum_nodes_for_capacity(0.0, NODE)


def test_nodes_for_bandwidth():
    assert nodes_for_bandwidth(7300.0, 10.0, NODE) == 10
    with pytest.raises(ConfigurationError):
        nodes_for_bandwidth(100.0, 0.0, NODE)


def test_plan_local_only():
    plan = plan_local_only(1000.0, NODE)
    assert plan.nodes == 4
    assert not plan.uses_pool
    assert plan.expected_remote_access_ratio == 0.0
    assert "node-local" in plan.description


def test_plan_with_pool_uniform_access():
    plan = plan_with_pool(1000.0, NODE, nodes=2)
    assert plan.uses_pool
    assert plan.pool_gb_per_node == pytest.approx(244.0)
    # Uniform fallback: remote ratio == capacity overflow fraction.
    assert plan.expected_remote_access_ratio == pytest.approx(1 - 256 / 500, rel=1e-6)
    assert "pool" in plan.description


def test_plan_with_pool_uses_scaling_curve():
    # A skewed application: the hot half of the footprint gets ~all accesses.
    counts = np.concatenate([np.full(500, 100.0), np.full(500, 1.0)])
    curve = scaling_curve_from_counts(counts)
    plan = plan_with_pool(1000.0, NODE, nodes=2, scaling_curve=curve)
    uniform = plan_with_pool(1000.0, NODE, nodes=2)
    assert plan.expected_remote_access_ratio < uniform.expected_remote_access_ratio


def test_plan_with_pool_validation():
    with pytest.raises(ConfigurationError):
        plan_with_pool(1000.0, NODE, nodes=0)
    small_pool = NodeResources(memory_gb=256.0, memory_bandwidth_gbs=73.0, pool_gb_available=10.0)
    with pytest.raises(ConfigurationError):
        plan_with_pool(1000.0, small_pool, nodes=2)


def test_compare_plans_saves_nodes():
    comparison = compare_plans(1000.0, NODE)
    assert comparison["local_only"].nodes == 4
    assert comparison["pooled"].nodes == 2
    assert comparison["node_saving"] == 2
    assert comparison["pooled_bandwidth_limit_gbs"] > 0


def test_node_resources_validation():
    with pytest.raises(ConfigurationError):
        NodeResources(memory_gb=0.0, memory_bandwidth_gbs=10.0)
    with pytest.raises(ConfigurationError):
        NodeResources(memory_gb=10.0, memory_bandwidth_gbs=10.0, pool_gb_available=-1.0)
