"""Tests for the roofline model."""

import numpy as np
import pytest

from repro.config import SKYLAKE_EMULATION
from repro.models.roofline import RooflineModel, RooflinePoint, roofline_series


@pytest.fixture(scope="module")
def roofline():
    return RooflineModel.from_testbed(SKYLAKE_EMULATION)


def test_attainable_is_min_of_roofs(roofline):
    low_ai = 0.1
    high_ai = 1000.0
    assert roofline.attainable(low_ai) == pytest.approx(SKYLAKE_EMULATION.local_bandwidth * low_ai)
    assert roofline.attainable(high_ai) == pytest.approx(SKYLAKE_EMULATION.peak_flops)


def test_ridge_point(roofline):
    ridge = roofline.ridge_point
    assert roofline.attainable(ridge) == pytest.approx(SKYLAKE_EMULATION.peak_flops, rel=1e-6)
    assert roofline.is_memory_bound(ridge * 0.5)
    assert not roofline.is_memory_bound(ridge * 2.0)


def test_extended_roof_adds_remote_bandwidth():
    base = RooflineModel.from_testbed(SKYLAKE_EMULATION, include_remote_tier=False)
    extended = RooflineModel.from_testbed(SKYLAKE_EMULATION, include_remote_tier=True)
    ai = 0.5
    assert extended.attainable(ai) > base.attainable(ai)
    assert extended.ridge_point < base.ridge_point


def test_curve_monotone_nondecreasing(roofline):
    x, y = roofline.curve()
    assert len(x) == len(y)
    assert np.all(np.diff(y) >= -1e-9)
    assert y[-1] == pytest.approx(SKYLAKE_EMULATION.peak_flops / 1e9)


def test_curve_custom_intensities(roofline):
    x, y = roofline.curve(intensities=[0.1, 1.0, 10.0])
    assert list(x) == [0.1, 1.0, 10.0]


def test_efficiency(roofline):
    point = RooflinePoint("HPL-p2", 100.0, roofline.attainable_gflops(100.0) * 0.8)
    assert roofline.efficiency(point) == pytest.approx(0.8, rel=1e-6)
    overachiever = RooflinePoint("x", 0.1, 1e6)
    assert roofline.efficiency(overachiever) == 1.0


def test_point_memory_bound_flag():
    assert RooflinePoint("Hypre-p2", 0.2, 10.0).memory_bound
    assert not RooflinePoint("HPL-p2", 200.0, 900.0).memory_bound


def test_roofline_series_assembly():
    points = [RooflinePoint("A-p1", 0.2, 10.0), RooflinePoint("A-p2", 50.0, 700.0)]
    series = roofline_series(points)
    assert series["peak_gflops"] == pytest.approx(1100.0)
    assert len(series["points"]) == 2
    assert series["points"][0]["memory_bound"] is True
    assert series["extended_roof"]["ridge"] < series["base_roof"]["ridge"]
    assert 0.0 <= series["points"][0]["efficiency"] <= 1.0
