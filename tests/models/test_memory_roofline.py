"""Tests for the multi-tier memory roofline."""

import numpy as np
import pytest

from repro.config import SKYLAKE_EMULATION
from repro.config.tiers import two_tier_config
from repro.models.memory_roofline import MemoryRoofline, optimization_priority


@pytest.fixture(scope="module")
def roofline():
    return MemoryRoofline(local_bandwidth=73e9, remote_bandwidth=34e9)


def test_from_config():
    config = two_tier_config(1 << 30, 1 << 30)
    model = MemoryRoofline.from_config(config)
    assert model.local_bandwidth == pytest.approx(73e9)
    assert model.remote_bandwidth == pytest.approx(34e9)


def test_extremes(roofline):
    assert roofline.attainable_bandwidth(0.0) == pytest.approx(73e9)
    assert roofline.attainable_bandwidth(1.0) == pytest.approx(34e9)


def test_peak_at_bandwidth_ratio(roofline):
    optimal = roofline.optimal_remote_ratio
    assert optimal == pytest.approx(34 / 107)
    assert roofline.attainable_bandwidth(optimal) == pytest.approx(107e9, rel=1e-6)
    # Any other ratio is worse.
    for ratio in (0.0, 0.1, 0.5, 0.9, 1.0):
        assert roofline.attainable_bandwidth(ratio) <= roofline.peak_bandwidth + 1e-6


def test_curve_shape(roofline):
    ratios, bandwidth = roofline.curve(n_points=51)
    assert len(ratios) == 51
    peak_index = int(np.argmax(bandwidth))
    assert ratios[peak_index] == pytest.approx(roofline.optimal_remote_ratio, abs=0.03)


def test_attainable_time_and_speedup(roofline):
    t = roofline.attainable_time(107e9, roofline.optimal_remote_ratio)
    assert t == pytest.approx(1.0, rel=1e-6)
    assert roofline.speedup_over_local_only(roofline.optimal_remote_ratio) == pytest.approx(
        107 / 73, rel=1e-6
    )


def test_classification(roofline):
    r_bw = roofline.optimal_remote_ratio
    assert roofline.classify(r_bw * 0.3, capacity_ratio=0.25) == "fast-tier-bound"
    assert roofline.classify(0.28, capacity_ratio=0.25) == "balanced"
    assert roofline.classify(0.9, capacity_ratio=0.25) == "slow-tier-bound"


def test_optimization_priority_ranks_dominant_mismatched_phase_first(roofline):
    phases = [
        ("app-p1", 0.9, 0.1),   # badly placed but short
        ("app-p2", 0.8, 0.9),   # badly placed and dominant -> top priority
        ("app-p3", 0.2, 0.5),   # inside the band
    ]
    ranked = optimization_priority(phases, roofline)
    assert ranked[0]["phase"] == "app-p2"
    assert ranked[-1]["phase"] == "app-p3"
    assert ranked[-1]["priority"] == pytest.approx(0.0)
