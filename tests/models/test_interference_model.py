"""Tests for the analytical interference-sensitivity model."""

import numpy as np
import pytest

from repro.config.errors import ConfigurationError
from repro.models.interference_model import InducedInterferenceModel, SensitivityModel


class TestSensitivityModel:
    def test_slowdown_grows_with_loi_and_remote_ratio(self):
        model = SensitivityModel()
        assert model.slowdown(0, 0.5, 0.3) == pytest.approx(1.0)
        assert model.slowdown(50, 0.5, 0.3) > model.slowdown(25, 0.5, 0.3)
        assert model.slowdown(50, 0.8, 0.3) > model.slowdown(50, 0.2, 0.3)

    def test_high_arithmetic_intensity_absorbs_interference(self):
        model = SensitivityModel()
        memory_bound = model.slowdown(50, 0.5, 0.2)
        compute_bound = model.slowdown(50, 0.5, 100.0)
        assert compute_bound < memory_bound
        assert compute_bound == pytest.approx(1.0, abs=0.01)

    def test_relative_performance_is_reciprocal(self):
        model = SensitivityModel()
        assert model.relative_performance(50, 0.5, 0.3) == pytest.approx(
            1.0 / model.slowdown(50, 0.5, 0.3)
        )

    def test_fit_recovers_known_constant(self):
        true = SensitivityModel(k=0.4, ai_scale=2.0)
        observations = []
        rng = np.random.default_rng(0)
        for _ in range(50):
            loi = rng.uniform(0, 50)
            ratio = rng.uniform(0, 1)
            ai = rng.uniform(0.05, 20)
            observations.append(
                {
                    "loi": loi,
                    "remote_access_ratio": ratio,
                    "arithmetic_intensity": ai,
                    "slowdown": true.slowdown(loi, ratio, ai),
                }
            )
        fitted = SensitivityModel.fit(observations)
        assert fitted.k == pytest.approx(0.4, rel=0.01)
        assert np.max(np.abs(fitted.residuals(observations))) < 1e-6

    def test_fit_requires_informative_observations(self):
        with pytest.raises(ConfigurationError):
            SensitivityModel.fit(
                [{"loi": 0, "remote_access_ratio": 0, "arithmetic_intensity": 1, "slowdown": 1.0}]
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SensitivityModel(k=-1.0)
        with pytest.raises(ConfigurationError):
            SensitivityModel(ai_scale=0.0)


class TestInducedInterferenceModel:
    def test_ic_grows_with_occupancy(self):
        model = InducedInterferenceModel(c=1.6)
        assert model.interference_coefficient(0.0, 56e9) == pytest.approx(1.0)
        assert model.interference_coefficient(28e9, 56e9) == pytest.approx(1.8)
        assert model.interference_coefficient(200e9, 56e9) == pytest.approx(2.6)  # capped at full occupancy

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            InducedInterferenceModel().interference_coefficient(1e9, 0.0)
