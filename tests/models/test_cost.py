"""Tests for the memory cost / provisioning models."""

import pytest

from repro.config.errors import ConfigurationError
from repro.models.cost import (
    MemoryPriceModel,
    ProvisioningScenario,
    utilization_based_scenario,
)


class TestMemoryPriceModel:
    def test_hbm_premium_range(self):
        prices = MemoryPriceModel(ddr_per_gb=4.0)
        low, high = prices.hbm_cost(512, 1000)
        assert low == pytest.approx(512 * 1000 * 4.0 * 3)
        assert high == pytest.approx(512 * 1000 * 4.0 * 5)
        assert low < prices.hbm_cost_mid(512, 1000) < high
        assert prices.hbm_per_gb_mid == pytest.approx(16.0)

    def test_ddr_cost(self):
        prices = MemoryPriceModel(ddr_per_gb=4.0)
        assert prices.ddr_cost(512, 9408) == pytest.approx(512 * 9408 * 4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryPriceModel(ddr_per_gb=0.0)
        with pytest.raises(ConfigurationError):
            MemoryPriceModel(hbm_multiplier_low=6.0, hbm_multiplier_high=5.0)


class TestProvisioningScenario:
    def test_peak_of_sums_beats_sum_of_peaks(self):
        # One big job, many small ones: per-node provisioning must size every
        # node for the big one.
        scenario = ProvisioningScenario(
            job_peaks_gb=(500.0, 100.0, 100.0, 100.0), node_local_gb=128.0
        )
        assert scenario.sum_of_peaks_gb() == pytest.approx(2000.0)
        pooled = scenario.peak_of_sums_gb()
        assert pooled < scenario.sum_of_peaks_gb()
        assert scenario.savings_gb() == pytest.approx(2000.0 - pooled)
        assert 0.0 < scenario.savings_fraction() < 1.0
        assert scenario.cost_savings() == pytest.approx(scenario.savings_gb() * 4.0)

    def test_no_savings_when_all_jobs_identical_and_fit_locally(self):
        scenario = ProvisioningScenario(job_peaks_gb=(100.0, 100.0), node_local_gb=100.0)
        assert scenario.peak_of_sums_gb() == pytest.approx(200.0)
        assert scenario.savings_fraction() >= 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProvisioningScenario(job_peaks_gb=(), node_local_gb=10.0)
        with pytest.raises(ConfigurationError):
            ProvisioningScenario(job_peaks_gb=(-1.0,), node_local_gb=10.0)
        with pytest.raises(ConfigurationError):
            ProvisioningScenario(job_peaks_gb=(1.0,), node_local_gb=-10.0)


class TestUtilizationScenario:
    def test_built_from_utilisation_samples(self):
        # The paper's observation: most jobs use far less than node capacity.
        samples = [0.1, 0.2, 0.15, 0.8, 0.05]
        scenario = utilization_based_scenario(10, 512.0, samples, node_local_fraction=0.25)
        assert scenario.n_nodes == 10
        assert scenario.node_local_gb == pytest.approx(128.0)
        assert scenario.savings_fraction() > 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            utilization_based_scenario(0, 512.0, [0.5])
        with pytest.raises(ConfigurationError):
            utilization_based_scenario(4, 512.0, [])
        with pytest.raises(ConfigurationError):
            utilization_based_scenario(4, 512.0, [1.5])
