"""Integration tests: the paper's headline qualitative claims.

Each test corresponds to a conclusion the paper draws from its evaluation.
These are the assertions that must keep holding for the reproduction to be
faithful in *shape*, regardless of absolute numbers.
"""

import pytest

from repro.profiler.level1 import Level1Profiler
from repro.profiler.level2 import Level2Profiler
from repro.profiler.level3 import Level3Profiler
from repro.sim import ConstantInterference, ExecutionEngine, Platform
from repro.workloads import build_all, build_workload


@pytest.fixture(scope="module")
def specs():
    return {spec.name: spec for spec in build_all(1.0)}


@pytest.fixture(scope="module")
def prefetch_reports(specs):
    profiler = Level1Profiler(seed=0)
    return {name: profiler.profile(spec).prefetch for name, spec in specs.items()}


@pytest.fixture(scope="module")
def sensitivity_50(specs):
    profiler = Level3Profiler(seed=0)
    losses = {}
    for name, spec in specs.items():
        platform = Platform.pooled(spec.footprint_bytes, 0.50)
        curve = profiler.sensitivity(spec, platform, (0.0, 50.0))
        losses[name] = curve.max_performance_loss
    return losses


class TestSection4WorkloadCharacterisation:
    def test_prefetching_is_suitable_for_scientific_workloads(self, prefetch_reports):
        """Unlike cloud workloads, most HPC codes show high accuracy and real gains."""
        high_accuracy = [r for r in prefetch_reports.values() if r.accuracy > 0.8]
        assert len(high_accuracy) >= 3
        gains = [r.performance_gain for r in prefetch_reports.values()]
        assert max(gains) > 0.3  # NekRS-class gains exist

    def test_nekrs_gains_most_and_superlu_wastes_most_traffic(self, prefetch_reports):
        assert max(prefetch_reports, key=lambda n: prefetch_reports[n].performance_gain) == "NekRS"
        assert max(prefetch_reports, key=lambda n: prefetch_reports[n].excess_traffic) == "SuperLU"

    def test_xsbench_prefetcher_backs_off(self, prefetch_reports):
        """Lowest coverage, yet very little wasted traffic (the prefetcher throttles)."""
        xs = prefetch_reports["XSBench"]
        assert xs.coverage < 0.05
        assert xs.excess_traffic < 0.05


class TestSection5MultiTier:
    def test_uniform_codes_follow_capacity_ratio_and_xsbench_does_not(self, specs):
        profiler = Level2Profiler(seed=0)
        for fraction in (0.75, 0.25):
            hpl = profiler.profile(
                specs["HPL"], Platform.pooled(specs["HPL"].footprint_bytes, fraction)
            )
            xs = profiler.profile(
                specs["XSBench"], Platform.pooled(specs["XSBench"].footprint_bytes, fraction)
            )
            assert hpl.phase_report("p2").remote_access_ratio == pytest.approx(
                1 - fraction, abs=0.12
            )
            assert xs.phase_report("p2").remote_access_ratio < 0.10


class TestSection6Interference:
    def test_hypre_and_nekrs_are_most_sensitive(self, sensitivity_50):
        most_sensitive = sorted(sensitivity_50, key=sensitivity_50.get, reverse=True)[:3]
        assert "Hypre" in most_sensitive
        assert "NekRS" in most_sensitive

    def test_hpl_and_xsbench_are_least_sensitive(self, sensitivity_50):
        least = sorted(sensitivity_50, key=sensitivity_50.get)[:2]
        assert set(least) == {"HPL", "XSBench"}
        assert sensitivity_50["HPL"] < 0.05
        assert sensitivity_50["XSBench"] < 0.05

    def test_sensitivity_needs_remote_access_and_low_intensity(self, specs, sensitivity_50):
        """HPL has lots of remote access but high AI -> insensitive; XSBench has
        low remote access -> insensitive; Hypre has both risk factors -> sensitive."""
        assert sensitivity_50["Hypre"] > 5 * max(sensitivity_50["HPL"], 1e-4)

    def test_interference_coefficients_track_pool_traffic(self, specs):
        profiler = Level3Profiler(seed=0)
        reports = profiler.interference_coefficients(
            [specs["Hypre"], specs["NekRS"], specs["HPL"], specs["XSBench"]], 0.50
        )
        ics = {name: r.interference_coefficient for name, r in reports.items()}
        assert min(ics["Hypre"], ics["NekRS"]) > max(ics["HPL"], ics["XSBench"])


class TestMisconceptions:
    def test_extra_tier_increases_usable_bandwidth(self, specs):
        """Misconception 1: multi-tier memory does not necessarily lower bandwidth."""
        spec = specs["Hypre"]
        local = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        # A generous pool (90% local / plenty of remote) lets both tiers stream.
        platform = Platform.explicit(
            int(spec.footprint_bytes * 0.7), int(spec.footprint_bytes), label="split"
        )
        pooled = ExecutionEngine(platform, seed=0).run(spec)
        local_bw = local.total_dram_bytes / local.total_runtime
        pooled_bw = pooled.total_dram_bytes / pooled.total_runtime
        assert pooled_bw > local_bw * 0.95

    def test_interference_free_pooling_does_not_ruin_compute_bound_codes(self, specs):
        """Misconception 2: performance is not always badly degraded."""
        spec = specs["HPL"]
        local = ExecutionEngine(Platform.local_only(), seed=0).run(spec)
        pooled = ExecutionEngine(
            Platform.pooled(spec.footprint_bytes, 0.50), seed=0
        ).run(spec)
        assert pooled.total_runtime < local.total_runtime * 1.10
