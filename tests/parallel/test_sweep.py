"""Sharded-vs-serial contracts of the sweep engine (``repro.parallel``).

The three promises every sweep caller relies on:

* **Bit-identity** — ``jobs=1`` and ``jobs=4`` produce identical results
  *and* identical merged telemetry, because both run the same isolated
  execution wrapper and merge snapshots in submission order.
* **Determinism** — derived seeds are a function of ``(base_seed, task,
  params)`` only, so reordering the grid or changing the worker count never
  changes an individual point's inputs.
* **Memoization** — repeated fingerprints execute once, within and across
  :meth:`SweepRunner.map` calls, and memo hits do not re-merge telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import telemetry
from repro.parallel import SweepRunner, derive_seed, fingerprint


@dataclass(frozen=True)
class PointConfig:
    """A picklable stand-in for a topology/workload/policy config."""

    tenants: int
    policy: str = "least-loaded"


def sim_task(x, seed=None):
    """Deterministic sweep task that also records telemetry."""
    telemetry.metrics().counter("sweeptest.calls").inc()
    telemetry.metrics().histogram("sweeptest.x").observe(x)
    telemetry.metrics().gauge("sweeptest.last_x").set(x)
    return {"x": x, "seed": seed, "value": x * x}


def config_task(config, seed=None):
    """Sweep task keyed on a dataclass config, like the real studies."""
    return {"tenants": config.tenants, "policy": config.policy, "seed": seed}


@pytest.fixture()
def telemetry_on():
    telemetry.enable(reset=True)
    try:
        yield telemetry
    finally:
        telemetry.disable()
        telemetry.registry().reset()
        telemetry.tracer().reset()


PARAMS = [{"x": x} for x in (3, 1, 4, 1, 5, 9, 2, 6)]


class TestBitIdentity:
    def test_jobs_1_vs_4_identical_results_and_counters(self, telemetry_on):
        """The acceptance test: sharding changes wall-clock, nothing else."""
        merged = {}
        results = {}
        for jobs in (1, 4):
            with telemetry.isolated(True) as registry:
                results[jobs] = SweepRunner(jobs=jobs).map(sim_task, PARAMS)
                merged[jobs] = registry.snapshot()
        assert results[1] == results[4]
        assert merged[1] == merged[4]
        # The merged registry saw every execution: 7 unique x values ran
        # (x=1 repeats and is memoized), in submission order.
        calls = merged[1]["sweeptest.calls"]["value"]
        assert calls == 7
        assert merged[1]["sweeptest.x"]["values"] == [3, 1, 4, 5, 9, 2, 6]

    def test_results_in_input_order(self):
        results = SweepRunner(jobs=4).map(sim_task, PARAMS)
        assert [r["x"] for r in results] == [p["x"] for p in PARAMS]

    def test_dataclass_configs_round_trip(self):
        params = [
            {"config": PointConfig(tenants=n, policy=p)}
            for n in (1, 2)
            for p in ("least-loaded", "random")
        ]
        serial = SweepRunner(jobs=1).map(config_task, params)
        sharded = SweepRunner(jobs=4).map(config_task, params)
        assert serial == sharded
        assert [r["tenants"] for r in serial] == [1, 1, 2, 2]


class TestDeterminism:
    def test_derived_seed_ignores_position_and_jobs(self):
        runner_a = SweepRunner(jobs=1, base_seed=7)
        runner_b = SweepRunner(jobs=4, base_seed=7)
        forward = runner_a.map(sim_task, PARAMS)
        backward = runner_b.map(sim_task, list(reversed(PARAMS)))
        by_x_fwd = {r["x"]: r["seed"] for r in forward}
        by_x_bwd = {r["x"]: r["seed"] for r in backward}
        assert by_x_fwd == by_x_bwd
        assert all(seed is not None for seed in by_x_fwd.values())

    def test_base_seed_changes_derived_seeds(self):
        seed_0 = derive_seed(0, sim_task, {"x": 3})
        seed_1 = derive_seed(1, sim_task, {"x": 3})
        assert seed_0 != seed_1

    def test_explicit_seed_is_never_overridden(self):
        (result,) = SweepRunner(base_seed=99).map(sim_task, [{"x": 1, "seed": 42}])
        assert result["seed"] == 42

    def test_fingerprint_is_order_and_identity_insensitive(self):
        a = fingerprint(sim_task, {"x": 1, "seed": 2})
        b = fingerprint(sim_task, {"seed": 2, "x": 1})
        assert a == b
        c = fingerprint(config_task, {"config": PointConfig(tenants=3)})
        d = fingerprint(config_task, {"config": PointConfig(tenants=3)})
        assert c == d
        assert c != fingerprint(config_task, {"config": PointConfig(tenants=4)})


class TestMemoization:
    def test_duplicates_execute_once_within_a_batch(self, telemetry_on):
        runner = SweepRunner(jobs=1)
        results = runner.map(sim_task, [{"x": 1}] * 5)
        assert results == [results[0]] * 5
        registry = telemetry.registry()
        assert registry.counter("sweeptest.calls").value == 1
        assert registry.counter("parallel.sweep.points").value == 5
        assert registry.counter("parallel.sweep.executed").value == 1
        assert registry.counter("parallel.sweep.memo_hits").value == 4

    def test_memo_persists_across_map_calls(self, telemetry_on):
        runner = SweepRunner(jobs=1)
        first = runner.map(sim_task, [{"x": 2}])
        second = runner.map(sim_task, [{"x": 2}])
        assert first == second
        assert telemetry.registry().counter("sweeptest.calls").value == 1

    def test_memoize_off_always_executes(self, telemetry_on):
        runner = SweepRunner(jobs=1, memoize=False)
        runner.map(sim_task, [{"x": 1}] * 3)
        assert telemetry.registry().counter("sweeptest.calls").value == 3

    def test_memo_hits_do_not_remerge_telemetry(self, telemetry_on):
        runner = SweepRunner(jobs=1)
        runner.map(sim_task, [{"x": 1}])
        runner.map(sim_task, [{"x": 1}])
        # One execution -> one observation, regardless of memo hits.
        assert telemetry.registry().histogram("sweeptest.x").count == 1


class TestTelemetryPropagation:
    def test_disabled_parent_records_nothing(self):
        assert not telemetry.enabled()
        with telemetry.isolated(None) as registry:
            SweepRunner(jobs=1).map(sim_task, [{"x": 1}])
            assert "sweeptest.calls" not in registry

    def test_record_override_forces_collection(self):
        assert not telemetry.enabled()
        with telemetry.isolated(None) as registry:
            SweepRunner(jobs=1, record_telemetry=True).map(sim_task, [{"x": 1}])
            assert registry.counter("sweeptest.calls").value == 1

    def test_sharded_workers_inherit_recording(self, telemetry_on):
        with telemetry.isolated(True) as registry:
            SweepRunner(jobs=2).map(sim_task, [{"x": 1}, {"x": 2}])
            assert registry.counter("sweeptest.calls").value == 2
            assert registry.gauge("sweeptest.last_x").value == 2


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)
