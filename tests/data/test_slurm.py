"""Tests for the streaming sacct ingester (:mod:`repro.data.slurm`).

Covers the tentpole contract: field parsers, step folding, per-reason skip
accounting with the conservation invariant, limit/window semantics, the
structural :class:`TraceError` on broken headers, telemetry counters, the
synthetic generator's determinism, and — via a counting line source — that
the reader is genuinely streaming (peak buffered rows stays O(one job)).
"""

from __future__ import annotations

import pytest

from repro.config.errors import ConfigurationError, TraceError
from repro.config.units import GiB, KiB, MiB
from repro.data.slurm import (
    IngestReport,
    SacctReader,
    TraceJob,
    parse_elapsed,
    parse_timestamp,
    read_sacct,
    synthesize_sacct_lines,
    write_synthetic_trace,
)

HEADER = "JobIDRaw|JobName|State|NNodes|ElapsedRaw|MaxRSS|AveRSS|Submit|Start|End\n"


def row(job_id, state="COMPLETED", nnodes=1, elapsed="100", max_rss="1024K",
        ave_rss="512K", submit="2024-01-01T00:00:00", start="2024-01-01T00:01:00",
        end="2024-01-01T00:02:40"):
    return (
        f"{job_id}|name|{state}|{nnodes}|{elapsed}|{max_rss}|{ave_rss}|"
        f"{submit}|{start}|{end}\n"
    )


class TestParseElapsed:
    def test_day_form(self):
        assert parse_elapsed("1-02:03:04") == 93784.0

    def test_hms_and_ms(self):
        assert parse_elapsed("02:03:04") == 7384.0
        assert parse_elapsed("05:30") == 330.0
        assert parse_elapsed("00:00:00.500") == 0.5

    def test_bare_seconds(self):
        assert parse_elapsed("42") == 42.0
        assert parse_elapsed("42.5") == 42.5

    @pytest.mark.parametrize("bad", ["", "abc", "1:2:3:4", "x-00:00:01", "-5"])
    def test_garbage_raises_configuration_error(self, bad):
        with pytest.raises(ConfigurationError):
            parse_elapsed(bad)


class TestParseTimestamp:
    def test_iso(self):
        a = parse_timestamp("2024-01-01T00:00:00")
        b = parse_timestamp("2024-01-01T01:00:00")
        assert b - a == 3600.0

    @pytest.mark.parametrize("null", ["", "Unknown", "None", "N/A"])
    def test_null_markers_return_none(self, null):
        assert parse_timestamp(null) is None

    def test_garbage_raises(self):
        with pytest.raises(ConfigurationError):
            parse_timestamp("yesterday")


class TestFolding:
    def test_steps_fold_into_allocation(self):
        lines = [
            HEADER,
            row("1", nnodes=4, max_rss="", ave_rss=""),   # allocation: no RSS
            row("1.batch", nnodes=1, max_rss="2048K", ave_rss="1024K"),
            row("1.extern", nnodes=4, max_rss="1024K", ave_rss="512K"),
            row("1.0", nnodes=4, max_rss="3072K", ave_rss="2048K", elapsed="50"),
        ]
        jobs = list(SacctReader(lines))
        assert len(jobs) == 1
        job = jobs[0]
        assert job.job_id == "1"
        assert job.nnodes == 4
        assert job.elapsed_s == 100.0
        assert job.max_rss_bytes == 3072 * KiB  # max over steps
        assert job.ave_rss_bytes == 2048 * KiB
        assert job.steps_folded == 3
        assert job.rows_folded == 4
        assert job.footprint_bytes == 3072 * KiB * 4

    def test_rss_suffixes_are_binary(self):
        lines = [HEADER, row("1", max_rss="2G", ave_rss="512M")]
        job = next(iter(SacctReader(lines)))
        assert job.max_rss_bytes == 2 * GiB
        assert job.ave_rss_bytes == 512 * MiB

    def test_unsuffixed_rss_is_kib(self):
        lines = [HEADER, row("1", max_rss="4056", ave_rss="")]
        job = next(iter(SacctReader(lines)))
        assert job.max_rss_bytes == 4056 * KiB

    def test_timestamp_envelope(self):
        lines = [
            HEADER,
            row("1", submit="2024-01-01T00:00:10", start="2024-01-01T00:01:00",
                end="2024-01-01T00:02:00"),
            row("1.batch", submit="2024-01-01T00:00:05", start="2024-01-01T00:00:50",
                end="2024-01-01T00:03:00"),
        ]
        job = next(iter(SacctReader(lines)))
        assert job.submit_unix == parse_timestamp("2024-01-01T00:00:05")
        assert job.start_unix == parse_timestamp("2024-01-01T00:00:50")
        assert job.end_unix == parse_timestamp("2024-01-01T00:03:00")
        assert job.wait_s == 45.0

    def test_reappearing_job_id_starts_new_group(self):
        lines = [HEADER, row("1"), row("2"), row("1")]
        jobs = list(SacctReader(lines))
        assert [j.job_id for j in jobs] == ["1", "2", "1"]

    def test_orphan_step_group_folds_without_allocation_row(self):
        lines = [HEADER, row("7.batch", max_rss="1024K")]
        jobs = list(SacctReader(lines))
        assert len(jobs) == 1
        assert jobs[0].job_id == "7"
        assert jobs[0].rows_folded == 1
        assert jobs[0].steps_folded == 1


class TestSkipsAndConservation:
    def test_every_skip_reason_is_counted(self):
        lines = [
            HEADER,
            row("1"),                                          # fine
            "too|few|columns\n",                               # column-count
            row("2", max_rss="12XQ"),                          # malformed-field
            row("3", state="RUNNING", end="Unknown"),          # unfinished
            row("4", state="CANCELLED by 1000", elapsed="0",
                start="Unknown", end="Unknown", max_rss=""),   # cancelled-no-runtime
            row("5", elapsed="0"),                             # zero-elapsed
            row("6", submit="Unknown"),                        # no-submit-time
            row("", max_rss=""),                               # empty-job-id
        ]
        report = IngestReport()
        jobs = list(SacctReader(lines, report=report))
        assert [j.job_id for j in jobs] == ["1"]
        assert report.skipped_by_reason == {
            "column-count": 1,
            "malformed-field": 1,
            "unfinished": 1,
            "cancelled-no-runtime": 1,
            "zero-elapsed": 1,
            "no-submit-time": 1,
            "empty-job-id": 1,
        }
        assert report.conserved
        assert report.rows_read == 8
        assert report.rows_in_yielded_jobs == 1

    def test_cancelled_job_that_ran_is_replayable(self):
        lines = [HEADER, row("1", state="CANCELLED by 1000", elapsed="500")]
        jobs = list(SacctReader(lines))
        assert len(jobs) == 1
        assert jobs[0].state == "CANCELLED"

    def test_group_skip_covers_all_rows_of_the_group(self):
        lines = [
            HEADER,
            row("1", state="RUNNING", end="Unknown"),
            row("1.batch", state="RUNNING", end="Unknown"),
            row("1.extern", state="RUNNING", end="Unknown"),
        ]
        report = IngestReport()
        assert list(SacctReader(lines, report=report)) == []
        assert report.skipped_by_reason == {"unfinished": 3}
        assert report.conserved

    def test_examples_are_capped(self):
        lines = [HEADER] + ["bad|row\n"] * 50
        report = IngestReport()
        list(SacctReader(lines, report=report))
        assert report.skipped_by_reason["column-count"] == 50
        assert len(report.examples) == report.max_examples

    def test_summary_shape(self):
        report = IngestReport()
        list(SacctReader([HEADER, row("1")], report=report))
        summary = report.summary()
        assert summary == {
            "rows_read": 1,
            "jobs_yielded": 1,
            "steps_folded": 0,
            "rows_skipped": 0,
            "skipped_by_reason": {},
            "conserved": True,
        }


class TestStructuralErrors:
    def test_missing_required_column_raises_trace_error(self):
        lines = ["JobIDRaw|State|NNodes\n", "1|COMPLETED|1\n"]
        with pytest.raises(TraceError, match="missing required column"):
            list(SacctReader(lines))

    def test_empty_dump_raises_trace_error(self):
        with pytest.raises(TraceError, match="no header"):
            list(SacctReader([]))

    def test_header_fallbacks_jobid_and_elapsed(self):
        lines = [
            "JobID|State|NNodes|Elapsed|MaxRSS|Submit\n",
            "9|COMPLETED|2|01:00:00|1024K|2024-01-01T00:00:00\n",
        ]
        jobs = list(SacctReader(lines))
        assert jobs[0].job_id == "9"
        assert jobs[0].elapsed_s == 3600.0

    def test_extra_columns_are_ignored(self):
        lines = [
            HEADER.rstrip("\n") + "|Partition|Account\n",
            row("1").rstrip("\n") + "|debug|proj\n",
        ]
        assert len(list(SacctReader(lines))) == 1


class TestReadSacct:
    def test_limit_stops_and_counts_exactly(self):
        lines = [HEADER] + [row(str(i)) for i in range(10)]
        report = IngestReport()
        jobs = list(read_sacct(lines, limit=3, report=report))
        assert len(jobs) == 3
        assert report.jobs_yielded == 3

    def test_window_filters_and_conserves(self):
        lines = [
            HEADER,
            row("1", submit="2024-01-01T00:00:00"),
            row("2", submit="2024-01-01T01:00:00"),
            row("3", submit="2024-01-01T02:00:00"),
        ]
        report = IngestReport()
        jobs = list(read_sacct(lines, window=(0, 3600), report=report))
        assert [j.job_id for j in jobs] == ["1", "2"]
        assert report.skipped_by_reason == {"outside-window": 1}
        assert report.conserved

    def test_open_window_bounds(self):
        lines = [
            HEADER,
            row("1", submit="2024-01-01T00:00:00"),
            row("2", submit="2024-01-01T01:00:00"),
        ]
        late = list(read_sacct(lines, window=(1800, None)))
        assert [j.job_id for j in late] == ["2"]

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "trace.psv"
        path.write_text(HEADER + row("1"), encoding="utf-8")
        jobs = list(read_sacct(path))
        assert jobs[0].job_id == "1"


class TestStreaming:
    def test_reader_never_buffers_more_than_one_job(self):
        """Peak concurrently-buffered rows is O(steps of one job), not O(trace)."""
        n_jobs, steps_per_job = 200, 5

        def lines():
            yield HEADER
            for i in range(n_jobs):
                yield row(str(i), nnodes=2, max_rss="", ave_rss="")
                for s in range(steps_per_job):
                    yield row(f"{i}.{s}", max_rss="1024K")

        reader = SacctReader(lines())
        peak = 0
        original_fold = reader._fold

        def spying_fold(group):
            nonlocal peak
            peak = max(peak, len(group))
            return original_fold(group)

        reader._fold = spying_fold
        jobs = sum(1 for _ in reader)
        assert jobs == n_jobs
        assert peak == steps_per_job + 1  # one allocation + its steps, never more

    def test_consumes_a_generator_without_rewinding(self):
        consumed = iter([HEADER, row("1"), row("2")])
        assert len(list(SacctReader(consumed))) == 2


class TestTelemetryCounters:
    def test_counters_track_ingestion(self):
        from repro import telemetry

        telemetry.enable(reset=True)
        try:
            lines = [HEADER, row("1"), row("1.batch"), "bad|row\n"]
            report = IngestReport()
            list(SacctReader(lines, report=report))
            registry = telemetry.registry()
            assert registry.counter("data.slurm.rows_read").value == 3
            assert registry.counter("data.slurm.rows_skipped").value == 1
            assert registry.counter("data.slurm.steps_folded").value == 1
            assert registry.counter("data.slurm.jobs_yielded").value == 1
        finally:
            telemetry.disable()


class TestSyntheticGenerator:
    def test_deterministic_in_seed(self):
        a = list(synthesize_sacct_lines(50, seed=3))
        b = list(synthesize_sacct_lines(50, seed=3))
        c = list(synthesize_sacct_lines(50, seed=4))
        assert a == b
        assert a != c

    def test_synthetic_trace_ingests_with_explained_skips_only(self):
        report = IngestReport()
        jobs = list(read_sacct(synthesize_sacct_lines(100, seed=1), report=report))
        assert jobs
        assert report.conserved
        # Every skip must be one of the two kinds the generator plants.
        assert set(report.skipped_by_reason) <= {"cancelled-no-runtime", "column-count"}
        assert all(isinstance(j, TraceJob) for j in jobs)
        assert all(j.elapsed_s > 0 and j.max_rss_bytes > 0 for j in jobs)

    def test_write_synthetic_trace_round_trips(self, tmp_path):
        path = tmp_path / "synthetic.psv"
        n_lines = write_synthetic_trace(path, 30, seed=2)
        assert n_lines == len(path.read_text(encoding="utf-8").splitlines())
        report = IngestReport()
        assert list(read_sacct(path, report=report))
        assert report.conserved
