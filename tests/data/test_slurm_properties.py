"""Property-based suite for the sacct ingester (hypothesis).

Pins the tentpole's algebraic contracts over wide input spaces:

* ``parse_size`` / ``parse_elapsed`` round-trip values rendered the way
  Slurm renders them;
* folding is monotone — a folded job's NNodes/RSS/elapsed is never below
  any constituent step's;
* row conservation — for any generated trace, fully consumed, every data
  row is folded into a yielded job or counted in exactly one skip reason.

``HYPOTHESIS_PROFILE=nightly`` raises the example budget (conftest.py).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st

from repro.config.units import GiB, KiB, MiB, TiB, parse_size
from repro.data.slurm import IngestReport, SacctReader, parse_elapsed

HEADER = "JobIDRaw|State|NNodes|ElapsedRaw|MaxRSS|AveRSS|Submit|Start|End\n"


# -- parser round-trips -------------------------------------------------------


@given(kib=st.integers(min_value=0, max_value=10**12))
def test_parse_size_round_trips_kib_rendering(kib):
    """Slurm renders RSS as '<n>K'; parsing that must recover exact bytes."""
    assert parse_size(f"{kib}K") == kib * KiB


@given(
    value=st.integers(min_value=0, max_value=10**6),
    suffix=st.sampled_from(["K", "M", "G", "T"]),
)
def test_parse_size_suffixes_are_exactly_binary(value, suffix):
    unit = {"K": KiB, "M": MiB, "G": GiB, "T": TiB}[suffix]
    assert parse_size(f"{value}{suffix}") == value * unit


@given(kib=st.integers(min_value=0, max_value=10**9))
def test_parse_size_qualifier_suffix_is_transparent(kib):
    """Older sacct emits per-node/per-task qualifiers; they must not change bytes."""
    plain = parse_size(f"{kib}K")
    assert parse_size(f"{kib}Kn") == plain
    assert parse_size(f"{kib}Kc") == plain


@given(seconds=st.integers(min_value=0, max_value=10**7))
def test_parse_elapsed_round_trips_clock_rendering(seconds):
    """Render seconds the way sacct's Elapsed does; parsing must invert it."""
    days, rest = divmod(seconds, 86400)
    h, rest = divmod(rest, 3600)
    m, s = divmod(rest, 60)
    text = f"{days}-{h:02d}:{m:02d}:{s:02d}" if days else f"{h:02d}:{m:02d}:{s:02d}"
    assert parse_elapsed(text) == float(seconds)
    assert parse_elapsed(str(seconds)) == float(seconds)  # ElapsedRaw form


# -- folding invariants -------------------------------------------------------

step_row = st.tuples(
    st.integers(min_value=1, max_value=64),      # nnodes
    st.integers(min_value=1, max_value=10**6),   # elapsed seconds
    st.integers(min_value=0, max_value=10**8),   # max rss KiB
    st.integers(min_value=0, max_value=10**8),   # ave rss KiB
)


@given(steps=st.lists(step_row, min_size=0, max_size=6), alloc=step_row)
def test_fold_is_never_below_any_constituent(steps, alloc):
    def render(job_id, cells):
        nn, el, mx, av = cells
        return (
            f"{job_id}|COMPLETED|{nn}|{el}|{mx}K|{av}K|"
            "2024-01-01T00:00:00|2024-01-01T00:01:00|2024-01-01T01:00:00\n"
        )

    lines = [HEADER, render("1", alloc)]
    lines += [render(f"1.{i}", cells) for i, cells in enumerate(steps)]
    jobs = list(SacctReader(lines))
    assert len(jobs) == 1
    job = jobs[0]
    for nn, el, mx, av in [alloc] + steps:
        assert job.nnodes >= nn
        assert job.elapsed_s >= el
        assert job.max_rss_bytes >= mx * KiB
        assert job.ave_rss_bytes >= av * KiB
    assert job.steps_folded == len(steps)
    assert job.rows_folded == len(steps) + 1
    assert job.footprint_bytes >= job.max_rss_bytes


# -- conservation -------------------------------------------------------------

#: One job group: (state, n_steps, elapsed, corrupt_row_after?).
job_shape = st.tuples(
    st.sampled_from(["COMPLETED", "CANCELLED by 1000", "RUNNING", "FAILED", "TIMEOUT"]),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=5000),
    st.booleans(),
)


@given(shapes=st.lists(job_shape, min_size=0, max_size=12))
def test_every_row_is_folded_or_skipped(shapes):
    lines = [HEADER]
    data_rows = 0
    for index, (state, n_steps, elapsed, corrupt_after) in enumerate(shapes):
        job_id = str(1000 + index)
        running = state == "RUNNING"
        start = "Unknown" if elapsed == 0 else "2024-01-01T00:01:00"
        end = "Unknown" if running or elapsed == 0 else "2024-01-01T02:00:00"
        for step in [""] + [f".{i}" for i in range(n_steps)]:
            lines.append(
                f"{job_id}{step}|{state}|2|{elapsed}|1024K|512K|"
                f"2024-01-01T00:00:00|{start}|{end}\n"
            )
            data_rows += 1
        if corrupt_after:
            lines.append("corrupted|row\n")
            data_rows += 1
    report = IngestReport()
    jobs = list(SacctReader(lines, report=report))
    assert report.rows_read == data_rows
    assert report.conserved
    assert report.rows_in_yielded_jobs + report.rows_skipped == data_rows
    assert report.jobs_yielded == len(jobs)
    # Yielded jobs are exactly the replayable shapes (corrupt rows between
    # groups never split or swallow a neighbouring job).
    replayable = sum(
        1 for state, _, elapsed, _ in shapes
        if state not in ("RUNNING",) and elapsed > 0
    )
    assert len(jobs) == replayable
