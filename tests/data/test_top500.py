"""Tests for the Top-500 memory-configuration dataset."""

import pytest

from repro.data.top500 import (
    MEMORY_EVOLUTION,
    TOP10_NOV2022,
    memory_evolution,
    multi_tier_share,
    system,
    top10_systems,
)
from repro.models.cost import MemoryPriceModel


def test_table1_has_ten_systems_in_rank_order():
    systems = top10_systems()
    assert len(systems) == 10
    assert [s.rank for s in systems] == list(range(1, 11))
    assert systems[0].name == "Frontier"


def test_frontier_row_matches_paper():
    frontier = system("Frontier")
    assert frontier.ddr_gb_per_node == 512
    assert frontier.hbm_gb_per_node == 512
    assert frontier.nodes == 9408
    assert frontier.hbm_bandwidth_tbs_per_node == pytest.approx(12.8)
    # Paper's estimates: ~$34M DDR, ~$135M HBM (we match the order of magnitude).
    assert frontier.estimated_ddr_cost() == pytest.approx(34e6, rel=0.45)
    assert frontier.estimated_hbm_cost() == pytest.approx(135e6, rel=0.45)


def test_fugaku_has_no_ddr_tier():
    fugaku = system("Fugaku")
    assert fugaku.ddr_gb_per_node is None
    assert fugaku.estimated_ddr_cost() == 0.0
    assert fugaku.has_hbm and not fugaku.has_multi_tier_memory


def test_multi_tier_share_is_majority():
    # The paper: 8 of the top 10 use HBM-based multi-tier memory.
    assert multi_tier_share() == pytest.approx(0.8)


def test_lookup_is_case_insensitive_prefix():
    assert system("fron").name == "Frontier"
    with pytest.raises(KeyError):
        system("DeepBlue")


def test_cost_scales_with_price_model():
    cheap = MemoryPriceModel(ddr_per_gb=1.0)
    expensive = MemoryPriceModel(ddr_per_gb=8.0)
    frontier = system("Frontier")
    assert frontier.estimated_ddr_cost(expensive) == pytest.approx(
        8 * frontier.estimated_ddr_cost(cheap)
    )


def test_memory_evolution_series():
    points = memory_evolution()
    assert len(points) >= 8
    years = [p.year for p in points]
    assert years == sorted(years)
    # Capacity and bandwidth per node grew dramatically over 15 years.
    assert points[-1].memory_gb_per_node > 10 * points[0].memory_gb_per_node
    assert points[-1].memory_bandwidth_gbs_per_node > 10 * points[0].memory_bandwidth_gbs_per_node
    for p in points:
        assert p.bandwidth_per_core_gbs >= 0
        assert p.capacity_per_core_gb >= 0
