"""Fixtures for the telemetry tests.

The registry/tracer/enabled flag are process-wide, so every test that turns
recording on must restore a clean disabled state afterwards — otherwise
telemetry from one test leaks into the next (or into the fabric/scheduler
suites, which assume instrumentation is a no-op).
"""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture()
def telemetry_on():
    """Enable telemetry on a fresh registry/tracer; fully reset on teardown."""
    telemetry.enable(reset=True)
    try:
        yield telemetry
    finally:
        telemetry.disable()
        telemetry.registry().reset()
        telemetry.tracer().reset()


@pytest.fixture()
def telemetry_off():
    """Guarantee telemetry is disabled and empty for the duration of a test."""
    telemetry.disable()
    telemetry.registry().reset()
    telemetry.tracer().reset()
    try:
        yield telemetry
    finally:
        telemetry.disable()
        telemetry.registry().reset()
        telemetry.tracer().reset()
