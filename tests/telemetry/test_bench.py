"""Tests for the bench JSON schema and the perf harness (regression gate)."""

import copy
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.telemetry.benchjson import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    REQUIRED_GROUPS,
    validate_bench,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A minimal document satisfying every schema rule.
VALID_DOC = {
    "schema": BENCH_SCHEMA,
    "version": BENCH_SCHEMA_VERSION,
    "created_unix": 1700000000.0,
    "quick": True,
    "python": "3.12.0",
    "benchmarks": [
        {
            "name": f"{group}.case",
            "group": group,
            "config": {},
            "repeats": 3,
            "mean_s": 0.01,
            "min_s": 0.009,
            "throughput_per_s": 100.0,
        }
        for group in REQUIRED_GROUPS
    ],
    "telemetry_overhead": {
        "noop_span_ns": 100.0,
        "noop_counter_ns": 80.0,
        "events": 1000,
        "hook_calls": 1200,
        "disabled_wall_s": 0.5,
        "enabled_wall_s": 0.6,
        "enabled_overhead_pct": 20.0,
        "disabled_overhead_pct": 0.02,
    },
}


class TestValidateBench:
    def test_valid_document_passes(self):
        assert validate_bench(copy.deepcopy(VALID_DOC)) == []

    def test_wrong_schema_or_version(self):
        doc = copy.deepcopy(VALID_DOC)
        doc["schema"] = "other"
        assert validate_bench(doc)
        doc = copy.deepcopy(VALID_DOC)
        doc["version"] = 99
        assert validate_bench(doc)

    def test_missing_group_reported(self):
        doc = copy.deepcopy(VALID_DOC)
        doc["benchmarks"] = [b for b in doc["benchmarks"] if b["group"] != "cluster_events"]
        errors = validate_bench(doc)
        assert any("cluster_events" in e for e in errors)

    def test_missing_bench_key_reported(self):
        doc = copy.deepcopy(VALID_DOC)
        del doc["benchmarks"][0]["mean_s"]
        assert validate_bench(doc)

    def test_negative_timing_reported(self):
        doc = copy.deepcopy(VALID_DOC)
        doc["benchmarks"][0]["mean_s"] = -1.0
        assert validate_bench(doc)

    def test_incomplete_overhead_reported(self):
        doc = copy.deepcopy(VALID_DOC)
        del doc["telemetry_overhead"]["hook_calls"]
        assert validate_bench(doc)

    def test_non_dict_rejected(self):
        assert validate_bench([])
        assert validate_bench({"schema": BENCH_SCHEMA})


class TestCommittedDocument:
    def test_bench_cosim_json_at_repo_root_is_valid(self):
        path = REPO_ROOT / "BENCH_cosim.json"
        assert path.exists(), "BENCH_cosim.json must be committed at the repo root"
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert validate_bench(data) == []
        overhead = data["telemetry_overhead"]
        # The acceptance bound the instrumentation must keep honouring.
        assert overhead["disabled_overhead_pct"] < 2.0


class TestHarnessQuickRun:
    def test_quick_run_emits_valid_document(self, tmp_path):
        out = tmp_path / "bench_quick.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "bench_perf.py"),
             "--quick", "--out", str(out)],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        with open(out, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        assert validate_bench(data) == []
        assert data["quick"] is True
        groups = {b["group"] for b in data["benchmarks"]}
        assert groups == set(REQUIRED_GROUPS)

    def test_check_mode_validates_existing_file(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(VALID_DOC))
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "bench_perf.py"),
             "--check", str(path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "valid" in result.stdout

    def test_check_mode_fails_on_invalid_file(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps({"schema": "nope"}))
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "bench_perf.py"),
             "--check", str(path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 1
