"""Unit tests for the bench-document comparator behind ``--compare``.

Two synthetic documents (a baseline and a current run) exercise every
comparator outcome: clean pass, regression, config-mismatch skip, one-sided
skips, unusable statistics and the threshold edge — plus the versioned
schema split (v1/v2/v3) of :func:`validate_bench` the comparator relies on.
"""

from __future__ import annotations

import pytest

from repro.telemetry.benchjson import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    DEFAULT_REGRESSION_THRESHOLD,
    REQUIRED_GROUPS,
    REQUIRED_GROUPS_V1,
    REQUIRED_GROUPS_V2,
    REQUIRED_GROUPS_V3,
    SUPPORTED_VERSIONS,
    compare_bench,
    validate_bench,
)


def bench_row(name, min_s, config=None, **overrides):
    row = {
        "name": name,
        "group": name.split(".")[0],
        "config": config if config is not None else {"n": 4},
        "repeats": 5,
        "mean_s": min_s * 1.1 if min_s is not None else None,
        "min_s": min_s,
        "throughput_per_s": 1.0 / min_s if min_s else 0.0,
    }
    row.update(overrides)
    return row


def document(benchmarks, version=BENCH_SCHEMA_VERSION):
    return {
        "schema": BENCH_SCHEMA,
        "version": version,
        "created_unix": 1_754_524_800.0,
        "quick": True,
        "python": "3.11.7",
        "benchmarks": benchmarks,
        "telemetry_overhead": {
            "noop_span_ns": 100.0,
            "noop_counter_ns": 50.0,
            "events": 1000,
            "hook_calls": 1000,
            "disabled_wall_s": 1.0,
            "enabled_wall_s": 1.1,
            "enabled_overhead_pct": 10.0,
            "disabled_overhead_pct": 0.1,
        },
    }


BASELINE = document(
    [
        bench_row("fabric_solver.small", 0.010),
        bench_row("solver_vectorized.vectorized", 0.020),
        bench_row("cluster_fabric.step", 0.100),
        bench_row("rack_cosim_step.quick", 0.050, config={"steps": 200}),
        bench_row("cluster_events.replay", 0.030),
    ]
)


class TestCompareBench:
    def test_identical_documents_have_no_regressions(self):
        regressions, skipped = compare_bench(BASELINE, BASELINE)
        assert regressions == []
        assert skipped == []

    def test_regression_detected_above_threshold(self):
        current = document(
            [
                bench_row("fabric_solver.small", 0.010 * 1.6),  # 1.6x > 1.5x gate
                bench_row("solver_vectorized.vectorized", 0.020),
                bench_row("cluster_fabric.step", 0.100),
                bench_row("rack_cosim_step.quick", 0.050, config={"steps": 200}),
                bench_row("cluster_events.replay", 0.030),
            ]
        )
        regressions, skipped = compare_bench(BASELINE, current)
        assert len(regressions) == 1
        assert "fabric_solver.small" in regressions[0]
        assert "1.60x" in regressions[0]
        assert skipped == []

    def test_slowdown_at_threshold_is_not_a_regression(self):
        current = document([bench_row("fabric_solver.small", 0.010 * 1.5)])
        regressions, _ = compare_bench(BASELINE, current)
        assert regressions == []

    def test_speedup_is_never_a_regression(self):
        current = document([bench_row("fabric_solver.small", 0.001)])
        regressions, _ = compare_bench(BASELINE, current)
        assert regressions == []

    def test_config_mismatch_is_skipped_not_compared(self):
        # Same name but a different shape: a 10x slowdown must NOT count,
        # the pair is incommensurate and is reported as skipped instead.
        current = document(
            [bench_row("rack_cosim_step.quick", 0.500, config={"steps": 40})]
        )
        regressions, skipped = compare_bench(BASELINE, current)
        assert regressions == []
        assert any(
            "rack_cosim_step.quick" in s and "config differs" in s for s in skipped
        )

    def test_one_sided_benchmarks_are_reported_skipped(self):
        # A whole group the baseline predates collapses to one group-level
        # skip (the post-schema-bump case) instead of a per-row message.
        current = document([bench_row("brand_new.bench", 0.010)])
        regressions, skipped = compare_bench(BASELINE, current)
        assert regressions == []
        assert any("group 'brand_new': not in baseline" in s for s in skipped)
        assert not any("brand_new.bench" in s for s in skipped)
        # Every baseline row is absent from the current run.
        assert sum("not in current run" in s for s in skipped) == 5

    def test_new_name_in_known_group_still_skipped_by_name(self):
        current = document(
            [bench_row("fabric_solver.small", 0.010), bench_row("fabric_solver.huge", 0.010)]
        )
        regressions, skipped = compare_bench(BASELINE, current)
        assert regressions == []
        assert any("fabric_solver.huge: not in baseline" in s for s in skipped)

    def test_baseline_without_new_group_never_false_fails(self):
        # The exact post-bump CI situation: a fresh v5 run with trace_ingest
        # compared against a committed v4 baseline.  Must skip, not regress
        # and not KeyError.
        baseline = document(self._v4_rows(), version=4)
        current = document(
            self._v4_rows() + [bench_row("trace_ingest.synthetic", 0.010)]
        )
        assert validate_bench(baseline) == []
        regressions, skipped = compare_bench(baseline, current)
        assert regressions == []
        assert any("group 'trace_ingest': not in baseline" in s for s in skipped)

    @staticmethod
    def _v4_rows():
        from repro.telemetry.benchjson import REQUIRED_GROUPS_V4

        return [bench_row(f"{g}.case", 0.010) for g in REQUIRED_GROUPS_V4]

    def test_unusable_min_s_is_skipped(self):
        current = document([bench_row("fabric_solver.small", None)])
        regressions, skipped = compare_bench(BASELINE, current)
        assert regressions == []
        assert any(
            "fabric_solver.small" in s and "unusable min_s" in s for s in skipped
        )

    def test_zero_baseline_min_s_is_skipped(self):
        baseline = document([bench_row("fabric_solver.small", 0.0)])
        current = document([bench_row("fabric_solver.small", 0.010)])
        regressions, skipped = compare_bench(baseline, current)
        assert regressions == []
        assert any("unusable min_s" in s for s in skipped)

    def test_custom_threshold_tightens_the_gate(self):
        current = document([bench_row("fabric_solver.small", 0.010 * 1.2)])
        loose, _ = compare_bench(BASELINE, current)
        tight, _ = compare_bench(BASELINE, current, threshold=0.1)
        assert loose == []
        assert len(tight) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            compare_bench(BASELINE, BASELINE, threshold=-0.1)

    def test_default_threshold_is_generous(self):
        assert DEFAULT_REGRESSION_THRESHOLD == 0.5


class TestSchemaVersions:
    def _rows(self, groups):
        return [bench_row(f"{g}.case", 0.010) for g in groups]

    def test_v4_document_requires_parallel_groups(self):
        errors = validate_bench(document(self._rows(REQUIRED_GROUPS_V3)))
        assert any("sweep_sharded" in e for e in errors)
        assert any("cluster_step_batched" in e for e in errors)
        assert validate_bench(document(self._rows(REQUIRED_GROUPS))) == []

    def test_v3_document_requires_fault_injection_group(self):
        errors = validate_bench(document(self._rows(REQUIRED_GROUPS_V2), version=3))
        assert any("fault_injection" in e for e in errors)
        assert validate_bench(document(self._rows(REQUIRED_GROUPS_V3), version=3)) == []

    def test_v2_document_stays_valid_without_fault_group(self):
        doc = document(self._rows(REQUIRED_GROUPS_V2), version=2)
        assert validate_bench(doc) == []
        errors = validate_bench(document(self._rows(REQUIRED_GROUPS_V1), version=2))
        assert any("cluster_fabric" in e for e in errors)
        assert any("solver_vectorized" in e for e in errors)

    def test_v1_document_stays_valid_without_cluster_groups(self):
        doc = document(self._rows(REQUIRED_GROUPS_V1), version=1)
        assert validate_bench(doc) == []

    def test_v5_document_requires_trace_ingest_group(self):
        from repro.telemetry.benchjson import REQUIRED_GROUPS_V4

        errors = validate_bench(document(self._rows(REQUIRED_GROUPS_V4), version=5))
        assert any("trace_ingest" in e for e in errors)
        assert validate_bench(document(self._rows(REQUIRED_GROUPS), version=5)) == []

    def test_supported_versions_track_the_group_table(self):
        # A version bump that forgets to register its group tuple must never
        # silently drop support for older committed baselines (this was a
        # real latent bug: SUPPORTED_VERSIONS was hand-maintained).
        from repro.telemetry.benchjson import REQUIRED_GROUPS_BY_VERSION

        assert SUPPORTED_VERSIONS == tuple(sorted(REQUIRED_GROUPS_BY_VERSION))
        assert BENCH_SCHEMA_VERSION in SUPPORTED_VERSIONS
        assert all(v in SUPPORTED_VERSIONS for v in range(1, BENCH_SCHEMA_VERSION + 1))

    def test_unsupported_version_rejected(self):
        doc = document(self._rows(REQUIRED_GROUPS), version=99)
        assert any("version" in e for e in validate_bench(doc))
        assert 99 not in SUPPORTED_VERSIONS
