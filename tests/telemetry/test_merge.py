"""`MetricsRegistry.merge` and `telemetry.isolated` — the out-of-process
aggregation primitives the sweep engine is built on (and that stand alone
for any cross-process telemetry use)."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(7.5)
    registry.histogram("h").observe(1.0)
    registry.histogram("h").observe(2.0)
    series = registry.timeseries("t", ("value",))
    series.append(0.0, value=10)
    series.append(1.0, value=20)
    return registry


class TestMergeSemantics:
    def test_counters_add(self):
        target = MetricsRegistry()
        target.counter("c").inc(2)
        target.merge(populated_registry().snapshot())
        assert target.counter("c").value == 5

    def test_gauges_last_write_wins(self):
        target = MetricsRegistry()
        target.gauge("g").set(1.0)
        target.merge(populated_registry().snapshot())
        assert target.gauge("g").value == 7.5

    def test_histograms_append(self):
        target = MetricsRegistry()
        target.histogram("h").observe(0.5)
        target.merge(populated_registry().snapshot())
        assert target.histogram("h").values == (0.5, 1.0, 2.0)

    def test_timeseries_append_in_snapshot_order(self):
        target = MetricsRegistry()
        target.timeseries("t", ("value",)).append(-1.0, value=5)
        target.merge(populated_registry().snapshot())
        series = target.timeseries("t", ("value",))
        assert series.times == [-1.0, 0.0, 1.0]
        assert series.column("value") == [5, 10, 20]

    def test_missing_instruments_are_created(self):
        target = MetricsRegistry()
        target.merge(populated_registry().snapshot())
        assert set(target.names()) == {"c", "g", "h", "t"}
        assert target.counter("c").value == 3

    def test_merge_is_associative_over_counters(self):
        """Merging A then B equals merging B then A for add-only metrics."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a.snapshot())
        ab.merge(b.snapshot())
        ba.merge(b.snapshot())
        ba.merge(a.snapshot())
        assert ab.counter("c").value == ba.counter("c").value == 3

    def test_type_collision_raises(self):
        target = MetricsRegistry()
        target.gauge("c").set(1.0)
        with pytest.raises(TypeError):
            target.merge(populated_registry().snapshot())

    def test_unknown_metric_type_raises(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError):
            target._merge_record({"kind": "metric", "type": "sparkline", "name": "x"})

    def test_non_metric_records_are_ignored(self):
        target = MetricsRegistry()
        target._merge_record({"kind": "span", "name": "x"})
        assert len(target) == 0

    def test_snapshot_merge_round_trip(self):
        source = populated_registry()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()


class TestIsolated:
    def test_block_records_into_private_registry(self):
        telemetry.disable()
        before = telemetry.registry()
        with telemetry.isolated(True) as registry:
            telemetry.metrics().counter("iso.c").inc()
            assert telemetry.registry() is registry
            assert telemetry.enabled()
        assert telemetry.registry() is before
        assert not telemetry.enabled()
        assert "iso.c" not in before
        assert registry.counter("iso.c").value == 1

    def test_record_none_inherits_enabled_flag(self):
        telemetry.disable()
        with telemetry.isolated(None) as registry:
            telemetry.metrics().counter("iso.c").inc()
        assert "iso.c" not in registry

    def test_restores_on_exception(self):
        before = telemetry.registry()
        with pytest.raises(RuntimeError):
            with telemetry.isolated(True):
                raise RuntimeError("boom")
        assert telemetry.registry() is before

    def test_nested_isolation(self):
        with telemetry.isolated(True) as outer:
            telemetry.metrics().counter("iso.outer").inc()
            with telemetry.isolated(True) as inner:
                telemetry.metrics().counter("iso.inner").inc()
            assert telemetry.registry() is outer
            outer.merge(inner.snapshot())
        assert outer.counter("iso.outer").value == 1
        assert outer.counter("iso.inner").value == 1
