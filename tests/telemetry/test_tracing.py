"""Tests for span tracing: deterministic nesting and ordering under a fake clock."""

import io
import json

from repro.telemetry import Tracer
from repro.telemetry.tracing import NOOP_SPAN, _NoopSpan


class FakeClock:
    """Monotonic fake clock advancing 1.0 per reading."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def make_tracer():
    return Tracer(clock=FakeClock())


class TestNesting:
    def test_parent_child_links_and_depths(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        outer, inner, leaf, sibling = tracer.spans
        assert [s.name for s in tracer.spans] == ["outer", "inner", "leaf", "sibling"]
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == outer.index and inner.depth == 1
        assert leaf.parent == inner.index and leaf.depth == 2
        assert sibling.parent == outer.index and sibling.depth == 1

    def test_indices_follow_opening_order(self):
        tracer = make_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.index for s in tracer.spans] == [0, 1, 2]

    def test_durations_from_injected_clock(self):
        tracer = make_tracer()
        with tracer.span("outer"):  # start=1
            with tracer.span("inner"):  # start=2, end=3
                pass
        # inner: 3-2=1; outer: 4-1=3
        inner = tracer.spans[1]
        outer = tracer.spans[0]
        assert inner.duration == 1.0
        assert outer.duration == 3.0

    def test_open_span_has_zero_duration(self):
        tracer = make_tracer()
        active = tracer.span("open")
        record = active.__enter__()
        assert record.end is None and record.duration == 0.0

    def test_attrs_recorded(self):
        tracer = make_tracer()
        with tracer.span("solve", nodes=4, rack="r0") as record:
            pass
        assert record.attrs == {"nodes": 4, "rack": "r0"}


class TestAggregation:
    def test_aggregate_counts_and_totals(self):
        tracer = make_tracer()
        for _ in range(3):
            with tracer.span("step"):
                pass
        with tracer.span("run"):
            pass
        stats = tracer.aggregate()
        assert stats["step"]["count"] == 3
        assert stats["step"]["total_s"] == 3.0
        assert stats["step"]["mean_s"] == 1.0
        assert stats["run"]["count"] == 1

    def test_open_spans_excluded_from_aggregate(self):
        tracer = make_tracer()
        tracer.span("open").__enter__()
        assert tracer.aggregate() == {}

    def test_top_spans_orders_by_total_then_name(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        # outer total 5 > a,b total 1 each; ties break alphabetically.
        names = [name for name, _ in tracer.top_spans(3)]
        assert names == ["outer", "a", "b"]

    def test_reset_clears_everything(self):
        tracer = make_tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.spans == [] and tracer.aggregate() == {}


class TestJsonl:
    def test_round_trip_preserves_tree_and_timing(self):
        tracer = make_tracer()
        with tracer.span("outer", rack=0):
            with tracer.span("inner"):
                pass
        buffer = io.StringIO()
        assert tracer.write_jsonl(buffer) == 2
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        rebuilt = Tracer.from_records(records)
        for original, copy in zip(tracer.spans, rebuilt.spans):
            assert copy.as_record() == original.as_record()

    def test_open_spans_not_exported(self):
        tracer = make_tracer()
        tracer.span("open").__enter__()
        buffer = io.StringIO()
        assert tracer.write_jsonl(buffer) == 0


class TestNoopSpan:
    def test_shared_singleton_context_manager(self):
        assert isinstance(NOOP_SPAN, _NoopSpan)
        with NOOP_SPAN as span:
            assert span is NOOP_SPAN
