"""Tests for the metrics registry and its instruments."""

import io
import json
import math

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import Counter, Gauge, Histogram, NoopRegistry, TimeSeries


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_keeps_last_value(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3.0)
        assert gauge.value == 3.0

    def test_histogram_summary_and_percentiles(self):
        histogram = Histogram("h")
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 10
        assert summary["mean"] == pytest.approx(5.5)
        assert summary["p50"] == 5
        assert summary["p90"] == 9
        assert summary["min"] == 1 and summary["max"] == 10

    def test_empty_histogram_summary_is_nan(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert math.isnan(summary["mean"])
        assert math.isnan(Histogram("h").percentile(50))

    def test_timeseries_append_validates_columns(self):
        series = TimeSeries("t", ["a", "b"])
        series.append(0.0, a=1, b=2)
        with pytest.raises(ValueError):
            series.append(1.0, a=1)
        with pytest.raises(ValueError):
            series.append(1.0, a=1, b=2, c=3)
        assert len(series) == 1

    def test_timeseries_trims_support_rollback(self):
        series = TimeSeries("t", ["v"])
        for t in [0.0, 1.0, 2.0, 3.0]:
            series.append(t, v=t * 10)
        series.drop_last()
        assert series.times == [0.0, 1.0, 2.0]
        series.trim_after(1.0)
        assert series.series() == {"time": [0.0, 1.0], "v": [0.0, 10.0]}
        series.trim_after(-1.0)
        assert len(series) == 0
        series.drop_last()  # no-op when empty


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")
        assert registry.timeseries("t", ["a"]) is registry.timeseries("t", ["a"])

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.timeseries("x", ["a"])

    def test_names_sorted_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ("a", "b")
        assert "a" in registry and len(registry) == 2
        registry.reset()
        assert registry.names() == ()
        assert registry.get("a") is None

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {
            "kind": "metric",
            "type": "counter",
            "name": "c",
            "value": 2.0,
        }

    def test_jsonl_round_trip_is_exact(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(41)
        registry.gauge("depth").set(3.5)
        for value in [1, 2, 2, 8]:
            registry.histogram("iters").observe(value)
        series = registry.timeseries("timeline", ["v"])
        series.append(0.0, v=1.0)
        series.append(0.5, v=2.0)

        buffer = io.StringIO()
        lines = registry.write_jsonl(buffer)
        assert lines == 4
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        rebuilt = MetricsRegistry.from_records(records)
        assert rebuilt.snapshot() == registry.snapshot()

    def test_from_records_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_records(
                [{"kind": "metric", "type": "mystery", "name": "m"}]
            )


class TestNoopRegistry:
    def test_all_instruments_share_one_sink(self):
        noop = NoopRegistry()
        sink = noop.counter("a")
        assert noop.gauge("b") is sink
        assert noop.histogram("c") is sink
        sink.inc()
        sink.set(5)
        sink.observe(1)
        assert sink.value == 0.0 and sink.count == 0
