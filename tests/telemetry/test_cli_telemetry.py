"""End-to-end tests for the CLI telemetry flags and ``telemetry report``."""

import pytest

from repro import telemetry
from repro.cli import main

FABRIC_ARGS = ["fabric", "--tenants", "2", "--workload", "XSBench"]


@pytest.fixture(autouse=True)
def clean_telemetry():
    """The CLI toggles the process-wide switch; leave it clean afterwards."""
    yield
    telemetry.disable()
    telemetry.registry().reset()
    telemetry.tracer().reset()


def test_telemetry_flag_prints_report(capsys):
    assert main(["--telemetry"] + FABRIC_ARGS) == 0
    out = capsys.readouterr().out
    assert "telemetry report" in out
    assert "fabric.cosim.epochs" in out
    assert "fabric.run" in out
    assert not telemetry.enabled()  # switched back off afterwards


def test_trace_out_writes_readable_dump(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["--trace-out", str(trace)] + FABRIC_ARGS) == 0
    with open(trace, "r", encoding="utf-8") as fh:
        dump = telemetry.read_jsonl(fh)
    assert dump.meta["schema"] == telemetry.TELEMETRY_SCHEMA
    assert dump.registry.counter("fabric.cosim.epochs").value > 0
    assert dump.registry.counter("fabric.solve.calls").value > 0
    assert any(s.name == "fabric.run" for s in dump.tracer.spans)
    # Solver spans nest under the run span.
    run_index = next(s.index for s in dump.tracer.spans if s.name == "fabric.run")
    assert any(
        s.depth > 0 for s in dump.tracer.spans if s.index != run_index
    )


def test_report_subcommand_reproduces_headlines(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["--trace-out", str(trace)] + FABRIC_ARGS) == 0
    with open(trace, "r", encoding="utf-8") as fh:
        epochs = telemetry.read_jsonl(fh).registry.counter("fabric.cosim.epochs").value
    capsys.readouterr()  # drop the run's own output

    assert main(["telemetry", "report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "telemetry report" in out
    assert f"fabric.cosim.epochs = {int(epochs)}" in out
    assert "fabric.run" in out


def test_report_subcommand_missing_file(tmp_path, capsys):
    assert main(["telemetry", "report", str(tmp_path / "nope.jsonl")]) == 2
    assert "telemetry" in capsys.readouterr().err


def test_run_without_flags_records_nothing(capsys):
    assert main(FABRIC_ARGS) == 0
    assert len(telemetry.registry()) == 0
    assert telemetry.tracer().spans == []
