"""Tests for the module-level telemetry switch, JSONL export and report."""

import io

import pytest

from repro import telemetry
from repro.telemetry.registry import _NoopInstrument
from repro.telemetry.report import render_metrics, render_report, render_spans
from repro.telemetry.tracing import NOOP_SPAN


class TestSwitch:
    def test_disabled_by_default_hands_out_noops(self, telemetry_off):
        assert not telemetry.enabled()
        assert isinstance(telemetry.metrics().counter("x"), _NoopInstrument)
        assert telemetry.trace_span("x") is NOOP_SPAN

    def test_disabled_mode_records_nothing(self, telemetry_off):
        telemetry.metrics().counter("c").inc()
        telemetry.metrics().gauge("g").set(1)
        telemetry.metrics().histogram("h").observe(1)
        with telemetry.trace_span("span"):
            pass
        assert len(telemetry.registry()) == 0
        assert telemetry.tracer().spans == []

    def test_enabled_mode_records(self, telemetry_on):
        assert telemetry.enabled()
        telemetry.metrics().counter("c").inc(3)
        with telemetry.trace_span("span", k=1):
            pass
        assert telemetry.registry().counter("c").value == 3
        assert [s.name for s in telemetry.tracer().spans] == ["span"]

    def test_enable_reset_clears_previous_run(self, telemetry_on):
        telemetry.metrics().counter("old").inc()
        telemetry.enable(reset=True)
        assert len(telemetry.registry()) == 0
        telemetry.metrics().counter("new").inc()
        assert telemetry.registry().names() == ("new",)

    def test_data_survives_disable(self, telemetry_on):
        telemetry.metrics().counter("kept").inc()
        telemetry.disable()
        assert telemetry.registry().counter("kept").value == 1


class TestJsonlRoundTrip:
    def test_write_then_read_reproduces_everything(self, telemetry_on):
        telemetry.metrics().counter("events").inc(12)
        telemetry.metrics().histogram("iters").observe(5)
        with telemetry.trace_span("outer"):
            with telemetry.trace_span("inner"):
                pass
        buffer = io.StringIO()
        lines = telemetry.write_jsonl(buffer)
        assert lines == 1 + 2 + 2  # meta + two metrics + two spans

        dump = telemetry.read_jsonl(io.StringIO(buffer.getvalue()))
        assert dump.meta["schema"] == telemetry.TELEMETRY_SCHEMA
        assert dump.meta["version"] == telemetry.TELEMETRY_SCHEMA_VERSION
        assert dump.registry.counter("events").value == 12
        assert [s.name for s in dump.tracer.spans] == ["outer", "inner"]
        assert dump.tracer.spans[1].parent == 0

    def test_read_rejects_foreign_schema(self):
        stream = io.StringIO('{"kind": "meta", "schema": "something.else", "version": 1}\n')
        with pytest.raises(ValueError):
            telemetry.read_jsonl(stream)


class TestReport:
    def test_render_metrics_one_line_per_instrument(self, telemetry_on):
        registry = telemetry.registry()
        registry.counter("solver.calls").inc(4)
        registry.gauge("queue.depth").set(2)
        registry.histogram("iters").observe(8)
        text = "\n".join(render_metrics(registry))
        assert "solver.calls = 4" in text
        assert "(gauge)" in text
        assert "count=1" in text

    def test_render_report_headline_numbers(self, telemetry_on):
        telemetry.metrics().counter("scheduler.events").inc(99)
        with telemetry.trace_span("scheduler.run"):
            pass
        report = render_report(telemetry.registry(), telemetry.tracer())
        assert report.startswith("telemetry report")
        assert "scheduler.events = 99" in report
        assert "scheduler.run" in report

    def test_empty_report_renders(self, telemetry_off):
        report = render_report(telemetry.registry(), telemetry.tracer())
        assert "(none recorded)" in report
        assert render_spans(telemetry.tracer(), top=5) == []
