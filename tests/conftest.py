"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import SKYLAKE_EMULATION
from repro.sim import ExecutionEngine, Platform
from repro.workloads import build_workload, workload_names

try:  # hypothesis is an optional test dependency (CI installs it).
    from hypothesis import settings
except ImportError:  # pragma: no cover - exercised only without hypothesis
    pass
else:
    # Two example budgets for the property suites: the default keeps tier-1
    # runs fast, the nightly profile (selected with HYPOTHESIS_PROFILE=nightly,
    # as CI's scheduled job does) digs deeper.  deadline=None because the
    # engine-backed properties have legitimately long single examples.
    settings.register_profile("default", max_examples=25, deadline=None)
    settings.register_profile("nightly", max_examples=200, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def testbed():
    """The default emulation platform description."""
    return SKYLAKE_EMULATION


@pytest.fixture(scope="session")
def all_workload_names():
    """Names of the six evaluated applications."""
    return workload_names()


@pytest.fixture(scope="session")
def hypre_spec():
    """Hypre at the first input problem (memory-bound, uniform access)."""
    return build_workload("Hypre", 1.0)


@pytest.fixture(scope="session")
def xsbench_spec():
    """XSBench at the first input problem (latency-bound, skewed access)."""
    return build_workload("XSBench", 1.0)


@pytest.fixture(scope="session")
def bfs_spec():
    """BFS at the first input problem (dynamic allocations, skewed access)."""
    return build_workload("BFS", 1.0)


@pytest.fixture(scope="session")
def hpl_spec():
    """HPL at the first input problem (compute-bound)."""
    return build_workload("HPL", 1.0)


@pytest.fixture(scope="session")
def local_platform():
    """A local-only (single-tier) platform."""
    return Platform.local_only()


@pytest.fixture(scope="session")
def pooled_platform_50(hypre_spec):
    """A 50-50 pooled platform sized for the Hypre footprint."""
    return Platform.pooled(hypre_spec.footprint_bytes, 0.50)


@pytest.fixture(scope="session")
def local_engine(local_platform):
    """An execution engine on the local-only platform."""
    return ExecutionEngine(local_platform, seed=0)


@pytest.fixture()
def rng():
    """A deterministic NumPy random generator."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def session_rng():
    """A session-scoped deterministic generator for expensive fixtures."""
    return np.random.default_rng(42)
