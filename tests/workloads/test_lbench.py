"""Tests for LBench: injection, calibration and interference measurement."""

import numpy as np
import pytest

from repro.config import SKYLAKE_EMULATION, ConfigurationError
from repro.interconnect.link import RemoteLink
from repro.workloads.lbench import LBench, lbench_kernel


@pytest.fixture(scope="module")
def lbench():
    return LBench(SKYLAKE_EMULATION)


class TestKernel:
    def test_single_flop_is_one_add(self):
        a = np.array([1.0, 2.0])
        out = lbench_kernel(a, nflop=1, alpha=0.5)
        np.testing.assert_allclose(out, a + 0.5)

    def test_two_flops_is_one_fma(self):
        a = np.array([2.0])
        out = lbench_kernel(a, nflop=2, alpha=0.5)
        # beta starts at 0: 0*2+0.5
        np.testing.assert_allclose(out, [0.5])

    def test_three_flops(self):
        a = np.array([2.0])
        out = lbench_kernel(a, nflop=3, alpha=0.5)
        # add: 2.5, then fma: 2.5*2+0.5
        np.testing.assert_allclose(out, [5.5])

    def test_rejects_zero_flops(self):
        with pytest.raises(ConfigurationError):
            lbench_kernel(np.array([1.0]), nflop=0)


class TestTrafficGeneration:
    def test_bandwidth_decreases_with_flops(self, lbench):
        bw = [lbench.offered_bandwidth(n, threads=2) for n in (1, 8, 64, 512)]
        assert all(b >= a for a, b in zip(bw[::-1], bw[::-1][1:]))
        assert bw[0] > bw[-1]

    def test_twelve_threads_one_flop_saturate_link(self, lbench):
        measurement = lbench.measure(1, threads=12)
        assert measurement.loi == pytest.approx(100.0, abs=1.0)
        assert measurement.pcm_traffic == pytest.approx(SKYLAKE_EMULATION.link_peak_traffic)

    def test_two_threads_reach_about_half_intensity(self, lbench):
        assert lbench.generated_loi(1, threads=2) == pytest.approx(50.0, abs=5.0)

    def test_invalid_parameters(self, lbench):
        with pytest.raises(ConfigurationError):
            lbench.per_thread_bandwidth(0)
        with pytest.raises(ConfigurationError):
            lbench.offered_bandwidth(1, threads=0)
        with pytest.raises(ConfigurationError):
            LBench(kernel_flop_rate=0.0)


class TestCalibration:
    def test_calibration_round_trip(self, lbench):
        for loi in (10.0, 20.0, 30.0, 40.0):
            nflop = lbench.flops_for_loi(loi, threads=2)
            measured = lbench.generated_loi(nflop, threads=2)
            assert measured == pytest.approx(loi, rel=0.15)

    def test_calibrate_loi_mapping(self, lbench):
        table = lbench.calibrate_loi((10, 20, 30, 40, 50), threads=2)
        assert set(table) == {10.0, 20.0, 30.0, 40.0, 50.0}
        # Higher LoI needs fewer flops per element.
        assert table[10.0] > table[50.0]

    def test_intensity_sweep_is_monotone(self, lbench):
        sweep = lbench.intensity_sweep((10, 20, 30, 40, 50), threads=2)
        lois = [m.loi for m in sweep]
        assert all(b >= a - 1e-6 for a, b in zip(lois, lois[1:]))

    def test_invalid_loi(self, lbench):
        with pytest.raises(ConfigurationError):
            lbench.flops_for_loi(0.0)


class TestInterferenceMeasurement:
    def test_ic_is_one_on_idle_system(self, lbench):
        assert lbench.interference_coefficient(0.0) == pytest.approx(1.0)

    def test_ic_grows_with_background(self, lbench):
        ics = [lbench.interference_coefficient(bw) for bw in (0.0, 5e9, 15e9, 30e9, 60e9)]
        assert all(b >= a - 1e-9 for a, b in zip(ics, ics[1:]))
        assert ics[-1] > 1.3

    def test_probe_runtime_positive_and_scales_with_iterations(self, lbench):
        t1 = lbench.probe_runtime(0.0, iterations=10)
        t2 = lbench.probe_runtime(0.0, iterations=20)
        assert t2 == pytest.approx(2 * t1)
        with pytest.raises(ConfigurationError):
            lbench.probe_runtime(0.0, iterations=0)

    def test_contention_curve_shapes(self, lbench):
        curve = lbench.contention_curve([1, 2, 4, 8, 16, 32, 64, 128], threads=12)
        ic = [c["interference_coefficient"] for c in curve]
        pcm = [c["pcm_traffic"] for c in curve]
        # PCM saturates at high traffic (low flops/element)...
        assert pcm[0] == pytest.approx(SKYLAKE_EMULATION.link_peak_traffic)
        assert pcm[-1] < pcm[0]
        # ...while the IC keeps distinguishing load levels and decreases with NFLOP.
        assert ic[0] > ic[-1]
        assert ic[-1] >= 1.0

    def test_pcm_cannot_distinguish_beyond_saturation_but_ic_tracks_load(self, lbench):
        # The core LBench argument (Fig. 11 middle): below 8 flops/element the
        # PCM reading is identical while the probe still sees different loads.
        curve = lbench.contention_curve([1, 4], threads=12)
        assert curve[0]["pcm_traffic"] == pytest.approx(curve[1]["pcm_traffic"])
        assert curve[0]["background_bandwidth"] > curve[1]["background_bandwidth"]


def test_custom_link_is_used():
    link = RemoteLink(SKYLAKE_EMULATION)
    lbench = LBench(SKYLAKE_EMULATION, link=link)
    assert lbench.link is link
