"""Tests for the workload specification model."""

import numpy as np
import pytest

from repro.config.errors import WorkloadError
from repro.config.units import MiB
from repro.memory.objects import MemoryObject
from repro.workloads.base import (
    PhaseSpec,
    TRAFFIC_PROFILES,
    WorkloadModel,
    WorkloadSpec,
)


def make_phase(**overrides):
    base = dict(
        name="p1",
        flops=1e9,
        dram_bytes=1e9,
        object_traffic={"a": 0.6, "b": 0.4},
    )
    base.update(overrides)
    return PhaseSpec(**base)


def make_spec(**overrides):
    objects = (
        MemoryObject(name="a", size_bytes=10 * MiB),
        MemoryObject(name="b", size_bytes=20 * MiB),
    )
    base = dict(
        name="toy",
        input_label="x1",
        scale=1.0,
        objects=objects,
        phases=(make_phase(),),
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestPhaseSpec:
    def test_arithmetic_intensity(self):
        phase = make_phase(flops=2e9, dram_bytes=1e9)
        assert phase.arithmetic_intensity == pytest.approx(2.0)

    def test_zero_traffic_intensity_is_infinite(self):
        phase = make_phase(dram_bytes=0.0)
        assert phase.arithmetic_intensity == float("inf")

    def test_traffic_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            make_phase(object_traffic={"a": 0.5, "b": 0.2})

    def test_rejects_empty_traffic(self):
        with pytest.raises(WorkloadError):
            make_phase(object_traffic={})

    def test_rejects_negative_fraction(self):
        with pytest.raises(WorkloadError):
            make_phase(object_traffic={"a": 1.5, "b": -0.5})

    def test_rejects_no_work(self):
        with pytest.raises(WorkloadError):
            make_phase(flops=0.0, dram_bytes=0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            make_phase(write_fraction=1.5)
        with pytest.raises(WorkloadError):
            make_phase(mlp=0.0)
        with pytest.raises(WorkloadError):
            make_phase(stream_fraction=2.0)
        with pytest.raises(WorkloadError):
            make_phase(traffic_profile="sawtooth")
        with pytest.raises(WorkloadError):
            make_phase(duration_weight=0.0)

    @pytest.mark.parametrize("profile", TRAFFIC_PROFILES)
    def test_traffic_shapes_normalised(self, profile):
        phase = make_phase(traffic_profile=profile)
        shape = phase.traffic_shape(37)
        assert len(shape) == 37
        assert shape.sum() == pytest.approx(1.0)
        assert np.all(shape > 0)

    def test_traffic_shape_rejects_bad_steps(self):
        with pytest.raises(WorkloadError):
            make_phase().traffic_shape(0)


class TestWorkloadSpec:
    def test_footprint_and_totals(self):
        spec = make_spec()
        assert spec.footprint_bytes == 30 * MiB
        assert spec.total_flops == pytest.approx(1e9)
        assert spec.total_dram_bytes == pytest.approx(1e9)
        assert spec.phase_names == ("p1",)

    def test_lookups(self):
        spec = make_spec()
        assert spec.phase("p1").name == "p1"
        assert spec.object("a").name == "a"
        with pytest.raises(KeyError):
            spec.phase("p9")
        with pytest.raises(KeyError):
            spec.object("zzz")

    def test_rejects_unknown_traffic_target(self):
        with pytest.raises(WorkloadError):
            make_spec(phases=(make_phase(object_traffic={"zzz": 1.0}),))

    def test_rejects_duplicate_object_names(self):
        objects = (
            MemoryObject(name="a", size_bytes=MiB),
            MemoryObject(name="a", size_bytes=MiB),
        )
        with pytest.raises(WorkloadError):
            make_spec(objects=objects, phases=(make_phase(object_traffic={"a": 1.0}),))

    def test_rejects_unknown_init_only_and_late(self):
        with pytest.raises(WorkloadError):
            make_spec(init_only_objects=("zzz",))
        with pytest.raises(WorkloadError):
            make_spec(late_objects=("zzz",))
        with pytest.raises(WorkloadError):
            make_spec(init_only_objects=("a",), late_objects=("a",))

    def test_with_allocation_order(self):
        spec = make_spec()
        reordered = spec.with_allocation_order(["b", "a"])
        assert reordered.object_names() == ("b", "a")
        # The original is unchanged and new objects are unregistered copies.
        assert spec.object_names() == ("a", "b")
        assert not reordered.objects[0].registered

    def test_with_allocation_order_requires_permutation(self):
        with pytest.raises(WorkloadError):
            make_spec().with_allocation_order(["a"])

    def test_with_init_only(self):
        spec = make_spec().with_init_only(["b"])
        assert spec.init_only_objects == ("b",)

    def test_fresh_objects_are_unregistered_copies(self):
        spec = make_spec()
        fresh = spec.fresh_objects()
        assert all(not obj.registered for obj in fresh)
        assert [o.name for o in fresh] == ["a", "b"]
        assert fresh[0] is not spec.objects[0]


class TestWorkloadModelBase:
    def test_build_input_bounds(self):
        class Dummy(WorkloadModel):
            name = "dummy"

            def build(self, scale=1.0):
                return make_spec(scale=scale)

        model = Dummy()
        assert model.build_input(0).scale == 1.0
        assert model.build_input(2).scale == 4.0
        with pytest.raises(WorkloadError):
            model.build_input(5)
        assert len(model.inputs()) == 3

    def test_base_build_is_abstract(self):
        with pytest.raises(NotImplementedError):
            WorkloadModel().build()
