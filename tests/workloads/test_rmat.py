"""Tests for the RMAT generator and the BFS kernel, cross-checked with networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.errors import WorkloadError
from repro.workloads.rmat import (
    CSRGraph,
    adjacency_access_counts,
    bfs,
    build_csr,
    rmat_edges,
    rmat_graph,
)


class TestRMATGeneration:
    def test_edge_count_and_range(self):
        edges = rmat_edges(scale=8, edge_factor=8, seed=0)
        assert edges.shape == (256 * 8, 2)
        assert edges.min() >= 0
        assert edges.max() < 256

    def test_deterministic(self):
        a = rmat_edges(scale=6, seed=5)
        b = rmat_edges(scale=6, seed=5)
        np.testing.assert_array_equal(a, b)
        c = rmat_edges(scale=6, seed=6)
        assert not np.array_equal(a, c)

    def test_degree_distribution_is_skewed(self):
        graph = rmat_graph(scale=10, edge_factor=8, seed=1)
        degrees = np.sort(graph.degrees())[::-1]
        top_share = degrees[: len(degrees) // 20].sum() / max(degrees.sum(), 1)
        assert top_share > 0.15  # top 5% of vertices hold a disproportionate share

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            rmat_edges(scale=0)
        with pytest.raises(WorkloadError):
            rmat_edges(scale=5, a=0.9, b=0.2, c=0.2)


class TestCSR:
    def test_build_csr_symmetric(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        graph = build_csr(edges, n_vertices=4, symmetric=True)
        assert graph.n_vertices == 4
        assert graph.n_edges == 6  # each undirected edge stored twice
        assert sorted(graph.neighbours(1).tolist()) == [0, 2]

    def test_self_loops_dropped(self):
        edges = np.array([[0, 0], [0, 1]])
        graph = build_csr(edges, n_vertices=2, symmetric=True)
        assert graph.n_edges == 2

    def test_invalid_edge_list_shape(self):
        with pytest.raises(WorkloadError):
            build_csr(np.array([1, 2, 3]), n_vertices=4)

    def test_csr_consistency_checks(self):
        with pytest.raises(WorkloadError):
            CSRGraph(offsets=np.array([0, 2]), edges=np.array([1]))
        with pytest.raises(WorkloadError):
            CSRGraph(offsets=np.array([0, 2, 1]), edges=np.array([1, 0]))

    def test_memory_bytes(self):
        graph = rmat_graph(scale=6, edge_factor=4, seed=0)
        assert graph.memory_bytes() == graph.offsets.nbytes + graph.edges.nbytes


class TestBFS:
    def _to_networkx(self, graph: CSRGraph) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(graph.n_vertices))
        for v in range(graph.n_vertices):
            for w in graph.neighbours(v):
                g.add_edge(int(v), int(w))
        return g

    def test_bfs_levels_match_networkx(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=3)
        result = bfs(graph, source=0)
        nx_lengths = nx.single_source_shortest_path_length(self._to_networkx(graph), 0)
        for vertex, depth in nx_lengths.items():
            assert result.levels[vertex] == depth
        assert result.n_reached == len(nx_lengths)

    def test_unreached_vertices_marked(self):
        # Two disconnected edges: 0-1 and 2-3.
        graph = build_csr(np.array([[0, 1], [2, 3]]), n_vertices=4)
        result = bfs(graph, source=0)
        assert result.parents[2] == -1 and result.parents[3] == -1
        assert result.n_reached == 2

    def test_parents_are_valid_tree(self):
        graph = rmat_graph(scale=7, edge_factor=8, seed=2)
        result = bfs(graph, source=0)
        reached = np.flatnonzero(result.parents >= 0)
        for v in reached:
            parent = result.parents[v]
            if v == 0:
                assert parent == 0
                continue
            # The parent must be an actual neighbour one level up.
            assert result.levels[parent] == result.levels[v] - 1
            assert v in graph.neighbours(parent)

    def test_frontier_sizes_sum_to_reached(self):
        graph = rmat_graph(scale=7, edge_factor=8, seed=2)
        result = bfs(graph, source=0)
        assert sum(result.frontier_sizes) == result.n_reached
        assert result.max_frontier == max(result.frontier_sizes)

    def test_invalid_source(self):
        graph = rmat_graph(scale=5, seed=0)
        with pytest.raises(WorkloadError):
            bfs(graph, source=10_000)

    def test_adjacency_access_counts(self):
        graph = rmat_graph(scale=6, edge_factor=4, seed=0)
        result = bfs(graph, source=0)
        counts = adjacency_access_counts(graph, result)
        visited = result.parents >= 0
        np.testing.assert_array_equal(counts[visited], graph.degrees()[visited])
        assert np.all(counts[~visited] == 0)


@settings(max_examples=15, deadline=None)
@given(scale=st.integers(min_value=3, max_value=9), seed=st.integers(0, 1000))
def test_bfs_reaches_only_connected_component(scale, seed):
    graph = rmat_graph(scale=scale, edge_factor=4, seed=seed)
    result = bfs(graph, source=0)
    # Every reached vertex other than isolated source has a parent that is reached.
    reached = result.parents >= 0
    parents = result.parents[reached]
    assert np.all(reached[parents])
    # Levels increase by exactly one from parent to child.
    child_levels = result.levels[reached]
    parent_levels = result.levels[parents]
    assert np.all((child_levels == parent_levels + 1) | (child_levels == 0))
