"""Tests for the six application behavioural models (Table 2)."""

import pytest

from repro.workloads import (
    BFSModel,
    HPLModel,
    HypreModel,
    NekRSModel,
    SuperLUModel,
    XSBenchModel,
    all_models,
    build_workload,
    get_model,
    table2_rows,
    workload_names,
)
from repro.workloads.registry import WORKLOAD_MODELS
from repro.config.errors import WorkloadError

ALL_MODELS = [HPLModel(), HypreModel(), NekRSModel(), BFSModel(), SuperLUModel(), XSBenchModel()]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
class TestEveryModel:
    def test_three_input_problems(self, model):
        assert len(model.input_labels) == 3
        assert model.input_scales == (1.0, 2.0, 4.0)

    def test_footprints_scale_one_two_four(self, model):
        footprints = [model.build(scale).footprint_bytes for scale in model.input_scales]
        assert footprints[1] / footprints[0] == pytest.approx(2.0, rel=0.02)
        assert footprints[2] / footprints[0] == pytest.approx(4.0, rel=0.02)

    def test_footprint_in_plausible_range(self, model):
        footprint_gb = model.build(1.0).footprint_bytes / 1e9
        assert 0.5 < footprint_gb < 10.0

    def test_has_init_and_compute_phase(self, model):
        spec = model.build(1.0)
        assert spec.phase_names[0] == "p1"
        assert "p2" in spec.phase_names
        # The compute phase dominates the flops.
        assert spec.phase("p2").flops > spec.phase("p1").flops

    def test_spec_is_self_consistent(self, model):
        spec = model.build(1.0)
        for phase in spec.phases:
            assert sum(phase.object_traffic.values()) == pytest.approx(1.0)
        assert spec.total_dram_bytes > 0

    def test_rejects_nonpositive_scale(self, model):
        with pytest.raises(ValueError):
            model.build(0.0)

    def test_nonstandard_scale_gets_generic_label(self, model):
        spec = model.build(3.0)
        assert spec.input_label == "x3"


class TestCharacteristicDifferences:
    def test_hpl_is_compute_bound(self):
        spec = HPLModel().build(1.0)
        assert spec.phase("p2").arithmetic_intensity > 50

    def test_hypre_is_memory_bound(self):
        spec = HypreModel().build(1.0)
        assert spec.phase("p2").arithmetic_intensity < 1.0

    def test_xsbench_has_negligible_prefetchable_stream(self):
        spec = XSBenchModel().build(1.0)
        assert spec.phase("p2").stream_fraction < 0.05

    def test_nekrs_and_hypre_are_highly_prefetchable(self):
        assert NekRSModel().build(1.0).phase("p2").stream_fraction >= 0.7
        assert HypreModel().build(1.0).phase("p2").stream_fraction >= 0.7

    def test_bfs_has_dynamic_frontier(self):
        spec = BFSModel().build(1.0)
        assert "frontier-heap" in spec.late_objects
        assert spec.object("parents").size_bytes < spec.object("adjacency").size_bytes / 10

    def test_superlu_has_three_phases(self):
        assert SuperLUModel().build(1.0).phase_names == ("p1", "p2", "p3")

    def test_superlu_hot_set_spreads_with_scale(self):
        small = SuperLUModel().build(1.0).object("lu-factors").pattern
        large = SuperLUModel().build(4.0).object("lu-factors").pattern
        assert large.hot_fraction > small.hot_fraction
        assert large.hot_traffic < small.hot_traffic

    def test_bfs_skew_grows_with_scale(self):
        small = BFSModel().build(1.0).object("adjacency").pattern
        large = BFSModel().build(4.0).object("adjacency").pattern
        assert large.alpha > small.alpha

    def test_xsbench_lookup_traffic_grows_slower_than_footprint(self):
        small = XSBenchModel().build(1.0)
        large = XSBenchModel().build(4.0)
        traffic_growth = large.phase("p2").dram_bytes / small.phase("p2").dram_bytes
        footprint_growth = large.footprint_bytes / small.footprint_bytes
        assert traffic_growth < footprint_growth / 2


class TestRegistry:
    def test_workload_names(self):
        assert set(workload_names()) == {"HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"}

    def test_get_model_and_aliases(self):
        assert get_model("XS").name == "XSBench"
        assert get_model("HPL").name == "HPL"
        with pytest.raises(WorkloadError):
            get_model("NAMD")

    def test_build_workload(self):
        spec = build_workload("Hypre", 2.0)
        assert spec.name == "Hypre"
        assert spec.scale == 2.0

    def test_all_models_matches_registry(self):
        assert len(all_models()) == len(WORKLOAD_MODELS) == 6

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 6
        assert rows[0]["application"] == "HPL"
        assert all("input_problems" in row for row in rows)
