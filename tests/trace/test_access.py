"""Tests for access batches and page access profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.access import AccessBatch, PageAccessProfile


class TestAccessBatch:
    def test_reads_and_writes_constructors(self):
        reads = AccessBatch.reads(np.arange(10), object_id=3)
        writes = AccessBatch.writes(np.arange(5), object_id=4, weight=2.0)
        assert reads.n_reads == 10 and reads.n_writes == 0
        assert writes.n_writes == 5 and writes.n_reads == 0
        assert set(reads.object_ids) == {3}
        assert writes.represented_accesses == pytest.approx(10.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AccessBatch(
                lines=np.arange(3),
                is_write=np.zeros(2, dtype=bool),
                object_ids=np.zeros(3, dtype=np.int64),
            )

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessBatch.reads(np.arange(3), weight=0.0)

    def test_empty(self):
        batch = AccessBatch.empty()
        assert len(batch) == 0
        assert batch.represented_accesses == 0

    def test_concat_same_weight(self):
        a = AccessBatch.reads(np.arange(4), object_id=0)
        b = AccessBatch.writes(np.arange(4, 8), object_id=1)
        merged = AccessBatch.concat([a, b])
        assert len(merged) == 8
        assert merged.n_writes == 4
        np.testing.assert_array_equal(merged.lines, np.arange(8))

    def test_concat_weight_mismatch(self):
        a = AccessBatch.reads(np.arange(4), weight=1.0)
        b = AccessBatch.reads(np.arange(4), weight=2.0)
        with pytest.raises(ValueError):
            AccessBatch.concat([a, b])

    def test_concat_empty_list(self):
        assert len(AccessBatch.concat([])) == 0

    def test_bytes_represented(self):
        batch = AccessBatch.reads(np.arange(10), weight=3.0)
        assert batch.bytes_represented(64) == pytest.approx(10 * 3 * 64)

    def test_pages_mapping(self):
        batch = AccessBatch.reads(np.array([0, 63, 64, 128]))
        np.testing.assert_array_equal(batch.pages(64), [0, 0, 1, 2])

    def test_subset(self):
        batch = AccessBatch.reads(np.arange(10))
        subset = batch.subset(batch.lines % 2 == 0)
        assert len(subset) == 5
        assert np.all(subset.lines % 2 == 0)

    def test_interleave_preserves_contents(self, rng):
        a = AccessBatch.reads(np.arange(100), object_id=0)
        b = AccessBatch.writes(np.arange(100, 150), object_id=1)
        merged = a.interleave(b, rng)
        assert len(merged) == 150
        assert sorted(merged.lines.tolist()) == sorted(
            a.lines.tolist() + b.lines.tolist()
        )
        # Relative order within each source batch is preserved.
        from_a = merged.lines[merged.object_ids == 0]
        np.testing.assert_array_equal(from_a, a.lines)

    def test_interleave_with_empty(self, rng):
        a = AccessBatch.reads(np.arange(10))
        merged = a.interleave(AccessBatch.empty(), rng)
        assert len(merged) == 10


class TestPageAccessProfile:
    def test_from_batch_counts_pages(self):
        batch = AccessBatch.reads(np.array([0, 1, 64, 65, 66, 128]), weight=2.0)
        profile = PageAccessProfile.from_batch(batch, lines_per_page=64)
        assert profile.n_pages == 3
        np.testing.assert_array_equal(profile.page_ids, [0, 1, 2])
        np.testing.assert_allclose(profile.counts, [4.0, 6.0, 2.0])
        assert profile.total_accesses == pytest.approx(12.0)

    def test_merged_sums_shared_pages(self):
        a = PageAccessProfile(np.array([0, 1]), np.array([1.0, 2.0]))
        b = PageAccessProfile(np.array([1, 2]), np.array([3.0, 4.0]))
        merged = a.merged(b)
        np.testing.assert_array_equal(merged.page_ids, [0, 1, 2])
        np.testing.assert_allclose(merged.counts, [1.0, 5.0, 4.0])

    def test_merged_with_empty(self):
        a = PageAccessProfile(np.array([5]), np.array([2.0]))
        empty = PageAccessProfile(np.empty(0, dtype=np.int64), np.empty(0))
        assert a.merged(empty) is a
        assert empty.merged(a) is a

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            PageAccessProfile(np.array([0]), np.array([-1.0]))


@settings(max_examples=50, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
    weight=st.floats(min_value=0.1, max_value=100.0),
)
def test_profile_total_matches_batch(lines, weight):
    batch = AccessBatch.reads(np.array(lines, dtype=np.int64), weight=weight)
    profile = PageAccessProfile.from_batch(batch, lines_per_page=64)
    assert profile.total_accesses == pytest.approx(len(lines) * weight)
    assert profile.n_pages == len(np.unique(np.array(lines) // 64))
