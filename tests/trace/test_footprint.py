"""Tests for the bandwidth-capacity scaling curve utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.access import PageAccessProfile
from repro.trace.footprint import (
    ScalingCurve,
    hot_page_order,
    scaling_curve_from_counts,
    scaling_curve_from_profile,
    working_set_pages,
)


def test_uniform_counts_give_diagonal_curve():
    curve = scaling_curve_from_counts(np.ones(1000))
    np.testing.assert_allclose(curve.access_pct, curve.footprint_pct, atol=0.5)
    assert curve.skewness == pytest.approx(0.0, abs=0.02)


def test_skewed_counts_give_concave_curve():
    counts = np.ones(1000)
    counts[:10] = 1000.0  # 10 pages take ~91% of the traffic
    curve = scaling_curve_from_counts(counts)
    assert curve.access_share_at(0.01) > 0.85
    assert curve.skewness > 0.5


def test_curve_is_monotone_and_bounded():
    counts = np.random.default_rng(0).pareto(1.5, size=5000) + 1
    curve = scaling_curve_from_counts(counts)
    assert np.all(np.diff(curve.access_pct) >= -1e-9)
    assert curve.access_pct[0] == pytest.approx(0.0)
    assert curve.access_pct[-1] == pytest.approx(100.0)


def test_access_share_and_inverse_round_trip():
    counts = np.arange(1, 101, dtype=float)
    curve = scaling_curve_from_counts(counts)
    share = curve.access_share_at(0.3)
    back = curve.footprint_share_for(share)
    assert back == pytest.approx(0.3, abs=0.02)


def test_empty_counts_fallback():
    curve = scaling_curve_from_counts(np.array([]))
    np.testing.assert_allclose(curve.access_pct, curve.footprint_pct)


def test_curve_length_mismatch_rejected():
    with pytest.raises(ValueError):
        ScalingCurve(np.array([0.0, 1.0]), np.array([0.0]))


def test_scaling_curve_from_profile_matches_counts():
    profile = PageAccessProfile(np.arange(10), np.arange(1.0, 11.0))
    a = scaling_curve_from_profile(profile)
    b = scaling_curve_from_counts(profile.counts)
    np.testing.assert_allclose(a.access_pct, b.access_pct)


def test_hot_page_order():
    profile = PageAccessProfile(np.array([7, 8, 9]), np.array([1.0, 5.0, 3.0]))
    np.testing.assert_array_equal(hot_page_order(profile), [8, 9, 7])


def test_hot_page_order_empty():
    empty = PageAccessProfile(np.empty(0, dtype=np.int64), np.empty(0))
    assert len(hot_page_order(empty)) == 0


def test_working_set_pages():
    profile = PageAccessProfile(np.arange(4), np.array([70.0, 20.0, 9.0, 1.0]))
    assert working_set_pages(profile, access_share=0.7) == 1
    assert working_set_pages(profile, access_share=0.9) == 2
    assert working_set_pages(profile, access_share=1.0) == 4


def test_working_set_pages_empty():
    empty = PageAccessProfile(np.empty(0, dtype=np.int64), np.empty(0))
    assert working_set_pages(empty) == 0


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=500),
)
def test_curve_properties_hold_for_arbitrary_counts(counts):
    curve = scaling_curve_from_counts(np.array(counts))
    # Monotone non-decreasing, bounded, and always at least as high as the diagonal.
    assert np.all(np.diff(curve.access_pct) >= -1e-6)
    assert np.all(curve.access_pct <= 100.0 + 1e-6)
    assert np.all(curve.access_pct >= curve.footprint_pct - 1e-6)
    assert 0.0 <= curve.skewness <= 1.0


@settings(max_examples=30, deadline=None)
@given(share=st.floats(min_value=0.0, max_value=1.0))
def test_access_share_bounded(share):
    counts = np.random.default_rng(3).integers(1, 1000, size=300).astype(float)
    curve = scaling_curve_from_counts(counts)
    value = curve.access_share_at(share)
    assert 0.0 <= value <= 1.0
    assert value >= share - 1e-6  # hottest-first ordering dominates the diagonal
