"""Tests for access-pattern generators, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.patterns import (
    PATTERNS,
    BlockedPattern,
    GatherPattern,
    HotColdPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    ZipfPattern,
    make_pattern,
)


ALL_PATTERNS = [
    SequentialPattern(),
    StridedPattern(stride_lines=2),
    RandomPattern(),
    ZipfPattern(alpha=1.1),
    HotColdPattern(hot_fraction=0.1, hot_traffic=0.9),
    BlockedPattern(block_lines=64),
    GatherPattern(indexed_fraction=0.5),
]


@pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=lambda p: type(p).__name__)
class TestCommonProperties:
    def test_offsets_in_range(self, pattern, rng):
        offsets = pattern.sample_offsets(1000, 500, rng)
        assert len(offsets) == 500
        assert offsets.min() >= 0
        assert offsets.max() < 1000

    def test_page_weights_normalised(self, pattern, rng):
        weights = pattern.page_weights(257, rng)
        assert len(weights) == 257
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0)

    def test_empty_inputs(self, pattern, rng):
        assert len(pattern.sample_offsets(0, 10, rng)) == 0
        assert len(pattern.sample_offsets(10, 0, rng)) == 0
        assert len(pattern.page_weights(0, rng)) == 0

    def test_stream_fraction_in_unit_interval(self, pattern, rng):
        assert 0.0 <= pattern.stream_fraction <= 1.0


# -- pattern-specific behaviour ------------------------------------------------------


def test_sequential_is_contiguous(rng):
    offsets = SequentialPattern().sample_offsets(10_000, 100, rng)
    deltas = np.diff(offsets)
    assert np.all(deltas == 1)


def test_sequential_covers_object_when_oversampled(rng):
    offsets = SequentialPattern().sample_offsets(10, 25, rng)
    assert set(np.unique(offsets)) == set(range(10))


def test_strided_has_constant_stride(rng):
    pattern = StridedPattern(stride_lines=3)
    offsets = pattern.sample_offsets(10_000, 50, rng)
    deltas = np.diff(offsets)
    # All strides equal 3 except possibly at the wrap-around point.
    assert np.sum(deltas != 3) <= 1


def test_strided_rejects_bad_stride():
    with pytest.raises(ValueError):
        StridedPattern(stride_lines=0)


def test_random_spreads_widely(rng):
    offsets = RandomPattern().sample_offsets(100_000, 5_000, rng)
    # Expect close to 5000 unique lines (few collisions).
    assert len(np.unique(offsets)) > 4_000


def test_zipf_weights_are_skewed(rng):
    weights = ZipfPattern(alpha=1.2).page_weights(1000, rng)
    top_decile = np.sort(weights)[::-1][:100].sum()
    assert top_decile > 0.3  # top 10% of pages take far more than 10% of traffic


def test_zipf_skew_increases_with_alpha(rng):
    rng2 = np.random.default_rng(1234)
    low = np.sort(ZipfPattern(alpha=0.6).page_weights(2000, rng))[::-1][:200].sum()
    high = np.sort(ZipfPattern(alpha=1.5).page_weights(2000, rng2))[::-1][:200].sum()
    assert high > low


def test_zipf_rejects_bad_alpha():
    with pytest.raises(ValueError):
        ZipfPattern(alpha=0.0)


def test_hotcold_weights_concentrated_in_hot_set(rng):
    pattern = HotColdPattern(hot_fraction=0.1, hot_traffic=0.9)
    weights = pattern.page_weights(1000, rng)
    assert weights[:100].sum() == pytest.approx(0.9 + 0.1 * 0.1, rel=0.05)


def test_hotcold_offsets_prefer_hot_lines(rng):
    pattern = HotColdPattern(hot_fraction=0.1, hot_traffic=0.95)
    offsets = pattern.sample_offsets(10_000, 20_000, rng)
    hot_share = np.mean(offsets < 1000)
    assert hot_share > 0.85


def test_hotcold_validation():
    with pytest.raises(ValueError):
        HotColdPattern(hot_fraction=0.0)
    with pytest.raises(ValueError):
        HotColdPattern(hot_traffic=1.5)


def test_blocked_runs_sequentially_within_blocks(rng):
    pattern = BlockedPattern(block_lines=128)
    offsets = pattern.sample_offsets(100_000, 256, rng)
    deltas = np.diff(offsets)
    assert np.mean(deltas == 1) > 0.9


def test_blocked_rejects_bad_block():
    with pytest.raises(ValueError):
        BlockedPattern(block_lines=0)


def test_gather_mixes_streamed_and_skewed(rng):
    pattern = GatherPattern(indexed_fraction=0.5)
    weights = pattern.page_weights(1000, rng)
    uniform = 1.0 / 1000
    # More skewed than uniform, less skewed than pure zipf.
    assert weights.max() > uniform
    assert weights.max() < ZipfPattern(alpha=0.8).page_weights(1000, np.random.default_rng(1)).max() + 1e-3


def test_gather_validation():
    with pytest.raises(ValueError):
        GatherPattern(indexed_fraction=1.5)
    with pytest.raises(ValueError):
        GatherPattern(skew_alpha=0.0)


# -- registry -------------------------------------------------------------------------


def test_registry_contains_all_names():
    assert set(PATTERNS) == {
        "sequential",
        "strided",
        "random",
        "zipf",
        "hotcold",
        "blocked",
        "gather",
    }


def test_make_pattern_by_name():
    pattern = make_pattern("zipf", alpha=1.3)
    assert isinstance(pattern, ZipfPattern)
    assert pattern.alpha == 1.3


def test_make_pattern_unknown_name():
    with pytest.raises(ValueError, match="unknown access pattern"):
        make_pattern("fancy")


# -- property-based tests --------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    n_pages=st.integers(min_value=1, max_value=5000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.sampled_from(sorted(PATTERNS)),
)
def test_page_weights_always_normalised(n_pages, seed, name):
    pattern = make_pattern(name)
    weights = pattern.page_weights(n_pages, np.random.default_rng(seed))
    assert len(weights) == n_pages
    assert np.all(weights >= 0)
    assert weights.sum() == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    n_lines=st.integers(min_value=1, max_value=100_000),
    n_samples=st.integers(min_value=1, max_value=2000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    name=st.sampled_from(sorted(PATTERNS)),
)
def test_sample_offsets_always_in_bounds(n_lines, n_samples, seed, name):
    pattern = make_pattern(name)
    offsets = pattern.sample_offsets(n_lines, n_samples, np.random.default_rng(seed))
    assert len(offsets) == n_samples
    assert offsets.dtype == np.int64
    assert offsets.min() >= 0
    assert offsets.max() < n_lines


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_patterns_are_deterministic_given_seed(seed):
    for name in PATTERNS:
        pattern = make_pattern(name)
        a = pattern.sample_offsets(1000, 200, np.random.default_rng(seed))
        b = pattern.sample_offsets(1000, 200, np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)
