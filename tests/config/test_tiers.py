"""Tests for tiered-memory configurations."""

import pytest

from repro.config import (
    ConfigurationError,
    PAPER_CAPACITY_FRACTIONS,
    SKYLAKE_EMULATION,
    TierSpec,
    TieredMemoryConfig,
    capacity_ratio_config,
    paper_tier_configs,
    single_tier_config,
    two_tier_config,
)
from repro.config.units import GiB


class TestTierSpec:
    def test_valid(self):
        tier = TierSpec("local", 8 * GiB, 73e9, 111e-9)
        assert tier.capacity_bytes == 8 * GiB
        assert not tier.pooled

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            TierSpec("bad", -1, 73e9, 111e-9)
        with pytest.raises(ConfigurationError):
            TierSpec("bad", 1, 0.0, 111e-9)
        with pytest.raises(ConfigurationError):
            TierSpec("bad", 1, 73e9, 0.0)


class TestTieredMemoryConfig:
    def test_two_tier_reference_points(self):
        config = two_tier_config(3 * GiB, 1 * GiB)
        assert config.n_tiers == 2
        assert config.remote_capacity_ratio == pytest.approx(0.25)
        assert config.remote_bandwidth_ratio == pytest.approx(34.0 / 107.0)
        assert config.total_capacity == 4 * GiB
        assert config.remote.pooled and not config.local.pooled

    def test_capacity_ratios_sum_to_one(self):
        config = two_tier_config(5 * GiB, 3 * GiB)
        assert sum(config.capacity_ratios) == pytest.approx(1.0)
        assert sum(config.bandwidth_ratios) == pytest.approx(1.0)

    def test_tiers_must_be_fastest_first(self):
        with pytest.raises(ConfigurationError):
            TieredMemoryConfig(
                tiers=(
                    TierSpec("slow", GiB, 10e9, 200e-9),
                    TierSpec("fast", GiB, 70e9, 100e-9),
                )
            )

    def test_needs_at_least_one_tier(self):
        with pytest.raises(ConfigurationError):
            TieredMemoryConfig(tiers=())

    def test_describe(self):
        config = two_tier_config(GiB, GiB)
        described = config.describe()
        assert len(described["tiers"]) == 2
        assert described["remote_capacity_ratio"] == pytest.approx(0.5, abs=1e-6)


class TestCapacityRatioConfig:
    @pytest.mark.parametrize("fraction", PAPER_CAPACITY_FRACTIONS)
    def test_local_fraction_respected(self, fraction):
        footprint = 4 * GiB
        config = capacity_ratio_config(footprint, fraction)
        assert config.local.capacity_bytes == pytest.approx(footprint * fraction, rel=0.01)
        # The pool holds the remainder plus slack.
        assert config.remote.capacity_bytes >= footprint * (1 - fraction)

    def test_total_capacity_holds_footprint(self):
        footprint = 4 * GiB
        for fraction in PAPER_CAPACITY_FRACTIONS:
            config = capacity_ratio_config(footprint, fraction)
            assert config.total_capacity >= footprint

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            capacity_ratio_config(0, 0.5)
        with pytest.raises(ConfigurationError):
            capacity_ratio_config(GiB, 0.0)
        with pytest.raises(ConfigurationError):
            capacity_ratio_config(GiB, 1.5)
        with pytest.raises(ConfigurationError):
            capacity_ratio_config(GiB, 0.5, headroom=0.5)

    def test_full_local_fraction_keeps_remote_tier(self):
        config = capacity_ratio_config(GiB, 1.0)
        assert config.n_tiers == 2
        assert config.remote.capacity_bytes > 0


def test_paper_tier_configs_labels():
    configs = paper_tier_configs(4 * GiB)
    assert set(configs) == {"75-25", "50-50", "25-75"}
    # Remote capacity ratio grows as the local fraction shrinks.
    assert (
        configs["75-25"].remote_capacity_ratio
        < configs["50-50"].remote_capacity_ratio
        < configs["25-75"].remote_capacity_ratio
    )


def test_single_tier_config():
    config = single_tier_config(2 * GiB)
    assert config.n_tiers == 1
    assert config.remote_capacity_ratio == 0.0
    assert config.remote_bandwidth_ratio == 0.0
    assert config.local.bandwidth == SKYLAKE_EMULATION.local_bandwidth
