"""Tests for unit helpers."""

import pytest

from repro.config import units


def test_si_and_iec_prefixes_differ():
    assert units.GB == 10**9
    assert units.GiB == 2**30
    assert units.GiB > units.GB


def test_gb_round_trip():
    assert units.bytes_to_gb(units.gb(34.0)) == pytest.approx(34.0)
    assert units.bytes_to_gib(units.gib(512)) == pytest.approx(512)


def test_time_and_rate_helpers():
    assert units.ns(111) == pytest.approx(111e-9)
    assert units.seconds_to_ns(units.ns(202)) == pytest.approx(202)
    assert units.gflops(1100) == pytest.approx(1.1e12)
    assert units.gb_per_s(73) == pytest.approx(73e9)


def test_pages_for_rounds_up():
    assert units.pages_for(1) == 1
    assert units.pages_for(units.PAGE_BYTES) == 1
    assert units.pages_for(units.PAGE_BYTES + 1) == 2
    assert units.pages_for(10 * units.PAGE_BYTES) == 10


def test_pages_for_zero_and_negative():
    assert units.pages_for(0) == 0
    assert units.pages_for(-5) == 0


def test_cachelines_for():
    assert units.cachelines_for(0) == 0
    assert units.cachelines_for(1) == 1
    assert units.cachelines_for(64) == 1
    assert units.cachelines_for(65) == 2
    assert units.cachelines_for(units.PAGE_BYTES) == units.PAGE_BYTES // 64


def test_page_is_multiple_of_cacheline():
    assert units.PAGE_BYTES % units.CACHELINE_BYTES == 0


# -- parse_size (Slurm-style sizes) -------------------------------------------


def test_parse_size_suffixes_are_binary():
    assert units.parse_size("4056K") == 4056 * units.KiB
    assert units.parse_size("2G") == 2 * units.GiB
    assert units.parse_size("1.5M") == int(round(1.5 * units.MiB))
    assert units.parse_size("3T") == 3 * units.TiB
    assert units.parse_size("0") == 0


def test_parse_size_default_multiplier_for_bare_numbers():
    assert units.parse_size("100") == 100
    assert units.parse_size("100", default_multiplier=units.KiB) == 100 * units.KiB


def test_parse_size_strips_slurm_qualifiers():
    assert units.parse_size("512Mn") == 512 * units.MiB
    assert units.parse_size("512Mc") == 512 * units.MiB


def test_parse_size_rejects_garbage():
    from repro.config.errors import ConfigurationError

    for bad in ["", "  ", "12XQ", "G", "-5K", "1.2.3G"]:
        with pytest.raises(ConfigurationError):
            units.parse_size(bad)
    with pytest.raises(ConfigurationError):
        units.parse_size(1234)  # not a string


def test_units_convention_gb_boundary():
    """The pinned units contract (docs/data.md): Slurm RSS suffixes are
    binary (KiB-based), scheduler-layer capacities (``JobProfile.pool_gb``,
    ``Rack.pool_capacity_gb``) are decimal GB.  The two differ by ~7.4% at
    the G step — mixing them up is a real, measurable bug, so the boundary
    is pinned here."""
    one_g_rss = units.parse_size("1G")
    assert one_g_rss == units.GiB != units.GB
    # Crossing the boundary: binary RSS bytes -> decimal GB.
    assert units.bytes_to_gb(one_g_rss) == pytest.approx(1.073741824)
    # And the scheduler layer converts decimal GB -> bytes via gb().
    assert units.gb(1.0) == 1e9
