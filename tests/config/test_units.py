"""Tests for unit helpers."""

import pytest

from repro.config import units


def test_si_and_iec_prefixes_differ():
    assert units.GB == 10**9
    assert units.GiB == 2**30
    assert units.GiB > units.GB


def test_gb_round_trip():
    assert units.bytes_to_gb(units.gb(34.0)) == pytest.approx(34.0)
    assert units.bytes_to_gib(units.gib(512)) == pytest.approx(512)


def test_time_and_rate_helpers():
    assert units.ns(111) == pytest.approx(111e-9)
    assert units.seconds_to_ns(units.ns(202)) == pytest.approx(202)
    assert units.gflops(1100) == pytest.approx(1.1e12)
    assert units.gb_per_s(73) == pytest.approx(73e9)


def test_pages_for_rounds_up():
    assert units.pages_for(1) == 1
    assert units.pages_for(units.PAGE_BYTES) == 1
    assert units.pages_for(units.PAGE_BYTES + 1) == 2
    assert units.pages_for(10 * units.PAGE_BYTES) == 10


def test_pages_for_zero_and_negative():
    assert units.pages_for(0) == 0
    assert units.pages_for(-5) == 0


def test_cachelines_for():
    assert units.cachelines_for(0) == 0
    assert units.cachelines_for(1) == 1
    assert units.cachelines_for(64) == 1
    assert units.cachelines_for(65) == 2
    assert units.cachelines_for(units.PAGE_BYTES) == units.PAGE_BYTES // 64


def test_page_is_multiple_of_cacheline():
    assert units.PAGE_BYTES % units.CACHELINE_BYTES == 0
