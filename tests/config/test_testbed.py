"""Tests for the testbed (platform) configuration."""

import pytest

from repro.config import ConfigurationError, SKYLAKE_EMULATION, TestbedConfig, small_testbed
from repro.config.testbed import CacheLevelConfig, PrefetcherConfig


class TestDefaults:
    def test_paper_platform_numbers(self):
        d = SKYLAKE_EMULATION.describe()
        assert d["local_bandwidth_gbs"] == pytest.approx(73.0)
        assert d["remote_bandwidth_gbs"] == pytest.approx(34.0)
        assert d["local_latency_ns"] == pytest.approx(111.0)
        assert d["remote_latency_ns"] == pytest.approx(202.0)
        assert d["link_peak_traffic_gbs"] == pytest.approx(85.0)

    def test_remote_is_slower_than_local(self):
        assert SKYLAKE_EMULATION.remote_bandwidth < SKYLAKE_EMULATION.local_bandwidth
        assert SKYLAKE_EMULATION.remote_latency > SKYLAKE_EMULATION.local_latency

    def test_aggregate_bandwidth_exceeds_local(self):
        # The paper's "misconception" point: an extra tier adds bandwidth.
        assert SKYLAKE_EMULATION.aggregate_bandwidth > SKYLAKE_EMULATION.local_bandwidth

    def test_bandwidth_ratio_remote(self):
        expected = 34.0 / (73.0 + 34.0)
        assert SKYLAKE_EMULATION.bandwidth_ratio_remote == pytest.approx(expected)

    def test_machine_balance_positive(self):
        assert SKYLAKE_EMULATION.machine_balance > 1.0

    def test_cache_levels_ordered(self):
        sizes = [lvl.capacity_bytes for lvl in SKYLAKE_EMULATION.cache_levels]
        assert sizes == sorted(sizes)
        assert SKYLAKE_EMULATION.llc.name == "L3"
        assert SKYLAKE_EMULATION.l2.name == "L2"


class TestValidation:
    def test_rejects_remote_faster_than_local(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(local_bandwidth=10e9, remote_bandwidth=20e9)

    def test_rejects_remote_latency_below_local(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(local_latency=200e-9, remote_latency=100e-9)

    def test_rejects_nonpositive_flops(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(peak_flops=0.0)

    def test_rejects_bad_protocol_overhead(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(link_protocol_overhead=0.5)

    def test_cache_level_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            CacheLevelConfig("L1", 0, 8)
        with pytest.raises(ConfigurationError):
            CacheLevelConfig("L1", 32 * 1024, 8, line_bytes=48)
        with pytest.raises(ConfigurationError):
            CacheLevelConfig("L1", 1000, 8)  # not a multiple of assoc*line

    def test_cache_level_derived_counts(self):
        level = CacheLevelConfig("L2", 1 << 20, 16)
        assert level.n_sets == (1 << 20) // (16 * 64)
        assert level.n_lines == (1 << 20) // 64


class TestPrefetcherConfig:
    def test_disabled_copy(self):
        config = PrefetcherConfig(enabled=True, degree=8)
        off = config.disabled()
        assert off.enabled is False
        assert off.degree == config.degree
        assert config.enabled is True  # original untouched

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PrefetcherConfig(degree=0)
        with pytest.raises(ConfigurationError):
            PrefetcherConfig(detection_window=0)
        with pytest.raises(ConfigurationError):
            PrefetcherConfig(max_streams=0)

    def test_with_prefetching_toggle(self):
        off = SKYLAKE_EMULATION.with_prefetching(False)
        assert off.prefetcher.enabled is False
        assert SKYLAKE_EMULATION.prefetcher.enabled is True


def test_small_testbed_preserves_ratios():
    small = small_testbed()
    assert small.local_bandwidth == SKYLAKE_EMULATION.local_bandwidth
    assert small.llc.capacity_bytes < SKYLAKE_EMULATION.llc.capacity_bytes


def test_small_testbed_rejects_bad_scale():
    with pytest.raises(ConfigurationError):
        small_testbed(0.0)
    with pytest.raises(ConfigurationError):
        small_testbed(2.0)
