"""Tests for the table builders."""

import pytest

from repro.analysis.tables import format_table, table1_memory_cost, table2_workloads
from repro.models.cost import MemoryPriceModel


def test_table1_rows_and_costs():
    rows = table1_memory_cost()
    assert len(rows) == 10
    frontier = rows[0]
    assert frontier["system"] == "Frontier"
    assert frontier["est_ddr_cost_musd"] == pytest.approx(19.3, rel=0.05)
    assert frontier["est_hbm_cost_musd_low"] < frontier["est_hbm_cost_musd_high"]
    assert frontier["multi_tier"] is True
    # Systems without HBM have zero HBM cost.
    sunway = next(r for r in rows if "Sunway" in r["system"])
    assert sunway["est_hbm_cost_musd_mid"] == 0.0


def test_table1_custom_prices():
    rows = table1_memory_cost(MemoryPriceModel(ddr_per_gb=8.0))
    default_rows = table1_memory_cost()
    assert rows[0]["est_ddr_cost_musd"] == pytest.approx(
        2 * default_rows[0]["est_ddr_cost_musd"]
    )


def test_table2_rows_and_footprint_ratios():
    rows = table2_workloads()
    assert len(rows) == 6
    for row in rows:
        assert row["footprint_ratio"][0] == pytest.approx(1.0)
        assert row["footprint_ratio"][1] == pytest.approx(2.0, rel=0.02)
        assert row["footprint_ratio"][2] == pytest.approx(4.0, rel=0.02)
    names = [row["application"] for row in rows]
    assert names == ["HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"]


def test_format_table_renders_plain_text():
    rows = [
        {"a": 1, "b": "x", "c": 1.23456, "d": None, "e": True},
        {"a": 22, "b": "yy", "c": 2.0, "d": "z", "e": False},
    ]
    text = format_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4  # header, separator, two rows
    assert "a" in lines[0] and "e" in lines[0]
    assert "yes" in text and "-" in text


def test_format_table_empty_and_column_selection():
    assert format_table([]) == "(empty table)"
    text = format_table([{"a": 1, "b": 2}], columns=["b"])
    assert "a" not in text.splitlines()[0]
