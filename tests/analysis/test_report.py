"""Tests for the measured-results report generator."""

import pytest

from repro.analysis.report import ALL_EXPERIMENTS, ReportSection, measured_report


def test_report_section_markdown():
    section = ReportSection("x", "Title", "body text")
    md = section.as_markdown()
    assert md.startswith("## Title")
    assert "body text" in md


def test_small_report_contains_selected_sections():
    report = measured_report(experiments=("table1", "table2", "figure8"), seed=0)
    assert report.startswith("# Measured results")
    assert "## Table 1" in report
    assert "## Table 2" in report
    assert "## Figure 8" in report
    assert "## Figure 13" not in report
    assert "Frontier" in report
    assert "XSBench" in report


def test_report_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiments"):
        measured_report(experiments=("figure99",))


def test_all_experiment_ids_have_builders():
    # Smoke-check the cheap sections; expensive ones are covered by the
    # figure-builder tests and the benchmark harness.
    report = measured_report(experiments=("table1", "table2"), seed=0)
    assert len(ALL_EXPERIMENTS) == 9
    assert "DDR GB/node" in report
