"""Tests for the figure builders (reduced problem sizes / run counts)."""

import numpy as np
import pytest

from repro.analysis import figures


def test_figure1_series():
    data = figures.figure1_memory_evolution()
    assert len(data["years"]) == len(data["memory_gb_per_node"]) >= 8
    assert data["years"] == sorted(data["years"])


def test_figure5_roofline_points_cover_both_regimes():
    series = figures.figure5_roofline(scale=1.0)
    labels = [p["label"] for p in series["points"]]
    assert "HPL-p2" in labels and "Hypre-p2" in labels
    hpl = next(p for p in series["points"] if p["label"] == "HPL-p2")
    hypre = next(p for p in series["points"] if p["label"] == "Hypre-p2")
    assert not hpl["memory_bound"]
    assert hypre["memory_bound"]
    # Every point lies under the roof.
    for point in series["points"]:
        assert point["efficiency"] <= 1.0 + 1e-9


@pytest.fixture(scope="module")
def scaling_curves():
    return figures.figure6_scaling_curves()


def test_figure6_panel_structure(scaling_curves):
    assert set(scaling_curves) == {"HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"}
    for panels in scaling_curves.values():
        assert len(panels) == 3
        for curve in panels.values():
            assert curve["access_pct"][-1] == pytest.approx(100.0)


def test_figure6_reproduces_paper_shapes(scaling_curves):
    # HPL/Hypre uniform, BFS/XSBench skewed.
    def skew(name):
        return np.mean([c["skewness"] for c in scaling_curves[name].values()])

    assert skew("HPL") < 0.15
    assert skew("Hypre") < 0.15
    assert skew("BFS") > 0.4
    assert skew("XSBench") > 0.4

    # BFS curves shift left (more skew) as the input grows; HPL curves overlap.
    bfs = [c["skewness"] for c in scaling_curves["BFS"].values()]
    assert bfs[-1] > bfs[0]
    hpl = [c["skewness"] for c in scaling_curves["HPL"].values()]
    assert max(hpl) - min(hpl) < 0.05

    # SuperLU moves towards a more uniform distribution with larger inputs.
    superlu = [c["skewness"] for c in scaling_curves["SuperLU"].values()]
    assert superlu[-1] < superlu[0]


def test_figure7_timeline_shows_prefetch_speedup():
    panels = figures.figure7_prefetch_timeline(workloads=("NekRS",), steps_per_phase=10)
    nekrs = panels["NekRS"]
    with_pf = nekrs["with-prefetch"]
    without_pf = nekrs["without-prefetch"]
    assert with_pf["time"][-1] < without_pf["time"][-1]
    assert with_pf["l2_lines"].sum() >= without_pf["l2_lines"].sum() * 0.999


def test_figure8_reproduces_prefetch_orderings():
    rows = figures.figure8_prefetch_metrics()
    assert set(rows) == {"HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"}
    # NekRS has the largest performance gain; XSBench essentially none.
    assert rows["NekRS"]["performance_gain"] == max(r["performance_gain"] for r in rows.values())
    assert rows["XSBench"]["performance_gain"] < 0.05
    # SuperLU has by far the largest excessive traffic.
    assert rows["SuperLU"]["excess_traffic"] == max(r["excess_traffic"] for r in rows.values())
    assert rows["SuperLU"]["excess_traffic"] > 0.2
    # Hypre and NekRS have the highest coverage; XSBench below 5%.
    assert rows["Hypre"]["coverage"] > 0.6 and rows["NekRS"]["coverage"] > 0.6
    assert rows["XSBench"]["coverage"] < 0.05


def test_figure9_reference_lines_and_xsbench_claim():
    panels = figures.figure9_tier_access(local_fractions=(0.75, 0.25))
    assert set(panels) == {"75-25", "25-75"}
    for label, panel in panels.items():
        assert 0.0 < panel["capacity_ratio"] < 1.0
        assert 0.0 < panel["bandwidth_ratio"] < 1.0
        labels = [row["label"] for row in panel["phases"]]
        assert "Hypre-p2" in labels and "XSBench-p2" in labels
        xs = [r for r in panel["phases"] if r["label"].startswith("XSBench")]
        assert all(r["remote_access_ratio"] < 0.10 for r in xs)
    # More pooling -> higher capacity reference line.
    assert panels["25-75"]["capacity_ratio"] > panels["75-25"]["capacity_ratio"]


def test_figure10_sensitivity_orderings():
    panels = figures.figure10_sensitivity(
        local_fractions=(0.50,), loi_levels=(0.0, 50.0)
    )
    rows = panels["50-50"]
    # Monotone degradation and the paper's extremes: Hypre/NekRS sensitive, XSBench not.
    for series in rows.values():
        rel = series["relative_performance"]
        assert rel[0] == pytest.approx(1.0)
        assert rel[-1] <= 1.0 + 1e-9
    assert rows["Hypre"]["max_loss"] > rows["XSBench"]["max_loss"]
    assert rows["NekRS"]["max_loss"] > rows["HPL"]["max_loss"]
    assert rows["XSBench"]["max_loss"] < 0.05


def test_figure11_lbench_panels():
    data = figures.figure11_lbench(background_flops=(1, 8, 64), intensities=(10, 30, 50))
    left = data["loi_scaling"]["2-threads"]
    assert [p["configured"] for p in left] == [10, 30, 50]
    assert all(abs(p["measured"] - p["configured"]) < 8 for p in left)
    middle = data["contention_curve"]
    assert middle[0]["pcm_traffic"] >= middle[-1]["pcm_traffic"]
    assert middle[0]["interference_coefficient"] > middle[-1]["interference_coefficient"]
    right = data["application_ic"]
    assert right["Hypre"]["interference_coefficient"] > right["XSBench"]["interference_coefficient"]
    assert data["loi_calibration"][10.0] > data["loi_calibration"][50.0]


def test_figure12_bfs_case_study_summary():
    data = figures.figure12_bfs_case_study(with_sensitivity=False)
    assert len(data["rows"]) == 6
    for config in ("50%-pooled", "75%-pooled"):
        assert data["speedups"][config]["optimized"] > 0
        assert data["remote_reduction"][config]["optimized"] > data["remote_reduction"][config]["reordered"] * 0.99


def test_figure13_scheduling_small():
    data = figures.figure13_scheduling(n_runs=10, workloads=("Hypre", "XSBench"))
    assert set(data["per_workload"]) == {"Hypre", "XSBench"}
    assert data["mean_speedups"]["Hypre"] >= data["mean_speedups"]["XSBench"]
    assert data["most_improved"] == "Hypre"


def test_figure_fabric_pool_timeline():
    data = figures.figure_fabric_pool_timeline(n_tenants=3, workload="Hypre")
    timeline = data["timeline"]
    lengths = {len(series) for series in timeline.values()}
    assert len(lengths) == 1 and lengths.pop() > 0
    # Leased capacity never exceeds the pool and the port runs hot.
    assert max(timeline["leased_gb"]) <= data["summary"]["pool_capacity_gb"] + 1e-9
    assert max(timeline["max_port_utilization"]) > 0.5
    # Every finished tenant has an emergent background-interference timeline.
    assert set(data["tenant_background_loi"]) == {"Hypre-0", "Hypre-1", "Hypre-2"}
    for series in data["tenant_background_loi"].values():
        assert max(series["loi"]) > 0
    assert data["summary"]["mean_slowdown"] > 1.0


def test_figure_fabric_pool_timeline_capped_pool_queues_tenants():
    lease_bytes = int(0.5 * 2.4e9)
    data = figures.figure_fabric_pool_timeline(
        n_tenants=3, workload="Hypre", pool_capacity_bytes=2 * lease_bytes + 1
    )
    assert max(data["timeline"]["queue_depth"]) >= 1
    waits = [t["wait_s"] for t in data["summary"]["tenants"]]
    assert max(waits) > 0


def test_figure_fabric_pool_timeline_three_racks():
    """The multi-rack view: per-rack timelines, every tenant's background."""
    data = figures.figure_fabric_pool_timeline(
        n_tenants=2, workload="Hypre", n_racks=3
    )
    assert set(data["timeline"]) == {"rack0", "rack1", "rack2"}
    for series in data["timeline"].values():
        lengths = {len(column) for column in series.values()}
        assert len(lengths) == 1 and lengths.pop() > 0
    expected = {f"rack{r}-Hypre-{i}" for r in range(3) for i in range(2)}
    assert set(data["tenant_background_loi"]) == expected
    for series in data["tenant_background_loi"].values():
        assert max(series["loi"]) > 0
    summary = data["summary"]
    assert summary["n_racks"] == 3
    assert len(summary["tenants"]) == 6
    assert summary["mean_slowdown"] > 1.0


def test_figure_fabric_pool_timeline_three_racks_spills():
    """Capped rack pools + a cluster pool: spilled tenants are reported."""
    lease_bytes = int(0.5 * 2.4e9)
    data = figures.figure_fabric_pool_timeline(
        n_tenants=2,
        workload="Hypre",
        n_racks=3,
        pool_capacity_bytes=lease_bytes + 1,
        cluster_pool_bytes=16 * lease_bytes,
    )
    summary = data["summary"]
    assert summary["spilled_tenants"] == 3
    spilled = {t["name"] for t in summary["tenants"] if t["spilled"]}
    assert spilled == {"rack0-Hypre-1", "rack1-Hypre-1", "rack2-Hypre-1"}
    # Spilled tenants still finished, just slower than their local peers.
    for tenant in summary["tenants"]:
        assert tenant["runtime_s"] is not None
        assert tenant["slowdown"] >= 1.0


def test_figure_fabric_pool_timeline_solver_equivalence():
    """The figure is solver-independent (scalar vs vectorized)."""
    kwargs = dict(n_tenants=2, workload="Hypre", n_racks=3)
    vec = figures.figure_fabric_pool_timeline(solver="vectorized", **kwargs)
    sca = figures.figure_fabric_pool_timeline(solver="scalar", **kwargs)
    assert vec["summary"]["makespan"] == pytest.approx(
        sca["summary"]["makespan"], rel=1e-3
    )
    assert vec["summary"]["solver"] == "vectorized"
    assert sca["summary"]["solver"] == "scalar"
