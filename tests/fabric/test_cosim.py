"""Tests for the rack co-simulator and the dynamic-interference feedback loop."""

import numpy as np
import pytest

from repro.config.errors import FabricError
from repro.config.units import MiB
from repro.fabric import (
    DynamicInterference,
    FabricTopology,
    MemoryPool,
    RackCoSimulator,
    TenantSpec,
)
from repro.fabric.pool import LEASE_REJECTED
from repro.interconnect.link import RemoteLink
from repro.config import SKYLAKE_EMULATION
from repro.memory.objects import MemoryObject
from repro.sim import ExecutionEngine, Platform
from repro.trace.patterns import SequentialPattern
from repro.workloads.base import PhaseSpec, WorkloadSpec


def bandwidth_hungry_spec(name="stream"):
    """A small synthetic tenant that streams most of its traffic from the pool."""
    data = MemoryObject(name="data", size_bytes=256 * MiB, pattern=SequentialPattern())
    phases = (
        PhaseSpec(
            name="p1",
            flops=2e10,
            dram_bytes=60_000 * MiB,
            object_traffic={"data": 1.0},
            mlp=8.0,
        ),
    )
    return WorkloadSpec(
        name=name, input_label="t1", scale=1.0, objects=(data,), phases=phases
    )


def tenants(n, spec=None, **kwargs):
    spec = spec if spec is not None else bandwidth_hungry_spec()
    return [
        TenantSpec(name=f"t{i}", workload=spec, local_fraction=0.5, **kwargs)
        for i in range(n)
    ]


class TestValidation:
    def test_needs_tenants(self):
        with pytest.raises(FabricError):
            RackCoSimulator([])

    def test_unique_names(self):
        spec = bandwidth_hungry_spec()
        duplicated = [
            TenantSpec(name="same", workload=spec),
            TenantSpec(name="same", workload=spec),
        ]
        with pytest.raises(FabricError):
            RackCoSimulator(duplicated)

    def test_more_tenants_than_nodes(self):
        with pytest.raises(FabricError):
            RackCoSimulator(tenants(3), topology=FabricTopology(n_nodes=2))

    def test_tenant_spec_validation(self):
        spec = bandwidth_hungry_spec()
        with pytest.raises(FabricError):
            TenantSpec(name="x", workload=spec, local_fraction=0.0)
        with pytest.raises(FabricError):
            TenantSpec(name="x", workload=spec, arrival=-1.0)
        with pytest.raises(FabricError):
            RackCoSimulator(tenants(1), epoch_seconds=0.0)


class TestEmergentInterference:
    def test_single_tenant_matches_baseline(self):
        result = RackCoSimulator(tenants(1)).run()
        outcome = result.tenants[0]
        assert outcome.slowdown == pytest.approx(1.0, rel=1e-3)
        assert outcome.mean_background_bandwidth == 0.0

    def test_runtimes_degrade_monotonically_with_tenant_count(self):
        """The acceptance demo: >= 4 tenants on one port, emergent slowdown."""
        runtimes = []
        for n in (1, 2, 3, 4, 5, 6):
            result = RackCoSimulator(tenants(n)).run()
            runtimes.append(result.mean_runtime)
        assert all(b >= a - 1e-9 for a, b in zip(runtimes, runtimes[1:]))
        # Degradation is substantial and still strictly growing at 4+ tenants.
        assert runtimes[3] > runtimes[2] * 1.05
        assert runtimes[5] > runtimes[3] * 1.05
        assert runtimes[-1] > runtimes[0] * 1.5

    def test_co_runners_see_each_other(self):
        result = RackCoSimulator(tenants(3)).run()
        for outcome in result.tenants:
            assert outcome.mean_background_bandwidth > 0
            assert outcome.slowdown > 1.0

    def test_separate_ports_do_not_interfere(self):
        shared = RackCoSimulator(
            tenants(2), topology=FabricTopology(n_nodes=2, n_ports=1)
        ).run()
        isolated = RackCoSimulator(
            tenants(2), topology=FabricTopology(n_nodes=2, n_ports=2)
        ).run()
        assert isolated.mean_slowdown == pytest.approx(1.0, rel=1e-3)
        assert shared.mean_slowdown > isolated.mean_slowdown


class TestPoolAdmission:
    def test_leases_never_exceed_capacity(self):
        spec = bandwidth_hungry_spec()
        lease = TenantSpec(name="x", workload=spec, local_fraction=0.5).lease_bytes
        pool = MemoryPool(2 * lease + 1)
        result = RackCoSimulator(tenants(5), pool=pool).run()
        assert result.max_leased_bytes <= pool.capacity_bytes
        samples = result.telemetry.leased_bytes
        assert max(samples) <= pool.capacity_bytes

    def test_queued_tenants_run_after_release(self):
        spec = bandwidth_hungry_spec()
        lease = TenantSpec(name="x", workload=spec, local_fraction=0.5).lease_bytes
        pool = MemoryPool(2 * lease + 1)
        result = RackCoSimulator(tenants(4), pool=pool).run()
        waits = sorted(t.wait_time for t in result.finished_tenants)
        assert len(result.finished_tenants) == 4
        assert waits[0] == 0.0 and waits[1] == 0.0
        assert waits[2] > 0.0 and waits[3] > 0.0
        assert result.makespan > max(t.runtime for t in result.finished_tenants)

    def test_oversized_tenant_rejected(self):
        spec = bandwidth_hungry_spec()
        lease = TenantSpec(name="x", workload=spec, local_fraction=0.5).lease_bytes
        pool = MemoryPool(lease // 2)
        result = RackCoSimulator(tenants(1), pool=pool).run()
        outcome = result.tenants[0]
        assert outcome.lease_state == LEASE_REJECTED
        assert outcome.finish_time is None
        with pytest.raises(FabricError):
            result.interference_for("t0")

    def test_capped_pool_trades_interference_for_waiting(self):
        spec = bandwidth_hungry_spec()
        lease = TenantSpec(name="x", workload=spec, local_fraction=0.5).lease_bytes
        all_at_once = RackCoSimulator(tenants(4)).run()
        two_at_a_time = RackCoSimulator(
            tenants(4), pool=MemoryPool(2 * lease + 1)
        ).run()
        assert two_at_a_time.mean_slowdown < all_at_once.mean_slowdown
        assert max(t.wait_time for t in two_at_a_time.finished_tenants) > 0


class TestStaggeredArrivals:
    def test_staggered_arrivals(self):
        spec = bandwidth_hungry_spec()
        specs = [
            TenantSpec(name="early", workload=spec, local_fraction=0.5, arrival=0.0),
            TenantSpec(name="late", workload=spec, local_fraction=0.5, arrival=50.0),
        ]
        result = RackCoSimulator(specs).run()
        late = result.tenant("late")
        assert late.start_time is not None and late.start_time >= 50.0
        assert result.tenant("early").start_time == 0.0


class TestDynamicInterferenceAdapter:
    def test_validation(self):
        link = RemoteLink(SKYLAKE_EMULATION)
        with pytest.raises(FabricError):
            DynamicInterference([], [], link)
        with pytest.raises(FabricError):
            DynamicInterference([0.0, 0.0], [1.0, 1.0], link)
        with pytest.raises(FabricError):
            DynamicInterference([0.0, 1.0], [1.0, -1.0], link)

    def test_step_lookup(self):
        link = RemoteLink(SKYLAKE_EMULATION)
        dyn = DynamicInterference([0.0, 10.0, 20.0], [1e9, 2e9, 0.0], link)
        assert dyn.background_bandwidth(link, -5.0) == 1e9
        assert dyn.background_bandwidth(link, 0.0) == 1e9
        assert dyn.background_bandwidth(link, 10.0) == 2e9
        assert dyn.background_bandwidth(link, 15.0) == 2e9
        assert dyn.background_bandwidth(link, 99.0) == 0.0

    def test_loi_reporting(self):
        link = RemoteLink(SKYLAKE_EMULATION)
        bw = link.bandwidth_for_loi(30.0)
        dyn = DynamicInterference([0.0, 10.0], [bw, 0.0], link)
        assert dyn.mean_loi() == pytest.approx(15.0)
        assert dyn.peak_loi == pytest.approx(30.0)
        times, lois = dyn.loi_timeline()
        assert list(times) == [0.0, 10.0]
        assert lois[0] == pytest.approx(30.0)

    def test_feedback_into_engine_reproduces_cosim_slowdown(self):
        """Replaying the fabric-derived background through the ordinary engine
        yields the same runtime the co-simulation predicted."""
        spec = bandwidth_hungry_spec()
        result = RackCoSimulator(tenants(3, spec=spec)).run()
        dyn = result.interference_for("t0")
        platform = Platform.pooled(spec.footprint_bytes, 0.5)
        engine = ExecutionEngine(platform, seed=0)
        idle = engine.run(spec)
        replay = engine.run(spec, interference=dyn)
        assert replay.total_runtime > idle.total_runtime
        cosim_runtime = result.tenant("t0").runtime
        assert replay.total_runtime == pytest.approx(cosim_runtime, rel=0.05)
        assert replay.interference_loi == pytest.approx(dyn.mean_loi())


class TestIncrementalStepping:
    """The scheduler-facing API: admit/withdraw/step/checkpoint/rollover."""

    def _incremental(self, n=3, epoch_seconds=None, **kwargs):
        return RackCoSimulator.incremental(
            n_nodes=n, epoch_seconds=epoch_seconds, **kwargs
        )

    def test_matches_batch_run(self):
        """Admitting everyone at t=0 and stepping to completion reproduces
        the batch run() exactly (same epochs, same backgrounds)."""
        specs = tenants(3)
        batch = RackCoSimulator(specs).run()
        inc = self._incremental(3, epoch_seconds=batch.epoch_seconds)
        for i, spec in enumerate(specs):
            lease = inc.admit(spec, node=i)
            assert lease.state == "granted"
        inc.step(batch.makespan * 2)
        for outcome in batch.finished_tenants:
            state = inc.tenant_states[outcome.name]
            assert state.finish_time == pytest.approx(outcome.finish_time, abs=1e-9)

    def test_step_returns_baseline_seconds(self):
        spec = bandwidth_hungry_spec()
        inc = self._incremental(1)
        inc.admit(TenantSpec(name="solo", workload=spec, local_fraction=0.5))
        total = inc.baseline_runtime_of("solo")
        done = inc.step(total / 2)
        # Alone on the port: one wall second is one baseline second.
        assert done["solo"] == pytest.approx(total / 2, rel=1e-9)
        assert inc.clock == pytest.approx(total / 2)

    def test_horizon_bounds_epoch_and_rates_are_constant_within_it(self):
        inc = self._incremental(2, epoch_seconds=0.5)
        for spec in tenants(2):
            inc.admit(spec)
        horizon = inc.horizon()
        assert 0 < horizon <= 0.5
        rates_before = inc.progress_rates()
        inc.step(horizon * 0.5)
        assert inc.progress_rates() == rates_before

    def test_withdraw_releases_interference_and_pool(self):
        specs = tenants(2)
        inc = self._incremental(2)
        for spec in specs:
            inc.admit(spec)
        contended = inc.progress_rates()["t0"]
        inc.withdraw("t1")
        alone = inc.progress_rates()["t0"]
        assert alone > contended
        assert alone == pytest.approx(1.0, rel=1e-9)
        assert inc.pool.leased_bytes == specs[0].lease_bytes

    def test_withdraw_admits_queued_tenant(self):
        spec = bandwidth_hungry_spec()
        lease_bytes = TenantSpec(name="x", workload=spec, local_fraction=0.5).lease_bytes
        inc = self._incremental(2, pool=MemoryPool(lease_bytes + 1))
        first = inc.admit(TenantSpec(name="a", workload=spec, local_fraction=0.5))
        second = inc.admit(TenantSpec(name="b", workload=spec, local_fraction=0.5))
        assert first.state == "granted" and second.state == "queued"
        assert "b" not in inc.progress_rates()
        inc.withdraw("a")
        assert second.state == "granted"
        assert "b" in inc.progress_rates()

    def test_checkpoint_rollover_is_deterministic(self):
        """The ISSUE's regression: re-stepping from a rolled-over checkpoint
        reproduces the speculative step bit for bit."""
        inc = self._incremental(3, epoch_seconds=0.05)
        for spec in tenants(3):
            inc.admit(spec)
        inc.step(0.1)
        checkpoint = inc.checkpoint()
        first = inc.step(0.7)
        first_states = {
            name: (s.phase_index, s.phase_elapsed, s.finish_time)
            for name, s in inc.tenant_states.items()
        }
        inc.rollover(checkpoint)
        assert inc.clock == checkpoint.clock
        second = inc.step(0.7)
        assert first == second
        second_states = {
            name: (s.phase_index, s.phase_elapsed, s.finish_time)
            for name, s in inc.tenant_states.items()
        }
        assert first_states == second_states

    def test_rollover_trims_recorded_timelines(self):
        inc = self._incremental(2, epoch_seconds=0.05)
        for spec in tenants(2):
            inc.admit(spec)
        checkpoint = inc.checkpoint()
        telemetry_len = len(inc.telemetry.times)
        inc.step(0.5)
        assert len(inc.telemetry.times) > telemetry_len
        inc.rollover(checkpoint)
        assert len(inc.telemetry.times) == telemetry_len
        state = inc.tenant_states["t0"]
        assert len(state.background_times) == dict(checkpoint.histories)["t0"]

    def test_checkpoint_invalidated_by_membership_change(self):
        specs = tenants(2)
        inc = self._incremental(2)
        inc.admit(specs[0])
        checkpoint = inc.checkpoint()
        inc.admit(specs[1])
        with pytest.raises(FabricError):
            inc.rollover(checkpoint)

    def test_admit_validation(self):
        spec = bandwidth_hungry_spec()
        inc = self._incremental(1)
        inc.admit(TenantSpec(name="a", workload=spec, local_fraction=0.5))
        with pytest.raises(FabricError):  # duplicate name
            inc.admit(TenantSpec(name="a", workload=spec, local_fraction=0.5))
        with pytest.raises(FabricError):  # no free node
            inc.admit(TenantSpec(name="b", workload=spec, local_fraction=0.5))
        with pytest.raises(FabricError):  # unknown tenant
            inc.withdraw("nope")
        with pytest.raises(FabricError):  # negative step
            inc.step(-1.0)

    def test_admit_in_the_past_rejected(self):
        spec = bandwidth_hungry_spec()
        inc = self._incremental(2)
        inc.admit(TenantSpec(name="a", workload=spec, local_fraction=0.5))
        inc.step(1.0)
        with pytest.raises(FabricError, match="in the past"):
            inc.admit(
                TenantSpec(name="b", workload=spec, local_fraction=0.5), time=0.5
            )


class TestResultReporting:
    def test_summary_structure(self):
        result = RackCoSimulator(tenants(2)).run()
        summary = result.summary()
        assert summary["makespan"] > 0
        assert len(summary["tenants"]) == 2
        row = summary["tenants"][0]
        assert {"name", "slowdown", "wait_s", "runtime_s", "lease_state"} <= set(row)

    def test_telemetry_series(self):
        result = RackCoSimulator(tenants(2)).run()
        series = result.telemetry.series()
        lengths = {len(v) for v in series.values()}
        assert len(lengths) == 1 and lengths.pop() > 0
        assert max(series["max_port_utilization"]) > 0
        assert all(np.diff(series["time"]) > 0)

    def test_unknown_tenant_lookup(self):
        result = RackCoSimulator(tenants(1)).run()
        with pytest.raises(KeyError):
            result.tenant("nope")
