"""The failure model's guarantees (docs/failure_model.md).

Four contracts: seeded schedules are pure functions of their seed (same seed,
bit-identical telemetry), the empty schedule is invisible (outputs identical
to a simulator that never saw the fault layer), revoke/shrink accounting
holds its invariants (leased bytes never negative, migration charged exactly
once), and checkpoints tolerate pending faults but refuse applied ones.
"""

import pytest

from repro.config.errors import FabricError
from repro.config.units import MiB
from repro.fabric import (
    FaultEvent,
    FaultSchedule,
    MemoryPool,
    RackCoSimulator,
    TenantSpec,
    parse_fault_spec,
)
from repro.memory.objects import MemoryObject
from repro.trace.patterns import SequentialPattern
from repro.workloads.base import PhaseSpec, WorkloadSpec


def pool_hungry_spec(name="stream"):
    data = MemoryObject(name="data", size_bytes=256 * MiB, pattern=SequentialPattern())
    phases = (
        PhaseSpec(
            name="p1",
            flops=2e10,
            dram_bytes=60_000 * MiB,
            object_traffic={"data": 1.0},
            mlp=8.0,
        ),
    )
    return WorkloadSpec(
        name=name, input_label="t1", scale=1.0, objects=(data,), phases=phases
    )


def tenants(n, spec=None, stagger=0.0, **kwargs):
    spec = spec if spec is not None else pool_hungry_spec()
    return [
        TenantSpec(
            name=f"t{i}", workload=spec, local_fraction=0.5,
            arrival=i * stagger, **kwargs,
        )
        for i in range(n)
    ]


def kill_schedule(time=0.3, duration=0.2, port=0):
    return FaultSchedule(
        (FaultEvent(time=time, kind="port-kill", port=port, duration=duration),)
    )


class TestFaultEventValidation:
    def test_port_kinds_need_port(self):
        with pytest.raises(FabricError):
            FaultEvent(time=1.0, kind="port-kill")

    def test_lease_kinds_need_tenant(self):
        with pytest.raises(FabricError):
            FaultEvent(time=1.0, kind="lease-revoke")

    def test_unknown_kind(self):
        with pytest.raises(FabricError):
            FaultEvent(time=1.0, kind="meteor-strike")

    def test_negative_time(self):
        with pytest.raises(FabricError):
            FaultEvent(time=-1.0, kind="port-kill", port=0)

    def test_degrade_scale_range(self):
        with pytest.raises(FabricError):
            FaultEvent(time=1.0, kind="port-degrade", port=0, scale=1.5)


class TestParseFaultSpec:
    def test_round_trip(self):
        event = parse_fault_spec("port-kill@5.0:port=1,duration=2.5")
        assert event.kind == "port-kill"
        assert event.time == 5.0
        assert event.port == 1
        assert event.duration == 2.5

    def test_gb_is_gib(self):
        event = parse_fault_spec("pool-capacity-loss@1.0:gb=2")
        assert event.nbytes == 2 * 1024**3

    def test_tenant_key(self):
        event = parse_fault_spec("lease-revoke@3.0:tenant=t1")
        assert event.tenant == "t1"

    def test_malformed(self):
        for spec in ("port-kill", "port-kill@x:port=0", "port-kill@1.0:port"):
            with pytest.raises(FabricError):
                parse_fault_spec(spec)


class TestEmptyScheduleIsInvisible:
    def test_outputs_bit_identical_to_uninjected_run(self):
        plain = RackCoSimulator(tenants(3), seed=0).run()
        injected_sim = RackCoSimulator(tenants(3), seed=0)
        injected_sim.inject_faults(FaultSchedule(()))
        injected = injected_sim.run()
        assert injected.makespan == plain.makespan
        assert injected.tenants == plain.tenants
        assert injected.telemetry.series() == plain.telemetry.series()
        assert plain.blast_radius is None
        assert "faults" not in plain.summary()

    def test_incremental_rates_identical(self):
        a = RackCoSimulator.incremental(n_nodes=2, epoch_seconds=0.5)
        b = RackCoSimulator.incremental(n_nodes=2, epoch_seconds=0.5)
        b.inject_faults(FaultSchedule(()))
        spec = pool_hungry_spec()
        for sim in (a, b):
            for i in range(2):
                sim.admit(TenantSpec(name=f"t{i}", workload=spec, local_fraction=0.5))
        for _ in range(5):
            assert a.step(0.7) == b.step(0.7)
        assert a.progress_rates() == b.progress_rates()
        assert a.horizon() == b.horizon()


class TestSeededDeterminism:
    def test_same_seed_same_schedule(self):
        kw = dict(seed=11, horizon=10.0, n_events=5, n_ports=2)
        assert FaultSchedule.seeded(**kw).events == FaultSchedule.seeded(**kw).events

    def test_different_seed_different_schedule(self):
        a = FaultSchedule.seeded(seed=1, horizon=10.0, n_events=5)
        b = FaultSchedule.seeded(seed=2, horizon=10.0, n_events=5)
        assert a.events != b.events

    def test_seeded_runs_bit_identical(self):
        def run():
            sim = RackCoSimulator(tenants(2), seed=0)
            sim.inject_faults(
                FaultSchedule.seeded(
                    seed=7, horizon=1.0, n_events=3,
                    kinds=("port-kill", "port-degrade"), n_ports=1,
                )
            )
            result = sim.run()
            return (
                result.makespan,
                result.tenants,
                result.blast_radius.summary(),
                result.telemetry.series(),
            )

        assert run() == run()


class TestPortFaults:
    def test_kill_stalls_for_exactly_the_window(self):
        sim = RackCoSimulator(tenants(2), seed=0)
        sim.inject_faults(kill_schedule(time=0.3, duration=0.2))
        result = sim.run()
        report = result.blast_radius
        assert report.faults_injected == 2  # kill + paired restore
        assert set(report.stalled_tenants) == {"t0", "t1"}
        assert report.total_stall_seconds == pytest.approx(0.4)

    def test_kill_extends_makespan_by_the_window(self):
        clean = RackCoSimulator(tenants(2), seed=0).run()
        sim = RackCoSimulator(tenants(2), seed=0)
        sim.inject_faults(kill_schedule(time=0.3, duration=0.2))
        assert sim.run().makespan == pytest.approx(clean.makespan + 0.2)

    def test_degrade_slows_without_stalling(self):
        clean = RackCoSimulator(tenants(2), seed=0).run()
        sim = RackCoSimulator(tenants(2), seed=0)
        sim.inject_faults(
            FaultSchedule(
                (FaultEvent(time=0.2, kind="port-degrade", port=0, scale=0.5,
                            duration=0.5),)
            )
        )
        result = sim.run()
        assert result.makespan > clean.makespan
        assert result.blast_radius.total_stall_seconds == 0.0

    def test_inject_twice_refused(self):
        sim = RackCoSimulator(tenants(1), seed=0)
        sim.inject_faults(kill_schedule())
        with pytest.raises(FabricError):
            sim.inject_faults(kill_schedule())


class TestRevokeAndShrinkAccounting:
    def test_revoke_charges_migration_exactly_once(self):
        drain = 1e9
        sim = RackCoSimulator(tenants(2), seed=0)
        sim.inject_faults(
            FaultSchedule(
                (FaultEvent(time=0.4, kind="lease-revoke", tenant="t1"),)
            ),
            drain_bytes_per_s=drain,
        )
        result = sim.run()
        impact = {t.name: t for t in result.blast_radius.tenants}["t1"]
        lease_bytes = tenants(2)[1].lease_bytes
        assert impact.migrated_bytes == lease_bytes
        assert impact.stall_seconds == pytest.approx(lease_bytes / drain)
        assert impact.revocations == 1
        assert impact.readmission_latency is not None
        # The pool's reclaim log was drained exactly once.
        assert sim.pool.consume_reclaims() == ()

    def test_revoked_tenant_keeps_original_start_time(self):
        sim = RackCoSimulator(tenants(2), seed=0)
        sim.inject_faults(
            FaultSchedule((FaultEvent(time=0.4, kind="lease-revoke", tenant="t1"),))
        )
        outcome = {t.name: t for t in sim.run().tenants}["t1"]
        assert outcome.wait_time == 0.0
        assert outcome.slowdown > 1.0

    def test_leased_bytes_never_negative_under_capacity_loss(self):
        sim = RackCoSimulator(tenants(3), seed=0)
        sim.inject_faults(
            FaultSchedule(
                (FaultEvent(time=0.4, kind="pool-capacity-loss",
                            nbytes=2 * tenants(1)[0].lease_bytes),)
            )
        )
        sim.run()
        assert sim.pool.leased_bytes >= 0
        assert sim.pool.leased_bytes <= sim.pool.capacity_bytes

    def test_shrink_keeps_tenant_running(self):
        shrink = tenants(1)[0].lease_bytes // 4
        sim = RackCoSimulator(tenants(2), seed=0)
        sim.inject_faults(
            FaultSchedule(
                (FaultEvent(time=0.4, kind="lease-shrink", tenant="t0",
                            nbytes=shrink),)
            )
        )
        result = sim.run()
        impact = {t.name: t for t in result.blast_radius.tenants}["t0"]
        assert impact.migrated_bytes == shrink
        assert impact.revocations == 0
        assert all(t.lease_state == "released" for t in result.tenants)


class TestElasticOvercommit:
    def test_admission_by_shrinking(self):
        specs = tenants(2, stagger=0.3)
        lease = specs[0].lease_bytes
        pool = MemoryPool(int(1.5 * lease), elastic=True, min_lease_fraction=0.5)
        sim = RackCoSimulator(specs, pool=pool, seed=0)
        result = sim.run()
        report = result.blast_radius
        shrunk = {t.name: t for t in report.tenants}["t0"]
        # t0 gave back exactly the bytes t1 was missing, charged once.
        assert shrunk.migrated_bytes == lease - (pool.capacity_bytes - lease)
        assert shrunk.stall_seconds > 0.0
        assert all(t.finish_time is not None for t in result.tenants)

    def test_rigid_pool_queues_instead(self):
        specs = tenants(2, stagger=0.3)
        lease = specs[0].lease_bytes
        pool = MemoryPool(int(1.5 * lease), elastic=False)
        sim = RackCoSimulator(specs, pool=pool, seed=0)
        result = sim.run()
        waits = {t.name: t.wait_time for t in result.tenants}
        assert waits["t1"] > 0.0  # waited for t0 to release

    def test_floor_respected(self):
        # Even full reclaim cannot fit a third full lease: it must queue.
        specs = tenants(3, stagger=0.3)
        lease = specs[0].lease_bytes
        pool = MemoryPool(2 * lease, elastic=True, min_lease_fraction=0.9)
        sim = RackCoSimulator(specs, pool=pool, seed=0)
        result = sim.run()
        assert sim.pool.leased_bytes >= 0
        waits = {t.name: t.wait_time for t in result.tenants}
        assert waits["t2"] > 0.0


class TestCheckpointContract:
    def _armed_sim(self):
        sim = RackCoSimulator.incremental(n_nodes=2, epoch_seconds=0.5)
        spec = pool_hungry_spec()
        for i in range(2):
            sim.admit(TenantSpec(name=f"t{i}", workload=spec, local_fraction=0.5))
        sim.inject_faults(kill_schedule(time=0.6, duration=0.2))
        return sim

    def test_rollback_with_pending_faults_is_bit_identical(self):
        sim = self._armed_sim()
        sim.step(0.2)
        checkpoint = sim.checkpoint()
        first = sim.step(0.2)  # stays below t=0.6: fault still pending
        rates_first = sim.progress_rates()
        sim.rollover(checkpoint)
        assert sim.step(0.2) == first
        assert sim.progress_rates() == rates_first

    def test_replay_across_pending_fault_is_deterministic(self):
        sim = self._armed_sim()
        sim.step(0.2)
        checkpoint = sim.checkpoint()
        first = sim.step(0.6)  # crosses t=0.6, applies the kill...
        with pytest.raises(FabricError):
            sim.rollover(checkpoint)  # ...so the checkpoint is dead
        # A fresh simulator replays the identical trajectory.
        again = self._armed_sim()
        again.step(0.2)
        assert again.step(0.6) == first

    def test_rollback_across_applied_fault_raises(self):
        sim = self._armed_sim()
        checkpoint = sim.checkpoint()
        sim.step(1.0)  # applies the kill at t=0.6
        with pytest.raises(FabricError):
            sim.rollover(checkpoint)


class TestSchedulerVisibility:
    def test_killed_port_reports_zero_rates_and_health(self):
        sim = RackCoSimulator.incremental(n_nodes=2, epoch_seconds=0.5)
        spec = pool_hungry_spec()
        for i in range(2):
            sim.admit(TenantSpec(name=f"t{i}", workload=spec, local_fraction=0.5))
        sim.inject_faults(
            FaultSchedule((FaultEvent(time=0.3, kind="port-kill", port=0),))
        )
        assert sim.port_health(0) == 1.0
        sim.step(0.5)
        assert sim.port_health(0) == 0.0
        assert all(rate == 0.0 for rate in sim.progress_rates().values())
