"""Tests for solver diagnostics, the convergence warning and fabric telemetry."""

import warnings

import pytest

from repro import telemetry
from repro.config.errors import FabricError
from repro.fabric import (
    FabricConvergenceWarning,
    FabricTopology,
    MemoryPool,
    RackCoSimulator,
    SolveDiagnostics,
    uniform_tenants,
)
from repro.fabric.cosim import RackTelemetry
from repro.workloads import build_workload

GB = 10**9


@pytest.fixture()
def telemetry_on():
    telemetry.enable(reset=True)
    try:
        yield telemetry
    finally:
        telemetry.disable()
        telemetry.registry().reset()
        telemetry.tracer().reset()


class TestSolveDiagnostics:
    def test_uncontended_solve_converges(self):
        topo = FabricTopology(n_nodes=2, n_ports=2)  # one node per port
        diag = topo.resolve_detailed({0: 1 * GB, 1: 1 * GB})
        assert isinstance(diag, SolveDiagnostics)
        assert diag.converged
        assert diag.iterations >= 1
        assert diag.residual < 1e6
        assert diag.delivered == topo.resolve({0: 1 * GB, 1: 1 * GB})

    def test_empty_demands_converge_trivially(self):
        diag = FabricTopology(n_nodes=2).resolve_detailed({})
        assert diag.converged and diag.delivered == {}

    def test_contended_solve_reports_iterations(self):
        topo = FabricTopology(n_nodes=4, n_ports=1)
        bw = topo.testbed.remote_bandwidth
        diag = topo.resolve_detailed({n: bw for n in range(4)})
        assert diag.converged
        assert diag.iterations > 1
        assert diag.damping == pytest.approx(0.25)

    def test_nonconvergence_warns_and_reports(self):
        topo = FabricTopology(n_nodes=4, n_ports=1)
        bw = topo.testbed.remote_bandwidth
        demands = {n: bw for n in range(4)}
        # Undamped updates on a 4-way shared port oscillate; a two-iteration
        # budget cannot converge and must say so instead of staying silent.
        with pytest.warns(FabricConvergenceWarning):
            diag = topo.resolve_detailed(demands, iterations=2, damping=1.0)
        assert not diag.converged
        assert diag.iterations == 2
        assert diag.residual >= 1e6

    def test_resolve_wrapper_propagates_warning(self):
        topo = FabricTopology(n_nodes=4, n_ports=1)
        bw = topo.testbed.remote_bandwidth
        with pytest.warns(FabricConvergenceWarning):
            topo.resolve({n: bw for n in range(4)}, iterations=2, damping=1.0)

    def test_converged_solve_does_not_warn(self):
        topo = FabricTopology(n_nodes=2, n_ports=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", FabricConvergenceWarning)
            topo.resolve_detailed({0: 1 * GB})

    def test_invalid_damping_rejected(self):
        topo = FabricTopology(n_nodes=2)
        with pytest.raises(FabricError):
            topo.resolve_detailed({0: 1 * GB}, damping=0.0)
        with pytest.raises(FabricError):
            topo.resolve_detailed({0: 1 * GB}, damping=1.5)


class TestSolverTelemetry:
    def test_counters_and_histogram(self, telemetry_on):
        topo = FabricTopology(n_nodes=4, n_ports=1)
        bw = topo.testbed.remote_bandwidth
        demands = {n: bw for n in range(4)}
        topo.resolve_detailed(demands)
        with pytest.warns(FabricConvergenceWarning):
            topo.resolve_detailed(demands, iterations=2, damping=1.0)
        registry = telemetry.registry()
        assert registry.counter("fabric.solve.calls").value == 2
        assert registry.counter("fabric.solve.nonconverged").value == 1
        assert registry.histogram("fabric.solve.iterations").count == 2
        spans = [s.name for s in telemetry.tracer().spans]
        assert spans.count("fabric.solve") == 2

    def test_pool_admission_counters(self, telemetry_on):
        pool = MemoryPool(capacity_bytes=10 * GB)
        granted = pool.request("a", 6 * GB, time=0.0)
        queued = pool.request("b", 6 * GB, time=1.0)
        rejected = pool.request("c", 100 * GB, time=2.0)
        registry = telemetry.registry()
        assert registry.counter("fabric.pool.granted").value == 1
        assert registry.counter("fabric.pool.queued").value == 1
        assert registry.counter("fabric.pool.rejected").value == 1
        # Releasing the grant admits the queued lease: released 1, granted 2.
        pool.release(granted, time=3.0)
        assert registry.counter("fabric.pool.released").value == 1
        assert registry.counter("fabric.pool.granted").value == 2
        pool.release(queued, time=4.0)
        assert rejected is not None


class TestRackTelemetryAdapter:
    def test_series_shape_unchanged(self):
        rack = RackTelemetry()
        assert len(rack) == 0
        series = rack.series()
        assert set(series) == {
            "time",
            "leased_gb",
            "queue_depth",
            "active_tenants",
            "max_port_utilization",
            "max_port_waiting_ns",
        }

    def test_record_feeds_registry_gauges(self, telemetry_on):
        spec = build_workload("XSBench")
        tenants = uniform_tenants(spec, 2, local_fraction=0.5)
        sim = RackCoSimulator(tenants)
        result = sim.run()
        assert len(result.telemetry) > 0
        assert len(result.telemetry.times) == len(result.telemetry.leased_bytes)
        registry = telemetry.registry()
        assert registry.counter("fabric.cosim.epochs").value > 0
        assert registry.counter("fabric.solve.calls").value > 0
        assert "fabric.pool.leased_bytes" in registry
        assert registry.histogram("fabric.port.utilization").count > 0

    def test_timeline_records_even_when_disabled(self):
        telemetry.disable()
        spec = build_workload("XSBench")
        tenants = uniform_tenants(spec, 2, local_fraction=0.5)
        result = RackCoSimulator(tenants).run()
        # The timeline is simulation output, not optional observability.
        assert len(result.telemetry) > 0
        assert result.telemetry.series()["time"]
