"""Differential suite holding the fast solver paths to the scalar reference.

The scalar fixed point of :meth:`FabricTopology.resolve_detailed` is the
ground truth; the vectorized single-rack path, the batched multi-rack path
(:meth:`ClusterFabric.resolve_all`), the demand-keyed contention cache and
the incremental stepper's dirty-epoch skip are all *optimisations* of it and
must stay within solver tolerance of what it computes — including when the
fixed point does **not** converge, where every path must surface the same
diagnostics and the same :class:`FabricConvergenceWarning`.

Property-based (hypothesis) where the input space is wide — random demand
matrices, random tenant churn — with seeded NumPy fallbacks for the
engine-backed co-simulation scenarios.  ``HYPOTHESIS_PROFILE=nightly``
raises the example budget (see ``tests/conftest.py``).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import (
    ClusterFabric,
    ContentionCache,
    FabricConvergenceWarning,
    FabricTopology,
    quantize_demands,
    solve_fixed_point,
    validate_solver,
)

#: Solver convergence tolerance used throughout, bytes/s.
TOLERANCE = 1e6
#: Allowed disagreement between two solver paths: both are within TOLERANCE
#: of the fixed point, so they are within 2*TOLERANCE of each other.
AGREEMENT = 2 * TOLERANCE

GBs = 1e9


def demand_maps(max_nodes: int = 12):
    """Strategy: one rack's demand map (node -> offered bytes/s)."""
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.lists(
            st.floats(min_value=0.0, max_value=30 * GBs, allow_nan=False),
            min_size=n,
            max_size=n,
        ).map(lambda values: dict(enumerate(values)))
    )


def assert_delivered_close(a, b, limit=AGREEMENT):
    assert set(a) == set(b)
    worst = max((abs(a[n] - b[n]) for n in a), default=0.0)
    assert worst <= limit, f"solver paths disagree by {worst:.3g} bytes/s"


# -- single-rack: scalar vs vectorized ------------------------------------------------


@given(demands=demand_maps(), n_ports=st.integers(min_value=1, max_value=4))
def test_vectorized_matches_scalar_single_rack(demands, n_ports):
    topology = FabricTopology(n_nodes=len(demands), n_ports=min(n_ports, len(demands)))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FabricConvergenceWarning)
        scalar = topology.resolve_detailed(demands, solver="scalar")
        vector = topology.resolve_detailed(demands, solver="vectorized")
    assert_delivered_close(scalar.delivered, vector.delivered)
    assert scalar.converged == vector.converged
    assert scalar.damping == vector.damping
    assert abs(scalar.iterations - vector.iterations) <= 1


@given(demands=demand_maps())
def test_both_solvers_bound_delivery_by_demand(demands):
    """Neither path may deliver more than a node offered (after link clipping)."""
    topology = FabricTopology(n_nodes=len(demands), n_ports=1)
    limit = topology.testbed.remote_bandwidth
    for solver in ("scalar", "vectorized"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FabricConvergenceWarning)
            diag = topology.resolve_detailed(demands, solver=solver)
        for node, delivered in diag.delivered.items():
            assert 0.0 <= delivered <= min(demands[node], limit) + TOLERANCE


@given(demand=st.floats(min_value=0.0, max_value=1 * GBs, allow_nan=False))
def test_both_solvers_deliver_in_full_when_undersubscribed(demand):
    """A lone, small demand is delivered as offered by both paths."""
    topology = FabricTopology(n_nodes=4, n_ports=4)
    for solver in ("scalar", "vectorized"):
        diag = topology.resolve_detailed({0: demand}, solver=solver)
        assert diag.converged
        assert abs(diag.delivered[0] - demand) <= TOLERANCE


# -- batched multi-rack: resolve_all --------------------------------------------------


@given(
    racks=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=30 * GBs, allow_nan=False),
            min_size=4,
            max_size=4,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_batched_matches_scalar_per_rack(racks):
    fabric = ClusterFabric(n_racks=len(racks), nodes_per_rack=4, n_ports=2)
    demands = [dict(enumerate(values)) for values in racks]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FabricConvergenceWarning)
        scalar = fabric.resolve_all(demands, solver="scalar")
        batched = fabric.resolve_all(demands, solver="vectorized")
    assert len(scalar.racks) == len(batched.racks) == len(racks)
    for ref, fast in zip(scalar.racks, batched.racks):
        assert_delivered_close(ref.delivered, fast.delivered)
        # A batched solve keeps iterating converged racks; every rack that
        # converged alone must still be converged in the batch.
        if ref.converged:
            assert fast.converged


def test_batched_empty_racks_keep_their_slot():
    """Racks with no demand still get a (trivial) diagnostics entry."""
    fabric = ClusterFabric(n_racks=3, nodes_per_rack=4)
    demands = [{0: 10 * GBs}, {}, {1: 5 * GBs, 2: 5 * GBs}]
    solve = fabric.resolve_all(demands, solver="vectorized")
    assert len(solve.racks) == 3
    assert solve.racks[1].delivered == {}
    assert solve.racks[1].converged
    reference = fabric.resolve_all(demands, solver="scalar")
    for ref, fast in zip(reference.racks, solve.racks):
        assert_delivered_close(ref.delivered, fast.delivered)


# -- non-convergence: same diagnostics, same warning ----------------------------------


@pytest.mark.parametrize("solver", ["scalar", "vectorized"])
def test_nonconvergence_surfaces_warning_and_diagnostics(solver):
    topology = FabricTopology(n_nodes=8, n_ports=1)
    demands = {n: topology.testbed.remote_bandwidth for n in range(8)}
    with pytest.warns(FabricConvergenceWarning):
        diag = topology.resolve_detailed(demands, iterations=2, solver=solver)
    assert not diag.converged
    assert diag.iterations == 2
    assert diag.residual > TOLERANCE


def test_nonconvergence_diagnostics_agree_across_solvers():
    topology = FabricTopology(n_nodes=8, n_ports=1)
    demands = {n: topology.testbed.remote_bandwidth for n in range(8)}
    diags = {}
    for solver in ("scalar", "vectorized"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", FabricConvergenceWarning)
            diags[solver] = topology.resolve_detailed(
                demands, iterations=2, solver=solver
            )
    assert diags["scalar"].iterations == diags["vectorized"].iterations
    assert diags["scalar"].converged == diags["vectorized"].converged
    assert_delivered_close(diags["scalar"].delivered, diags["vectorized"].delivered)
    assert np.isclose(
        diags["scalar"].residual, diags["vectorized"].residual, rtol=1e-6, atol=1.0
    )


def test_batched_nonconvergence_warns_once_with_rack_count():
    fabric = ClusterFabric(n_racks=3, nodes_per_rack=8, n_ports=1)
    bandwidth = fabric.testbed.remote_bandwidth
    demands = [{n: bandwidth for n in range(8)} for _ in range(3)]
    with pytest.warns(FabricConvergenceWarning, match="3 rack"):
        solve = fabric.resolve_all(demands, iterations=2, solver="vectorized")
    assert not solve.converged
    assert all(not rack.converged for rack in solve.racks)


# -- cached path ----------------------------------------------------------------------


@given(demands=demand_maps(max_nodes=6))
def test_cache_hit_matches_fresh_solve(demands):
    topology = FabricTopology(n_nodes=6, n_ports=2)
    cache = topology.enable_solver_cache()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FabricConvergenceWarning)
        fresh = topology.resolve_detailed(demands)
        again = topology.resolve_detailed(demands)
    assert cache.hits >= 1
    assert again.delivered == fresh.delivered
    assert again.iterations == fresh.iterations
    assert again.converged == fresh.converged


def test_cache_serves_subquantum_perturbations_within_tolerance():
    topology = FabricTopology(n_nodes=4, n_ports=1)
    cache = topology.enable_solver_cache()
    base = {n: 10 * GBs for n in range(4)}
    first = topology.resolve_detailed(base)
    # Perturb well below the cache quantum: the cached allocation is served
    # and must still be within tolerance of a fresh solve of the perturbed
    # demands (that is the quantum's contract).
    perturbed = {n: v + cache.quantum / 8 for n, v in base.items()}
    served = topology.resolve_detailed(perturbed)
    assert cache.hits == 1
    assert served.delivered == first.delivered
    topology.disable_solver_cache()
    fresh = topology.resolve_detailed(perturbed)
    assert_delivered_close(served.delivered, fresh.delivered)


def test_cache_hit_reemits_nonconvergence_warning():
    topology = FabricTopology(n_nodes=8, n_ports=1)
    topology.enable_solver_cache()
    demands = {n: topology.testbed.remote_bandwidth for n in range(8)}
    with pytest.warns(FabricConvergenceWarning):
        topology.resolve_detailed(demands, iterations=2)
    with pytest.warns(FabricConvergenceWarning):
        cached = topology.resolve_detailed(demands, iterations=2)
    assert not cached.converged


def test_cache_is_lru_and_bounded():
    cache = ContentionCache(maxsize=2)
    keys = [cache.key({0: float(i) * GBs}, 64, 0.5, TOLERANCE) for i in range(3)]
    cache.put(keys[0], "a")
    cache.put(keys[1], "b")
    assert cache.get(keys[0]) == "a"  # refresh 0 -> 1 is now LRU
    cache.put(keys[2], "c")
    assert cache.get(keys[1]) is None
    assert cache.get(keys[0]) == "a"
    assert len(cache) == 2


def test_quantize_demands_is_order_independent():
    a = quantize_demands({0: 1.0 * GBs, 1: 2.0 * GBs})
    b = quantize_demands({1: 2.0 * GBs, 0: 1.0 * GBs})
    assert a == b
    assert quantize_demands({0: 1.0 * GBs}) != quantize_demands({0: 2.0 * GBs})


# -- solve_fixed_point kernel ---------------------------------------------------------


def test_solve_fixed_point_empty_input():
    result = solve_fixed_point(
        np.array([]),
        np.array([], dtype=np.intp),
        capacity=1.0,
        node_bandwidth=1.0,
        min_share=0.1,
        damping=0.5,
        iterations=64,
        tolerance=TOLERANCE,
    )
    assert result.converged
    assert result.delivered.size == 0


def test_validate_solver_rejects_unknown_names():
    assert validate_solver("scalar") == "scalar"
    with pytest.raises(ValueError, match="unknown solver"):
        validate_solver("simd")


# -- incremental stepper: dirty-epoch skip equivalence --------------------------------


def _trajectory(sim, steps, dt):
    """(clock, sorted rates) samples of ``steps`` fixed-size steps."""
    out = []
    for _ in range(steps):
        sim.step(dt)
        out.append((sim.clock, tuple(sorted(sim.progress_rates().items()))))
    return out


@settings(max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2**16), churn=st.integers(0, 3))
def test_incremental_skip_equivalence_under_churn(seed, churn, xsbench_spec):
    """Same admissions/withdrawals, skip on vs off: bit-identical trajectories."""
    from dataclasses import replace

    from repro.fabric import RackCoSimulator, uniform_tenants

    rng = np.random.default_rng(seed)
    tenants = uniform_tenants(xsbench_spec, 3, local_fraction=0.5)
    plan = []  # (step index, action)
    for i in range(churn):
        plan.append((int(rng.integers(0, 8)), i))
    sims = []
    for skip in (True, False):
        sim = RackCoSimulator.incremental(n_nodes=4, seed=0)
        sim.skip_unchanged_epochs = skip
        for tenant in tenants:
            sim.admit(replace(tenant, arrival=0.0))
        sims.append(sim)
    dt = sims[0].baseline_runtime_of(tenants[0].name) / 40
    trajectories = []
    for sim in sims:
        withdrawn = set()
        samples = []
        for step in range(8):
            for when, which in plan:
                name = tenants[which % len(tenants)].name
                if when == step and name not in withdrawn and name in sim.tenant_states:
                    sim.withdraw(name)
                    withdrawn.add(name)
            sim.step(dt)
            samples.append((sim.clock, tuple(sorted(sim.progress_rates().items()))))
        trajectories.append(samples)
    assert trajectories[0] == trajectories[1]


@pytest.mark.slow
@given(demands=demand_maps(max_nodes=16))
@settings(max_examples=400)
def test_vectorized_matches_scalar_high_budget(demands):
    """Nightly-scale single-rack differential sweep (higher example budget)."""
    topology = FabricTopology(n_nodes=len(demands), n_ports=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FabricConvergenceWarning)
        scalar = topology.resolve_detailed(demands, solver="scalar")
        vector = topology.resolve_detailed(demands, solver="vectorized")
    assert_delivered_close(scalar.delivered, vector.delivered)
    assert scalar.converged == vector.converged


@pytest.mark.slow
def test_hundred_rack_sweep_equivalence_and_speedup():
    """The acceptance sweep: 100 racks, vectorized >= 5x scalar, same answer."""
    import time

    fabric = ClusterFabric(n_racks=100, nodes_per_rack=16, n_ports=2)
    rng = np.random.default_rng(7)
    demands = [
        {n: float(rng.uniform(0, 25 * GBs)) for n in range(16)} for _ in range(100)
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", FabricConvergenceWarning)
        start = time.perf_counter()
        scalar = fabric.resolve_all(demands, solver="scalar")
        scalar_wall = time.perf_counter() - start
        start = time.perf_counter()
        batched = fabric.resolve_all(demands, solver="vectorized")
        vector_wall = time.perf_counter() - start
    for ref, fast in zip(scalar.racks, batched.racks):
        assert_delivered_close(ref.delivered, fast.delivered)
    assert scalar_wall / vector_wall >= 5.0, (
        f"vectorized sweep only {scalar_wall / vector_wall:.1f}x faster"
    )
