"""Determinism, checkpointing and dirty-rack tracking of the cluster stepper.

Three properties the scheduler integration depends on:

* **Determinism** — two clusters built from the same seed and fed the same
  admissions produce bit-identical trajectories.
* **Checkpoint fidelity** — rolling back to a :meth:`ClusterCoSimulator.checkpoint`
  and re-stepping replays the exact same trajectory (no hidden state
  survives the rollback).
* **Dirty-rack tracking** — the epoch-skip optimisation only ever skips
  racks whose solver inputs did not change; any membership or offset change
  forces a re-solve, so trajectories with the skip on and off are identical.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import telemetry
from repro.config.errors import FabricError
from repro.fabric import ClusterCoSimulator, ClusterFabric, uniform_tenants

GiB = 1024**3


@pytest.fixture()
def telemetry_on():
    telemetry.enable(reset=True)
    try:
        yield telemetry
    finally:
        telemetry.disable()
        telemetry.registry().reset()
        telemetry.tracer().reset()


def build_cluster(
    n_racks=3,
    nodes_per_rack=4,
    seed=0,
    rack_pool_bytes=None,
    cluster_pool_bytes=None,
    **fabric_kwargs,
):
    fabric = ClusterFabric(
        n_racks=n_racks, nodes_per_rack=nodes_per_rack, n_ports=2, **fabric_kwargs
    )
    return ClusterCoSimulator(
        fabric,
        rack_pool_bytes=rack_pool_bytes,
        cluster_pool_bytes=cluster_pool_bytes,
        seed=seed,
    )


def spread_tenants(sim, spec, per_rack=2):
    """Admit ``per_rack`` tenants into every rack, round-robin over nodes."""
    tenants = uniform_tenants(spec, per_rack, local_fraction=0.5)
    for rack in range(sim.fabric.n_racks):
        for i, tenant in enumerate(tenants):
            sim.admit(rack, replace(tenant, name=f"r{rack}-{tenant.name}"), node=i)
    return sim


def trajectory(sim, steps=6):
    """(clock, sorted per-tenant rates) after each of ``steps`` even steps."""
    dt = sim.horizon() / 2
    samples = []
    for _ in range(steps):
        sim.step(dt)
        samples.append((sim.clock, tuple(sorted(sim.progress_rates().items()))))
    return samples


class TestDeterminism:
    def test_same_seed_same_trajectory(self, xsbench_spec):
        runs = []
        for _ in range(2):
            sim = spread_tenants(build_cluster(seed=7), xsbench_spec)
            runs.append(trajectory(sim))
        assert runs[0] == runs[1]

    def test_same_seed_same_summary(self, xsbench_spec):
        summaries = []
        for _ in range(2):
            sim = spread_tenants(build_cluster(seed=3), xsbench_spec)
            summaries.append(sim.run_to_completion())
        assert summaries[0] == summaries[1]

    def test_solver_choice_does_not_change_outcomes(self, xsbench_spec):
        """Scalar and vectorized clusters agree on who finishes when (within
        solver tolerance the trajectories coincide on this small cluster)."""
        finishes = {}
        for solver in ("scalar", "vectorized"):
            sim = spread_tenants(build_cluster(solver=solver), xsbench_spec)
            summary = sim.run_to_completion()
            finishes[solver] = {
                t["name"]: pytest.approx(t["runtime_s"], rel=1e-3)
                for t in summary["tenants"]
            }
        assert finishes["scalar"] == finishes["vectorized"]


class TestCheckpoint:
    def test_rollback_replays_bit_identically(self, xsbench_spec):
        sim = spread_tenants(build_cluster(), xsbench_spec)
        sim.step(sim.horizon())
        checkpoint = sim.checkpoint()
        first = trajectory(sim)
        sim.rollover(checkpoint)
        assert sim.clock == checkpoint.clock
        second = trajectory(sim)
        assert first == second

    def test_rollback_restores_clock_and_rates(self, xsbench_spec):
        sim = spread_tenants(build_cluster(), xsbench_spec)
        checkpoint = sim.checkpoint()
        rates_before = sim.progress_rates()
        sim.step(sim.horizon() * 3)
        sim.rollover(checkpoint)
        assert sim.clock == checkpoint.clock
        assert sim.progress_rates() == rates_before

    def test_rollback_rejects_foreign_checkpoint(self, xsbench_spec):
        small = spread_tenants(build_cluster(n_racks=2), xsbench_spec)
        large = spread_tenants(build_cluster(n_racks=3), xsbench_spec)
        with pytest.raises(FabricError, match="rack count"):
            large.rollover(small.checkpoint())


class TestDirtyRackTracking:
    def test_idle_racks_skip_resolves(self, xsbench_spec, telemetry_on):
        """Epochs with unchanged demand are served from the cached solve."""
        sim = spread_tenants(build_cluster(), xsbench_spec)
        for _ in range(6):
            sim.step(sim.horizon())
        skips = telemetry.registry().counter("fabric.cosim.epoch_skips").value
        assert skips > 0

    def test_membership_change_forces_resolve(self, xsbench_spec, telemetry_on):
        sim = spread_tenants(build_cluster(), xsbench_spec)
        for _ in range(3):
            sim.step(sim.horizon())
        resolves_before = telemetry.registry().counter(
            "fabric.cosim.epoch_resolves"
        ).value
        name = sim.tenant_names[0]
        rates_before = sim.progress_rates()
        sim.withdraw(name)
        sim.step(sim.horizon())
        resolves_after = telemetry.registry().counter(
            "fabric.cosim.epoch_resolves"
        ).value
        assert resolves_after > resolves_before
        # The departed tenant's co-runners must see the change, not a stale
        # cached solve: their rates may only improve once contention drops.
        rates_after = sim.progress_rates()
        assert name not in rates_after
        for tenant, rate in rates_after.items():
            assert rate >= rates_before[tenant] - 1e-12

    def test_skip_on_off_trajectories_identical(self, xsbench_spec):
        runs = []
        for skip in (True, False):
            sim = spread_tenants(build_cluster(seed=5), xsbench_spec)
            for rack_sim in sim.rack_sims:
                rack_sim.skip_unchanged_epochs = skip
            samples = trajectory(sim, steps=4)
            name = sim.tenant_names[0]
            sim.withdraw(name)
            samples += trajectory(sim, steps=4)
            runs.append(samples)
        assert runs[0] == runs[1]


class TestSpill:
    def test_oversubscribed_rack_spills_to_cluster_pool(self, xsbench_spec):
        lease_bytes = uniform_tenants(xsbench_spec, 1)[0].lease_bytes
        sim = build_cluster(
            n_racks=2,
            rack_pool_bytes=lease_bytes + 1,
            cluster_pool_bytes=8 * lease_bytes,
        )
        tenants = uniform_tenants(xsbench_spec, 3, local_fraction=0.5)
        for i, tenant in enumerate(tenants):
            sim.admit(0, tenant, node=i)
        assert not sim.is_spilled(tenants[0].name)
        assert sim.is_spilled(tenants[1].name)
        assert sim.is_spilled(tenants[2].name)
        assert sim.cluster_pool.leased_bytes == 2 * lease_bytes

    def test_withdraw_releases_cluster_pool_lease(self, xsbench_spec):
        lease_bytes = uniform_tenants(xsbench_spec, 1)[0].lease_bytes
        sim = build_cluster(
            n_racks=2,
            rack_pool_bytes=lease_bytes + 1,
            cluster_pool_bytes=8 * lease_bytes,
        )
        tenants = uniform_tenants(xsbench_spec, 2, local_fraction=0.5)
        for i, tenant in enumerate(tenants):
            sim.admit(0, tenant, node=i)
        assert sim.cluster_pool.leased_bytes == lease_bytes
        sim.withdraw(tenants[1].name)
        assert sim.cluster_pool.leased_bytes == 0
        assert not sim.is_spilled(tenants[1].name)

    def test_spilled_tenants_run_slower_than_local(self, xsbench_spec):
        """Uplink/spine background offsets must cost spilled tenants time."""
        lease_bytes = uniform_tenants(xsbench_spec, 1)[0].lease_bytes
        spilled = build_cluster(
            n_racks=2,
            rack_pool_bytes=lease_bytes + 1,
            cluster_pool_bytes=16 * lease_bytes,
        )
        local = build_cluster(n_racks=2)
        tenants = uniform_tenants(xsbench_spec, 3, local_fraction=0.5)
        for sim in (spilled, local):
            for i, tenant in enumerate(tenants):
                sim.admit(0, tenant, node=i)
        spilled_summary = spilled.run_to_completion()
        local_summary = local.run_to_completion()
        assert spilled_summary["spilled_tenants"] == 2
        assert local_summary["spilled_tenants"] == 0
        assert spilled_summary["makespan"] >= local_summary["makespan"]


class TestValidationAndSummary:
    def test_fabric_rejects_degenerate_shapes(self):
        with pytest.raises(FabricError, match="at least one rack"):
            ClusterFabric(n_racks=0, nodes_per_rack=4)
        with pytest.raises(FabricError, match="uplink_capacity_scale"):
            ClusterFabric(n_racks=2, nodes_per_rack=4, uplink_capacity_scale=0.5)
        with pytest.raises(ValueError, match="unknown solver"):
            ClusterFabric(n_racks=2, nodes_per_rack=4, solver="simd")

    def test_simulator_rejects_bad_pool_vector(self):
        fabric = ClusterFabric(n_racks=3, nodes_per_rack=4)
        with pytest.raises(FabricError, match="3 rack pool capacities"):
            ClusterCoSimulator(fabric, rack_pool_bytes=[1 * GiB])

    def test_run_to_completion_summary_shape(self, xsbench_spec):
        sim = spread_tenants(build_cluster(n_racks=2), xsbench_spec)
        summary = sim.run_to_completion()
        assert summary["n_racks"] == 2
        assert summary["solver"] == "vectorized"
        assert summary["makespan"] > 0
        assert summary["mean_slowdown"] >= 1.0
        assert len(summary["tenants"]) == 4
        for tenant in summary["tenants"]:
            assert tenant["lease_state"] == "granted"
            assert tenant["slowdown"] >= 1.0
        # Everything finished, so the cluster is empty again.
        assert sim.tenant_names == ()
