"""Tests for the fabric topology and its contention resolution."""

import pytest

from repro.config.errors import FabricError
from repro.fabric import FabricTopology

GB = 10**9


class TestWiring:
    def test_round_robin_port_assignment(self):
        topo = FabricTopology(n_nodes=6, n_ports=2)
        assert [topo.port_of(n) for n in range(6)] == [0, 1, 0, 1, 0, 1]
        assert topo.nodes_on_port(0) == (0, 2, 4)
        assert topo.nodes_on_port(1) == (1, 3, 5)

    def test_invalid_geometry(self):
        with pytest.raises(FabricError):
            FabricTopology(n_nodes=0)
        with pytest.raises(FabricError):
            FabricTopology(n_nodes=2, n_ports=0)
        with pytest.raises(FabricError):
            FabricTopology(n_nodes=2, port_capacity_scale=0.5)

    def test_out_of_range_lookups(self):
        topo = FabricTopology(n_nodes=2)
        with pytest.raises(FabricError):
            topo.port_of(2)
        with pytest.raises(FabricError):
            topo.nodes_on_port(1)

    def test_port_capacity_scale_widens_ports(self):
        narrow = FabricTopology(n_nodes=2)
        wide = FabricTopology(n_nodes=2, port_capacity_scale=2.0)
        assert wide.ports[0].data_capacity == pytest.approx(
            2.0 * narrow.ports[0].data_capacity
        )

    def test_describe(self):
        info = FabricTopology(n_nodes=4, n_ports=2).describe()
        assert info["n_nodes"] == 4
        assert info["n_ports"] == 2
        assert info["port_map"] == {0: 0, 1: 1, 2: 0, 3: 1}


class TestBackgroundAndUtilisation:
    def test_background_sums_co_runners_only(self):
        topo = FabricTopology(n_nodes=3, n_ports=1)
        demands = {0: 10 * GB, 1: 5 * GB, 2: 3 * GB}
        assert topo.background_for(0, demands) == pytest.approx(8 * GB)
        assert topo.background_for(2, demands) == pytest.approx(15 * GB)

    def test_background_excludes_other_ports(self):
        topo = FabricTopology(n_nodes=4, n_ports=2)
        demands = {0: 10 * GB, 1: 20 * GB, 2: 5 * GB, 3: 7 * GB}
        # Node 0 shares port 0 with node 2 only.
        assert topo.background_for(0, demands) == pytest.approx(5 * GB)

    def test_demand_clipped_to_node_link(self):
        topo = FabricTopology(n_nodes=2, n_ports=1)
        node_bw = topo.testbed.remote_bandwidth
        demands = {0: 10 * node_bw, 1: 0.0}
        assert topo.background_for(1, demands) == pytest.approx(node_bw)

    def test_port_utilization_grows_with_tenants(self):
        topo = FabricTopology(n_nodes=6, n_ports=1)
        utils = [
            topo.port_utilization(0, {i: 10 * GB for i in range(n)})
            for n in range(1, 7)
        ]
        assert all(b > a for a, b in zip(utils, utils[1:]))

    def test_port_waiting_time_nonnegative_and_monotone(self):
        topo = FabricTopology(n_nodes=6, n_ports=1)
        waits = [
            topo.port_waiting_time(0, {i: 10 * GB for i in range(n)})
            for n in range(1, 7)
        ]
        assert all(w >= 0 for w in waits)
        assert all(b >= a - 1e-15 for a, b in zip(waits, waits[1:]))

    def test_share_for_degrades_with_background(self):
        topo = FabricTopology(n_nodes=3, n_ports=1)
        alone = topo.share_for(0, {0: 20 * GB})
        crowded = topo.share_for(0, {0: 20 * GB, 1: 25 * GB, 2: 25 * GB})
        assert crowded.available_bandwidth < alone.available_bandwidth
        assert crowded.queueing_delay > alone.queueing_delay


class TestResolve:
    def test_symmetric_overload_converges_to_fair_share(self):
        topo = FabricTopology(n_nodes=8, n_ports=1)
        capacity = topo.ports[0].data_capacity
        for n in (3, 4, 5, 8):
            delivered = topo.resolve({i: 28 * GB for i in range(n)})
            for value in delivered.values():
                assert value == pytest.approx(capacity / n, rel=0.02)

    def test_underloaded_port_delivers_full_demand(self):
        topo = FabricTopology(n_nodes=2, n_ports=1)
        delivered = topo.resolve({0: 5 * GB, 1: 5 * GB})
        assert delivered[0] == pytest.approx(5 * GB, rel=1e-3)
        assert delivered[1] == pytest.approx(5 * GB, rel=1e-3)

    def test_resolve_per_port_independence(self):
        topo = FabricTopology(n_nodes=4, n_ports=2)
        # Port 0 (nodes 0 and 2) is overloaded, port 1 (nodes 1 and 3) idle-ish.
        delivered = topo.resolve(
            {0: 30 * GB, 2: 30 * GB, 1: 2 * GB, 3: 2 * GB}
        )
        assert delivered[1] == pytest.approx(2 * GB, rel=1e-3)
        assert delivered[3] == pytest.approx(2 * GB, rel=1e-3)
        assert delivered[0] < 30 * GB

    def test_total_delivered_bounded_by_capacity_region(self):
        topo = FabricTopology(n_nodes=8, n_ports=1)
        capacity = topo.ports[0].data_capacity
        delivered = topo.resolve({i: 34 * GB for i in range(8)})
        # The fixed point may slightly exceed the ideal fair share but stays
        # in the neighbourhood of the port's data capacity.
        assert sum(delivered.values()) <= capacity * 1.1

    def test_invalid_damping(self):
        topo = FabricTopology(n_nodes=2)
        with pytest.raises(FabricError):
            topo.resolve({0: GB}, damping=1.5)
