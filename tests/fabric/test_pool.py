"""Tests for the shared memory pool's leasing and admission control."""

import pytest

from repro.config.errors import FabricError
from repro.fabric import (
    LEASE_GRANTED,
    LEASE_QUEUED,
    LEASE_REJECTED,
    LEASE_RELEASED,
    MemoryPool,
)

GB = 10**9


class TestRequest:
    def test_grant_when_capacity_available(self):
        pool = MemoryPool(10 * GB)
        lease = pool.request("a", 4 * GB, time=1.0)
        assert lease.state == LEASE_GRANTED
        assert lease.granted_at == 1.0
        assert lease.wait_time == 0.0
        assert pool.leased_bytes == 4 * GB
        assert pool.free_bytes == 6 * GB

    def test_queue_when_pool_full(self):
        pool = MemoryPool(10 * GB)
        pool.request("a", 8 * GB)
        lease = pool.request("b", 4 * GB)
        assert lease.state == LEASE_QUEUED
        assert pool.queue_depth == 1
        assert pool.leased_bytes == 8 * GB

    def test_reject_when_request_exceeds_total_capacity(self):
        pool = MemoryPool(10 * GB)
        lease = pool.request("huge", 11 * GB)
        assert lease.state == LEASE_REJECTED
        assert pool.leased_bytes == 0
        assert pool.queue_depth == 0

    def test_zero_byte_request_granted_trivially(self):
        pool = MemoryPool(10 * GB)
        lease = pool.request("local-only", 0)
        assert lease.state == LEASE_GRANTED
        assert pool.leased_bytes == 0

    def test_zero_byte_request_skips_queue(self):
        """A tenant that uses no pool capacity never waits behind the queue."""
        pool = MemoryPool(10 * GB)
        pool.request("a", 8 * GB)
        pool.request("b", 5 * GB)  # queued
        lease = pool.request("local-only", 0)
        assert lease.state == LEASE_GRANTED
        assert pool.queue_depth == 1

    def test_negative_request_raises(self):
        pool = MemoryPool(10 * GB)
        with pytest.raises(FabricError):
            pool.request("bad", -1)

    def test_invalid_capacity_raises(self):
        with pytest.raises(FabricError):
            MemoryPool(0)

    def test_fifo_no_overtaking(self):
        """A small later request must not overtake a queued larger one."""
        pool = MemoryPool(10 * GB)
        pool.request("a", 8 * GB)
        big = pool.request("b", 5 * GB)
        small = pool.request("c", 1 * GB)
        assert big.state == LEASE_QUEUED
        # 1 GB would fit right now, but admitting it would starve "b".
        assert small.state == LEASE_QUEUED
        assert pool.queue_depth == 2


class TestRelease:
    def test_release_admits_queued_fifo(self):
        pool = MemoryPool(10 * GB)
        first = pool.request("a", 8 * GB, time=0.0)
        second = pool.request("b", 5 * GB, time=1.0)
        third = pool.request("c", 4 * GB, time=2.0)
        admitted = pool.release(first, time=7.0)
        assert [l.tenant for l in admitted] == ["b", "c"]
        assert second.state == LEASE_GRANTED
        assert second.wait_time == pytest.approx(6.0)
        assert third.state == LEASE_GRANTED
        assert pool.leased_bytes == 9 * GB

    def test_release_admits_head_then_followers_while_they_fit(self):
        pool = MemoryPool(10 * GB)
        a = pool.request("a", 6 * GB)
        pool.request("b", 9 * GB)
        pool.request("c", 1 * GB)
        admitted = pool.release(a)
        # Head needs 9 GB < 10 free -> admitted; then "c" fits too.
        assert [l.tenant for l in admitted] == ["b", "c"]
        a2 = pool.request("a2", 2 * GB)
        assert a2.state == LEASE_QUEUED

    def test_cancel_queued_lease(self):
        pool = MemoryPool(10 * GB)
        pool.request("a", 8 * GB)
        queued = pool.request("b", 5 * GB)
        pool.release(queued, time=3.0)
        assert queued.state == LEASE_RELEASED
        assert pool.queue_depth == 0

    def test_double_release_raises(self):
        pool = MemoryPool(10 * GB)
        lease = pool.request("a", 4 * GB)
        pool.release(lease)
        with pytest.raises(FabricError):
            pool.release(lease)

    def test_released_rejected_never_counted(self):
        pool = MemoryPool(10 * GB)
        rejected = pool.request("big", 20 * GB)
        granted = pool.request("a", 6 * GB)
        pool.release(granted)
        assert rejected.state == LEASE_REJECTED
        assert pool.leased_bytes == 0


class TestInvariantsAndTelemetry:
    def test_leased_never_exceeds_capacity(self):
        pool = MemoryPool(10 * GB)
        leases = [pool.request(f"t{i}", 3 * GB, time=float(i)) for i in range(6)]
        assert pool.leased_bytes <= pool.capacity_bytes
        for lease in list(pool.active_leases):
            pool.release(lease, time=10.0)
            assert pool.leased_bytes <= pool.capacity_bytes
        # Everyone eventually ran.
        assert all(l.state in (LEASE_GRANTED, LEASE_RELEASED) for l in leases)

    def test_sample_reports_state(self):
        pool = MemoryPool(10 * GB)
        pool.request("a", 8 * GB)
        pool.request("b", 5 * GB)
        sample = pool.sample(12.5)
        assert sample.time == 12.5
        assert sample.leased_bytes == 8 * GB
        assert sample.queue_depth == 1
        assert sample.active_leases == 1

    def test_describe(self):
        pool = MemoryPool(10 * GB, name="rack-pool")
        pool.request("a", 5 * GB)
        info = pool.describe()
        assert info["name"] == "rack-pool"
        assert info["utilization"] == pytest.approx(0.5)
        assert info["free_bytes"] == 5 * GB
