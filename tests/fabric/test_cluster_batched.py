"""Batched cluster epoch stepping vs the per-rack reference loop.

The fused batched path (:meth:`ClusterCoSimulator._rollover_racks_batched` +
``step_frozen``) is an optimisation of the per-rack ``RackCoSimulator.step``
loop, so this suite holds it to the same differential standard as
``test_solver_equivalence.py``: trajectories must agree within solver
tolerance (both solve paths land within ``TOLERANCE`` of the fixed point,
hence within ``2 * TOLERANCE`` of each other — a relative rate disagreement
of about ``AGREEMENT / remote_bandwidth``), and the bookkeeping — epoch-skip
counters, checkpoint fidelity, fault forcing — must be indistinguishable.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import telemetry
from repro.fabric import ClusterCoSimulator, ClusterFabric, uniform_tenants
from repro.fabric.faults import FaultSchedule, parse_fault_spec

#: Solver-equivalence bounds shared with ``test_solver_equivalence.py``:
#: each path lands within TOLERANCE (1e6 B/s) of the fixed point, so two
#: paths disagree by at most AGREEMENT in delivered bytes/s.
TOLERANCE = 1e6
AGREEMENT = 2 * TOLERANCE

#: Rate-space agreement bound: AGREEMENT in delivered bytes/s is
#: AGREEMENT / remote_bandwidth (~1e-4) in relative progress-rate terms.
RATE_RTOL = 1e-3


def build_cluster(solver="vectorized", batched=None, n_racks=4, **kwargs):
    fabric = ClusterFabric(
        n_racks=n_racks, nodes_per_rack=4, n_ports=2, solver=solver
    )
    sim = ClusterCoSimulator(fabric, seed=0, **kwargs)
    sim.batched_stepping = batched
    return sim


def populate(sim, spec, per_rack=2):
    tenants = uniform_tenants(spec, per_rack, local_fraction=0.5)
    for rack in range(sim.fabric.n_racks):
        for i, tenant in enumerate(tenants):
            sim.admit(rack, replace(tenant, name=f"r{rack}-{tenant.name}"), node=i)
    return sim


def trajectory(sim, steps=8):
    dt = sim.horizon() / 2
    samples = []
    for _ in range(steps):
        sim.step(dt)
        samples.append((sim.clock, dict(sim.progress_rates())))
    return samples


def assert_trajectories_close(a, b, rtol=RATE_RTOL):
    assert len(a) == len(b)
    for (clock_a, rates_a), (clock_b, rates_b) in zip(a, b):
        assert clock_a == pytest.approx(clock_b, rel=1e-9)
        assert set(rates_a) == set(rates_b)
        for name in rates_a:
            assert rates_a[name] == pytest.approx(rates_b[name], rel=rtol), name


class TestEquivalence:
    def test_batched_matches_scalar_per_rack(self, xsbench_spec):
        """The acceptance test: fused batched vs scalar reference loop."""
        scalar = populate(build_cluster(solver="scalar"), xsbench_spec)
        batched = populate(build_cluster(solver="vectorized", batched=True), xsbench_spec)
        assert_trajectories_close(trajectory(scalar), trajectory(batched))

    def test_batched_matches_vectorized_per_rack(self, xsbench_spec):
        """Same solver kernel, fused vs per-rack driving: near-identical."""
        per_rack = populate(build_cluster(batched=False), xsbench_spec)
        fused = populate(build_cluster(batched=True), xsbench_spec)
        assert_trajectories_close(trajectory(per_rack), trajectory(fused))

    def test_run_to_completion_agrees(self, xsbench_spec):
        runtimes = {}
        for label, solver, batched in (
            ("scalar", "scalar", False),
            ("batched", "vectorized", True),
        ):
            sim = populate(build_cluster(solver=solver, batched=batched), xsbench_spec)
            summary = sim.run_to_completion()
            runtimes[label] = {t["name"]: t["runtime_s"] for t in summary["tenants"]}
        assert set(runtimes["scalar"]) == set(runtimes["batched"])
        for name, runtime in runtimes["scalar"].items():
            assert runtimes["batched"][name] == pytest.approx(runtime, rel=1e-3)

    def test_mid_epoch_churn_desyncs_and_recovers(self, xsbench_spec):
        """Admission mid-epoch desyncs one rack's epoch clock; both paths
        must keep agreeing while it rolls alone and after it realigns."""
        sims = {
            "per_rack": populate(build_cluster(batched=False), xsbench_spec),
            "batched": populate(build_cluster(batched=True), xsbench_spec),
        }
        extra = uniform_tenants(xsbench_spec, 1, local_fraction=0.5)[0]
        trajectories = {}
        for label, sim in sims.items():
            samples = []
            dt = sim.horizon() / 3
            sim.step(dt)
            sim.admit(1, replace(extra, name="late-arrival"), node=2)
            for _ in range(8):
                sim.step(dt)
                samples.append((sim.clock, dict(sim.progress_rates())))
            trajectories[label] = samples
        assert_trajectories_close(trajectories["per_rack"], trajectories["batched"])


class TestBookkeeping:
    def test_auto_mode_follows_solver(self, xsbench_spec):
        assert build_cluster(solver="vectorized")._batched_stepping
        assert not build_cluster(solver="scalar")._batched_stepping

    def test_faults_force_per_rack_path(self, xsbench_spec):
        sim = populate(build_cluster(batched=True), xsbench_spec)
        schedule = FaultSchedule((parse_fault_spec("port-kill@5:rack=0,port=0"),))
        sim.inject_faults(schedule)
        assert not sim._batched_stepping
        sim.step(sim.horizon() / 2)  # must not raise through step_frozen

    def test_skip_counters_identical_across_paths(self, xsbench_spec):
        counts = {}
        for batched in (False, True):
            telemetry.enable(reset=True)
            try:
                sim = populate(build_cluster(batched=batched), xsbench_spec)
                dt = sim.horizon() / 2
                for _ in range(6):
                    sim.step(dt)
                registry = telemetry.registry()
                counts[batched] = {
                    name: registry.counter(name).value
                    for name in (
                        "fabric.cosim.epoch_rollovers",
                        "fabric.cosim.epoch_resolves",
                        "fabric.cosim.epoch_skips",
                    )
                }
            finally:
                telemetry.disable()
                telemetry.registry().reset()
                telemetry.tracer().reset()
        assert counts[False] == counts[True]

    def test_checkpoint_rollback_replays_batched_path(self, xsbench_spec):
        sim = populate(build_cluster(batched=True), xsbench_spec)
        dt = sim.horizon() / 2
        sim.step(dt)
        checkpoint = sim.checkpoint()
        first = trajectory(sim, steps=4)
        sim.rollover(checkpoint)
        second = trajectory(sim, steps=4)
        assert first == second
