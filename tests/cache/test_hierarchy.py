"""Tests for the cache hierarchy model and counter-derived metrics."""

import numpy as np
import pytest

from repro.cache import events
from repro.cache.events import CounterSet
from repro.cache.hierarchy import CacheHierarchyModel
from repro.config import SKYLAKE_EMULATION
from repro.trace.access import AccessBatch


@pytest.fixture(scope="module")
def model():
    return CacheHierarchyModel(SKYLAKE_EMULATION)


class TestCounterSet:
    def test_add_get_and_merge(self):
        a = CounterSet()
        a.add("x", 1.0)
        a.add("x", 2.0)
        b = CounterSet({"x": 10.0, "y": 5.0})
        merged = a.merged(b)
        assert merged["x"] == 13.0
        assert merged["y"] == 5.0
        assert a["x"] == 3.0  # original unchanged

    def test_set_and_contains(self):
        c = CounterSet()
        c.set("z", 7.0)
        assert "z" in c and c.get("z") == 7.0
        assert c.get("missing", 1.5) == 1.5
        assert c["missing"] == 0.0

    def test_update_from_and_as_dict(self):
        c = CounterSet()
        c.update_from({"a": 1.0, "b": 2.0})
        c.update_from({"a": 1.0})
        assert c.as_dict() == {"a": 2.0, "b": 2.0}
        assert sorted(c) == ["a", "b"]


class TestStatsFromFraction:
    def test_traffic_accounting(self, model):
        stats = model.stats_from_fraction(
            demand_dram_bytes=64 * 1_000_000, stream_fraction=0.7, write_fraction=0.2
        )
        assert stats.demand_dram_lines == pytest.approx(1_000_000)
        assert stats.covered_fraction == pytest.approx(0.7, abs=0.02)
        assert stats.counters[events.L2_LINES_IN] == pytest.approx(
            stats.demand_dram_lines + stats.useless_prefetch_lines
        )
        assert stats.counters[events.OFFCORE_L3_MISS] == stats.counters[events.L2_LINES_IN]

    def test_prefetch_disabled_override(self, model):
        stats = model.stats_from_fraction(
            demand_dram_bytes=64 * 1_000_000, stream_fraction=0.9, prefetch_enabled=False
        )
        assert stats.covered_fraction == 0.0
        assert stats.counters[events.PF_L2_DATA_RD] == 0.0
        assert stats.useless_prefetch_lines == 0.0

    def test_accuracy_hint_round_trip_through_counters(self, model):
        stats = model.stats_from_fraction(
            demand_dram_bytes=64 * 2_000_000,
            stream_fraction=0.6,
            accuracy_hint=0.75,
        )
        derived = CacheHierarchyModel.accuracy_from_counters(stats.counters)
        assert derived == pytest.approx(0.75, abs=0.05)
        coverage = CacheHierarchyModel.coverage_from_counters(stats.counters)
        assert coverage == pytest.approx(stats.covered_fraction, abs=0.05)

    def test_excess_traffic_fraction(self, model):
        stats = model.stats_from_fraction(
            demand_dram_bytes=64 * 1_000_000, stream_fraction=0.5, accuracy_hint=0.5
        )
        assert stats.excess_traffic_fraction == pytest.approx(0.5, rel=0.1)
        assert stats.total_dram_lines > stats.demand_dram_lines

    def test_zero_traffic(self, model):
        stats = model.stats_from_fraction(demand_dram_bytes=0.0, stream_fraction=0.9)
        assert stats.demand_dram_lines == 0
        assert stats.excess_traffic_fraction == 0.0


class TestStatsFromBatch:
    def test_sequential_batch_high_coverage(self, model):
        batch = AccessBatch.reads(np.arange(20_000))
        stats = model.stats_from_batch(batch, demand_dram_bytes=64 * 1_000_000)
        assert stats.covered_fraction > 0.9
        assert stats.demand_dram_lines == pytest.approx(1_000_000)

    def test_random_batch_low_coverage(self, model, rng):
        batch = AccessBatch.reads(rng.integers(0, 1 << 30, size=20_000))
        stats = model.stats_from_batch(batch, demand_dram_bytes=64 * 1_000_000)
        assert stats.covered_fraction < 0.2

    def test_prefetch_disabled(self, model):
        batch = AccessBatch.reads(np.arange(1000))
        stats = model.stats_from_batch(batch, demand_dram_bytes=64_000, prefetch_enabled=False)
        assert stats.covered_fraction == 0.0


class TestDerivedMetricEdgeCases:
    def test_accuracy_with_no_prefetches(self):
        counters = CounterSet({events.PF_L2_DATA_RD: 0.0, events.PF_L2_RFO: 0.0})
        assert CacheHierarchyModel.accuracy_from_counters(counters) == 0.0

    def test_coverage_with_no_fills(self):
        counters = CounterSet({events.L2_LINES_IN: 0.0})
        assert CacheHierarchyModel.coverage_from_counters(counters) == 0.0
