"""Tests for the hardware prefetcher model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.testbed import PrefetcherConfig
from repro.cache.prefetcher import (
    PrefetchOutcome,
    StreamPrefetcher,
    analyze_fraction,
    analyze_stream,
)


CONFIG = PrefetcherConfig(enabled=True, degree=8, detection_window=3)


class TestAnalyzeStream:
    def test_sequential_stream_high_coverage_and_accuracy(self, rng):
        lines = np.arange(10_000, dtype=np.int64)
        outcome = analyze_stream(lines, None, CONFIG)
        assert outcome.coverage > 0.9
        assert outcome.accuracy > 0.9
        assert outcome.excess_traffic_fraction < 0.05

    def test_random_stream_low_coverage(self, rng):
        lines = rng.integers(0, 1 << 30, size=10_000)
        outcome = analyze_stream(lines, None, CONFIG)
        assert outcome.coverage < 0.2

    def test_disabled_prefetcher(self):
        lines = np.arange(1000, dtype=np.int64)
        outcome = analyze_stream(lines, None, CONFIG.disabled())
        assert outcome.prefetches_issued == 0
        assert outcome.coverage == 0.0
        assert outcome.accuracy == 0.0

    def test_write_fraction_splits_rfo(self):
        lines = np.arange(1000, dtype=np.int64)
        writes = np.zeros(1000, dtype=bool)
        writes[::2] = True
        outcome = analyze_stream(lines, writes, CONFIG)
        assert outcome.prefetches_rfo > 0
        assert outcome.prefetches_data_rd > 0
        assert outcome.prefetches_issued == outcome.prefetches_rfo + outcome.prefetches_data_rd

    def test_empty_stream(self):
        outcome = analyze_stream(np.array([], dtype=np.int64), None, CONFIG)
        assert outcome.demand_accesses == 0
        assert outcome.coverage == 0.0

    def test_strided_stream_detected(self):
        lines = np.arange(0, 4000, 2, dtype=np.int64)
        outcome = analyze_stream(lines, None, CONFIG, max_stride=4)
        assert outcome.coverage > 0.9

    def test_large_stride_not_detected(self):
        lines = np.arange(0, 200_000, 100, dtype=np.int64)
        outcome = analyze_stream(lines, None, CONFIG, max_stride=4)
        assert outcome.coverage < 0.1


class TestAnalyzeFraction:
    def test_coverage_tracks_stream_fraction(self):
        outcome = analyze_fraction(10_000, 0.7, CONFIG)
        assert outcome.coverage == pytest.approx(0.7, abs=0.01)

    def test_accuracy_hint_controls_useless(self):
        outcome = analyze_fraction(10_000, 0.5, CONFIG, accuracy_hint=0.6)
        assert outcome.accuracy == pytest.approx(0.6, abs=0.05)
        assert outcome.excess_traffic_fraction == pytest.approx(0.5 * (1 - 0.6) / 0.6, rel=0.1)

    def test_zero_stream_fraction(self):
        outcome = analyze_fraction(10_000, 0.0, CONFIG)
        assert outcome.coverage == 0.0
        assert outcome.prefetches_issued == 0

    def test_disabled(self):
        outcome = analyze_fraction(10_000, 0.9, CONFIG.disabled())
        assert outcome.prefetches_issued == 0

    def test_write_fraction(self):
        outcome = analyze_fraction(10_000, 0.8, CONFIG, write_fraction=0.25)
        assert outcome.prefetches_rfo == pytest.approx(outcome.prefetches_issued * 0.25, rel=0.05)


class TestStreamPrefetcherStateful:
    def test_detects_stream_and_issues_prefetches(self):
        pf = StreamPrefetcher(CONFIG)
        issued = []
        for line in range(20):
            issued.extend(pf.observe(line))
        assert len(issued) > 0
        # Prefetched lines run ahead of the stream.
        assert max(issued) > 20

    def test_disabled_never_issues(self):
        pf = StreamPrefetcher(CONFIG.disabled())
        for line in range(50):
            assert pf.observe(line) == []
        assert pf.issued == 0

    def test_random_accesses_do_not_trigger(self, rng):
        pf = StreamPrefetcher(CONFIG)
        issued = []
        for line in rng.integers(0, 1 << 40, size=200):
            issued.extend(pf.observe(int(line)))
        assert len(issued) == 0

    def test_reset(self):
        pf = StreamPrefetcher(CONFIG)
        for line in range(20):
            pf.observe(line)
        pf.reset()
        assert pf.issued == 0


# -- property-based invariants ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=50_000),
    stream_fraction=st.floats(min_value=0.0, max_value=1.0),
    write_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_fraction_outcome_invariants(n, stream_fraction, write_fraction):
    outcome = analyze_fraction(n, stream_fraction, CONFIG, write_fraction=write_fraction)
    assert 0.0 <= outcome.coverage <= 1.0
    assert 0.0 <= outcome.accuracy <= 1.0
    assert outcome.useless_prefetches >= 0
    assert outcome.prefetches_issued >= outcome.useless_prefetches
    assert outcome.covered_accesses <= outcome.demand_accesses


@settings(max_examples=30, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=500),
)
def test_stream_outcome_invariants(lines):
    outcome = analyze_stream(np.array(lines, dtype=np.int64), None, CONFIG)
    assert 0.0 <= outcome.coverage <= 1.0
    assert 0.0 <= outcome.accuracy <= 1.0
    assert outcome.demand_accesses == len(lines)
    assert outcome.useful_prefetches >= 0
