"""Tests for the set-associative LRU cache."""

import numpy as np
import pytest

from repro.config.testbed import CacheLevelConfig
from repro.cache.setassoc import SetAssociativeCache


def small_cache(capacity=64 * 64, assoc=4):
    """A tiny cache: by default 64 lines, 4-way, 16 sets."""
    return SetAssociativeCache(CacheLevelConfig("T", capacity, assoc))


class TestBasicOperation:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(42) is False
        assert cache.access(42) is True
        assert cache.lines_in == 1

    def test_capacity_eviction_lru(self):
        # Direct-mapped-ish: 1 set, 2 ways.
        cache = SetAssociativeCache(CacheLevelConfig("T", 2 * 64, 2))
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 0 becomes MRU
        cache.access(2)      # evicts 1 (LRU)
        assert cache.access(0) is True
        assert cache.access(1) is False

    def test_resident_lines_bounded(self):
        cache = small_cache()
        for line in range(1000):
            cache.access(line)
        assert cache.resident_lines <= cache.config.n_lines

    def test_reset(self):
        cache = small_cache()
        cache.access(1)
        cache.reset()
        assert cache.resident_lines == 0
        assert cache.lines_in == 0
        assert cache.access(1) is False


class TestPrefetchInteraction:
    def test_prefetched_line_hit_marks_useful(self):
        cache = small_cache()
        cache.insert(7, prefetched=True)
        assert cache.pending_prefetches == 1
        assert cache.access(7) is True
        assert cache.pending_prefetches == 0
        assert cache.useless_prefetches == 0

    def test_unused_prefetch_counted_on_eviction(self):
        cache = SetAssociativeCache(CacheLevelConfig("T", 2 * 64, 2))
        cache.insert(0, prefetched=True)
        # Fill the set with demand lines mapping to set 0 until 0 is evicted.
        cache.access(2)
        cache.access(4)
        cache.access(6)
        assert cache.useless_prefetches >= 1

    def test_prefetch_of_resident_line_is_noop(self):
        cache = small_cache()
        cache.access(3)
        lines_before = cache.lines_in
        cache.insert(3, prefetched=True)
        assert cache.lines_in == lines_before


class TestBulkRun:
    def test_sequential_stream_mostly_misses_once(self):
        cache = small_cache()
        lines = np.arange(32)
        result = cache.run(lines)
        assert result.n_misses == 32
        repeat = cache.run(lines)
        assert repeat.n_hits == 32
        assert repeat.hit_rate == pytest.approx(1.0)

    def test_working_set_larger_than_cache_thrashes(self):
        cache = small_cache()  # 64 lines
        lines = np.tile(np.arange(256), 3)
        result = cache.run(lines)
        # With LRU and a cyclic pattern larger than capacity, reuse never hits.
        assert result.hit_rate < 0.05

    def test_hit_rate_of_empty_run(self):
        cache = small_cache()
        result = cache.run(np.array([], dtype=np.int64))
        assert result.hit_rate == 0.0
        assert result.miss_lines == 0
