"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_table_1_text(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Frontier" in out
    assert "est_ddr_cost_musd" in out


def test_table_2_json(capsys):
    assert main(["--json", "table", "2"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 6
    assert rows[0]["application"] == "HPL"


def test_unknown_table_number(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table", "7"])


def test_figure_1(capsys):
    assert main(["--json", "figure", "1"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "years" in data


def test_figure_8(capsys):
    assert main(["--json", "figure", "8"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert set(data) == {"HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"}


def test_unknown_figure_number(capsys):
    assert main(["figure", "99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_profile_command_levels(capsys):
    assert main(["--json", "profile", "XSBench", "--levels", "3"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["workload"] == "XSBench"
    assert "level1" in data and "level2" in data and "level3" in data
    assert data["level2"]["phases"][0]["remote_access_ratio"] < 0.2
    assert data["level3"]["interference_coefficient"] >= 1.0


def test_profile_command_level1_only(capsys):
    assert main(["--json", "profile", "HPL", "--levels", "1"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "level2" not in data


def test_profile_accepts_xs_alias(capsys):
    assert main(["--json", "profile", "XS", "--levels", "1"]) == 0
    assert json.loads(capsys.readouterr().out)["workload"] == "XSBench"


def test_bfs_case_study_command(capsys):
    assert main(["--json", "bfs-case-study", "--no-sensitivity"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["rows"]) == 6


def test_scheduling_command_small(capsys):
    assert main(["--json", "scheduling", "--runs", "5"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "Hypre" in data
    assert "mean_speedup" in data["Hypre"]


def test_text_output_mode(capsys):
    assert main(["figure", "1"]) == 0
    out = capsys.readouterr().out
    assert "years" in out


def test_fabric_command(capsys):
    assert main(["--json", "fabric", "--tenants", "3", "--workload", "Hypre"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["tenants"]) == 3
    assert data["mean_slowdown"] > 1.0
    assert data["max_leased_gb"] <= data["pool_capacity_gb"] + 1e-9
    assert "timeline" not in data


def test_fabric_command_with_timeline_and_capped_pool(capsys):
    assert (
        main(
            [
                "--json",
                "fabric",
                "--tenants",
                "3",
                "--pool-gb",
                "2.4",
                "--timeline",
            ]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert max(data["timeline"]["leased_gb"]) <= 2.4 * 1.073741824 + 1e-9
    # Only two leases fit, so the third tenant waits.
    waits = sorted(t["wait_s"] for t in data["tenants"])
    assert waits[-1] > 0


class TestNumericFlagHardening:
    """Malformed numeric flags fail with an argparse diagnostic, never a
    traceback (the repro.data.slurm error style, applied CLI-wide)."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["scheduling", "--runs", "0"],
            ["scheduling", "--runs", "abc"],
            ["scheduling", "--racks", "-2"],
            ["scheduling", "--pool-gb", "0"],
            ["scheduling", "--pool-gb", "nan"],
            ["scheduling", "--stagger", "-1"],
            ["scheduling", "--cluster-pool-gb", "-1"],
            ["scheduling", "--trace-limit", "0"],
            ["scheduling", "--trace-local-fraction", "1.5"],
            ["scheduling", "--trace-window", "oops"],
            ["scheduling", "--trace-window", "1:2:3"],
            ["fabric", "--tenants", "0"],
            ["fabric", "--local-fraction", "2.0"],
            ["fabric", "--epoch-seconds", "-0.5"],
            ["figure", "13", "--runs", "0"],
            ["--jobs", "0", "table", "1"],
        ],
    )
    def test_bad_numeric_flag_exits_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert "usage:" in err

    def test_validator_messages_are_actionable(self, capsys):
        with pytest.raises(SystemExit):
            main(["scheduling", "--runs", "-3"])
        assert "must be >= 1, got -3" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["scheduling", "--trace-window", "100:50"])
        assert "before start" in capsys.readouterr().err

    def test_inject_nonfinite_time_is_clean(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fabric", "--tenants", "2", "--inject", "port-kill@nan:port=0"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "not finite" in err
        assert "Traceback" not in err

    def test_valid_edge_values_still_accepted(self, capsys):
        assert main(["--json", "scheduling", "--runs", "1"]) == 0
        capsys.readouterr()
