"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_table_1_text(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Frontier" in out
    assert "est_ddr_cost_musd" in out


def test_table_2_json(capsys):
    assert main(["--json", "table", "2"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 6
    assert rows[0]["application"] == "HPL"


def test_unknown_table_number(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["table", "7"])


def test_figure_1(capsys):
    assert main(["--json", "figure", "1"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "years" in data


def test_figure_8(capsys):
    assert main(["--json", "figure", "8"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert set(data) == {"HPL", "Hypre", "NekRS", "BFS", "SuperLU", "XSBench"}


def test_unknown_figure_number(capsys):
    assert main(["figure", "99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_profile_command_levels(capsys):
    assert main(["--json", "profile", "XSBench", "--levels", "3"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["workload"] == "XSBench"
    assert "level1" in data and "level2" in data and "level3" in data
    assert data["level2"]["phases"][0]["remote_access_ratio"] < 0.2
    assert data["level3"]["interference_coefficient"] >= 1.0


def test_profile_command_level1_only(capsys):
    assert main(["--json", "profile", "HPL", "--levels", "1"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "level2" not in data


def test_profile_accepts_xs_alias(capsys):
    assert main(["--json", "profile", "XS", "--levels", "1"]) == 0
    assert json.loads(capsys.readouterr().out)["workload"] == "XSBench"


def test_bfs_case_study_command(capsys):
    assert main(["--json", "bfs-case-study", "--no-sensitivity"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["rows"]) == 6


def test_scheduling_command_small(capsys):
    assert main(["--json", "scheduling", "--runs", "5"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "Hypre" in data
    assert "mean_speedup" in data["Hypre"]


def test_text_output_mode(capsys):
    assert main(["figure", "1"]) == 0
    out = capsys.readouterr().out
    assert "years" in out


def test_fabric_command(capsys):
    assert main(["--json", "fabric", "--tenants", "3", "--workload", "Hypre"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["tenants"]) == 3
    assert data["mean_slowdown"] > 1.0
    assert data["max_leased_gb"] <= data["pool_capacity_gb"] + 1e-9
    assert "timeline" not in data


def test_fabric_command_with_timeline_and_capped_pool(capsys):
    assert (
        main(
            [
                "--json",
                "fabric",
                "--tenants",
                "3",
                "--pool-gb",
                "2.4",
                "--timeline",
            ]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert max(data["timeline"]["leased_gb"]) <= 2.4 * 1.073741824 + 1e-9
    # Only two leases fit, so the third tenant waits.
    waits = sorted(t["wait_s"] for t in data["tenants"])
    assert waits[-1] > 0
