"""Tests for the PCM-style traffic recorder."""

import pytest

from repro.cache import events
from repro.config import SKYLAKE_EMULATION
from repro.interconnect.link import RemoteLink
from repro.interconnect.traffic import TrafficRecorder


@pytest.fixture()
def recorder():
    return TrafficRecorder(RemoteLink(SKYLAKE_EMULATION))


def test_record_accumulates_time_and_traffic(recorder):
    recorder.record(duration=1.0, data_bytes=10e9)
    recorder.record(duration=2.0, data_bytes=40e9, background_bytes=10e9)
    assert recorder.elapsed == pytest.approx(3.0)
    assert recorder.total_data_bytes() == pytest.approx(50e9)
    assert len(recorder.samples) == 2


def test_measured_traffic_saturates(recorder):
    # Offered load far beyond the link peak: the counter caps at peak * duration.
    sample = recorder.record(duration=1.0, data_bytes=500e9)
    assert sample.measured_traffic_bytes == pytest.approx(SKYLAKE_EMULATION.link_peak_traffic)
    assert sample.utilization > 1.0


def test_sample_bandwidth_properties(recorder):
    sample = recorder.record(duration=2.0, data_bytes=20e9, background_bytes=4e9)
    assert sample.offered_bandwidth == pytest.approx(12e9)
    assert sample.measured_bandwidth == pytest.approx(
        min(12e9 * SKYLAKE_EMULATION.link_protocol_overhead, SKYLAKE_EMULATION.link_peak_traffic)
    )


def test_zero_duration_sample(recorder):
    sample = recorder.record(duration=0.0, data_bytes=1e9)
    assert sample.measured_traffic_bytes == 0.0
    assert sample.offered_bandwidth == 0.0


def test_aggregates_and_counters(recorder):
    recorder.record(1.0, 10e9)
    recorder.record(1.0, 60e9)
    counters = recorder.counters()
    assert counters[events.UPI_TRAFFIC_BYTES] == pytest.approx(recorder.total_measured_traffic())
    assert 0.0 < counters[events.UPI_UTILIZATION]
    assert recorder.peak_measured_bandwidth() >= 10e9
    assert 0.0 < recorder.average_utilization()


def test_timeline_and_clear(recorder):
    recorder.record(1.0, 5e9)
    recorder.record(2.0, 15e9)
    times, bandwidth = recorder.timeline()
    assert list(times) == [0.0, 1.0]
    assert len(bandwidth) == 2
    recorder.clear()
    assert recorder.elapsed == 0.0
    assert recorder.samples == ()
    assert recorder.average_utilization() == 0.0
