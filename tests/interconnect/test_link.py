"""Tests for the remote link model."""

import pytest

from repro.config import ConfigurationError, SKYLAKE_EMULATION, TestbedConfig
from repro.interconnect.link import RemoteLink
from repro.interconnect.queueing import LinearQueueingModel


@pytest.fixture(scope="module")
def link():
    return RemoteLink(SKYLAKE_EMULATION)


class TestCapacitiesAndTraffic:
    def test_data_capacity_from_overhead(self, link):
        expected = SKYLAKE_EMULATION.link_peak_traffic / SKYLAKE_EMULATION.link_protocol_overhead
        assert link.data_capacity == pytest.approx(expected)
        assert link.data_capacity > link.node_bandwidth

    def test_measured_traffic_saturates_at_peak(self, link):
        below = link.measured_traffic(10e9)
        at = link.measured_traffic(200e9)
        assert below == pytest.approx(10e9 * link.protocol_overhead)
        assert at == pytest.approx(link.peak_traffic)

    def test_utilization_can_exceed_one_when_oversubscribed(self, link):
        assert link.utilization(10e9) < 1.0
        assert link.utilization(100e9) > 1.0

    def test_loi_round_trip(self, link):
        for loi in (10.0, 25.0, 50.0, 100.0):
            bandwidth = link.bandwidth_for_loi(loi)
            assert link.loi(bandwidth) == pytest.approx(loi, rel=1e-6)

    def test_loi_capped_at_capacity(self, link):
        assert link.loi(10 * link.data_capacity) == pytest.approx(100.0)

    def test_negative_loi_rejected(self, link):
        with pytest.raises(ConfigurationError):
            link.bandwidth_for_loi(-1.0)


class TestShare:
    def test_uncontended_share_delivers_offered(self, link):
        share = link.share(10e9, 0.0)
        assert share.delivered_bandwidth == pytest.approx(10e9)
        assert share.available_bandwidth == pytest.approx(link.node_bandwidth)
        assert share.latency >= link.idle_latency
        assert share.slowdown == pytest.approx(1.0)

    def test_background_reduces_available_bandwidth(self, link):
        idle = link.share(0.0, 0.0).available_bandwidth
        loaded = link.share(0.0, 40e9).available_bandwidth
        assert loaded < idle

    def test_available_bandwidth_never_below_min_share(self, link):
        swamped = link.share(0.0, 10 * link.data_capacity)
        assert swamped.available_bandwidth >= RemoteLink.MIN_SHARE * link.data_capacity - 1e-6

    def test_latency_grows_with_background(self, link):
        light = link.share(5e9, 0.0).latency
        heavy = link.share(5e9, 50e9).latency
        assert heavy > light

    def test_queueing_delay_reported(self, link):
        share = link.share(20e9, 30e9)
        assert share.queueing_delay > 0
        assert share.latency == pytest.approx(link.idle_latency + share.queueing_delay)

    def test_zero_offered_slowdown_is_one(self, link):
        assert link.share(0.0, 0.0).slowdown == 1.0

    def test_effective_remote_bandwidth_helper(self, link):
        assert link.effective_remote_bandwidth(10e9, 0.0) == pytest.approx(link.node_bandwidth)

    def test_latency_under_load_monotone(self, link):
        latencies = [link.latency_under_load(bw) for bw in (0.0, 10e9, 30e9, 60e9)]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))


class TestConstruction:
    def test_custom_queueing_model(self):
        link = RemoteLink(SKYLAKE_EMULATION, queueing=LinearQueueingModel(slope=0.0))
        share = link.share(10e9, 50e9)
        assert share.queueing_delay == 0.0

    def test_rejects_peak_below_node_bandwidth(self):
        bad = TestbedConfig(link_peak_traffic=10e9, link_protocol_overhead=1.0)
        with pytest.raises(ConfigurationError):
            RemoteLink(bad)
