"""Tests for the queueing-based contention models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interconnect.queueing import (
    LinearQueueingModel,
    MD1QueueingModel,
    MM1QueueingModel,
    QUEUEING_MODELS,
    make_queueing_model,
)

SERVICE = 202e-9
MODELS = [MM1QueueingModel(), MD1QueueingModel(), LinearQueueingModel()]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
class TestCommonBehaviour:
    def test_zero_utilisation_means_no_wait(self, model):
        assert model.waiting_time(0.0, SERVICE) == 0.0

    def test_wait_monotone_in_utilisation(self, model):
        waits = [model.waiting_time(rho, SERVICE) for rho in (0.1, 0.3, 0.5, 0.7, 0.9, 1.2, 2.0)]
        assert all(b >= a - 1e-15 for a, b in zip(waits, waits[1:]))

    def test_wait_bounded_by_max_factor(self, model):
        assert model.waiting_time(50.0, SERVICE) <= model.max_wait_factor * SERVICE + 1e-15

    def test_zero_service_time(self, model):
        assert model.waiting_time(0.8, 0.0) == 0.0

    def test_negative_inputs_handled(self, model):
        assert model.waiting_time(-1.0, SERVICE) == 0.0


def test_mm1_exceeds_md1_below_saturation():
    mm1 = MM1QueueingModel()
    md1 = MD1QueueingModel()
    for rho in (0.2, 0.4, 0.6, 0.8):
        assert mm1.waiting_time(rho, SERVICE) >= md1.waiting_time(rho, SERVICE)


def test_mm1_matches_closed_form_at_low_load():
    model = MM1QueueingModel()
    rho = 0.4
    assert model.waiting_time(rho, SERVICE) == pytest.approx(rho / (1 - rho) * SERVICE)


def test_md1_matches_closed_form_at_low_load():
    model = MD1QueueingModel()
    rho = 0.4
    assert model.waiting_time(rho, SERVICE) == pytest.approx(rho / (2 * (1 - rho)) * SERVICE)


def test_overload_regime_keeps_growing_until_cap():
    model = MM1QueueingModel(max_wait_factor=100.0)
    w1 = model.waiting_time(1.0, SERVICE)
    w2 = model.waiting_time(1.5, SERVICE)
    w3 = model.waiting_time(3.0, SERVICE)
    assert w1 < w2 < w3


def test_registry_and_factory():
    assert set(QUEUEING_MODELS) == {"mm1", "md1", "linear"}
    model = make_queueing_model("md1", rho_cap=0.9)
    assert isinstance(model, MD1QueueingModel)
    assert model.rho_cap == 0.9
    with pytest.raises(ValueError):
        make_queueing_model("gg1")


@settings(max_examples=80, deadline=None)
@given(
    rho=st.floats(min_value=0.0, max_value=10.0),
    service=st.floats(min_value=1e-9, max_value=1e-5),
    name=st.sampled_from(sorted(QUEUEING_MODELS)),
)
def test_waiting_time_always_finite_nonnegative_and_capped(rho, service, name):
    model = make_queueing_model(name)
    wait = model.waiting_time(rho, service)
    assert wait >= 0.0
    assert wait <= model.max_wait_factor * service + 1e-12


class TestOverloadRegime:
    """Dense coverage of the overload regime: rho swept across [0, 2]."""

    RHO_GRID = [i / 40 for i in range(81)]  # 0.0, 0.025, ..., 2.0

    @pytest.mark.parametrize("name", sorted(QUEUEING_MODELS))
    def test_wait_finite_across_overload_sweep(self, name):
        model = make_queueing_model(name)
        import math

        for rho in self.RHO_GRID:
            wait = model.waiting_time(rho, SERVICE)
            assert math.isfinite(wait)
            assert wait >= 0.0

    @pytest.mark.parametrize("name", sorted(QUEUEING_MODELS))
    def test_wait_monotone_across_overload_sweep(self, name):
        model = make_queueing_model(name)
        waits = [model.waiting_time(rho, SERVICE) for rho in self.RHO_GRID]
        assert all(b >= a - 1e-18 for a, b in zip(waits, waits[1:]))

    @pytest.mark.parametrize("name", sorted(QUEUEING_MODELS))
    @pytest.mark.parametrize("max_wait_factor", [0.5, 2.0, 10.0])
    def test_wait_capped_at_max_wait_factor(self, name, max_wait_factor):
        model = make_queueing_model(name, max_wait_factor=max_wait_factor)
        for rho in self.RHO_GRID:
            assert model.waiting_time(rho, SERVICE) <= max_wait_factor * SERVICE + 1e-18

    def test_no_singularity_at_rho_one(self):
        """The 1/(1-rho) closed form must never be evaluated at rho >= rho_cap."""
        for cls in (MM1QueueingModel, MD1QueueingModel):
            model = cls(max_wait_factor=1e9)
            just_below = model.waiting_time(1.0 - 1e-12, SERVICE)
            at_one = model.waiting_time(1.0, SERVICE)
            above = model.waiting_time(1.0 + 1e-12, SERVICE)
            for wait in (just_below, at_one, above):
                assert wait < 1e3 * SERVICE
            assert above >= at_one >= just_below
