"""repro — reproduction of "A Quantitative Approach for Adopting Disaggregated
Memory in HPC Systems" (SC 2023).

The package provides:

* a tiered-memory / cache / interconnect simulator standing in for the paper's
  dual-socket emulation platform (:mod:`repro.config`, :mod:`repro.memory`,
  :mod:`repro.cache`, :mod:`repro.interconnect`, :mod:`repro.sim`),
* behavioural models of the six evaluated HPC applications and the LBench
  interference benchmark (:mod:`repro.workloads`),
* the three-level memory-centric profiler (:mod:`repro.profiler`),
* analytical models: roofline, memory roofline, bandwidth-capacity scaling
  curves, cost model (:mod:`repro.models`),
* an interference-aware job-scheduling simulator (:mod:`repro.scheduler`),
* the paper's two case studies (:mod:`repro.casestudies`), and
* figure/table builders regenerating every experiment (:mod:`repro.analysis`).
"""

from __future__ import annotations

__version__ = "1.0.0"

from .config import (
    SKYLAKE_EMULATION,
    TestbedConfig,
    TieredMemoryConfig,
    capacity_ratio_config,
    paper_tier_configs,
)
from .sim import (
    ConstantInterference,
    ExecutionEngine,
    NoInterference,
    Platform,
    RandomInterference,
    RunResult,
)
from .workloads import (
    LBench,
    WorkloadSpec,
    build_workload,
    get_model,
    workload_names,
)

__all__ = [
    "__version__",
    "SKYLAKE_EMULATION",
    "TestbedConfig",
    "TieredMemoryConfig",
    "capacity_ratio_config",
    "paper_tier_configs",
    "ConstantInterference",
    "ExecutionEngine",
    "NoInterference",
    "Platform",
    "RandomInterference",
    "RunResult",
    "LBench",
    "WorkloadSpec",
    "build_workload",
    "get_model",
    "workload_names",
]
