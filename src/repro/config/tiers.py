"""Tiered-memory system configurations.

The paper evaluates three two-tier configurations where the node-local tier
provides 75%, 50% or 25% of the capacity an application needs and the memory
pool provides the rest (Figures 9 and 10 label them by the local-remote
capacity split).  :class:`TieredMemoryConfig` describes such a system:
an ordered list of tiers from fastest (top, node-local) to slowest (bottom,
memory pool), each with a capacity, bandwidth and latency.

The capacity of the local tier is usually set *relative to an application's
peak memory footprint* — the paper's `setup_waste` tool occupies local memory
until only 25/50/75% of the application's peak usage fits locally.  The
:func:`capacity_ratio_config` helper builds exactly that situation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .errors import ConfigurationError
from .testbed import TestbedConfig, SKYLAKE_EMULATION
from .units import GiB


#: Conventional tier identifiers used across the package.
LOCAL_TIER = 0
REMOTE_TIER = 1


@dataclass(frozen=True)
class TierSpec:
    """A single memory tier.

    Attributes
    ----------
    name:
        Human-readable name (``"local-ddr"``, ``"cxl-pool"``...).
    capacity_bytes:
        Usable capacity of the tier in bytes.
    bandwidth:
        Peak sustainable bandwidth from the compute node to this tier, bytes/s.
    latency:
        Idle load-to-use latency, seconds.
    pooled:
        True if the tier is a shared memory pool (and therefore subject to
        inter-node interference), false for node-local memory.
    """

    name: str
    capacity_bytes: int
    bandwidth: float
    latency: float
    pooled: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ConfigurationError(f"tier {self.name}: capacity must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigurationError(f"tier {self.name}: bandwidth must be positive")
        if self.latency <= 0:
            raise ConfigurationError(f"tier {self.name}: latency must be positive")


@dataclass(frozen=True)
class TieredMemoryConfig:
    """An ordered multi-tier memory system (fastest tier first).

    The two reference points the paper uses for optimisation guidance
    (Section 5.1) are exposed as properties:

    * :attr:`capacity_ratios` — R_cap per tier, the fraction of total capacity,
    * :attr:`bandwidth_ratios` — R_BW per tier, the fraction of aggregate
      bandwidth.
    """

    tiers: tuple[TierSpec, ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigurationError("a tiered memory system needs at least one tier")
        total = sum(t.capacity_bytes for t in self.tiers)
        if total <= 0:
            raise ConfigurationError("total memory capacity must be positive")
        bandwidths = [t.bandwidth for t in self.tiers]
        if any(b2 > b1 for b1, b2 in zip(bandwidths, bandwidths[1:])):
            raise ConfigurationError(
                "tiers must be ordered from fastest (highest bandwidth) to slowest"
            )

    # -- basic accessors ----------------------------------------------------

    @property
    def n_tiers(self) -> int:
        """Number of tiers."""
        return len(self.tiers)

    @property
    def total_capacity(self) -> int:
        """Total capacity across all tiers, bytes."""
        return sum(t.capacity_bytes for t in self.tiers)

    @property
    def aggregate_bandwidth(self) -> float:
        """Sum of tier bandwidths, bytes/s."""
        return sum(t.bandwidth for t in self.tiers)

    @property
    def local(self) -> TierSpec:
        """The top (node-local) tier."""
        return self.tiers[LOCAL_TIER]

    @property
    def remote(self) -> TierSpec:
        """The bottom tier (memory pool in the paper's configurations)."""
        return self.tiers[-1]

    def tier(self, index: int) -> TierSpec:
        """Return tier ``index`` (0 is the fastest)."""
        return self.tiers[index]

    # -- the paper's two reference points ------------------------------------

    @property
    def capacity_ratios(self) -> tuple[float, ...]:
        """R_cap per tier: tier capacity / total capacity."""
        total = self.total_capacity
        return tuple(t.capacity_bytes / total for t in self.tiers)

    @property
    def bandwidth_ratios(self) -> tuple[float, ...]:
        """R_BW per tier: tier bandwidth / aggregate bandwidth."""
        agg = self.aggregate_bandwidth
        return tuple(t.bandwidth / agg for t in self.tiers)

    @property
    def remote_capacity_ratio(self) -> float:
        """R_cap of the bottom tier — the 'remote capacity ratio' of Level 2.

        Zero for a single-tier (local-only) system, which has no remote tier.
        """
        if self.n_tiers < 2:
            return 0.0
        return self.capacity_ratios[-1]

    @property
    def remote_bandwidth_ratio(self) -> float:
        """R_BW of the bottom tier — the turning point of the memory bottleneck.

        Zero for a single-tier (local-only) system.
        """
        if self.n_tiers < 2:
            return 0.0
        return self.bandwidth_ratios[-1]

    def describe(self) -> dict:
        """Summary dictionary in paper-friendly units."""
        return {
            "tiers": [
                {
                    "name": t.name,
                    "capacity_gib": t.capacity_bytes / GiB,
                    "bandwidth_gbs": t.bandwidth / 1e9,
                    "latency_ns": t.latency / 1e-9,
                    "pooled": t.pooled,
                }
                for t in self.tiers
            ],
            "remote_capacity_ratio": self.remote_capacity_ratio,
            "remote_bandwidth_ratio": self.remote_bandwidth_ratio,
        }


def two_tier_config(
    local_capacity: int,
    remote_capacity: int,
    testbed: TestbedConfig = SKYLAKE_EMULATION,
) -> TieredMemoryConfig:
    """Build a two-tier system from explicit capacities on ``testbed``.

    The top tier takes the testbed's local bandwidth/latency, the bottom tier
    takes the remote (UPI / pool) characteristics and is marked as pooled.
    """
    return TieredMemoryConfig(
        tiers=(
            TierSpec(
                name="local-dram",
                capacity_bytes=int(local_capacity),
                bandwidth=testbed.local_bandwidth,
                latency=testbed.local_latency,
                pooled=False,
            ),
            TierSpec(
                name="memory-pool",
                capacity_bytes=int(remote_capacity),
                bandwidth=testbed.remote_bandwidth,
                latency=testbed.remote_latency,
                pooled=True,
            ),
        )
    )


def capacity_ratio_config(
    footprint_bytes: int,
    local_fraction: float,
    testbed: TestbedConfig = SKYLAKE_EMULATION,
    headroom: float = 1.05,
) -> TieredMemoryConfig:
    """Two-tier system sized so a fraction of the footprint fits locally.

    Mirrors the paper's `setup_waste` methodology: given an application's peak
    memory footprint, restrict the local tier to ``local_fraction`` of it and
    give the memory pool enough capacity for the remainder (times
    ``headroom`` to avoid spurious OOM from page rounding).

    Parameters
    ----------
    footprint_bytes:
        The application's peak resident memory, bytes.
    local_fraction:
        Fraction of the footprint that fits in node-local memory, in (0, 1].
        The paper evaluates 0.75, 0.50 and 0.25.
    testbed:
        Platform whose bandwidth/latency figures describe the tiers.
    headroom:
        Multiplier (>= 1) applied to the remote capacity so spills never OOM.
    """
    if footprint_bytes <= 0:
        raise ConfigurationError("footprint must be positive")
    if not 0.0 < local_fraction <= 1.0:
        raise ConfigurationError("local_fraction must be in (0, 1]")
    if headroom < 1.0:
        raise ConfigurationError("headroom must be >= 1.0")
    local = int(round(footprint_bytes * local_fraction))
    # The pool gets the remainder plus headroom and a page-rounding slack, so
    # per-object page rounding never produces a spurious out-of-memory.
    slack = 256 * testbed.page_bytes
    remote = int(round(footprint_bytes * (1.0 - local_fraction) * headroom)) + slack
    # Keep a small remote tier even for local_fraction == 1.0 so the tier
    # structure (and the profiler's level-2 metrics) stay well defined.
    remote = max(remote, testbed.page_bytes)
    local = max(local, testbed.page_bytes)
    return two_tier_config(local, remote, testbed)


#: Local-capacity fractions evaluated throughout the paper (Figures 9 and 10).
PAPER_CAPACITY_FRACTIONS: tuple[float, ...] = (0.75, 0.50, 0.25)


def paper_tier_configs(
    footprint_bytes: int, testbed: TestbedConfig = SKYLAKE_EMULATION
) -> dict[str, TieredMemoryConfig]:
    """The three capacity-ratio configurations the paper evaluates.

    Returns a mapping from a label like ``"75-25"`` (local-remote percentage
    split) to the corresponding :class:`TieredMemoryConfig`.
    """
    configs = {}
    for local_fraction in PAPER_CAPACITY_FRACTIONS:
        label = f"{int(round(local_fraction * 100))}-{int(round((1 - local_fraction) * 100))}"
        configs[label] = capacity_ratio_config(footprint_bytes, local_fraction, testbed)
    return configs


def single_tier_config(
    capacity: int, testbed: TestbedConfig = SKYLAKE_EMULATION
) -> TieredMemoryConfig:
    """A single-tier (node-local only) system, used for Level 1 profiling."""
    return TieredMemoryConfig(
        tiers=(
            TierSpec(
                name="local-dram",
                capacity_bytes=int(capacity),
                bandwidth=testbed.local_bandwidth,
                latency=testbed.local_latency,
                pooled=False,
            ),
        )
    )
