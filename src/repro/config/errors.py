"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class AllocationError(ReproError):
    """The tiered memory cannot satisfy an allocation request (OOM)."""


class PlacementError(ReproError):
    """A page placement or migration request is invalid."""


class ProfilerError(ReproError):
    """The profiler was used in an invalid state (e.g. stop without start)."""


class WorkloadError(ReproError):
    """A workload specification or scale factor is invalid."""


class SchedulingError(ReproError):
    """The cluster/scheduler model was asked to do something impossible."""


class FabricError(ReproError):
    """The rack fabric / memory-pool co-simulation was misconfigured or misused."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class TraceError(ReproError):
    """A production-trace ingester was fed input it cannot recover from.

    Per-row problems in a streamed trace are *not* errors — they are counted
    and reported as skipped rows (:class:`repro.data.slurm.IngestReport`);
    this exception is reserved for structural problems such as a missing
    header or required column, where continuing would misparse every row.
    """
