"""Testbed (platform) configuration.

The paper's emulation platform is a dual-socket Intel Xeon (Skylake-X) system:
one socket plays the compute node, the memory attached to the second socket
plays the rack-level memory pool, and the UPI interconnect between the sockets
plays the remote link (Section 3.3).  The measured characteristics are:

* intra-socket (local tier):  73 GB/s bandwidth, 111 ns latency,
* inter-socket (remote tier): 34 GB/s bandwidth, 202 ns latency,
* remote link saturation observed around 85 GB/s of raw UPI traffic
  (protocol overheads make link traffic exceed data bandwidth).

:class:`TestbedConfig` captures those numbers together with the compute and
cache parameters needed by the roofline model and the cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from .errors import ConfigurationError
from .units import (
    CACHELINE_BYTES,
    PAGE_BYTES,
    GiB,
    KiB,
    MiB,
    gb_per_s,
    gflops,
    ns,
)


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry of a single cache level.

    Attributes
    ----------
    name:
        Human-readable level name, e.g. ``"L2"``.
    capacity_bytes:
        Total capacity of the cache in bytes.
    associativity:
        Number of ways per set.
    line_bytes:
        Cacheline size in bytes (64 on the emulated testbed).
    latency_ns:
        Load-to-use latency of a hit in this level, nanoseconds.
    """

    name: str
    capacity_bytes: int
    associativity: int
    line_bytes: int = CACHELINE_BYTES
    latency_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.associativity <= 0:
            raise ConfigurationError(f"{self.name}: associativity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError(
                f"{self.name}: line size must be a positive power of two"
            )
        if self.capacity_bytes % (self.associativity * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: capacity must be a multiple of associativity * line size"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets in the cache."""
        return self.capacity_bytes // (self.associativity * self.line_bytes)

    @property
    def n_lines(self) -> int:
        """Total number of cachelines the cache can hold."""
        return self.capacity_bytes // self.line_bytes


@dataclass(frozen=True)
class PrefetcherConfig:
    """Configuration of the L2 hardware stream prefetcher model.

    The paper controls the Skylake L2 prefetchers through MSR 0x1a4 (the two
    least-significant bits).  Our model keeps the same on/off switch plus a
    small number of behavioural knobs.

    Attributes
    ----------
    enabled:
        Whether hardware prefetching is active.
    degree:
        How many lines ahead the stream prefetcher runs once a stream is
        confirmed.
    detection_window:
        Number of consecutive (or fixed-stride) line accesses required to
        confirm a stream.
    max_streams:
        Number of independent streams the prefetcher can track concurrently.
    """

    enabled: bool = True
    degree: int = 8
    detection_window: int = 3
    max_streams: int = 16

    def __post_init__(self) -> None:
        if self.degree <= 0:
            raise ConfigurationError("prefetch degree must be positive")
        if self.detection_window <= 0:
            raise ConfigurationError("prefetch detection window must be positive")
        if self.max_streams <= 0:
            raise ConfigurationError("prefetcher must track at least one stream")

    def disabled(self) -> "PrefetcherConfig":
        """Return a copy of this configuration with prefetching turned off."""
        return replace(self, enabled=False)


@dataclass(frozen=True)
class TestbedConfig:
    """Full description of the emulated platform.

    The defaults reproduce the paper's dual-socket Skylake-X emulation
    platform (Section 3.3).  All bandwidths are in bytes/s, latencies in
    seconds and compute rates in flop/s.
    """

    name: str = "skylake-x-emulation"
    #: Peak double-precision compute rate of the compute socket (flop/s).
    peak_flops: float = gflops(1100.0)
    #: Number of worker threads/cores used by applications on the compute socket.
    cores: int = 12
    #: Local (node-local DDR) tier bandwidth, bytes/s.
    local_bandwidth: float = gb_per_s(73.0)
    #: Local tier idle load-to-use latency, seconds.
    local_latency: float = ns(111.0)
    #: Remote (memory-pool over UPI) tier bandwidth, bytes/s.
    remote_bandwidth: float = gb_per_s(34.0)
    #: Remote tier idle load-to-use latency, seconds.
    remote_latency: float = ns(202.0)
    #: Peak raw traffic the UPI link can carry including protocol overheads, bytes/s.
    link_peak_traffic: float = gb_per_s(85.0)
    #: Multiplicative protocol overhead of raw link traffic relative to the data
    #: payload (requests, responses, write-backs and coherence messages all cross
    #: the link, which is why the paper's measured 85 GB/s peak traffic exceeds
    #: the 34 GB/s data bandwidth a single application sustains).
    link_protocol_overhead: float = 1.5
    #: Cacheline size, bytes.
    cacheline_bytes: int = CACHELINE_BYTES
    #: Page size used by the allocator, bytes (THP disabled per the paper).
    page_bytes: int = PAGE_BYTES
    #: Per-core cache hierarchy (L1D, L2) plus shared L3.
    cache_levels: tuple[CacheLevelConfig, ...] = (
        CacheLevelConfig("L1D", 32 * KiB, 8, latency_ns=1.2),
        CacheLevelConfig("L2", 1 * MiB, 16, latency_ns=4.0),
        CacheLevelConfig("L3", 22 * MiB, 11, latency_ns=20.0),
    )
    #: L2 hardware prefetcher behaviour.
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ConfigurationError("peak_flops must be positive")
        if self.cores <= 0:
            raise ConfigurationError("cores must be positive")
        for attr in (
            "local_bandwidth",
            "remote_bandwidth",
            "link_peak_traffic",
            "local_latency",
            "remote_latency",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        if self.remote_bandwidth > self.local_bandwidth:
            raise ConfigurationError(
                "remote tier bandwidth must not exceed local tier bandwidth"
            )
        if self.remote_latency < self.local_latency:
            raise ConfigurationError(
                "remote tier latency must not be lower than local tier latency"
            )
        if self.link_protocol_overhead < 1.0:
            raise ConfigurationError("link protocol overhead must be >= 1.0")
        if not self.cache_levels:
            raise ConfigurationError("at least one cache level is required")
        if self.page_bytes % self.cacheline_bytes:
            raise ConfigurationError("page size must be a multiple of cacheline size")

    # -- derived quantities -------------------------------------------------

    @property
    def aggregate_bandwidth(self) -> float:
        """Upper bound on total memory bandwidth when both tiers are used.

        The paper's "misconception" discussion (Section 2.1) points out that an
        extra tier *adds* channels, so the aggregate exceeds the local tier
        alone.
        """
        return self.local_bandwidth + self.remote_bandwidth

    @property
    def bandwidth_ratio_remote(self) -> float:
        """Fraction of aggregate bandwidth provided by the remote tier (R_BW)."""
        return self.remote_bandwidth / self.aggregate_bandwidth

    @property
    def machine_balance(self) -> float:
        """Machine balance in flop/byte for the local tier (roofline ridge point)."""
        return self.peak_flops / self.local_bandwidth

    @property
    def llc(self) -> CacheLevelConfig:
        """The last-level cache configuration."""
        return self.cache_levels[-1]

    @property
    def l2(self) -> CacheLevelConfig:
        """The L2 cache configuration (where the modelled prefetcher lives)."""
        for level in self.cache_levels:
            if level.name.upper() == "L2":
                return level
        # Fall back to the middle level if no cache is literally named "L2".
        return self.cache_levels[min(1, len(self.cache_levels) - 1)]

    def with_prefetching(self, enabled: bool) -> "TestbedConfig":
        """Return a copy of the testbed with hardware prefetching toggled."""
        return replace(self, prefetcher=replace(self.prefetcher, enabled=enabled))

    def describe(self) -> Mapping[str, float]:
        """Return the headline platform numbers in the paper's units."""
        return {
            "peak_gflops": self.peak_flops / 1e9,
            "local_bandwidth_gbs": self.local_bandwidth / 1e9,
            "remote_bandwidth_gbs": self.remote_bandwidth / 1e9,
            "local_latency_ns": self.local_latency / 1e-9,
            "remote_latency_ns": self.remote_latency / 1e-9,
            "link_peak_traffic_gbs": self.link_peak_traffic / 1e9,
            "llc_mib": self.llc.capacity_bytes / MiB,
        }


#: The default emulation platform used throughout the reproduction.
SKYLAKE_EMULATION = TestbedConfig()


def small_testbed(scale: float = 0.01) -> TestbedConfig:
    """A scaled-down testbed for fast unit tests.

    Caches and page counts shrink by roughly ``scale`` while bandwidth and
    latency ratios stay identical, so behavioural trends are preserved at a
    fraction of the simulation cost.
    """
    if scale <= 0 or scale > 1:
        raise ConfigurationError("scale must be in (0, 1]")
    levels = (
        CacheLevelConfig("L1D", 8 * KiB, 4, latency_ns=1.2),
        CacheLevelConfig("L2", 64 * KiB, 8, latency_ns=4.0),
        CacheLevelConfig("L3", 512 * KiB, 16, latency_ns=20.0),
    )
    return TestbedConfig(
        name=f"small-testbed-{scale:g}",
        cache_levels=levels,
    )
