"""Configuration objects: platform (testbed), memory tiers, units and errors."""

from .errors import (
    AllocationError,
    ConfigurationError,
    ExperimentError,
    PlacementError,
    ProfilerError,
    ReproError,
    SchedulingError,
    WorkloadError,
)
from .testbed import (
    CacheLevelConfig,
    PrefetcherConfig,
    SKYLAKE_EMULATION,
    TestbedConfig,
    small_testbed,
)
from .tiers import (
    LOCAL_TIER,
    PAPER_CAPACITY_FRACTIONS,
    REMOTE_TIER,
    TierSpec,
    TieredMemoryConfig,
    capacity_ratio_config,
    paper_tier_configs,
    single_tier_config,
    two_tier_config,
)
from . import units

__all__ = [
    "AllocationError",
    "ConfigurationError",
    "ExperimentError",
    "PlacementError",
    "ProfilerError",
    "ReproError",
    "SchedulingError",
    "WorkloadError",
    "CacheLevelConfig",
    "PrefetcherConfig",
    "SKYLAKE_EMULATION",
    "TestbedConfig",
    "small_testbed",
    "LOCAL_TIER",
    "REMOTE_TIER",
    "PAPER_CAPACITY_FRACTIONS",
    "TierSpec",
    "TieredMemoryConfig",
    "capacity_ratio_config",
    "paper_tier_configs",
    "single_tier_config",
    "two_tier_config",
    "units",
]
