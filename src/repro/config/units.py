"""Unit constants and helpers used throughout the simulator.

All internal quantities use SI base units unless a name says otherwise:

* sizes and capacities in **bytes**,
* bandwidths in **bytes per second**,
* latencies and times in **seconds**,
* compute rates in **floating-point operations per second**.

The paper quotes bandwidths in GB/s (decimal) and capacities in GiB/GB
interchangeably; the helpers here make conversions explicit so configuration
files read like the paper's text.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Decimal (SI) size units -- used for bandwidth figures such as "34 GB/s".
# ---------------------------------------------------------------------------
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# ---------------------------------------------------------------------------
# Binary (IEC) size units -- used for memory capacities such as "512 GiB".
# ---------------------------------------------------------------------------
KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

# ---------------------------------------------------------------------------
# Time units expressed in seconds.
# ---------------------------------------------------------------------------
NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0

# ---------------------------------------------------------------------------
# Compute rates.
# ---------------------------------------------------------------------------
GFLOPS = 10**9
TFLOPS = 10**12

#: Cacheline size on the emulated Skylake-X testbed (bytes).
CACHELINE_BYTES = 64

#: Small page size used by the first-touch allocator (bytes). The paper
#: disables transparent huge pages, so 4 KiB pages are the relevant unit.
PAGE_BYTES = 4 * KiB


#: Suffix multipliers accepted by :func:`parse_size`.  Slurm's accounting
#: fields (``MaxRSS``, ``AveRSS``, ``ReqMem``) are KiB-based: a bare number is
#: **KiB** only in Slurm's own output, but this parser is fed the suffixed
#: form (``4056K``, ``12.3G``), where the suffix names a **binary** unit.
_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KiB,
    "M": MiB,
    "G": GiB,
    "T": TiB,
    "P": 2**50,
}


def parse_size(text: str, default_multiplier: int = 1) -> int:
    """Parse a Slurm-style size string (``4056K``, ``12.3G``, ``0``) to bytes.

    The K/M/G/T/P suffixes are **binary** (KiB-based), matching Slurm's
    accounting output; an optional trailing ``n`` (per-node) or ``c``
    (per-task) qualifier — as emitted by older ``sacct`` versions — is
    accepted and ignored.  A bare number is multiplied by
    ``default_multiplier`` (pass :data:`KiB` for fields Slurm reports in KiB
    without a suffix).  Raises :class:`~repro.config.errors.ConfigurationError`
    with the offending text on anything else; callers streaming untrusted
    traces catch it and skip the row instead of crashing.

    >>> parse_size("4056K")
    4153344
    >>> parse_size("2G") == 2 * GiB
    True
    >>> parse_size("0")
    0
    """
    from .errors import ConfigurationError

    if not isinstance(text, str):
        raise ConfigurationError(f"size must be a string, got {type(text).__name__}")
    cleaned = text.strip()
    if cleaned.endswith(("n", "c")):  # Slurm per-node / per-task qualifiers
        cleaned = cleaned[:-1]
    if not cleaned:
        raise ConfigurationError("empty size string (expected e.g. '4056K' or '12.3G')")
    suffix = cleaned[-1].upper()
    if suffix in _SIZE_SUFFIXES and not suffix.isdigit():
        number_text, multiplier = cleaned[:-1], _SIZE_SUFFIXES[suffix]
    else:
        number_text, multiplier = cleaned, default_multiplier
    try:
        value = float(number_text)
    except ValueError:
        raise ConfigurationError(
            f"malformed size {text!r}: {number_text!r} is not a number "
            "(expected e.g. '4056K' or '12.3G')"
        ) from None
    if value < 0:
        raise ConfigurationError(f"size {text!r} is negative")
    return int(round(value * multiplier))


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes (GB)."""
    return n_bytes / GB


def bytes_to_gib(n_bytes: float) -> float:
    """Convert bytes to binary gibibytes (GiB)."""
    return n_bytes / GiB


def gb(value: float) -> float:
    """Express ``value`` gigabytes in bytes."""
    return value * GB


def gib(value: float) -> float:
    """Express ``value`` gibibytes in bytes."""
    return value * GiB


def gb_per_s(value: float) -> float:
    """Express ``value`` GB/s in bytes per second."""
    return value * GB


def ns(value: float) -> float:
    """Express ``value`` nanoseconds in seconds."""
    return value * NANOSECOND


def gflops(value: float) -> float:
    """Express ``value`` Gflop/s in flop/s."""
    return value * GFLOPS


def seconds_to_ns(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return value / NANOSECOND


def pages_for(n_bytes: int, page_bytes: int = PAGE_BYTES) -> int:
    """Number of pages needed to back an allocation of ``n_bytes`` bytes.

    Always at least one page for a non-empty allocation, mirroring how an
    allocator rounds requests up to page granularity.
    """
    if n_bytes <= 0:
        return 0
    return -(-int(n_bytes) // int(page_bytes))


def cachelines_for(n_bytes: int, line_bytes: int = CACHELINE_BYTES) -> int:
    """Number of cachelines spanned by ``n_bytes`` bytes (rounded up)."""
    if n_bytes <= 0:
        return 0
    return -(-int(n_bytes) // int(line_bytes))
