"""Tiered physical memory with first-touch page placement.

This module models the physical side of the paper's emulation platform:
a fast node-local tier and a slower pooled tier (Section 3.3).  Pages are
placed when they are first touched.  Under the Linux default first-touch
policy, allocations land in the node-local tier until it is full and then
spill to the remote tier — exactly the behaviour the paper relies on to set up
its 75/50/25% capacity-ratio experiments with ``setup_waste``.

The class also supports explicit placement (the libnuma-style options the BFS
case study discusses), interleaving, page migration and freeing, so all three
optimisation options considered in Section 7.1 can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..config.errors import AllocationError, PlacementError
from ..config.tiers import TieredMemoryConfig
from .objects import (
    AddressSpace,
    MemoryObject,
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_INTERLEAVE,
    PLACEMENT_LOCAL,
    PLACEMENT_REMOTE,
)

#: Sentinel tier index for pages that have not been touched yet.
UNPLACED = -1


@dataclass
class TierUsage:
    """Capacity accounting for one tier."""

    name: str
    capacity_bytes: int
    used_bytes: int = 0

    @property
    def free_bytes(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of the tier's capacity in use."""
        if self.capacity_bytes <= 0:
            return 0.0
        return self.used_bytes / self.capacity_bytes


class TieredMemory:
    """Physical placement of an :class:`AddressSpace` onto memory tiers.

    Parameters
    ----------
    config:
        The tier geometry (capacities, bandwidths, latencies).
    address_space:
        The virtual address space whose pages are being placed.
    reserved_local_bytes:
        Bytes of node-local memory occupied by something other than the
        application (the paper's ``setup_waste`` tool).  They reduce the local
        tier capacity available to first-touch placement.
    """

    def __init__(
        self,
        config: TieredMemoryConfig,
        address_space: AddressSpace,
        reserved_local_bytes: int = 0,
    ) -> None:
        if reserved_local_bytes < 0:
            raise AllocationError("reserved_local_bytes must be >= 0")
        if reserved_local_bytes > config.tiers[0].capacity_bytes:
            raise AllocationError("reserved_local_bytes exceeds the local tier capacity")
        self.config = config
        self.address_space = address_space
        self.page_bytes = address_space.page_bytes
        self._usage = [
            TierUsage(t.name, t.capacity_bytes) for t in config.tiers
        ]
        self._usage[0].used_bytes += int(reserved_local_bytes)
        self.reserved_local_bytes = int(reserved_local_bytes)
        #: Tier index of every page in the address space (UNPLACED until touched).
        self._page_tier = np.full(address_space.total_pages, UNPLACED, dtype=np.int8)
        #: Monotonic count of page migrations performed.
        self.migrations = 0

    # -- internal helpers -----------------------------------------------------

    def _grow_page_table(self) -> None:
        """Extend the page-tier table after new objects were registered."""
        total = self.address_space.total_pages
        if total > len(self._page_tier):
            extra = np.full(total - len(self._page_tier), UNPLACED, dtype=np.int8)
            self._page_tier = np.concatenate([self._page_tier, extra])

    def _free_pages_in(self, tier: int) -> int:
        """How many whole pages still fit in ``tier``."""
        return max(self._usage[tier].free_bytes // self.page_bytes, 0)

    def _place_pages(self, pages: np.ndarray, tier: int) -> None:
        """Place previously-unplaced pages into ``tier`` and charge capacity."""
        if len(pages) == 0:
            return
        n_bytes = len(pages) * self.page_bytes
        if n_bytes > self._usage[tier].free_bytes:
            raise AllocationError(
                f"tier {self._usage[tier].name!r} cannot hold {len(pages)} more pages "
                f"({self._usage[tier].free_bytes} bytes free) — out of memory"
            )
        self._page_tier[pages] = tier
        self._usage[tier].used_bytes += n_bytes

    # -- placement ------------------------------------------------------------

    def touch(self, obj: MemoryObject) -> np.ndarray:
        """First-touch (initialise) an object, placing all of its pages.

        Placement follows the object's policy:

        * ``first-touch`` fills the fastest tier with free capacity first and
          spills the remainder downwards (Linux default),
        * ``local`` / ``remote`` force the top / bottom tier and raise
          :class:`AllocationError` if it does not fit,
        * ``interleave`` spreads pages round-robin over all tiers with space.

        Returns the tier index of each of the object's pages.  Touching an
        already-placed object is a no-op (idempotent, like re-initialising an
        array in place).
        """
        self._grow_page_table()
        pages = obj.page_range()
        unplaced = pages[self._page_tier[pages] == UNPLACED]
        if len(unplaced) == 0:
            return self.placement_of(obj)

        if obj.placement == PLACEMENT_LOCAL:
            self._place_pages(unplaced, 0)
        elif obj.placement == PLACEMENT_REMOTE:
            self._place_pages(unplaced, len(self._usage) - 1)
        elif obj.placement == PLACEMENT_INTERLEAVE:
            self._place_interleaved(unplaced)
        elif obj.placement == PLACEMENT_FIRST_TOUCH:
            self._place_first_touch(unplaced)
        else:  # pragma: no cover - validated at object construction
            raise PlacementError(f"unknown placement policy {obj.placement!r}")
        return self.placement_of(obj)

    def _place_first_touch(self, pages: np.ndarray) -> None:
        remaining = pages
        for tier in range(len(self._usage)):
            if len(remaining) == 0:
                return
            fit = min(self._free_pages_in(tier), len(remaining))
            if fit > 0:
                self._place_pages(remaining[:fit], tier)
                remaining = remaining[fit:]
        if len(remaining) > 0:
            raise AllocationError(
                f"out of memory: {len(remaining)} pages do not fit in any tier"
            )

    def _place_interleaved(self, pages: np.ndarray) -> None:
        n_tiers = len(self._usage)
        buckets = [pages[i::n_tiers] for i in range(n_tiers)]
        # Place round-robin buckets, spilling overflow onto the other tiers.
        overflow: list[np.ndarray] = []
        for tier, bucket in enumerate(buckets):
            fit = min(self._free_pages_in(tier), len(bucket))
            self._place_pages(bucket[:fit], tier)
            if fit < len(bucket):
                overflow.append(bucket[fit:])
        if overflow:
            self._place_first_touch(np.concatenate(overflow))

    def touch_in_order(self, objects: Sequence[MemoryObject]) -> None:
        """First-touch a list of objects in the given order.

        The order is significant under first-touch placement — this is the
        lever the BFS case study pulls by allocating/initialising the hottest
        object first.
        """
        for obj in objects:
            self.touch(obj)

    # -- freeing and migration --------------------------------------------------

    def free(self, obj: MemoryObject) -> int:
        """Free an object's pages, returning how many bytes were released."""
        self._grow_page_table()
        pages = obj.page_range()
        released = 0
        for tier in range(len(self._usage)):
            tier_pages = pages[self._page_tier[pages] == tier]
            n_bytes = len(tier_pages) * self.page_bytes
            self._usage[tier].used_bytes -= n_bytes
            released += n_bytes
        self._page_tier[pages] = UNPLACED
        return released

    def migrate(self, obj: MemoryObject, to_tier: int, max_pages: Optional[int] = None) -> int:
        """Migrate an object's pages to ``to_tier`` (like move_pages).

        Moves at most ``max_pages`` pages (all pages if None) subject to the
        destination tier's free capacity.  Returns the number of pages moved.
        """
        if not 0 <= to_tier < len(self._usage):
            raise PlacementError(f"invalid destination tier {to_tier}")
        self._grow_page_table()
        pages = obj.page_range()
        movable = pages[
            (self._page_tier[pages] != to_tier) & (self._page_tier[pages] != UNPLACED)
        ]
        if max_pages is not None:
            movable = movable[: max(int(max_pages), 0)]
        fit = min(self._free_pages_in(to_tier), len(movable))
        movable = movable[:fit]
        if len(movable) == 0:
            return 0
        for tier in range(len(self._usage)):
            tier_pages = movable[self._page_tier[movable] == tier]
            self._usage[tier].used_bytes -= len(tier_pages) * self.page_bytes
        self._place_pages_after_migration(movable, to_tier)
        self.migrations += len(movable)
        return len(movable)

    def _place_pages_after_migration(self, pages: np.ndarray, tier: int) -> None:
        n_bytes = len(pages) * self.page_bytes
        if n_bytes > self._usage[tier].free_bytes:
            raise AllocationError("destination tier ran out of space during migration")
        self._page_tier[pages] = tier
        self._usage[tier].used_bytes += n_bytes

    # -- queries -----------------------------------------------------------------

    def placement_of(self, obj: MemoryObject) -> np.ndarray:
        """Tier index of each page of ``obj`` (UNPLACED for untouched pages)."""
        self._grow_page_table()
        return self._page_tier[obj.page_range()].copy()

    def page_tiers(self) -> np.ndarray:
        """Tier index of every page in the address space."""
        self._grow_page_table()
        return self._page_tier.copy()

    def tier_of_lines(self, lines: np.ndarray) -> np.ndarray:
        """Tier index serving each cacheline access (by page lookup)."""
        self._grow_page_table()
        pages = np.asarray(lines, dtype=np.int64) // self.address_space.lines_per_page
        pages = np.clip(pages, 0, len(self._page_tier) - 1)
        tiers = self._page_tier[pages]
        # Untouched pages behave as if first-touched into the top tier with
        # space; approximating them as local keeps queries side-effect free.
        return np.where(tiers == UNPLACED, 0, tiers)

    def object_tier_bytes(self, obj: MemoryObject) -> dict[str, int]:
        """Bytes of ``obj`` resident in each tier, keyed by tier name."""
        placement = self.placement_of(obj)
        result = {}
        for tier, usage in enumerate(self._usage):
            result[usage.name] = int((placement == tier).sum()) * self.page_bytes
        return result

    def resident_bytes(self, tier: int) -> int:
        """Application bytes resident in ``tier`` (excludes reserved waste)."""
        used = self._usage[tier].used_bytes
        if tier == 0:
            used -= self.reserved_local_bytes
        return max(used, 0)

    @property
    def usage(self) -> tuple[TierUsage, ...]:
        """Capacity accounting of every tier."""
        return tuple(self._usage)

    def remote_capacity_ratio(self) -> float:
        """Fraction of resident application pages living in the bottom tier.

        This is the paper's Level-2 *remote capacity ratio*, as it would be
        measured from ``numa_maps``.  A single-tier (local-only) system has no
        remote tier, so the ratio is 0 by definition.
        """
        if len(self._usage) < 2:
            return 0.0
        resident = [self.resident_bytes(t) for t in range(len(self._usage))]
        total = sum(resident)
        if total <= 0:
            return 0.0
        return resident[-1] / total

    def describe(self) -> dict:
        """Summary of current placement state."""
        return {
            "tiers": [
                {
                    "name": u.name,
                    "capacity_bytes": u.capacity_bytes,
                    "used_bytes": u.used_bytes,
                    "resident_app_bytes": self.resident_bytes(i),
                    "utilization": u.utilization,
                }
                for i, u in enumerate(self._usage)
            ],
            "remote_capacity_ratio": self.remote_capacity_ratio(),
            "migrations": self.migrations,
        }
