"""Simulated ``/proc/<pid>/numa_maps`` sampling.

The paper's profiler measures memory capacity usage per NUMA node by sampling
the ``numa_maps`` file in procfs (Level 1 and Level 2 profiling).  This module
provides the equivalent for the simulator: point-in-time snapshots of how many
pages of each memory object live in each tier, recorded over the course of a
run so capacity timelines and peak RSS can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from .objects import AddressSpace, MemoryObject
from .tiered import TieredMemory, UNPLACED


@dataclass(frozen=True)
class NumaMapsEntry:
    """Placement of one memory object at snapshot time.

    Mirrors one line of ``numa_maps``: the mapping (object), its size, and the
    number of pages on each node (tier).
    """

    object_name: str
    object_id: int
    size_bytes: int
    pages_per_tier: tuple[int, ...]
    placement_policy: str

    @property
    def resident_pages(self) -> int:
        """Total pages currently resident (touched) across all tiers."""
        return int(sum(self.pages_per_tier))

    def tier_fraction(self, tier: int) -> float:
        """Fraction of the object's resident pages living in ``tier``."""
        resident = self.resident_pages
        if resident == 0:
            return 0.0
        return self.pages_per_tier[tier] / resident


@dataclass(frozen=True)
class NumaMapsSnapshot:
    """A full ``numa_maps`` snapshot: one entry per memory object."""

    timestamp: float
    entries: tuple[NumaMapsEntry, ...]
    page_bytes: int

    @property
    def rss_bytes(self) -> int:
        """Total resident set size across all objects and tiers."""
        return sum(e.resident_pages for e in self.entries) * self.page_bytes

    def tier_bytes(self, tier: int) -> int:
        """Resident bytes in one tier."""
        return sum(e.pages_per_tier[tier] for e in self.entries) * self.page_bytes

    @property
    def n_tiers(self) -> int:
        """Number of tiers covered by the snapshot."""
        if not self.entries:
            return 0
        return len(self.entries[0].pages_per_tier)

    def remote_capacity_ratio(self) -> float:
        """Fraction of resident bytes in the bottom tier (Level-2 R_cap measure)."""
        if not self.entries:
            return 0.0
        total = self.rss_bytes
        if total <= 0:
            return 0.0
        return self.tier_bytes(self.n_tiers - 1) / total

    def entry_for(self, name: str) -> NumaMapsEntry:
        """Look up the entry of one object by name."""
        for entry in self.entries:
            if entry.object_name == name:
                return entry
        raise KeyError(f"no numa_maps entry for object {name!r}")


class NumaMapsSampler:
    """Collects :class:`NumaMapsSnapshot` objects over the course of a run.

    The profiler calls :meth:`sample` at phase boundaries (and optionally at a
    fixed simulated-time interval), producing the capacity timeline behind the
    paper's ``NMO_TRACK_RSS`` mode.
    """

    def __init__(self, memory: TieredMemory) -> None:
        self.memory = memory
        self._snapshots: list[NumaMapsSnapshot] = []

    def sample(self, timestamp: float) -> NumaMapsSnapshot:
        """Take a snapshot at simulated time ``timestamp`` (seconds)."""
        space = self.memory.address_space
        n_tiers = len(self.memory.usage)
        entries = []
        for obj in space.objects:
            placement = self.memory.placement_of(obj)
            per_tier = tuple(
                int((placement == tier).sum()) for tier in range(n_tiers)
            )
            entries.append(
                NumaMapsEntry(
                    object_name=obj.name,
                    object_id=obj.object_id,
                    size_bytes=obj.size_bytes,
                    pages_per_tier=per_tier,
                    placement_policy=obj.placement,
                )
            )
        snapshot = NumaMapsSnapshot(
            timestamp=float(timestamp),
            entries=tuple(entries),
            page_bytes=space.page_bytes,
        )
        self._snapshots.append(snapshot)
        return snapshot

    @property
    def snapshots(self) -> tuple[NumaMapsSnapshot, ...]:
        """All snapshots collected so far, in time order."""
        return tuple(self._snapshots)

    def peak_rss_bytes(self) -> int:
        """Peak resident set size observed across snapshots."""
        if not self._snapshots:
            return 0
        return max(s.rss_bytes for s in self._snapshots)

    def rss_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(timestamps, rss_bytes) arrays for plotting capacity over time."""
        times = np.array([s.timestamp for s in self._snapshots], dtype=np.float64)
        rss = np.array([s.rss_bytes for s in self._snapshots], dtype=np.float64)
        return times, rss

    def tier_timeline(self, tier: int) -> tuple[np.ndarray, np.ndarray]:
        """(timestamps, resident_bytes) for one tier."""
        times = np.array([s.timestamp for s in self._snapshots], dtype=np.float64)
        used = np.array([s.tier_bytes(tier) for s in self._snapshots], dtype=np.float64)
        return times, used

    def clear(self) -> None:
        """Drop all collected snapshots."""
        self._snapshots.clear()
