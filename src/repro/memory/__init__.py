"""Virtual address space, memory objects and tiered physical placement."""

from .numa_maps import NumaMapsEntry, NumaMapsSampler, NumaMapsSnapshot
from .objects import (
    AddressSpace,
    MemoryObject,
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_INTERLEAVE,
    PLACEMENT_LOCAL,
    PLACEMENT_POLICIES,
    PLACEMENT_REMOTE,
)
from .tiered import TieredMemory, TierUsage, UNPLACED

__all__ = [
    "AddressSpace",
    "MemoryObject",
    "PLACEMENT_FIRST_TOUCH",
    "PLACEMENT_INTERLEAVE",
    "PLACEMENT_LOCAL",
    "PLACEMENT_POLICIES",
    "PLACEMENT_REMOTE",
    "TieredMemory",
    "TierUsage",
    "UNPLACED",
    "NumaMapsEntry",
    "NumaMapsSampler",
    "NumaMapsSnapshot",
]
