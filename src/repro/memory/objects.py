"""Data objects and the simulated virtual address space.

Workloads declare the arrays and structures they allocate as
:class:`MemoryObject` instances.  The :class:`AddressSpace` lays objects out in
a flat page-granular virtual address space in **allocation order**, which is
what makes the paper's first-touch placement experiments (and the BFS
allocation-reordering case study in Section 7.1) expressible: whichever object
is touched first claims the remaining node-local pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import numpy as np

from ..config.errors import AllocationError
from ..config.units import PAGE_BYTES, pages_for
from ..trace.patterns import AccessPattern, SequentialPattern


#: Placement policies supported by the allocator, mirroring libnuma options.
PLACEMENT_FIRST_TOUCH = "first-touch"
PLACEMENT_LOCAL = "local"
PLACEMENT_REMOTE = "remote"
PLACEMENT_INTERLEAVE = "interleave"

PLACEMENT_POLICIES = (
    PLACEMENT_FIRST_TOUCH,
    PLACEMENT_LOCAL,
    PLACEMENT_REMOTE,
    PLACEMENT_INTERLEAVE,
)


@dataclass
class MemoryObject:
    """A named allocation made by a workload.

    Attributes
    ----------
    name:
        Identifier used in reports and by the case studies ("Parents",
        "adjacency", "A-panel"...).
    size_bytes:
        Allocation size in bytes.
    pattern:
        Access pattern used when the object is touched by kernels; also
        determines how traffic is spread over its pages.
    placement:
        One of :data:`PLACEMENT_POLICIES`.  ``first-touch`` follows the OS
        default; ``local``/``remote`` emulate explicit libnuma placement;
        ``interleave`` spreads pages round-robin over the tiers.
    allocation_site:
        Free-form tag of the source location, used by the profiler to
        attribute remote traffic to allocation sites.
    lifetime:
        ``"program"`` for objects that live until exit, or the name of the
        phase after which the object is freed (used by the BFS case study to
        free an initialisation-only buffer).
    object_id, first_page, n_pages:
        Filled in by the :class:`AddressSpace` when the object is registered.
    """

    name: str
    size_bytes: int
    pattern: AccessPattern = field(default_factory=SequentialPattern)
    placement: str = PLACEMENT_FIRST_TOUCH
    allocation_site: str = ""
    lifetime: str = "program"
    object_id: int = -1
    first_page: int = -1
    n_pages: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise AllocationError(f"object {self.name!r}: size must be positive")
        if self.placement not in PLACEMENT_POLICIES:
            raise AllocationError(
                f"object {self.name!r}: unknown placement {self.placement!r}"
            )

    @property
    def registered(self) -> bool:
        """Whether the object has been laid out in an address space."""
        return self.object_id >= 0 and self.first_page >= 0

    @property
    def last_page(self) -> int:
        """Index of the last page backing the object (inclusive)."""
        if not self.registered:
            raise AllocationError(f"object {self.name!r} is not registered")
        return self.first_page + self.n_pages - 1

    def page_range(self) -> np.ndarray:
        """All page indices backing the object."""
        if not self.registered:
            raise AllocationError(f"object {self.name!r} is not registered")
        return np.arange(self.first_page, self.first_page + self.n_pages, dtype=np.int64)

    def line_range(self, lines_per_page: int) -> tuple[int, int]:
        """Half-open range of global cacheline indices backing the object."""
        if not self.registered:
            raise AllocationError(f"object {self.name!r} is not registered")
        start = self.first_page * lines_per_page
        return start, start + self.n_pages * lines_per_page

    def n_lines(self, lines_per_page: int) -> int:
        """Number of cachelines backing the object."""
        return self.n_pages * lines_per_page


class AddressSpace:
    """Flat, page-granular virtual address space shared by a workload's objects.

    Objects are assigned consecutive page ranges in the order they are
    registered.  The address space does not decide physical placement — that is
    the :class:`~repro.memory.tiered.TieredMemory`'s job — it only provides a
    stable mapping from objects to page and cacheline indices.
    """

    def __init__(self, page_bytes: int = PAGE_BYTES, line_bytes: int = 64) -> None:
        if page_bytes <= 0 or line_bytes <= 0:
            raise AllocationError("page and line sizes must be positive")
        if page_bytes % line_bytes:
            raise AllocationError("page size must be a multiple of the line size")
        self.page_bytes = int(page_bytes)
        self.line_bytes = int(line_bytes)
        self.lines_per_page = self.page_bytes // self.line_bytes
        self._objects: list[MemoryObject] = []
        self._next_page = 0

    # -- registration ---------------------------------------------------------

    def register(self, obj: MemoryObject) -> MemoryObject:
        """Assign the next free page range to ``obj`` and record it."""
        if obj.registered:
            raise AllocationError(f"object {obj.name!r} is already registered")
        n_pages = pages_for(obj.size_bytes, self.page_bytes)
        obj.object_id = len(self._objects)
        obj.first_page = self._next_page
        obj.n_pages = n_pages
        self._next_page += n_pages
        self._objects.append(obj)
        return obj

    def register_all(self, objects: Iterable[MemoryObject]) -> list[MemoryObject]:
        """Register several objects in order."""
        return [self.register(obj) for obj in objects]

    # -- lookup ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[MemoryObject]:
        return iter(self._objects)

    @property
    def objects(self) -> tuple[MemoryObject, ...]:
        """All registered objects in allocation order."""
        return tuple(self._objects)

    @property
    def total_pages(self) -> int:
        """Total number of pages allocated so far."""
        return self._next_page

    @property
    def total_bytes(self) -> int:
        """Total footprint of all registered objects, bytes."""
        return sum(o.size_bytes for o in self._objects)

    def get(self, name: str) -> MemoryObject:
        """Look an object up by name."""
        for obj in self._objects:
            if obj.name == name:
                return obj
        raise KeyError(f"no object named {name!r}")

    def by_id(self, object_id: int) -> MemoryObject:
        """Look an object up by its numeric id."""
        if not 0 <= object_id < len(self._objects):
            raise KeyError(f"no object with id {object_id}")
        return self._objects[object_id]

    def object_of_page(self, page: int) -> Optional[MemoryObject]:
        """The object backing ``page``, or None for unmapped pages."""
        for obj in self._objects:
            if obj.first_page <= page < obj.first_page + obj.n_pages:
                return obj
        return None

    def page_object_ids(self) -> np.ndarray:
        """Array mapping every allocated page to its owning object id."""
        ids = np.full(self._next_page, -1, dtype=np.int64)
        for obj in self._objects:
            ids[obj.first_page : obj.first_page + obj.n_pages] = obj.object_id
        return ids
