"""Job descriptions for the scheduling studies.

Section 7.2 argues that users can quantify their application's interference
sensitivity (with LBench and the Level-3 methodology) and provide it at job
submission so the scheduler can make interference-aware co-location decisions.
:class:`JobProfile` is exactly that submission-time hint, and :class:`Job` is
one instance of it queued on the cluster.

Units: ``baseline_runtime`` is seconds of interference-free execution (the
unit the simulator's remaining-work bookkeeping and the fabric coupling's
progress rates are expressed in), ``induced_loi`` is percent of the pool
link's peak traffic, ``pool_gb`` is the GB leased from the rack's pool.  For
fabric-coupled runs, ``workload`` doubles as the key that resolves the job to
a :class:`~repro.workloads.base.WorkloadSpec` (registry name or explicit
mapping), and :func:`~repro.scheduler.progress.fabric_job_profile` builds
profiles whose hints are measured on the fabric's own models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config.errors import SchedulingError
from ..profiler.level3 import SensitivityCurve


@dataclass(frozen=True)
class JobProfile:
    """Submission-time description of a job's memory/interference behaviour.

    Attributes
    ----------
    workload:
        Application name (used for reporting).
    baseline_runtime:
        Runtime on the target configuration with an idle memory pool, seconds.
    sensitivity:
        Measured sensitivity curve (runtime vs LoI); used to predict the
        slowdown caused by co-runners.  Optional — jobs without the hint are
        treated as insensitive by interference-unaware schedulers and as
        worst-case by conservative ones.
    interference_coefficient:
        The IC the job induces on the shared pool (>= 1).
    induced_loi:
        The Level of Interference the job's own pool traffic generates,
        percent of the link peak.
    pool_gb:
        Memory the job draws from the rack's pool, GB.
    """

    workload: str
    baseline_runtime: float
    sensitivity: Optional[SensitivityCurve] = None
    interference_coefficient: float = 1.0
    induced_loi: float = 0.0
    pool_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.baseline_runtime <= 0:
            raise SchedulingError("baseline runtime must be positive")
        if self.interference_coefficient < 1.0:
            raise SchedulingError("interference coefficient must be >= 1")
        if self.induced_loi < 0:
            raise SchedulingError("induced LoI must be non-negative")
        if self.pool_gb < 0:
            raise SchedulingError("pool usage must be non-negative")

    def slowdown_at(self, loi: float) -> float:
        """Predicted slowdown when co-runners generate ``loi`` percent interference."""
        if self.sensitivity is None:
            return 1.0
        return self.sensitivity.slowdown_at(loi)

    def runtime_at(self, loi: float) -> float:
        """Predicted runtime under a constant interference level."""
        return self.baseline_runtime * self.slowdown_at(loi)


@dataclass
class Job:
    """One queued/running instance of a job profile."""

    job_id: int
    profile: JobProfile
    submit_time: float = 0.0
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    assigned_node: Optional[int] = None
    assigned_rack: Optional[int] = None

    @property
    def started(self) -> bool:
        """Whether the job has been placed and started."""
        return self.start_time is not None

    @property
    def finished(self) -> bool:
        """Whether the job has completed."""
        return self.finish_time is not None

    @property
    def execution_time(self) -> float:
        """Wall-clock execution time (0 until finished)."""
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Queueing delay before the job started."""
        if self.start_time is None:
            return 0.0
        return self.start_time - self.submit_time

    @property
    def slowdown(self) -> float:
        """Execution time relative to the interference-free baseline."""
        if not self.finished:
            return 1.0
        return self.execution_time / self.profile.baseline_runtime
