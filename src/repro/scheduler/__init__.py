"""Interference-aware job scheduling on pooled-memory clusters.

The subsystem couples to :mod:`repro.fabric` through the progress models in
:mod:`repro.scheduler.progress`: the cluster simulator's event loop asks a
:class:`ProgressModel` how fast each running job advances, and the
fabric-coupled implementation answers by stepping one rack co-simulation per
rack between scheduler events.
"""

from .cluster import Cluster, Node, Rack
from .job import Job, JobProfile
from .policies import (
    FabricCoupledPlacement,
    InterferenceAwarePlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    POLICIES,
    PoolAwarePlacement,
    RandomPlacement,
    make_policy,
)
from .progress import (
    FabricCoupledProgress,
    ProgressModel,
    StaticCurveProgress,
    fabric_baseline_runtime,
    fabric_job_profile,
    make_progress_model,
)
from .simulator import (
    ClusterSimulator,
    CoLocationResult,
    CoLocationStudy,
    ScheduleOutcome,
)

__all__ = [
    "Cluster",
    "Node",
    "Rack",
    "Job",
    "JobProfile",
    "FabricCoupledPlacement",
    "InterferenceAwarePlacement",
    "LeastLoadedPlacement",
    "PlacementPolicy",
    "POLICIES",
    "PoolAwarePlacement",
    "RandomPlacement",
    "make_policy",
    "FabricCoupledProgress",
    "ProgressModel",
    "StaticCurveProgress",
    "fabric_baseline_runtime",
    "fabric_job_profile",
    "make_progress_model",
    "ClusterSimulator",
    "CoLocationResult",
    "CoLocationStudy",
    "ScheduleOutcome",
]
