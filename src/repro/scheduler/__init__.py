"""Interference-aware job scheduling on pooled-memory clusters."""

from .cluster import Cluster, Node, Rack
from .job import Job, JobProfile
from .policies import (
    InterferenceAwarePlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    POLICIES,
    PoolAwarePlacement,
    RandomPlacement,
    make_policy,
)
from .simulator import (
    ClusterSimulator,
    CoLocationResult,
    CoLocationStudy,
    ScheduleOutcome,
)

__all__ = [
    "Cluster",
    "Node",
    "Rack",
    "Job",
    "JobProfile",
    "InterferenceAwarePlacement",
    "LeastLoadedPlacement",
    "PlacementPolicy",
    "POLICIES",
    "PoolAwarePlacement",
    "RandomPlacement",
    "make_policy",
    "ClusterSimulator",
    "CoLocationResult",
    "CoLocationStudy",
    "ScheduleOutcome",
]
