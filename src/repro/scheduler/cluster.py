"""Rack-scale cluster topology with shared memory pools (Figure 2).

The paper's target architecture gives every node a fixed node-local memory and
lets all nodes of a rack share one fabric-attached memory pool.  Interference
therefore has rack scope: jobs on different nodes of the same rack disturb
each other through the shared pool link, jobs in different racks do not.

This module tracks *capacity* (nodes and pool GB) and the static LoI proxy
(:meth:`Rack.aggregate_loi`).  When the fabric is coupled in
(:mod:`repro.scheduler.progress`), each :class:`Rack` is mirrored by one
:class:`~repro.fabric.cosim.RackCoSimulator`: the rack-local position of a
node in :attr:`Rack.nodes` is the fabric node index its job's tenant runs on,
and ``pool_capacity_gb`` bounds the mirrored pool's lease capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config.errors import SchedulingError
from .job import Job


@dataclass
class Node:
    """One compute node of a rack."""

    node_id: int
    rack_id: int
    local_memory_gb: float
    running: Optional[Job] = None

    @property
    def busy(self) -> bool:
        """Whether a job currently occupies the node (no node sharing in HPC)."""
        return self.running is not None


@dataclass
class Rack:
    """A rack: nodes plus one shared memory pool."""

    rack_id: int
    nodes: list[Node]
    pool_capacity_gb: float
    pool_used_gb: float = 0.0

    @property
    def free_nodes(self) -> list[Node]:
        """Nodes without a running job."""
        return [n for n in self.nodes if not n.busy]

    @property
    def running_jobs(self) -> list[Job]:
        """Jobs currently running in the rack."""
        return [n.running for n in self.nodes if n.running is not None]

    @property
    def pool_free_gb(self) -> float:
        """Unused pool capacity."""
        return self.pool_capacity_gb - self.pool_used_gb

    def aggregate_loi(self, excluding: Optional[Job] = None) -> float:
        """Total LoI injected on the rack's pool link by running jobs.

        This is the interference a (prospective or running) job would see from
        its co-runners; the paper measures individual contributions with the
        interference coefficient / induced LoI and schedulers sum them.
        """
        total = 0.0
        for job in self.running_jobs:
            if excluding is not None and job.job_id == excluding.job_id:
                continue
            total += job.profile.induced_loi
        return min(total, 100.0)

    def can_host(self, job: Job) -> bool:
        """Whether the rack has a free node and enough pool capacity for ``job``."""
        return bool(self.free_nodes) and job.profile.pool_gb <= self.pool_free_gb

    def place(self, job: Job, node: Optional[Node] = None) -> Node:
        """Place a job on a node of this rack and reserve its pool share."""
        if not self.can_host(job):
            raise SchedulingError(
                f"rack {self.rack_id} cannot host job {job.job_id}"
            )
        target = node if node is not None else self.free_nodes[0]
        if target.busy:
            raise SchedulingError(f"node {target.node_id} is busy")
        target.running = job
        job.assigned_node = target.node_id
        job.assigned_rack = self.rack_id
        self.pool_used_gb += job.profile.pool_gb
        return target

    def release(self, job: Job) -> None:
        """Remove a finished job from its node and release its pool share."""
        for node in self.nodes:
            if node.running is not None and node.running.job_id == job.job_id:
                node.running = None
                self.pool_used_gb = max(self.pool_used_gb - job.profile.pool_gb, 0.0)
                return
        raise SchedulingError(f"job {job.job_id} is not running in rack {self.rack_id}")


@dataclass
class Cluster:
    """A cluster of identical racks sharing nothing across rack boundaries."""

    racks: list[Rack]

    @classmethod
    def build(
        cls,
        n_racks: int = 2,
        nodes_per_rack: int = 16,
        local_memory_gb: float = 256.0,
        pool_capacity_gb: float = 2048.0,
    ) -> "Cluster":
        """Construct a homogeneous cluster (defaults echo Figure 2's sketch)."""
        if n_racks <= 0 or nodes_per_rack <= 0:
            raise SchedulingError("cluster needs at least one rack and one node per rack")
        racks = []
        node_id = 0
        for rack_id in range(n_racks):
            nodes = []
            for _ in range(nodes_per_rack):
                nodes.append(Node(node_id=node_id, rack_id=rack_id, local_memory_gb=local_memory_gb))
                node_id += 1
            racks.append(Rack(rack_id=rack_id, nodes=nodes, pool_capacity_gb=pool_capacity_gb))
        return cls(racks=racks)

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return sum(len(r.nodes) for r in self.racks)

    @property
    def free_nodes(self) -> int:
        """Number of idle nodes."""
        return sum(len(r.free_nodes) for r in self.racks)

    @property
    def running_jobs(self) -> list[Job]:
        """All jobs currently running anywhere in the cluster."""
        jobs: list[Job] = []
        for rack in self.racks:
            jobs.extend(rack.running_jobs)
        return jobs

    def rack_of(self, job: Job) -> Rack:
        """The rack a running job was placed in."""
        if job.assigned_rack is None:
            raise SchedulingError(f"job {job.job_id} has not been placed")
        return self.racks[job.assigned_rack]

    def candidate_racks(self, job: Job) -> list[Rack]:
        """Racks that could host ``job`` right now."""
        return [rack for rack in self.racks if rack.can_host(job)]
