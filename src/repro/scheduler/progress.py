"""Progress models: how running jobs advance between scheduler events.

The :class:`~repro.scheduler.simulator.ClusterSimulator` is an event loop —
place jobs, advance everyone to the next event, retire finished jobs.  What
used to be hard-wired inside that loop is *how fast each running job makes
progress*, and that is exactly where the paper's static methodology and the
:mod:`repro.fabric` co-simulation differ:

* :class:`StaticCurveProgress` (the default, and the pre-existing behaviour)
  prices co-location with the submission-time hints of Section 7.2: each
  co-runner contributes its ``induced_loi`` and a job's rate is the inverse of
  its measured ``slowdown_at(sum of co-runner LoIs)``.  Interference is a
  static curve; a slowed-down co-runner keeps "emitting" its nominal LoI.
* :class:`FabricCoupledProgress` drives the rates from fabric co-simulation
  epochs instead: all racks' incremental co-simulators are stepped together
  by one shared :class:`~repro.fabric.cluster.ClusterCoSimulator`, each
  running job is admitted as a fabric tenant on its node, and the progress
  rates fed back to the scheduler are the emergent per-epoch rates the fabric
  resolves — a tenant in a bandwidth-hungry phase slows its port's co-runners
  *and therefore itself finishes later, prolonging the interference it
  causes*, the feedback the static curve cannot express.  With a cluster
  spill pool provisioned, jobs that do not fit their rack's pool spill into
  it and additionally contend on their rack uplink and the shared spine.

Coupling contract (mirrors :mod:`repro.fabric.cosim`)
-----------------------------------------------------

* **Units.**  Rates returned by :meth:`ProgressModel.rates` are in *profile
  baseline seconds* per wall-clock second, so the simulator's remaining-work
  bookkeeping (seeded with ``JobProfile.baseline_runtime``) stays linear.  The
  fabric co-simulation internally measures progress in *its* baseline seconds
  (one interference-free engine run per unique workload);
  :class:`FabricCoupledProgress` rescales between the two, so profiles whose
  ``baseline_runtime`` came from a different measurement than the fabric's
  engine run remain usable.
* **Epoch semantics.**  Fabric-coupled rates are exact only until the next
  epoch rollover or tenant phase boundary; :meth:`ProgressModel.horizon`
  exposes that bound and the simulator never advances past it in one event.
* **Tenant ↔ job mapping.**  Job ``j`` placed on cluster node ``n`` of rack
  ``r`` becomes fabric tenant ``job-<j>`` on the rack-local node index of
  ``n`` in rack ``r``'s co-simulator.  The tenant's workload is resolved from
  ``JobProfile.workload`` via an explicit mapping or the workload registry;
  its pool lease is ``JobProfile.pool_gb`` (GB -> bytes), mirroring the
  capacity the cluster model already reserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Protocol

from ..config.errors import SchedulingError
from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig
from ..config.units import bytes_to_gb, gb
from ..fabric.cluster import ClusterCoSimulator, ClusterFabric
from ..fabric.cosim import RackCoSimulator, TenantSpec
from ..fabric.faults import FaultSchedule
from ..fabric.solver import SOLVER_VECTORIZED
from ..interconnect.link import RemoteLink
from ..profiler.level3 import SensitivityCurve
from ..sim.engine import ExecutionEngine
from ..sim.platform import Platform
from ..workloads.base import WorkloadSpec
from ..workloads.registry import build_workload
from .cluster import Cluster, Rack
from .job import Job, JobProfile


class ProgressModel(Protocol):
    """How running jobs accrue progress between scheduler events.

    The :class:`~repro.scheduler.simulator.ClusterSimulator` calls these hooks
    in a fixed order each event-loop iteration: :meth:`rates` (current
    per-job progress rates), :meth:`horizon` (how long those rates stay
    valid), then :meth:`advance` with the chosen time step; :meth:`job_started`
    / :meth:`job_finished` bracket each job's residency.
    """

    name: str

    def bind(self, cluster: Cluster) -> None:
        """Attach to (and reset for) one cluster-simulation run."""
        ...

    def job_started(self, job: Job, rack: Rack, clock: float) -> None:
        """A job was placed on ``rack`` at ``clock``."""
        ...

    def job_finished(self, job: Job, rack: Rack, clock: float) -> None:
        """A job completed and is being retired from ``rack`` at ``clock``."""
        ...

    def rates(self, clock: float) -> Dict[int, float]:
        """Progress rate per running job id, in baseline-seconds per second."""
        ...

    def horizon(self, clock: float) -> Optional[float]:
        """Seconds the current rates stay valid (None = until the next event)."""
        ...

    def advance(self, dt: float) -> None:
        """Commit a time step of ``dt`` seconds (all rates were applied)."""
        ...


def static_rate(job: Job, rack: Rack) -> float:
    """The paper's static progress rate: 1 / slowdown at the co-runners' LoI.

    Shared by :class:`StaticCurveProgress` and the fabric-coupled model's
    fallback path, so the static pricing formula exists exactly once.
    """
    seen_loi = rack.aggregate_loi(excluding=job)
    return 1.0 / max(job.profile.slowdown_at(seen_loi), 1.0)


@dataclass
class StaticCurveProgress:
    """The paper's static pricing: rate = 1 / slowdown_at(co-runners' LoI).

    Each co-runner contributes its submission-time ``induced_loi`` hint; the
    sum (clipped at 100%) is looked up in the job's measured sensitivity
    curve.  This is exactly the behaviour :class:`ClusterSimulator` had before
    progress models existed, preserved as the default.
    """

    name: str = "static-curve"
    cluster: Optional[Cluster] = field(default=None, repr=False)

    def bind(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def job_started(self, job: Job, rack: Rack, clock: float) -> None:
        pass

    def job_finished(self, job: Job, rack: Rack, clock: float) -> None:
        pass

    def rates(self, clock: float) -> Dict[int, float]:
        if self.cluster is None:
            raise SchedulingError("progress model is not bound to a cluster")
        rates: Dict[int, float] = {}
        for job in self.cluster.running_jobs:
            rates[job.job_id] = static_rate(job, self.cluster.rack_of(job))
        return rates

    def horizon(self, clock: float) -> Optional[float]:
        return None

    def advance(self, dt: float) -> None:
        pass


def fabric_baseline_runtime(
    workload: WorkloadSpec,
    local_fraction: float = 0.5,
    testbed: TestbedConfig = SKYLAKE_EMULATION,
    seed: int = 0,
) -> float:
    """Interference-free runtime of ``workload`` on the pooled platform.

    This is the same measurement :class:`~repro.fabric.cosim.RackCoSimulator`
    uses as its per-tenant reference, so job profiles built from it make the
    static and fabric-coupled models agree exactly on an uncontended fabric.
    """
    platform = Platform.pooled(
        workload.footprint_bytes, local_fraction, testbed=testbed
    )
    result = ExecutionEngine(platform, seed=seed).run(workload)
    return float(sum(p.runtime for p in result.phases))


def fabric_job_profile(
    workload: WorkloadSpec,
    local_fraction: float = 0.5,
    testbed: TestbedConfig = SKYLAKE_EMULATION,
    seed: int = 0,
    sensitivity: Optional[SensitivityCurve] = None,
) -> JobProfile:
    """A :class:`JobProfile` whose hints are measured on the fabric's models.

    ``baseline_runtime`` comes from the interference-free engine run,
    ``induced_loi`` from the workload's average offered pool bandwidth
    expressed as a Level of Interference on the pool link, and ``pool_gb``
    from the remote share of the footprint — so static-curve and
    fabric-coupled schedulers price the *same* job stream with their two
    different interference machineries.
    """
    platform = Platform.pooled(
        workload.footprint_bytes, local_fraction, testbed=testbed
    )
    result = ExecutionEngine(platform, seed=seed).run(workload)
    baseline = float(sum(p.runtime for p in result.phases))
    remote_bytes = float(sum(p.remote_bytes for p in result.phases))
    link = RemoteLink(testbed)
    induced = link.loi(remote_bytes / baseline) if baseline > 0 else 0.0
    return JobProfile(
        workload=workload.name,
        baseline_runtime=baseline,
        sensitivity=sensitivity,
        induced_loi=induced,
        pool_gb=bytes_to_gb(workload.footprint_bytes * (1.0 - local_fraction)),
    )


@dataclass
class _CoupledJob:
    """Bookkeeping linking one running job to its fabric tenant."""

    tenant: str
    rack_id: int
    #: profile baseline seconds per fabric baseline second.
    scale: float


class FabricCoupledProgress:
    """Progress rates from the shared :class:`ClusterCoSimulator` epoch loop.

    All racks' incremental co-simulators are stepped together by one
    :class:`~repro.fabric.cluster.ClusterCoSimulator`, so rack epochs stay
    aligned, per-tenant baselines are cached cluster-wide, and (when a
    cluster pool is provisioned) jobs that do not fit their rack's pool spill
    into it and feel uplink/spine contention.

    Parameters
    ----------
    workloads:
        Mapping from ``JobProfile.workload`` name to the
        :class:`~repro.workloads.base.WorkloadSpec` a job executes.  Names not
        in the mapping are resolved through the workload registry (so the
        paper's six applications work out of the box); anything else raises
        :class:`SchedulingError` at placement time.
    local_fraction:
        Default fraction of a tenant's footprint served node-locally.  Jobs
        whose ``pool_gb`` implies a different split get that split instead.
    ports_per_rack / port_capacity_scale:
        Fabric wiring of each rack's co-simulator (see
        :class:`~repro.fabric.topology.FabricTopology`).
    epoch_seconds:
        Cluster co-simulation epoch (None: derived from the first placed
        job's baseline runtime and shared by every rack).
    testbed / seed:
        Platform description and engine seed for the per-tenant baselines.
    solver:
        Contention solver of every rack topology (``"vectorized"`` default,
        ``"scalar"`` for the reference path).
    cluster_pool_gb:
        Capacity of the cluster-level spill pool (0 disables spilling, the
        historical per-rack-only behaviour).
    uplink_capacity_scale / spine_capacity_scale:
        Inter-rack wiring of the underlying
        :class:`~repro.fabric.cluster.ClusterFabric` (only exercised when
        spilling is enabled).
    fault_schedule:
        Optional :class:`~repro.fabric.faults.FaultSchedule` injected into
        the shared cluster co-simulation at construction.  Fault-stalled
        tenants report an explicit rate of 0 (the scheduler observes the
        stall, it does not fall back to a static estimate), and placement
        policies reading :meth:`projected_port_pressure` automatically avoid
        racks whose ports are degraded or dead.
    overcommit:
        Make every mirrored rack pool elastic (see
        :class:`~repro.fabric.cluster.ClusterCoSimulator`).
    drain_bytes_per_s:
        Page give-back migration rate charged on lease shrink/revoke; None
        keeps :data:`~repro.fabric.faults.DEFAULT_DRAIN_BYTES_PER_S`.
    """

    name = "fabric-coupled"

    def __init__(
        self,
        workloads: Optional[Mapping[str, WorkloadSpec]] = None,
        local_fraction: float = 0.5,
        ports_per_rack: int = 1,
        port_capacity_scale: float = 1.0,
        epoch_seconds: Optional[float] = None,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        seed: int = 0,
        solver: str = SOLVER_VECTORIZED,
        cluster_pool_gb: float = 0.0,
        uplink_capacity_scale: float = 4.0,
        spine_capacity_scale: Optional[float] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        overcommit: bool = False,
        drain_bytes_per_s: Optional[float] = None,
    ) -> None:
        if not 0.0 < local_fraction <= 1.0:
            raise SchedulingError("local_fraction must be in (0, 1]")
        if cluster_pool_gb < 0:
            raise SchedulingError("cluster_pool_gb must be >= 0")
        self.workloads = dict(workloads) if workloads else {}
        self.local_fraction = float(local_fraction)
        self.ports_per_rack = int(ports_per_rack)
        self.port_capacity_scale = float(port_capacity_scale)
        self.epoch_seconds = epoch_seconds
        self.testbed = testbed
        self.seed = int(seed)
        self.solver = solver
        self.cluster_pool_gb = float(cluster_pool_gb)
        self.uplink_capacity_scale = float(uplink_capacity_scale)
        self.spine_capacity_scale = spine_capacity_scale
        self.fault_schedule = fault_schedule
        self.overcommit = bool(overcommit)
        self.drain_bytes_per_s = drain_bytes_per_s
        self.cluster: Optional[Cluster] = None
        self._cluster_sim: Optional[ClusterCoSimulator] = None
        self._rack_index: Dict[int, int] = {}
        self._racks: Dict[int, RackCoSimulator] = {}
        self._jobs: Dict[int, _CoupledJob] = {}

    # -- lifecycle hooks ---------------------------------------------------------

    def bind(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._cluster_sim = None
        self._rack_index = {}
        self._racks = {}
        self._jobs = {}

    def job_started(self, job: Job, rack: Rack, clock: float) -> None:
        cluster_sim = self.cluster_simulator()
        spec = self._tenant_spec(job, clock)
        node = self._local_node(rack, job)
        cluster_sim.admit(
            self._rack_index[rack.rack_id], spec, node=node, time=clock
        )
        fabric_baseline = self._racks[rack.rack_id].baseline_runtime_of(spec.name)
        scale = (
            job.profile.baseline_runtime / fabric_baseline
            if fabric_baseline > 0
            else 1.0
        )
        self._jobs[job.job_id] = _CoupledJob(
            tenant=spec.name, rack_id=rack.rack_id, scale=scale
        )

    def job_finished(self, job: Job, rack: Rack, clock: float) -> None:
        coupled = self._jobs.pop(job.job_id, None)
        if coupled is not None and self._cluster_sim is not None:
            self._cluster_sim.withdraw(coupled.tenant, time=clock)

    # -- event-loop hooks ----------------------------------------------------------

    def rates(self, clock: float) -> Dict[int, float]:
        if self.cluster is None:
            raise SchedulingError("progress model is not bound to a cluster")
        fabric_rates = (
            self._cluster_sim.progress_rates()
            if self._cluster_sim is not None
            else {}
        )
        rates: Dict[int, float] = {}
        for job in self.cluster.running_jobs:
            coupled = self._jobs.get(job.job_id)
            if coupled is None:
                raise SchedulingError(
                    f"job {job.job_id} is running but was never coupled to the fabric"
                )
            rate = fabric_rates.get(coupled.tenant)
            if rate is None:
                # The mirrored lease is queued (possible only when the rack's
                # pool is provisioned tighter than the cluster model believes)
                # or the tenant already finished its fabric work: fall back to
                # the static curve so the simulation cannot deadlock.
                rates[job.job_id] = static_rate(job, self.cluster.rack_of(job))
            else:
                rates[job.job_id] = rate * coupled.scale
        return rates

    def horizon(self, clock: float) -> Optional[float]:
        sim = self._cluster_sim
        if sim is None:
            return None
        busy = any(
            any(state.running for state in rack_sim.tenant_states.values())
            for rack_sim in sim.rack_sims
        )
        return sim.horizon() if busy else None

    def advance(self, dt: float) -> None:
        if self._cluster_sim is not None:
            self._cluster_sim.step(dt)

    # -- fabric wiring ------------------------------------------------------------

    def cluster_simulator(self) -> ClusterCoSimulator:
        """The (lazily created) shared co-simulation of the whole cluster."""
        if self._cluster_sim is None:
            if self.cluster is None:
                raise SchedulingError("progress model is not bound to a cluster")
            racks = self.cluster.racks
            nodes_per_rack = max(len(rack.nodes) for rack in racks)
            fabric = ClusterFabric(
                n_racks=len(racks),
                nodes_per_rack=nodes_per_rack,
                n_ports=min(self.ports_per_rack, nodes_per_rack),
                testbed=self.testbed,
                port_capacity_scale=self.port_capacity_scale,
                uplink_capacity_scale=self.uplink_capacity_scale,
                spine_capacity_scale=self.spine_capacity_scale,
                solver=self.solver,
            )
            # Mirror each rack's pool capacity (GB -> bytes, with a rounding
            # slack so per-job GB->byte rounding can never queue a lease the
            # cluster model already admitted).
            pools = [
                int(round(gb(rack.pool_capacity_gb))) + len(rack.nodes)
                for rack in racks
            ]
            cluster_pool = int(round(gb(self.cluster_pool_gb)))
            self._cluster_sim = ClusterCoSimulator(
                fabric,
                rack_pool_bytes=pools,
                cluster_pool_bytes=cluster_pool if cluster_pool > 0 else None,
                epoch_seconds=self.epoch_seconds,
                seed=self.seed,
                overcommit=self.overcommit,
            )
            if self.fault_schedule is not None:
                self._cluster_sim.inject_faults(
                    self.fault_schedule, drain_bytes_per_s=self.drain_bytes_per_s
                )
            self._rack_index = {
                rack.rack_id: index for index, rack in enumerate(racks)
            }
            self._racks = {
                rack.rack_id: self._cluster_sim.rack_sims[index]
                for index, rack in enumerate(racks)
            }
        return self._cluster_sim

    def rack_simulator(self, rack: Rack) -> RackCoSimulator:
        """Rack ``rack``'s view into the shared cluster co-simulation."""
        self.cluster_simulator()
        return self._racks[rack.rack_id]

    def is_spilled(self, job: Job) -> bool:
        """Whether a running job's pool lease spilled to the cluster pool."""
        coupled = self._jobs.get(job.job_id)
        return (
            coupled is not None
            and self._cluster_sim is not None
            and self._cluster_sim.is_spilled(coupled.tenant)
        )

    def projected_port_pressure(self, rack: Rack, job: Job) -> float:
        """Utilisation of the busiest pool port if ``job`` landed in ``rack``.

        Resolves the rack's *live* offered demands — current phases of the
        co-simulated tenants, not submission-time hints — plus the prospective
        job's hungriest-phase demand on the port it would be wired to.  Used
        by :class:`~repro.scheduler.policies.FabricCoupledPlacement`.

        Port faults are priced in: each port's utilisation is divided by its
        residual health (:meth:`~repro.fabric.cosim.RackCoSimulator.
        port_health`), so a degraded port reads proportionally hotter and a
        killed port reads as effectively infinite pressure — placement
        policies with a utilisation ceiling avoid faulted racks with no
        fault-specific logic of their own.  On healthy ports the divisor is
        exactly 1.0, leaving fault-free pressure values bit-identical.
        """
        sim = self.rack_simulator(rack)
        demands = dict(sim.current_demands())
        free = [
            n for n in range(sim.topology.n_nodes)
            if n not in {s.node for s in sim.tenant_states.values()}
        ]
        probe_node = free[0] if free else 0
        spec = self._tenant_spec(job, arrival=0.0, probe=True)
        demands[probe_node] = demands.get(probe_node, 0.0) + sim.peak_offered_bandwidth(spec)
        return max(
            sim.topology.port_utilization(port, demands)
            / max(sim.port_health(port), 1e-9)
            for port in range(sim.topology.n_ports)
        )

    # -- job -> tenant mapping -----------------------------------------------------

    def _workload_of(self, profile: JobProfile) -> WorkloadSpec:
        if profile.workload in self.workloads:
            return self.workloads[profile.workload]
        try:
            spec = build_workload(profile.workload)
        except Exception as exc:
            raise SchedulingError(
                f"cannot couple job {profile.workload!r} to the fabric: not in "
                "the explicit workload mapping and not a registry workload. "
                "Pass FabricCoupledProgress(workloads={name: WorkloadSpec})."
            ) from exc
        self.workloads[profile.workload] = spec
        return spec

    def _tenant_spec(self, job: Job, arrival: float, probe: bool = False) -> TenantSpec:
        workload = self._workload_of(job.profile)
        pool_bytes = int(round(gb(job.profile.pool_gb)))
        local_fraction = self.local_fraction
        if workload.footprint_bytes > 0 and pool_bytes > 0:
            derived = 1.0 - pool_bytes / workload.footprint_bytes
            # Snap tiny GB->byte rounding noise back to the configured split so
            # profile caching (keyed on the fraction) stays effective.
            if abs(derived - self.local_fraction) > 1e-6:
                local_fraction = min(max(derived, 1e-9), 1.0)
        name = f"probe-{job.job_id}" if probe else f"job-{job.job_id}"
        return TenantSpec(
            name=name,
            workload=workload,
            local_fraction=local_fraction,
            arrival=max(arrival, 0.0),
            pool_bytes=pool_bytes,
        )

    def _local_node(self, rack: Rack, job: Job) -> Optional[int]:
        for index, node in enumerate(rack.nodes):
            if node.node_id == job.assigned_node:
                return index
        return None

    # -- reporting ----------------------------------------------------------------

    def lease_state_of(self, job: Job) -> Optional[str]:
        """Lease state of a coupled job's fabric tenant (None when unknown)."""
        coupled = self._jobs.get(job.job_id)
        if coupled is None:
            return None
        state = self._racks[coupled.rack_id].tenant_states.get(coupled.tenant)
        return state.lease.state if state is not None and state.lease else None

    def describe(self) -> dict:
        """Wiring summary of the per-rack co-simulators built so far."""
        return {
            rack_id: sim.topology.describe() for rack_id, sim in sorted(self._racks.items())
        }


def make_progress_model(name: str, **kwargs) -> ProgressModel:
    """Instantiate a progress model by name (CLI helper)."""
    models: Dict[str, Callable[..., ProgressModel]] = {
        "static": StaticCurveProgress,
        "static-curve": StaticCurveProgress,
        "fabric": FabricCoupledProgress,
        "fabric-coupled": FabricCoupledProgress,
    }
    try:
        cls = models[name]
    except KeyError as exc:
        raise SchedulingError(
            f"unknown progress model {name!r}; known: {sorted(models)}"
        ) from exc
    return cls(**kwargs)
