"""Scheduling policies: random co-location versus interference awareness.

Section 7.2 compares a baseline where a job may be co-located with arbitrary
interference (LoI drawn from 0-50%) against an interference-aware scheduler
that avoids placing interference-inducing jobs next to sensitive ones
(emulated by restricting the LoI range to 0-20%).  For the rack-scale
simulation we generalise that idea into placement policies that choose the
rack a job lands in.

All policies except :class:`FabricCoupledPlacement` and
:class:`ClusterFabricPlacement` score racks from the jobs' *submission-time
hints* (``induced_loi``, sensitivity curves, pool GB).  The two coupled
policies instead read the live state of the
:class:`~repro.scheduler.progress.FabricCoupledProgress` model driving the
simulation — the contention they project is resolved on the same fabric the
jobs actually run on, so placement sees the emergent interference of the
co-simulation rather than a static proxy of it;
:class:`ClusterFabricPlacement` additionally trades that port pressure
against hierarchical pool pressure (rack-pool headroom and cluster-pool
spill).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from ..config.errors import SchedulingError
from ..config.units import gb
from .cluster import Cluster, Rack
from .job import Job


class PlacementPolicy(Protocol):
    """Chooses the rack a job should be placed in (None = leave it queued)."""

    name: str

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        """Pick a rack for ``job`` or return None to keep it waiting."""
        ...


@dataclass
class RandomPlacement:
    """Interference-oblivious baseline: any rack with a free node will do."""

    name: str = "random"

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        candidates = cluster.candidate_racks(job)
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]


@dataclass
class LeastLoadedPlacement:
    """Places jobs on the rack whose pool link currently carries the least traffic.

    A simple capacity-balancing policy that is still interference-oblivious
    about the *job's own* sensitivity; included as an intermediate baseline.
    """

    name: str = "least-loaded"

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        candidates = cluster.candidate_racks(job)
        if not candidates:
            return None
        return min(candidates, key=lambda rack: rack.aggregate_loi())


@dataclass
class InterferenceAwarePlacement:
    """Keeps the interference seen by sensitive jobs below a threshold.

    The policy uses the submission-time hints the paper proposes: each job's
    induced LoI and its sensitivity curve.  A rack is acceptable for a job if

    * the interference the job would *see* there stays below ``max_seen_loi``
      (scaled down further for highly sensitive jobs), and
    * the interference the job would *add* does not push any sensitive
      co-runner above the same limit.

    Among acceptable racks the least-loaded one is chosen.  If no rack is
    acceptable the job waits (``strict``) or falls back to the least-loaded
    rack (``strict=False``), so the policy degrades gracefully under pressure.
    """

    max_seen_loi: float = 20.0
    sensitivity_threshold: float = 1.05
    strict: bool = False
    name: str = "interference-aware"

    def _sensitive(self, job: Job) -> bool:
        return job.profile.slowdown_at(50.0) >= self.sensitivity_threshold

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        candidates = cluster.candidate_racks(job)
        if not candidates:
            return None
        acceptable = []
        for rack in candidates:
            seen = rack.aggregate_loi()
            if self._sensitive(job) and seen > self.max_seen_loi:
                continue
            # Would adding this job push a sensitive co-runner over the limit?
            harms_others = False
            for other in rack.running_jobs:
                other_seen = rack.aggregate_loi(excluding=other) + job.profile.induced_loi
                if other.profile.slowdown_at(50.0) >= self.sensitivity_threshold and other_seen > self.max_seen_loi:
                    harms_others = True
                    break
            if harms_others:
                continue
            acceptable.append(rack)
        if acceptable:
            return min(acceptable, key=lambda rack: rack.aggregate_loi())
        if self.strict:
            return None
        return min(candidates, key=lambda rack: rack.aggregate_loi())


@dataclass
class PoolAwarePlacement:
    """Places jobs where the memory pool has headroom and the pool port is calm.

    This is the placement view of the :mod:`repro.fabric` co-simulation: a job
    draws two distinct rack resources — pool *capacity* (its lease) and pool
    *port bandwidth* (its traffic).  A rack whose pool is nearly exhausted
    would queue the job's lease; a rack whose port already runs hot would slow
    everyone down.  The policy scores each candidate rack by the projected
    state *after* placing the job,

    ``score = capacity_weight · pool-utilisation + (1 − capacity_weight) · port-utilisation``,

    and picks the lowest.  Racks whose projected port utilisation exceeds
    ``max_port_utilization`` are avoided entirely unless no other rack can
    host the job (graceful degradation under pressure, like the
    interference-aware policy).  Port utilisation is estimated from the
    co-runners' induced LoI, which is the link-traffic share their pool
    traffic occupies.
    """

    max_port_utilization: float = 0.9
    capacity_weight: float = 0.5
    name: str = "pool-aware"

    def __post_init__(self) -> None:
        if not 0.0 <= self.capacity_weight <= 1.0:
            raise SchedulingError("capacity_weight must be in [0, 1]")
        if self.max_port_utilization <= 0:
            raise SchedulingError("max_port_utilization must be positive")

    def _projected(self, rack: Rack, job: Job) -> tuple[float, float]:
        """(pool utilisation, port utilisation) if ``job`` landed in ``rack``."""
        pool_util = (rack.pool_used_gb + job.profile.pool_gb) / max(
            rack.pool_capacity_gb, 1e-9
        )
        port_util = (rack.aggregate_loi() + job.profile.induced_loi) / 100.0
        return pool_util, port_util

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        candidates = cluster.candidate_racks(job)
        if not candidates:
            return None

        def score(rack: Rack) -> float:
            pool_util, port_util = self._projected(rack, job)
            return (
                self.capacity_weight * pool_util
                + (1.0 - self.capacity_weight) * port_util
            )

        acceptable = [
            rack
            for rack in candidates
            if self._projected(rack, job)[1] <= self.max_port_utilization
        ]
        return min(acceptable if acceptable else candidates, key=score)


@dataclass
class FabricCoupledPlacement:
    """Places jobs where the *live* co-simulated fabric has the most headroom.

    Requires the cluster simulation to run with a
    :class:`~repro.scheduler.progress.FabricCoupledProgress` model (pass the
    same instance to both the simulator and this policy).  Each candidate rack
    is scored by the utilisation its busiest pool port would reach with the
    job's hungriest phase added to the tenants' *current* offered demands —
    the projection is resolved through the same
    :class:`~repro.fabric.topology.FabricTopology` the co-simulation steps,
    so a rack whose tenants currently sit in quiet phases is (correctly)
    considered calm even if their submission-time hints looked noisy.  Racks
    whose projected pressure exceeds ``max_port_utilization`` are avoided
    unless no other rack can host the job; falls back to the static LoI
    score when no progress model is attached.

    Because the projection divides by port health (see
    :meth:`~repro.scheduler.progress.FabricCoupledProgress.
    projected_port_pressure`), racks with degraded or killed ports read as
    high-pressure and are avoided automatically when a fault schedule is
    active — no fault-specific placement logic exists or is needed here.
    """

    progress: Optional[object] = None
    max_port_utilization: float = 0.9
    name: str = "fabric-coupled"

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        candidates = cluster.candidate_racks(job)
        if not candidates:
            return None
        if self.progress is None or not hasattr(self.progress, "projected_port_pressure"):
            return min(candidates, key=lambda rack: rack.aggregate_loi())
        pressures = {
            rack.rack_id: self.progress.projected_port_pressure(rack, job)
            for rack in candidates
        }
        acceptable = [
            rack
            for rack in candidates
            if pressures[rack.rack_id] <= self.max_port_utilization
        ]
        return min(acceptable if acceptable else candidates, key=lambda rack: pressures[rack.rack_id])


@dataclass
class ClusterFabricPlacement:
    """Cluster-scale placement: inter-rack traffic versus pool pressure.

    Extends :class:`FabricCoupledPlacement`'s live port-pressure projection
    with the hierarchical-pool view of the
    :class:`~repro.fabric.cluster.ClusterCoSimulator`: a job whose pool lease
    the rack's *mirrored fabric pool* cannot grant immediately will *spill*
    into the cluster pool and from then on contend on the rack uplink and the
    shared spine, so racks where the job would spill are penalised by
    ``spill_weight`` (in port-utilisation units), and every rack pays a
    continuous ``pool_weight``-scaled pool-pressure term so leases spread
    away from nearly-full pools *before* anything spills.  The score,

    ``score = port-pressure + pool_weight · pool-pressure + spill_weight · would-spill``,

    places jobs to keep traffic rack-local first and ports calm second.
    Racks whose projected port pressure exceeds ``max_port_utilization`` are
    avoided unless no other rack can host the job; with no progress model
    attached the port and spill terms fall back to the static hints.  Like
    :class:`FabricCoupledPlacement`, the port-pressure term divides by port
    health, so degraded racks are penalised and dead-ported racks avoided
    automatically under an active fault schedule.
    """

    progress: Optional[object] = None
    max_port_utilization: float = 0.9
    pool_weight: float = 0.25
    spill_weight: float = 0.5
    name: str = "cluster-fabric"

    def __post_init__(self) -> None:
        if self.pool_weight < 0:
            raise SchedulingError("pool_weight must be >= 0")
        if self.spill_weight < 0:
            raise SchedulingError("spill_weight must be >= 0")

    def _port_pressure(self, rack: Rack, job: Job) -> float:
        if self.progress is not None and hasattr(
            self.progress, "projected_port_pressure"
        ):
            return float(self.progress.projected_port_pressure(rack, job))
        return (rack.aggregate_loi() + job.profile.induced_loi) / 100.0

    def _pool_pressure(self, rack: Rack, job: Job) -> float:
        return (rack.pool_used_gb + job.profile.pool_gb) / max(
            rack.pool_capacity_gb, 1e-9
        )

    def _would_spill(self, rack: Rack, job: Job) -> bool:
        lease_bytes = gb(job.profile.pool_gb)  # scheduler capacities are decimal GB
        if self.progress is not None and hasattr(self.progress, "rack_simulator"):
            pool = self.progress.rack_simulator(rack).pool
            return lease_bytes > pool.free_bytes or pool.queue_depth > 0
        return job.profile.pool_gb > rack.pool_free_gb

    def choose_rack(self, cluster: Cluster, job: Job, rng: np.random.Generator) -> Optional[Rack]:
        candidates = cluster.candidate_racks(job)
        if not candidates:
            return None
        scores = {}
        pressures = {}
        for rack in candidates:
            pressure = self._port_pressure(rack, job)
            pressures[rack.rack_id] = pressure
            scores[rack.rack_id] = (
                pressure
                + self.pool_weight * self._pool_pressure(rack, job)
                + (self.spill_weight if self._would_spill(rack, job) else 0.0)
            )
        acceptable = [
            rack
            for rack in candidates
            if pressures[rack.rack_id] <= self.max_port_utilization
        ]
        return min(
            acceptable if acceptable else candidates,
            key=lambda rack: scores[rack.rack_id],
        )


POLICIES = {
    "random": RandomPlacement,
    "least-loaded": LeastLoadedPlacement,
    "interference-aware": InterferenceAwarePlacement,
    "pool-aware": PoolAwarePlacement,
    "fabric-coupled": FabricCoupledPlacement,
    "cluster-fabric": ClusterFabricPlacement,
}


def make_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError as exc:
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; known: {sorted(POLICIES)}"
        ) from exc
    return cls(**kwargs)
