"""Link traffic recording (the simulator's Intel PCM).

The paper's Level-3 profiling measures injected traffic at the system level
with the UPI counters (``sktXtraffic`` in Intel PCM).  The
:class:`TrafficRecorder` plays that role for the simulator: execution phases
report their remote-tier traffic and duration, and the recorder exposes the
timeline and aggregate statistics a PCM session would produce — including the
saturation behaviour that motivates LBench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..cache.events import CounterSet
from ..cache import events
from .link import RemoteLink


@dataclass(frozen=True)
class TrafficSample:
    """Traffic observed during one recorded interval."""

    start_time: float
    duration: float
    #: Data bytes the application moved over the link during the interval.
    data_bytes: float
    #: Background (interference) data bytes during the interval.
    background_bytes: float
    #: Traffic the PCM counter reports for the interval, bytes (saturating).
    measured_traffic_bytes: float
    #: Link utilisation over the interval (can exceed 1 when oversubscribed).
    utilization: float

    @property
    def offered_bandwidth(self) -> float:
        """Total offered data bandwidth over the interval, bytes/s."""
        if self.duration <= 0:
            return 0.0
        return (self.data_bytes + self.background_bytes) / self.duration

    @property
    def measured_bandwidth(self) -> float:
        """PCM-reported traffic rate over the interval, bytes/s."""
        if self.duration <= 0:
            return 0.0
        return self.measured_traffic_bytes / self.duration


class TrafficRecorder:
    """Records link traffic intervals and produces PCM-style aggregates."""

    def __init__(self, link: RemoteLink) -> None:
        self.link = link
        self._samples: list[TrafficSample] = []
        self._clock = 0.0

    def record(
        self,
        duration: float,
        data_bytes: float,
        background_bytes: float = 0.0,
    ) -> TrafficSample:
        """Record one interval of link activity.

        ``data_bytes`` is the application's remote data traffic and
        ``background_bytes`` the interference traffic sharing the link during
        the interval.  Returns the recorded sample.
        """
        duration = max(float(duration), 0.0)
        data_bytes = max(float(data_bytes), 0.0)
        background_bytes = max(float(background_bytes), 0.0)
        if duration > 0:
            offered_bw = (data_bytes + background_bytes) / duration
            measured_bw = self.link.measured_traffic(offered_bw)
            utilization = self.link.utilization(offered_bw)
        else:
            measured_bw = 0.0
            utilization = 0.0
        sample = TrafficSample(
            start_time=self._clock,
            duration=duration,
            data_bytes=data_bytes,
            background_bytes=background_bytes,
            measured_traffic_bytes=measured_bw * duration,
            utilization=utilization,
        )
        self._samples.append(sample)
        self._clock += duration
        return sample

    # -- aggregates -----------------------------------------------------------

    @property
    def samples(self) -> tuple[TrafficSample, ...]:
        """All recorded intervals in time order."""
        return tuple(self._samples)

    @property
    def elapsed(self) -> float:
        """Total recorded time, seconds."""
        return self._clock

    def total_measured_traffic(self) -> float:
        """Total PCM-reported traffic over the whole recording, bytes."""
        return float(sum(s.measured_traffic_bytes for s in self._samples))

    def total_data_bytes(self) -> float:
        """Total application data moved over the link, bytes."""
        return float(sum(s.data_bytes for s in self._samples))

    def average_utilization(self) -> float:
        """Time-weighted average link utilisation."""
        if self._clock <= 0:
            return 0.0
        weighted = sum(s.utilization * s.duration for s in self._samples)
        return float(weighted / self._clock)

    def peak_measured_bandwidth(self) -> float:
        """Highest PCM-reported traffic rate over any interval, bytes/s."""
        if not self._samples:
            return 0.0
        return max(s.measured_bandwidth for s in self._samples)

    def timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(interval start times, measured bandwidth) arrays."""
        times = np.array([s.start_time for s in self._samples], dtype=np.float64)
        bandwidth = np.array([s.measured_bandwidth for s in self._samples], dtype=np.float64)
        return times, bandwidth

    def counters(self) -> CounterSet:
        """The Level-3 counter view of the recording."""
        counters = CounterSet()
        counters.set(events.UPI_TRAFFIC_BYTES, self.total_measured_traffic())
        counters.set(events.UPI_UTILIZATION, self.average_utilization())
        return counters

    def clear(self) -> None:
        """Drop all recorded samples and reset the clock."""
        self._samples.clear()
        self._clock = 0.0
