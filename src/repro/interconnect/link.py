"""Remote-link (UPI / CXL fabric) model.

The paper's emulation platform uses the UPI socket interconnect as the link
between the compute node and the memory pool.  Three different numbers
describe that link and all three matter for reproducing the paper's results:

* the **per-node sustainable data bandwidth** (34 GB/s on the testbed): the
  most remote-memory data a single application on the compute socket can
  stream, limited by its own request concurrency;
* the **peak raw link traffic** (≈85 GB/s): what a PCM ``sktXtraffic`` counter
  can report at most — requests, responses, write-backs and coherence
  messages all count, which is why this exceeds the data bandwidth;
* the **shared data capacity** (peak traffic divided by the protocol
  overhead): the total useful payload the link can move for *all* parties
  together.  Interference from other nodes eats into this shared capacity and
  adds queueing delay, but as long as enough capacity remains, a single
  application still reaches its own 34 GB/s.

:class:`RemoteLink` turns offered loads into delivered/available bandwidth,
effective latency and the traffic a PCM-style counter would observe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.errors import ConfigurationError
from ..config.testbed import TestbedConfig
from .queueing import QueueingModel, MM1QueueingModel


@dataclass(frozen=True)
class LinkShare:
    """How the link treats one contributor under a given total load.

    Attributes
    ----------
    offered_bandwidth:
        Data bandwidth the contributor tried to push, bytes/s.
    available_bandwidth:
        Data bandwidth the link could give this contributor (shared capacity
        minus background, capped by the per-node sustainable bandwidth).
    delivered_bandwidth:
        Data bandwidth actually moved for it: min(offered, available).
    latency:
        Effective per-access latency seen by the contributor, seconds.
    utilization:
        Total link utilisation from offered traffic (may exceed 1 when
        oversubscribed).
    queueing_delay:
        Extra latency caused by contention, seconds.
    """

    offered_bandwidth: float
    available_bandwidth: float
    delivered_bandwidth: float
    latency: float
    utilization: float
    queueing_delay: float

    @property
    def slowdown(self) -> float:
        """Bandwidth slowdown factor (offered / delivered, >= 1)."""
        if self.delivered_bandwidth <= 0:
            return float("inf") if self.offered_bandwidth > 0 else 1.0
        return max(self.offered_bandwidth / self.delivered_bandwidth, 1.0)


class RemoteLink:
    """Shared link between compute node(s) and the memory pool.

    Parameters
    ----------
    testbed:
        Platform description providing the per-node data bandwidth, idle
        latency, peak raw traffic and protocol overhead of the link.
    queueing:
        Queueing model used for the contention-induced latency.  Defaults to
        an M/M/1-style model, which reproduces the paper's observation that
        contention keeps growing after the measured traffic saturates.
    """

    #: Minimum fraction of the shared capacity always left to a contributor,
    #: so extreme oversubscription degrades but never deadlocks the model.
    MIN_SHARE = 0.1

    def __init__(self, testbed: TestbedConfig, queueing: QueueingModel | None = None) -> None:
        self.testbed = testbed
        #: Per-node sustainable remote data bandwidth, bytes/s.
        self.node_bandwidth = testbed.remote_bandwidth
        self.idle_latency = testbed.remote_latency
        self.peak_traffic = testbed.link_peak_traffic
        self.protocol_overhead = testbed.link_protocol_overhead
        self.queueing = queueing if queueing is not None else MM1QueueingModel()
        if self.peak_traffic < self.node_bandwidth:
            raise ConfigurationError(
                "link peak traffic cannot be below the per-node data bandwidth"
            )

    # -- capacities -----------------------------------------------------------------

    @property
    def data_capacity(self) -> float:
        """Total useful payload the link can move for all contributors, bytes/s."""
        return self.peak_traffic / self.protocol_overhead

    # -- traffic accounting -----------------------------------------------------------

    def raw_traffic(self, data_bandwidth: float) -> float:
        """Raw link traffic (bytes/s) caused by a data bandwidth, incl. protocol overhead."""
        return max(data_bandwidth, 0.0) * self.protocol_overhead

    def measured_traffic(self, offered_data_bandwidth: float) -> float:
        """Traffic a PCM-style counter reports for an offered data bandwidth.

        The counter can never report more than the link can physically carry,
        so the measurement **saturates at the peak link traffic** even when
        the offered load (and therefore contention) keeps growing — this is
        exactly why the paper argues LBench is more precise than raw counters
        beyond the saturation point (Section 3.2, Figure 11 middle).
        """
        return min(self.raw_traffic(offered_data_bandwidth), self.peak_traffic)

    def utilization(self, total_offered_data_bandwidth: float) -> float:
        """Link utilisation from offered traffic (may exceed 1 when oversubscribed)."""
        return self.raw_traffic(total_offered_data_bandwidth) / self.peak_traffic

    def loi(self, offered_data_bandwidth: float) -> float:
        """Level of Interference: generated link traffic as a % of peak traffic.

        Generated traffic is what actually crosses the link, so it is capped
        at the shared data capacity.
        """
        generated = min(max(offered_data_bandwidth, 0.0), self.data_capacity)
        return 100.0 * self.raw_traffic(generated) / self.peak_traffic

    def bandwidth_for_loi(self, loi_percent: float) -> float:
        """Data bandwidth that produces a given Level of Interference."""
        if loi_percent < 0:
            raise ConfigurationError("LoI must be non-negative")
        return (loi_percent / 100.0) * self.peak_traffic / self.protocol_overhead

    # -- contention ----------------------------------------------------------------

    def share(
        self, own_data_bandwidth: float, background_data_bandwidth: float = 0.0
    ) -> LinkShare:
        """Resolve contention between one contributor and background traffic.

        The background occupies part of the shared data capacity; what remains
        (never less than :attr:`MIN_SHARE` of the capacity, and never more
        than the per-node sustainable bandwidth) is *available* to the
        contributor.  The effective latency is the idle latency plus a
        queueing delay that grows with the total offered utilisation — and
        keeps growing past saturation, modelling the queueing the paper
        attributes the extra contention to.
        """
        own = max(float(own_data_bandwidth), 0.0)
        background = max(float(background_data_bandwidth), 0.0)
        capacity = self.data_capacity

        background_delivered = min(background, capacity)
        available = max(capacity - background_delivered, self.MIN_SHARE * capacity)
        available = min(available, self.node_bandwidth)
        delivered = min(own, available)

        offered_utilization = self.utilization(own + background)
        queueing_delay = self.queueing.waiting_time(
            utilization=offered_utilization, service_time=self.idle_latency
        )
        return LinkShare(
            offered_bandwidth=own,
            available_bandwidth=available,
            delivered_bandwidth=delivered,
            latency=self.idle_latency + queueing_delay,
            utilization=offered_utilization,
            queueing_delay=queueing_delay,
        )

    def effective_remote_bandwidth(
        self, own_data_bandwidth: float, background_data_bandwidth: float = 0.0
    ) -> float:
        """Bandwidth available for remote streaming under contention (bytes/s)."""
        return self.share(own_data_bandwidth, background_data_bandwidth).available_bandwidth

    def latency_under_load(self, total_offered_data_bandwidth: float) -> float:
        """Effective remote access latency when the link carries a total load."""
        utilization = self.utilization(total_offered_data_bandwidth)
        return self.idle_latency + self.queueing.waiting_time(
            utilization=utilization, service_time=self.idle_latency
        )
