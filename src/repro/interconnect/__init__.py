"""Remote link model, queueing-based contention and traffic recording."""

from .link import LinkShare, RemoteLink
from .queueing import (
    LinearQueueingModel,
    MD1QueueingModel,
    MM1QueueingModel,
    QUEUEING_MODELS,
    QueueingModel,
    make_queueing_model,
)
from .traffic import TrafficRecorder, TrafficSample

__all__ = [
    "LinkShare",
    "RemoteLink",
    "LinearQueueingModel",
    "MD1QueueingModel",
    "MM1QueueingModel",
    "QUEUEING_MODELS",
    "QueueingModel",
    "make_queueing_model",
    "TrafficRecorder",
    "TrafficSample",
]
