"""Queueing models for link contention.

The paper explains the gap between saturated counter measurements and the
continuing growth of contention by queueing effects (Section 3.2).  We provide
two standard single-server queueing approximations, both expressed as a
*waiting time* added on top of the idle service (access) time as a function of
link utilisation:

* :class:`MM1QueueingModel` — M/M/1: waiting time ∝ ρ / (1 − ρ),
* :class:`MD1QueueingModel` — M/D/1: half the M/M/1 waiting time
  (deterministic service).

Utilisation can exceed 1 when the link is oversubscribed; both models switch
to a linear overload regime there (the queue grows with the excess offered
load during the measurement window), keeping the contention metric finite and
monotonically increasing — which is what lets LBench distinguish "saturated"
from "contended" links.  The waiting time is additionally capped at a small
multiple of the service time (``max_wait_factor``): on a real coherent
interconnect hardware flow control bounds how long an individual access can
queue, and the cap keeps the latency inflation in the few-hundred-nanosecond
range the paper's emulation platform exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class QueueingModel(Protocol):
    """Protocol for contention models mapping utilisation to waiting time."""

    def waiting_time(self, utilization: float, service_time: float) -> float:
        """Average extra waiting time per access (seconds)."""
        ...


@dataclass(frozen=True)
class MM1QueueingModel:
    """M/M/1 waiting time: W = ρ/(1−ρ) · S, linearised and capped near saturation.

    Attributes
    ----------
    rho_cap:
        Utilisation beyond which the closed form is replaced by the linear
        overload regime (avoids the 1/(1−ρ) singularity).
    overload_slope:
        Additional waiting (in service times) per unit of utilisation beyond
        ``rho_cap``.
    max_wait_factor:
        Upper bound on the waiting time, in multiples of the service time.
    """

    rho_cap: float = 0.85
    overload_slope: float = 1.0
    max_wait_factor: float = 2.0

    def waiting_time(self, utilization: float, service_time: float) -> float:
        rho = max(float(utilization), 0.0)
        service_time = max(float(service_time), 0.0)
        if rho <= 0.0 or service_time == 0.0:
            return 0.0
        if rho < self.rho_cap:
            wait = rho / (1.0 - rho) * service_time
        else:
            base = self.rho_cap / (1.0 - self.rho_cap) * service_time
            wait = base + (rho - self.rho_cap) * self.overload_slope * service_time
        return min(wait, self.max_wait_factor * service_time)


@dataclass(frozen=True)
class MD1QueueingModel:
    """M/D/1 waiting time: W = ρ/(2(1−ρ)) · S, with the same overload handling."""

    rho_cap: float = 0.85
    overload_slope: float = 0.5
    max_wait_factor: float = 2.0

    def waiting_time(self, utilization: float, service_time: float) -> float:
        rho = max(float(utilization), 0.0)
        service_time = max(float(service_time), 0.0)
        if rho <= 0.0 or service_time == 0.0:
            return 0.0
        if rho < self.rho_cap:
            wait = rho / (2.0 * (1.0 - rho)) * service_time
        else:
            base = self.rho_cap / (2.0 * (1.0 - self.rho_cap)) * service_time
            wait = base + (rho - self.rho_cap) * self.overload_slope * service_time
        return min(wait, self.max_wait_factor * service_time)


@dataclass(frozen=True)
class LinearQueueingModel:
    """A simple linear contention model, useful as an ablation baseline.

    Waiting time grows linearly with utilisation: W = slope · ρ · S.  It lacks
    the super-linear blow-up near saturation, so the ablation benchmark shows
    why a queueing-theoretic model is needed to reproduce the paper's
    interference curves.
    """

    slope: float = 0.5
    max_wait_factor: float = 2.0

    def waiting_time(self, utilization: float, service_time: float) -> float:
        rho = max(float(utilization), 0.0)
        wait = self.slope * rho * max(float(service_time), 0.0)
        return min(wait, self.max_wait_factor * max(float(service_time), 0.0))


QUEUEING_MODELS = {
    "mm1": MM1QueueingModel,
    "md1": MD1QueueingModel,
    "linear": LinearQueueingModel,
}


def make_queueing_model(name: str, **kwargs) -> QueueingModel:
    """Instantiate a queueing model by name (``mm1``, ``md1`` or ``linear``)."""
    try:
        cls = QUEUEING_MODELS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown queueing model {name!r}; known: {sorted(QUEUEING_MODELS)}"
        ) from exc
    return cls(**kwargs)
