"""Process-sharded sweep engine (``repro.parallel``).

Parameter sweeps — the co-simulation benchmark grids, the scheduling case
studies, ``tools/bench_perf.py`` — are embarrassingly parallel at the run
level but were executed serially in one process.  :class:`SweepRunner`
shards them over a :class:`concurrent.futures.ProcessPoolExecutor` while
preserving three contracts:

**Determinism / seeding.**  Every sweep point gets a seed derived from the
runner's ``base_seed`` and the point's own parameters (not its position or
its worker), so results are a pure function of ``(base_seed, params)``:
re-ordering the sweep, changing ``jobs``, or re-running yields bit-identical
results.  A caller-supplied seed is never overridden — derivation only fills
``seed_param`` when it is absent or ``None``.

**Fingerprint memoization.**  Each task is keyed by a SHA-256 fingerprint of
``task-name + resolved parameters`` (topology, workload and policy config all
land in the parameters).  The runner memoizes results by fingerprint across
:meth:`SweepRunner.map` calls and deduplicates repeats *within* a batch, so
a grid that revisits a configuration solves it once.  This prefigures the
ROADMAP's memoized what-if service: the fingerprint is the cache key a
persistent service would use.

**Telemetry merge.**  Every task body — inline or in a worker — runs inside
:func:`repro.telemetry.isolated`, so it records into a private registry whose
snapshot ships back with the result.  The parent folds the snapshots into its
own registry with :meth:`~repro.telemetry.MetricsRegistry.merge` in
*submission order*, making merged counters independent of worker scheduling.
Memoized hits do **not** re-merge telemetry: counters reflect work actually
performed.  Spans are not shipped (wall-clock durations are inherently
nondeterministic across processes).

Task functions must be picklable — module-level functions, or bound methods
of picklable instances.  ``jobs=1`` bypasses the executor but runs the exact
same :func:`_execute` wrapper inline, which is what makes sharded-vs-serial
bit-identity testable rather than aspirational.

The full sharding model is documented in ``docs/parallelism.md``.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from .. import telemetry

__all__ = [
    "SweepRunner",
    "derive_seed",
    "fingerprint",
    "task_name",
]


def task_name(fn: Callable) -> str:
    """Stable ``module:qualname`` identifier of a task function."""
    return f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to deterministic plain data for fingerprinting.

    Dataclasses and plain objects are flattened to ``class name + fields`` so
    that two equal configurations fingerprint identically regardless of
    object identity; mappings are key-sorted.  The fallback is ``repr``,
    which is only reached for exotic values a sweep should not key on.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_canonical(item) for item in items]
    if is_dataclass(value) and not isinstance(value, type):
        record = {f.name: _canonical(getattr(value, f.name)) for f in fields(value)}
        record["__class__"] = type(value).__qualname__
        return record
    if hasattr(value, "__dict__"):
        record = {k: _canonical(v) for k, v in sorted(vars(value).items())}
        record["__class__"] = type(value).__qualname__
        return record
    return repr(value)


def fingerprint(fn: Callable, params: Mapping[str, Any]) -> str:
    """SHA-256 fingerprint of one sweep point: task identity + parameters.

    The memoization key: topology, workload and policy configuration all
    arrive through ``params``, so two points with the same fingerprint are
    the same simulation and may share one result.
    """
    payload = {"task": task_name(fn), "params": _canonical(dict(params))}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, fn: Callable, params: Mapping[str, Any]) -> int:
    """Deterministic per-point seed from the base seed and the point itself.

    Position-independent by construction: the seed depends on *what* runs,
    not where in the sweep (or on which worker) it runs, so shuffling the
    parameter grid cannot change any individual result.
    """
    payload = {
        "base_seed": int(base_seed),
        "task": task_name(fn),
        "params": _canonical(dict(params)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class _TaskPayload:
    """One picklable unit of sweep work shipped to (or run like) a worker."""

    fn: Callable
    kwargs: dict
    record: bool
    index: int


def _execute(payload: _TaskPayload) -> tuple[int, Any, dict]:
    """Run one sweep task inside an isolated telemetry scope.

    The single execution path for both the inline ``jobs=1`` mode and the
    process-pool workers — identical wrapping is the bit-identity contract.
    Returns ``(index, result, telemetry snapshot)``.
    """
    with telemetry.isolated(payload.record) as registry:
        result = payload.fn(**payload.kwargs)
        snapshot = registry.snapshot()
    return payload.index, result, snapshot


class SweepRunner:
    """Shard a parameter sweep over worker processes, or run it inline.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) executes inline through the
        same wrapper the workers use; results are bit-identical either way.
    base_seed:
        Root of the deterministic per-point seed derivation.
    memoize:
        Reuse results for repeated fingerprints (within and across
        :meth:`map` calls on this runner).
    record_telemetry:
        Recording flag forced inside each task's isolated scope.  ``None``
        (default) propagates the parent's current
        :func:`repro.telemetry.enabled` state at :meth:`map` time — workers
        are fresh processes and would otherwise default to off.
    """

    def __init__(
        self,
        jobs: int = 1,
        base_seed: int = 0,
        memoize: bool = True,
        record_telemetry: Optional[bool] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.base_seed = int(base_seed)
        self.memoize = memoize
        self.record_telemetry = record_telemetry
        self._memo: dict[str, Any] = {}

    # -- parameter resolution ---------------------------------------------------------

    def resolve(
        self,
        fn: Callable,
        params: Mapping[str, Any],
        seed_param: Optional[str] = "seed",
    ) -> dict:
        """One point's final kwargs: caller params plus the derived seed.

        The seed is injected only when ``seed_param`` names a parameter the
        caller left absent or ``None``; pass ``seed_param=None`` for task
        functions that take no seed.
        """
        kwargs = dict(params)
        if seed_param is not None and kwargs.get(seed_param) is None:
            kwargs[seed_param] = derive_seed(self.base_seed, fn, params)
        return kwargs

    # -- execution --------------------------------------------------------------------

    def map(
        self,
        fn: Callable,
        param_sets: Sequence[Mapping[str, Any]],
        seed_param: Optional[str] = "seed",
    ) -> list:
        """Run ``fn(**params)`` for every parameter set; results in input order.

        Fresh fingerprints execute (sharded when ``jobs > 1``); memoized
        fingerprints return their cached result without re-running or
        re-merging telemetry.  Worker telemetry snapshots merge into the
        parent registry in submission order.
        """
        record = (
            telemetry.enabled()
            if self.record_telemetry is None
            else self.record_telemetry
        )
        resolved = [self.resolve(fn, params, seed_param) for params in param_sets]
        prints = [fingerprint(fn, kwargs) for kwargs in resolved]

        # Schedule only the first occurrence of each fresh fingerprint.
        payloads: list[_TaskPayload] = []
        scheduled: set[str] = set()
        for index, (kwargs, print_) in enumerate(zip(resolved, prints)):
            if self.memoize and (print_ in self._memo or print_ in scheduled):
                continue
            scheduled.add(print_)
            payloads.append(_TaskPayload(fn=fn, kwargs=kwargs, record=record, index=index))

        metrics = telemetry.metrics()
        metrics.counter("parallel.sweep.points").inc(len(resolved))
        metrics.counter("parallel.sweep.executed").inc(len(payloads))
        metrics.counter("parallel.sweep.memo_hits").inc(len(resolved) - len(payloads))

        executed: dict[int, Any] = {}
        with telemetry.trace_span(
            "parallel.sweep", jobs=self.jobs, points=len(resolved), tasks=len(payloads)
        ):
            if self.jobs == 1 or len(payloads) <= 1:
                outcomes = [_execute(payload) for payload in payloads]
            else:
                workers = min(self.jobs, len(payloads))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [pool.submit(_execute, payload) for payload in payloads]
                    # Collect in submission order: merge order (and therefore
                    # gauge last-write outcomes) must not depend on which
                    # worker finishes first.
                    outcomes = [future.result() for future in futures]
        parent = telemetry.registry()
        for index, result, snapshot in outcomes:
            executed[index] = result
            if record:
                parent.merge(snapshot)
            if self.memoize:
                self._memo[prints[index]] = result

        return [
            executed[index] if index in executed else self._memo[print_]
            for index, print_ in enumerate(prints)
        ]
