"""Deterministic fault injection for the rack/cluster co-simulation.

The paper models the disaggregated pool as a steady-state system; this module
is the chaos layer that stresses it (ROADMAP item 5): pool ports die or
degrade mid-run, leases are revoked or shrunk while their tenants execute,
and whole slabs of pool capacity disappear.  Faults are *data*, not
callbacks — a :class:`FaultSchedule` is a sorted tuple of
:class:`FaultEvent` values at simulated times, injected once into a
:class:`~repro.fabric.cosim.RackCoSimulator` (or fanned out per rack by
:class:`~repro.fabric.cluster.ClusterCoSimulator`) before stepping begins.

**Determinism contract.**  A schedule is fully materialised at construction
time: :meth:`FaultSchedule.seeded` draws every event from one
``numpy.random.default_rng(seed)`` up front, so the same seed always yields
the same events, and simulations driven by equal schedules are bit-identical
regardless of step sizes (the simulator sub-steps exactly at fault times).
An **empty** schedule leaves the simulator on its fault-free fast path — one
boolean attribute check per step chunk — and its outputs bit-identical to a
simulator that never heard of faults.

**Recovery contract** (what survives, what re-queues):

* Port kills/degrades persist until a matching ``port-restore`` event (the
  ``duration`` shorthand expands into one); tenants behind a killed port
  stall — they hold their lease and their epoch state but make no progress.
* A revoked lease is re-requested automatically at the next epoch rollover;
  the re-request joins the **back** of the pool's FIFO queue (no priority for
  victims), and the tenant stalls until re-granted.  Page give-back and
  re-fill are modelled as a migration debt (``reclaimed bytes / drain rate``
  seconds) paid as stall time before the tenant progresses again.
* Shrunk leases keep running with the smaller grant; only the migration debt
  of the reclaimed bytes is charged.
* :meth:`~repro.fabric.cosim.RackCoSimulator.checkpoint` /
  :meth:`~repro.fabric.cosim.RackCoSimulator.rollover` remain bit-identical
  while faults are merely *pending*; rolling back across an *applied* fault
  raises, because fault application mutates pool/lease state the checkpoint
  does not capture (same contract as admit/withdraw).

See ``docs/failure_model.md`` for the full taxonomy, units and a worked
blast-radius example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..config.errors import FabricError
from ..config.units import GiB

#: Fault event kinds (the taxonomy; parameters per kind are validated by
#: :class:`FaultEvent`).
FAULT_PORT_KILL = "port-kill"
FAULT_PORT_DEGRADE = "port-degrade"
FAULT_PORT_RESTORE = "port-restore"
FAULT_LEASE_REVOKE = "lease-revoke"
FAULT_LEASE_SHRINK = "lease-shrink"
FAULT_POOL_CAPACITY_LOSS = "pool-capacity-loss"

FAULT_KINDS = (
    FAULT_PORT_KILL,
    FAULT_PORT_DEGRADE,
    FAULT_PORT_RESTORE,
    FAULT_LEASE_REVOKE,
    FAULT_LEASE_SHRINK,
    FAULT_POOL_CAPACITY_LOSS,
)

_PORT_KINDS = (FAULT_PORT_KILL, FAULT_PORT_DEGRADE, FAULT_PORT_RESTORE)
_LEASE_KINDS = (FAULT_LEASE_REVOKE, FAULT_LEASE_SHRINK)

#: Default page-give-back drain rate: reclaimed lease bytes migrate back at
#: 4 GB/s, charged against the victim tenant's progress as stall time.
DEFAULT_DRAIN_BYTES_PER_S = 4e9


@dataclass(frozen=True)
class FaultEvent:
    """One fault at a simulated time.

    Attributes
    ----------
    time:
        Simulated seconds at which the fault fires (>= 0).
    kind:
        One of :data:`FAULT_KINDS`.
    rack:
        Rack index the fault targets (ignored by single-rack simulators fed
        via ``events_for_rack``; the default 0 matches them).
    port:
        Pool-port index, required by the ``port-*`` kinds.
    tenant:
        Tenant name, required by the ``lease-*`` kinds.  Events naming a
        tenant the simulator does not know (never admitted, already
        withdrawn) apply as no-ops — chaos schedules may outlive tenants.
    scale:
        Residual capacity fraction in ``(0, 1)`` for ``port-degrade``.
    nbytes:
        Bytes to reclaim (``lease-shrink``) or remove (``pool-capacity-loss``).
    duration:
        Optional shorthand on ``port-kill`` / ``port-degrade``: the schedule
        expands it into a paired ``port-restore`` at ``time + duration``.
    """

    time: float
    kind: str
    rack: int = 0
    port: Optional[int] = None
    tenant: Optional[str] = None
    scale: Optional[float] = None
    nbytes: Optional[int] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FabricError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.time < 0:
            raise FabricError("fault time must be >= 0")
        if self.rack < 0:
            raise FabricError("fault rack must be >= 0")
        if self.kind in _PORT_KINDS:
            if self.port is None or self.port < 0:
                raise FabricError(f"{self.kind} requires a port index >= 0")
        if self.kind in _LEASE_KINDS and not self.tenant:
            raise FabricError(f"{self.kind} requires a tenant name")
        if self.kind == FAULT_PORT_DEGRADE:
            if self.scale is None or not 0.0 < self.scale < 1.0:
                raise FabricError("port-degrade requires scale in (0, 1)")
        if self.kind in (FAULT_LEASE_SHRINK, FAULT_POOL_CAPACITY_LOSS):
            if self.nbytes is None or self.nbytes <= 0:
                raise FabricError(f"{self.kind} requires nbytes > 0")
        if self.duration is not None:
            if self.kind not in (FAULT_PORT_KILL, FAULT_PORT_DEGRADE):
                raise FabricError("duration is only valid on port-kill/port-degrade")
            if self.duration <= 0:
                raise FabricError("fault duration must be > 0")


class FaultSchedule:
    """An immutable, time-sorted fault schedule.

    Construction normalises the events: ``duration`` shorthands expand into
    explicit ``port-restore`` events, and the result is sorted by time
    (stable, so same-time events keep their given order).  Once built the
    schedule is pure data — injecting it into a simulator never mutates it,
    so one schedule can drive many simulators (e.g. every rack of a cluster,
    filtered through :meth:`events_for_rack`).
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        expanded: list[FaultEvent] = []
        for event in events:
            if not isinstance(event, FaultEvent):
                raise FabricError(f"not a FaultEvent: {event!r}")
            if event.duration is not None:
                expanded.append(replace(event, duration=None))
                expanded.append(
                    FaultEvent(
                        time=event.time + event.duration,
                        kind=FAULT_PORT_RESTORE,
                        rack=event.rack,
                        port=event.port,
                    )
                )
            else:
                expanded.append(event)
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(expanded, key=lambda e: e.time)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({len(self.events)} events)"

    def events_for_rack(self, rack: int) -> tuple[FaultEvent, ...]:
        """The (already sorted) events targeting ``rack``."""
        return tuple(e for e in self.events if e.rack == rack)

    @property
    def max_time(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon: float,
        n_events: int = 4,
        kinds: Sequence[str] = (FAULT_PORT_KILL, FAULT_PORT_DEGRADE),
        n_racks: int = 1,
        n_ports: int = 1,
        tenants: Sequence[str] = (),
        nbytes: Optional[int] = None,
        mean_duration: Optional[float] = None,
    ) -> "FaultSchedule":
        """A stochastic schedule, fully materialised from one seed.

        Draws ``n_events`` events uniformly over ``[0, horizon)`` from
        ``numpy.random.default_rng(seed)`` — every draw happens here, so the
        schedule (and any simulation it drives) is a pure function of the
        arguments.  ``kinds`` restricts the taxonomy; lease kinds need a
        non-empty ``tenants`` list to pick victims from, and
        ``lease-shrink`` / ``pool-capacity-loss`` need ``nbytes``.  With
        ``mean_duration`` set, port kills/degrades heal after a random
        duration in ``[0.5, 1.5) × mean_duration``.
        """
        if horizon <= 0:
            raise FabricError("seeded schedule horizon must be > 0")
        if n_events < 0:
            raise FabricError("n_events must be >= 0")
        for kind in kinds:
            if kind in _LEASE_KINDS and not tenants:
                raise FabricError(f"seeded {kind} events require a tenants list")
            if kind in (FAULT_LEASE_SHRINK, FAULT_POOL_CAPACITY_LOSS) and not nbytes:
                raise FabricError(f"seeded {kind} events require nbytes")
        rng = np.random.default_rng(seed)
        events = []
        for time in np.sort(rng.uniform(0.0, horizon, size=n_events)):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            duration = None
            if mean_duration is not None and kind in (
                FAULT_PORT_KILL,
                FAULT_PORT_DEGRADE,
            ):
                duration = float(rng.uniform(0.5, 1.5)) * mean_duration
            events.append(
                FaultEvent(
                    time=float(time),
                    kind=kind,
                    rack=int(rng.integers(0, n_racks)),
                    port=(
                        int(rng.integers(0, n_ports)) if kind in _PORT_KINDS else None
                    ),
                    tenant=(
                        str(tenants[int(rng.integers(0, len(tenants)))])
                        if kind in _LEASE_KINDS
                        else None
                    ),
                    scale=(
                        float(rng.uniform(0.1, 0.9))
                        if kind == FAULT_PORT_DEGRADE
                        else None
                    ),
                    nbytes=(
                        int(nbytes)
                        if kind in (FAULT_LEASE_SHRINK, FAULT_POOL_CAPACITY_LOSS)
                        else None
                    ),
                    duration=duration,
                )
            )
        return cls(events)


def parse_fault_spec(spec: str) -> FaultEvent:
    """Parse a CLI fault spec ``KIND@TIME[:key=value,key=value...]``.

    Keys: ``rack``, ``port`` (int), ``scale``, ``duration`` (float), ``gb``
    (GiB, converted to ``nbytes`` — same unit as ``--pool-gb``), ``tenant``
    (string).  Examples::

        port-kill@5:port=0,duration=10
        port-degrade@3:port=1,scale=0.5
        lease-revoke@8:tenant=XSBench-1
        pool-capacity-loss@4:gb=2
    """
    head, sep, tail = spec.partition(":")
    kind, at, time_text = head.partition("@")
    if not at:
        raise FabricError(
            f"bad fault spec {spec!r}: expected KIND@TIME[:key=value,...]"
        )
    try:
        kwargs: dict = {"time": float(time_text), "kind": kind.strip()}
    except ValueError:
        raise FabricError(f"bad fault spec {spec!r}: time {time_text!r} is not a number")
    if not math.isfinite(kwargs["time"]):
        # nan slips past the `time < 0` check (all comparisons are False);
        # reject it here so schedules stay sortable.
        raise FabricError(f"bad fault spec {spec!r}: time {time_text!r} is not finite")
    if sep:
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not value:
                raise FabricError(f"bad fault spec {spec!r}: malformed {item!r}")
            try:
                if key in ("rack", "port"):
                    kwargs[key] = int(value)
                elif key in ("scale", "duration"):
                    kwargs[key] = float(value)
                    if not math.isfinite(kwargs[key]):
                        raise FabricError(
                            f"bad fault spec {spec!r}: {key} {value!r} is not finite"
                        )
                elif key == "gb":
                    kwargs["nbytes"] = int(float(value) * GiB)
                elif key == "tenant":
                    kwargs["tenant"] = value.strip()
                else:
                    raise FabricError(
                        f"bad fault spec {spec!r}: unknown key {key!r}"
                    )
            except ValueError:
                raise FabricError(f"bad fault spec {spec!r}: bad value {item!r}")
    return FaultEvent(**kwargs)


@dataclass(frozen=True)
class TenantImpact:
    """One tenant's share of a fault's blast radius.

    ``stall_seconds`` counts wall time the tenant was fault-stalled (killed
    port, awaiting re-admission, or paying migration debt);
    ``throughput_lost`` expresses the same stalls in baseline seconds at the
    idle progress rate of 1 baseline-s/s — an upper bound on the work the
    stalls cost, since a contended tenant progresses slower than idle.
    ``readmission_latency`` is ``None`` until a revoked tenant's re-request
    is granted again.
    """

    name: str
    stall_seconds: float
    revocations: int
    readmission_latency: Optional[float]
    migrated_bytes: int
    throughput_lost: float

    @property
    def stalled(self) -> bool:
        return self.stall_seconds > 0.0


@dataclass(frozen=True)
class BlastRadiusReport:
    """Aggregate damage assessment of a faulted co-simulation.

    Built by :meth:`~repro.fabric.cosim.RackCoSimulator.blast_radius` (or the
    cluster aggregate) after stepping; the per-tenant impacts are sorted by
    tenant name so equal simulations produce equal reports.
    """

    faults_injected: int
    revocations: int
    tenants: tuple[TenantImpact, ...]

    @property
    def stalled_tenants(self) -> tuple[str, ...]:
        """Names of the tenants that lost any time to faults."""
        return tuple(i.name for i in self.tenants if i.stalled)

    @property
    def total_stall_seconds(self) -> float:
        return sum(i.stall_seconds for i in self.tenants)

    @property
    def total_migrated_bytes(self) -> int:
        return sum(i.migrated_bytes for i in self.tenants)

    def summary(self) -> dict:
        """JSON-friendly view (the CLI and figure builders print this)."""
        return {
            "faults_injected": self.faults_injected,
            "revocations": self.revocations,
            "stalled_tenants": list(self.stalled_tenants),
            "total_stall_seconds": self.total_stall_seconds,
            "total_migrated_gb": self.total_migrated_bytes / 1e9,
            "tenants": [
                {
                    "name": i.name,
                    "stall_seconds": i.stall_seconds,
                    "revocations": i.revocations,
                    "readmission_latency_s": i.readmission_latency,
                    "migrated_gb": i.migrated_bytes / 1e9,
                    "throughput_lost_baseline_s": i.throughput_lost,
                }
                for i in self.tenants
            ],
        }
