"""Rack co-simulation: tenants sharing a memory pool over a contended fabric.

:class:`RackCoSimulator` closes the loop between the per-node execution engine
and the rack: instead of injecting a configured Level of Interference, each
tenant's effective pool bandwidth is **re-derived every epoch from what its
co-runners are actually demanding** on the shared pool port.  Interference is
emergent:

1. every tenant first leases its remote capacity from the rack's
   :class:`~repro.fabric.pool.MemoryPool` (granted / queued / rejected),
2. each epoch, the offered bandwidth of every running tenant's current phase
   is resolved through the :class:`~repro.fabric.topology.FabricTopology`,
   giving each tenant the background its co-runners generate,
3. the per-node performance model converts that background into the epoch's
   progress rate, so a tenant in a bandwidth-hungry phase slows everyone on
   its port down — and finishes later itself, prolonging the interference it
   causes (the feedback the static-LoI model cannot express),
4. completed tenants return their leases, admitting queued tenants.

Baseline phase runtimes and traffic come from one interference-free
:class:`~repro.sim.engine.ExecutionEngine` run per tenant, so the co-simulation
inherits the full cache/prefetch/placement behaviour of the single-node model.

Coupling contract (used by :mod:`repro.scheduler.progress`)
-----------------------------------------------------------

Besides the closed-loop :meth:`RackCoSimulator.run`, the co-simulator can be
driven **incrementally** by an external scheduler, one rack per simulator:

* **Units.**  Progress is measured in *baseline seconds*: one baseline second
  is the work the tenant completes per wall-clock second on an idle fabric.
  Bandwidths are bytes/s of *data* payload (protocol overhead is the
  :class:`~repro.interconnect.link.RemoteLink`'s job); times are simulated
  wall-clock seconds.
* **Epoch semantics.**  Backgrounds (what each tenant's co-runners deliver
  through its pool port) are re-resolved only at *epoch rollovers*: every
  ``epoch_seconds`` of stepped time, and immediately on tenant admission or
  withdrawal.  Between rollovers backgrounds are frozen, so per-phase progress
  rates are piecewise constant and an external event loop can do exact linear
  completion-time bookkeeping as long as it never steps past
  :meth:`RackCoSimulator.horizon` in one go.
* **Tenant ↔ job mapping.**  The scheduler maps each running job onto one
  :class:`TenantSpec` (one tenant per occupied node); it calls
  :meth:`RackCoSimulator.admit` when the job starts and
  :meth:`RackCoSimulator.withdraw` when it retires the job.  Unlike
  :meth:`run`, incremental stepping never releases pool leases on its own —
  lease lifetime is exactly job lifetime, owned by the scheduler.
* **Checkpoint / rollover.**  :meth:`RackCoSimulator.checkpoint` snapshots the
  epoch state (clock, intra-epoch elapsed time, frozen backgrounds, per-tenant
  phase progress); :meth:`RackCoSimulator.rollover` rolls the co-simulation
  back to such a snapshot so speculative steps — e.g. stepping to an estimated
  completion that an earlier arrival then invalidates — can be re-taken.
  Checkpoints stay valid only while the tenant mix is unchanged.
* **Faults.**  An injected :class:`~repro.fabric.faults.FaultSchedule`
  (see :meth:`RackCoSimulator.inject_faults`) fires at exact simulated times:
  :meth:`step` sub-chunks at fault times, each applied fault forces an epoch
  rollover (dirtying the solver key), and the damage is summarised by
  :meth:`RackCoSimulator.blast_radius`.  With no faults injected and a
  non-elastic pool, the fault layer is one boolean check per step chunk and
  every output is bit-identical to a fault-free build; rollback across an
  *applied* fault raises (pool/lease state is not checkpointed), while
  rollback with faults merely pending is bit-identical as before.  See
  ``docs/failure_model.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..config.errors import FabricError
from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig
from ..sim.engine import ExecutionEngine
from ..sim.perfmodel import PerformanceModel, PhaseInputs
from ..sim.platform import Platform
from ..telemetry import TimeSeries, metrics, trace_span
from ..workloads.base import WorkloadSpec
from .faults import (
    DEFAULT_DRAIN_BYTES_PER_S,
    FAULT_LEASE_REVOKE,
    FAULT_LEASE_SHRINK,
    FAULT_POOL_CAPACITY_LOSS,
    FAULT_PORT_DEGRADE,
    FAULT_PORT_KILL,
    FAULT_PORT_RESTORE,
    BlastRadiusReport,
    FaultEvent,
    FaultSchedule,
    TenantImpact,
)
from .interference import DynamicInterference
from .pool import (
    LEASE_GRANTED,
    LEASE_QUEUED,
    LEASE_REJECTED,
    LEASE_REVOKED,
    MemoryPool,
    PoolSample,
)
from .topology import FabricTopology


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the rack: a workload bound to a node and a pool share.

    Attributes
    ----------
    name:
        Unique tenant name (job identifier).
    workload:
        The workload specification the tenant executes.
    local_fraction:
        Fraction of the workload's footprint served by node-local memory; the
        remainder is leased from the shared pool (the paper's 75/50/25 splits).
    arrival:
        Simulated submit time, seconds.
    pool_bytes:
        Explicit pool lease size; None derives it from the footprint and
        ``local_fraction``.
    """

    name: str
    workload: WorkloadSpec
    local_fraction: float = 0.5
    arrival: float = 0.0
    pool_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.local_fraction <= 1.0:
            raise FabricError(f"tenant {self.name!r}: local_fraction must be in (0, 1]")
        if self.arrival < 0:
            raise FabricError(f"tenant {self.name!r}: arrival must be >= 0")
        if self.pool_bytes is not None and self.pool_bytes < 0:
            raise FabricError(f"tenant {self.name!r}: pool_bytes must be >= 0")

    @property
    def lease_bytes(self) -> int:
        """Pool capacity the tenant leases while it runs, bytes."""
        if self.pool_bytes is not None:
            return int(self.pool_bytes)
        return int(round(self.workload.footprint_bytes * (1.0 - self.local_fraction)))


def uniform_tenants(
    workload: WorkloadSpec,
    n: int,
    local_fraction: float = 0.5,
    stagger: float = 0.0,
    pool_bytes: Optional[int] = None,
) -> list[TenantSpec]:
    """``n`` identical tenants of one workload, arrivals ``stagger`` s apart.

    The shared constructor behind the CLI, the figure builder and the
    benchmark sweep, so the tenant-naming and arrival conventions stay in one
    place.
    """
    if n <= 0:
        raise FabricError("need at least one tenant")
    return [
        TenantSpec(
            name=f"{workload.name}-{i}",
            workload=workload,
            local_fraction=local_fraction,
            arrival=i * stagger,
            pool_bytes=pool_bytes,
        )
        for i in range(n)
    ]


@dataclass(frozen=True)
class _PhaseProfile:
    """Interference-free reference behaviour of one phase of one tenant."""

    runtime: float
    flops: float
    local_bytes: float
    remote_bytes: float
    coverage: float
    mlp: float
    unit_time_idle: float

    @property
    def offered_bandwidth(self) -> float:
        """Pool bandwidth the phase demands when running at full speed, bytes/s."""
        return self.remote_bytes / max(self.runtime, 1e-12)


class _TenantState:
    """Mutable progress bookkeeping of one tenant during the co-simulation."""

    def __init__(self, spec: TenantSpec, node: int) -> None:
        self.spec = spec
        self.node = node
        self.lease = None
        self.platform: Optional[Platform] = None
        self.perf: Optional[PerformanceModel] = None
        self.phases: tuple[_PhaseProfile, ...] = ()
        self.baseline_runtime = 0.0
        self.phase_index = 0
        self.phase_elapsed = 0.0  # baseline-seconds completed in the current phase
        self.finish_time: Optional[float] = None
        self.background_times: list[float] = []
        self.background_bandwidths: list[float] = []
        # Fault bookkeeping (all zero/None on the fault-free path).
        self.stall_seconds = 0.0  # wall time lost to faults
        self.migration_debt = 0.0  # page give-back drain still owed, wall-seconds
        self.revoked_at: Optional[float] = None
        self.readmit_latency: Optional[float] = None
        self.revocations = 0
        self.migrated_bytes = 0
        # A revocation replaces the lease, so the original grant time (the
        # tenant's true start for wait/runtime accounting) is stashed here.
        self.first_granted_at: Optional[float] = None

    @property
    def start_time(self) -> Optional[float]:
        """Grant time of the tenant's *first* lease (survives revocations)."""
        if self.first_granted_at is not None:
            return self.first_granted_at
        return self.lease.granted_at if self.lease is not None else None

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    @property
    def running(self) -> bool:
        return (
            self.lease is not None
            and self.lease.state == LEASE_GRANTED
            and not self.finished
        )

    def current_offered_bandwidth(self) -> float:
        if self.phase_index >= len(self.phases):
            return 0.0
        return self.phases[self.phase_index].offered_bandwidth

    @property
    def completed_baseline_seconds(self) -> float:
        """Baseline seconds of work completed so far (phases done + partial)."""
        return (
            sum(p.runtime for p in self.phases[: self.phase_index])
            + self.phase_elapsed
        )


@dataclass(frozen=True)
class TenantOutcome:
    """Final per-tenant statistics of one co-simulation run."""

    name: str
    workload: str
    node: int
    arrival: float
    start_time: Optional[float]
    finish_time: Optional[float]
    baseline_runtime: float
    lease_bytes: int
    lease_state: str
    mean_background_bandwidth: float

    @property
    def runtime(self) -> float:
        """Wall-clock execution time while running (0 if the tenant never ran)."""
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Delay between arrival and lease grant (0 if never granted)."""
        if self.start_time is None:
            return 0.0
        return self.start_time - self.arrival

    @property
    def slowdown(self) -> float:
        """Execution time relative to the interference-free baseline (>= ~1)."""
        if self.runtime <= 0 or self.baseline_runtime <= 0:
            return 1.0
        return self.runtime / self.baseline_runtime


#: Columns of the per-rack epoch timeline (shared by every RackTelemetry).
_TIMELINE_COLUMNS = (
    "leased_bytes",
    "queue_depth",
    "active_tenants",
    "max_port_utilization",
    "max_port_waiting_ns",
)


class RackTelemetry:
    """Epoch-resolution timeline of the shared pool and its fabric ports.

    A thin adapter over one :class:`repro.telemetry.TimeSeries` — the rows
    live in the telemetry instrument, not in a parallel set of hand-rolled
    lists — plus live registry gauges (``fabric.pool.leased_bytes``,
    ``fabric.pool.queue_depth``) and a ``fabric.port.utilization`` histogram
    updated on every recorded epoch.  The timeline itself always records
    (it is simulation output feeding the pool-timeline figure), while the
    registry side honours the process-wide telemetry enable flag.  The
    public :meth:`series` shape is unchanged.
    """

    def __init__(self, series: Optional[TimeSeries] = None) -> None:
        self._timeline = (
            series
            if series is not None
            else TimeSeries("fabric.rack.timeline", _TIMELINE_COLUMNS)
        )

    # Column views (kept for callers that index the raw timeline).

    @property
    def times(self) -> list[float]:
        return self._timeline.times

    @property
    def leased_bytes(self) -> list[int]:
        return self._timeline.column("leased_bytes")

    @property
    def queue_depth(self) -> list[int]:
        return self._timeline.column("queue_depth")

    @property
    def active_tenants(self) -> list[int]:
        return self._timeline.column("active_tenants")

    @property
    def max_port_utilization(self) -> list[float]:
        return self._timeline.column("max_port_utilization")

    @property
    def max_port_waiting_ns(self) -> list[float]:
        return self._timeline.column("max_port_waiting_ns")

    def __len__(self) -> int:
        return len(self._timeline)

    def record(
        self, sample: PoolSample, utilization: float, waiting_seconds: float
    ) -> None:
        self._timeline.append(
            sample.time,
            leased_bytes=sample.leased_bytes,
            queue_depth=sample.queue_depth,
            active_tenants=sample.active_leases,
            max_port_utilization=utilization,
            max_port_waiting_ns=waiting_seconds / 1e-9,
        )
        registry = metrics()
        registry.gauge("fabric.pool.leased_bytes").set(sample.leased_bytes)
        registry.gauge("fabric.pool.queue_depth").set(sample.queue_depth)
        registry.histogram("fabric.port.utilization").observe(utilization)

    def drop_last(self) -> None:
        """Remove the most recent epoch sample (same-instant re-record)."""
        self._timeline.drop_last()

    def trim_after(self, time: float) -> None:
        """Drop samples recorded after ``time`` (checkpoint rollback)."""
        self._timeline.trim_after(time)

    def series(self) -> dict:
        """The timeline as plain arrays (for figures and JSON output)."""
        raw = self._timeline.series()
        return {
            "time": raw["time"],
            "leased_gb": [b / 1e9 for b in raw["leased_bytes"]],
            "queue_depth": raw["queue_depth"],
            "active_tenants": raw["active_tenants"],
            "max_port_utilization": raw["max_port_utilization"],
            "max_port_waiting_ns": raw["max_port_waiting_ns"],
        }


@dataclass(frozen=True)
class RackCoSimResult:
    """Everything one rack co-simulation produced."""

    tenants: tuple[TenantOutcome, ...]
    telemetry: RackTelemetry
    makespan: float
    pool_capacity_bytes: int
    max_leased_bytes: int
    epoch_seconds: float
    _interference: dict
    #: Fault damage assessment; None when the run had no fault schedule and
    #: no elastic pool (the fault-free fast path).
    blast_radius: Optional[BlastRadiusReport] = None

    @property
    def finished_tenants(self) -> tuple[TenantOutcome, ...]:
        """Tenants that ran to completion."""
        return tuple(t for t in self.tenants if t.finish_time is not None)

    @property
    def mean_slowdown(self) -> float:
        """Average slowdown of the finished tenants."""
        finished = self.finished_tenants
        if not finished:
            return 1.0
        return float(np.mean([t.slowdown for t in finished]))

    @property
    def mean_runtime(self) -> float:
        """Average wall-clock execution time of the finished tenants."""
        finished = self.finished_tenants
        if not finished:
            return 0.0
        return float(np.mean([t.runtime for t in finished]))

    def tenant(self, name: str) -> TenantOutcome:
        """Look up one tenant's outcome by name."""
        for outcome in self.tenants:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no tenant named {name!r}")

    def interference_for(self, name: str) -> DynamicInterference:
        """The background-bandwidth timeline a tenant experienced, as an
        :class:`~repro.sim.interference.InterferenceSource` for the engine."""
        try:
            return self._interference[name]
        except KeyError as exc:
            raise FabricError(
                f"tenant {name!r} never ran, so no interference timeline exists"
            ) from exc

    def summary(self) -> dict:
        """Aggregate + per-tenant summary (CLI/benchmark friendly)."""
        summary = {
            "makespan": self.makespan,
            "mean_slowdown": self.mean_slowdown,
            "mean_runtime": self.mean_runtime,
            "pool_capacity_gb": self.pool_capacity_bytes / 1e9,
            "max_leased_gb": self.max_leased_bytes / 1e9,
            "epoch_seconds": self.epoch_seconds,
            "tenants": [
                {
                    "name": t.name,
                    "workload": t.workload,
                    "node": t.node,
                    "lease_state": t.lease_state,
                    "lease_gb": t.lease_bytes / 1e9,
                    "wait_s": t.wait_time,
                    "runtime_s": t.runtime,
                    "baseline_s": t.baseline_runtime,
                    "slowdown": t.slowdown,
                    "mean_background_gbs": t.mean_background_bandwidth / 1e9,
                }
                for t in self.tenants
            ],
        }
        if self.blast_radius is not None:
            summary["faults"] = self.blast_radius.summary()
        return summary


@dataclass(frozen=True)
class EpochCheckpoint:
    """Snapshot of an incrementally-driven co-simulation's epoch state.

    Captures everything :meth:`RackCoSimulator.step` mutates — the simulated
    clock, how far into the current epoch the simulation is, the epoch's
    frozen per-node backgrounds and every tenant's phase progress — but *not*
    the tenant mix or the pool's lease table: those only change through
    :meth:`RackCoSimulator.admit` / :meth:`RackCoSimulator.withdraw`, which
    invalidate the checkpoint.  Produced by
    :meth:`RackCoSimulator.checkpoint`, consumed by
    :meth:`RackCoSimulator.rollover`.
    """

    clock: float
    epoch_elapsed: float
    backgrounds: tuple[tuple[int, float], ...]
    #: (name, phase_index, phase_elapsed, finish_time) per tenant.
    tenants: tuple[tuple[str, int, float, Optional[float]], ...]
    #: (name, background-timeline length) per tenant, for rollback trimming.
    histories: tuple[tuple[str, int], ...]
    #: (node, bytes/s) external background offsets (cluster spine traffic).
    offsets: tuple[tuple[int, float], ...] = ()
    #: Signature of the last resolved epoch, for dirty-epoch skip tracking.
    #: Restored on rollback so a stale signature can never cause a wrong skip.
    solve_key: Optional[tuple] = None
    #: Fault-layer mutation count at snapshot time.  Applying a fault (or
    #: re-requesting a revoked lease) mutates pool/lease state a checkpoint
    #: does not capture, so :meth:`RackCoSimulator.rollover` refuses a
    #: checkpoint whose count no longer matches — rollback is bit-identical
    #: only while faults are merely *pending*.
    fault_epoch: int = 0
    #: (name, stall_seconds, migration_debt, revoked_at, readmit_latency,
    #: revocations, migrated_bytes, first_granted_at) per tenant; populated
    #: only once the fault layer is active so fault-free checkpoints are
    #: unchanged.
    fault_tenants: tuple = ()


class RackCoSimulator:
    """Epoch-driven co-simulation of tenants sharing one rack's memory pool.

    Parameters
    ----------
    tenants:
        The tenants to co-schedule (unique names required).
    pool:
        The shared memory pool; None builds one big enough for all tenants.
    topology:
        The fabric wiring; None builds a single-port fabric with one node per
        tenant (tenant ``i`` runs on node ``i``).
    testbed:
        Platform description used for per-node engines and default fabric.
    epoch_seconds:
        Co-simulation step; None picks ~1/40 of the longest baseline runtime.
    seed:
        Seed for the per-tenant execution engines.
    """

    #: Hard bound on epochs so mis-configured runs terminate with a clear error.
    MAX_EPOCHS = 200_000

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        pool: Optional[MemoryPool] = None,
        topology: Optional[FabricTopology] = None,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        epoch_seconds: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise FabricError("the rack needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise FabricError("tenant names must be unique")
        self.tenants = tuple(tenants)
        self.testbed = testbed
        self.topology = (
            topology
            if topology is not None
            else FabricTopology(n_nodes=len(tenants), n_ports=1, testbed=testbed)
        )
        if self.topology.n_nodes < len(tenants):
            raise FabricError(
                f"fabric has {self.topology.n_nodes} nodes but {len(tenants)} tenants"
            )
        if pool is None:
            total = sum(max(t.lease_bytes, 1) for t in tenants)
            pool = MemoryPool(capacity_bytes=total)
        self.pool = pool
        self.seed = int(seed)
        if epoch_seconds is not None and epoch_seconds <= 0:
            raise FabricError("epoch_seconds must be positive")
        self._epoch_seconds = epoch_seconds
        self._init_incremental()

    @classmethod
    def incremental(
        cls,
        n_nodes: int,
        pool: Optional[MemoryPool] = None,
        topology: Optional[FabricTopology] = None,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        epoch_seconds: Optional[float] = None,
        seed: int = 0,
    ) -> "RackCoSimulator":
        """An empty co-simulator an external scheduler drives tenant by tenant.

        Unlike the batch constructor there is no up-front tenant list: the
        caller :meth:`admit`\\ s tenants as its jobs start, :meth:`step`\\ s the
        rack between its own events and :meth:`withdraw`\\ s tenants it
        retires.  ``pool`` defaults to an effectively unbounded pool (the
        caller is assumed to do its own capacity admission);
        ``epoch_seconds`` defaults to ~1/40 of the first admitted tenant's
        baseline runtime.
        """
        if n_nodes <= 0:
            raise FabricError("the rack needs at least one node")
        sim = cls.__new__(cls)
        sim.tenants = ()
        sim.testbed = testbed
        sim.topology = (
            topology
            if topology is not None
            else FabricTopology(n_nodes=n_nodes, n_ports=1, testbed=testbed)
        )
        if sim.topology.n_nodes < n_nodes:
            raise FabricError(
                f"fabric has {sim.topology.n_nodes} nodes but {n_nodes} were requested"
            )
        sim.pool = pool if pool is not None else MemoryPool(capacity_bytes=1 << 62)
        sim.seed = int(seed)
        if epoch_seconds is not None and epoch_seconds <= 0:
            raise FabricError("epoch_seconds must be positive")
        sim._epoch_seconds = epoch_seconds
        sim._init_incremental()
        return sim

    def _init_incremental(self) -> None:
        """Reset the state behind the incremental (scheduler-driven) API."""
        self._inc_states: dict[str, _TenantState] = {}
        self._inc_cache: dict = {}
        self._inc_clock = 0.0
        self._inc_epoch_elapsed = 0.0
        self._inc_epoch: Optional[float] = self._epoch_seconds
        self._inc_backgrounds: dict[int, float] = {}
        self._inc_telemetry = RackTelemetry()
        #: External (outside-the-rack) background per node, bytes/s.
        self._inc_offsets: dict[int, float] = {}
        #: Signature of the epoch state the current backgrounds were resolved
        #: for — when the next rollover poses the identical problem, the
        #: fixed-point solve is skipped (see :attr:`skip_unchanged_epochs`).
        self._inc_solve_key: Optional[tuple] = None
        #: Incremental stepping: skip the contention re-solve at epoch
        #: rollovers whose demand vector is unchanged.  Observable behaviour
        #: is identical either way (the skipped solve would reproduce the
        #: frozen backgrounds); set to False to force a fresh solve every
        #: epoch, e.g. in differential tests.
        self.skip_unchanged_epochs: bool = True
        # Fault layer.  `_faults_active` is the single hot-path guard: while
        # False (no schedule injected, no elastic reclaim ever observed) the
        # step loop pays one attribute check per chunk and nothing else.
        self._faults_active = False
        self._fault_schedule: Optional[FaultSchedule] = None
        self._fault_events: tuple[FaultEvent, ...] = ()
        self._fault_cursor = 0
        self._faults_applied = 0
        self._fault_mutations = 0
        #: Residual capacity per degraded port (killed = 0.0); absent = healthy.
        self._port_scales: dict[int, float] = {}
        self._drain_bytes_per_s = DEFAULT_DRAIN_BYTES_PER_S

    # -- baseline profiling ---------------------------------------------------------

    def _profile_tenant(self, state: _TenantState, cache: dict) -> None:
        """Run the tenant once, interference-free, to get its reference phases.

        Tenants sharing the same workload object and local fraction are
        behaviourally identical, so their (expensive) baseline engine run is
        computed once and shared — the common many-identical-tenants sweep
        profiles O(unique specs) instead of O(tenants).
        """
        spec = state.spec
        # Contention during the co-simulation is resolved on the tenant's pool
        # port, which may be provisioned differently from the node's own link.
        # All ports are built identically, so the cached profile is port-safe.
        port_link = self.topology.link_of(state.node)
        state.perf = PerformanceModel(self.testbed, port_link)
        key = (id(spec.workload), spec.local_fraction)
        if key not in cache:
            metrics().counter("fabric.profile.runs").inc()
            with trace_span("fabric.profile", workload=spec.workload.name):
                platform = Platform.pooled(
                    spec.workload.footprint_bytes, spec.local_fraction, testbed=self.testbed
                )
                result = ExecutionEngine(platform, seed=self.seed).run(spec.workload)
            profiles = []
            for phase_spec, phase in zip(spec.workload.phases, result.phases):
                profile = _PhaseProfile(
                    runtime=phase.runtime,
                    flops=phase.flops,
                    local_bytes=phase.local_bytes,
                    remote_bytes=phase.remote_bytes,
                    coverage=phase.prefetch_coverage,
                    mlp=phase_spec.mlp,
                    unit_time_idle=1.0,
                )
                profiles.append(
                    replace(
                        profile, unit_time_idle=self._unit_time(state, profile, 0.0)
                    )
                )
            cache[key] = (platform, tuple(profiles))
        else:
            metrics().counter("fabric.profile.cache_hits").inc()
        state.platform, state.phases = cache[key]
        state.baseline_runtime = float(sum(p.runtime for p in state.phases))

    def _unit_time(
        self, state: _TenantState, profile: _PhaseProfile, background: float
    ) -> float:
        """Wall time for one baseline-second of a phase under ``background``."""
        runtime = max(profile.runtime, 1e-12)
        inputs = PhaseInputs(
            flops=profile.flops / runtime,
            local_demand_bytes=profile.local_bytes / runtime,
            remote_demand_bytes=profile.remote_bytes / runtime,
            prefetch_coverage=profile.coverage,
            mlp=profile.mlp,
            background_bandwidth=background,
        )
        return max(state.perf.phase_time(inputs).runtime, 1e-12)

    def _progress_rate(self, state: _TenantState, profile: _PhaseProfile, background: float) -> float:
        """Baseline-seconds of phase progress per wall-clock second.

        Normalised against the same model at zero background, so slowdowns are
        exactly 1 on an idle fabric regardless of model details.
        """
        return profile.unit_time_idle / self._unit_time(state, profile, background)

    # -- main loop ------------------------------------------------------------------

    def run(self) -> RackCoSimResult:
        """Co-simulate all tenants to completion (or rejection)."""
        with trace_span("fabric.run", tenants=len(self.tenants)):
            if self._fault_events or self.pool.elastic:
                return self._run_chaos()
            return self._run()

    def _run(self) -> RackCoSimResult:
        states = [_TenantState(spec, node=i) for i, spec in enumerate(self.tenants)]
        profile_cache: dict = {}
        for state in states:
            self._profile_tenant(state, profile_cache)

        epoch_seconds = self._epoch_seconds
        if epoch_seconds is None:
            longest = max(s.baseline_runtime for s in states)
            epoch_seconds = max(longest / 40.0, 1e-6)

        telemetry = RackTelemetry()
        epochs = metrics().counter("fabric.cosim.epochs")
        clock = 0.0
        max_leased = 0
        for _ in range(self.MAX_EPOCHS):
            epochs.inc()
            # Submit arrivals.
            for state in states:
                if state.lease is None and state.spec.arrival <= clock:
                    state.lease = self.pool.request(
                        state.spec.name, state.spec.lease_bytes, time=clock
                    )
            max_leased = max(max_leased, self.pool.leased_bytes)

            running = [s for s in states if s.running]
            waiting = [
                s for s in states if s.lease is not None and s.lease.state == LEASE_QUEUED
            ]
            if not running:
                future = [
                    s.spec.arrival
                    for s in states
                    if s.lease is None and s.spec.arrival > clock
                ]
                if future:
                    clock = min(future)
                    continue
                # Nothing runs and nothing will release capacity: any queued
                # request can never be admitted.
                for state in waiting:
                    self.pool.release(state.lease, time=clock)
                    state.lease.state = LEASE_REJECTED
                break

            # Resolve this epoch's emergent interference from all co-runners:
            # what each tenant experiences as background is what the others
            # actually *deliver* through the shared port, not what they ask for.
            demands = {s.node: s.current_offered_bandwidth() for s in running}
            delivered = self.topology.resolve(demands)
            backgrounds = {
                s.node: self.topology.background_for(s.node, delivered) for s in running
            }
            for state in running:
                state.background_times.append(clock)
                state.background_bandwidths.append(backgrounds[state.node])

            ports_in_use = {self.topology.port_of(s.node) for s in running}
            telemetry.record(
                self.pool.sample(clock),
                utilization=max(
                    self.topology.port_utilization(p, demands) for p in ports_in_use
                ),
                waiting_seconds=max(
                    self.topology.port_waiting_time(p, demands) for p in ports_in_use
                ),
            )

            # Advance every running tenant through the epoch.
            epoch_end = clock + epoch_seconds
            for state in running:
                used = self._advance(state, backgrounds[state.node], epoch_seconds)
                if used is not None:
                    state.finish_time = clock + used
                    self.pool.release(state.lease, time=epoch_end)
            clock = epoch_end
        else:
            raise FabricError(
                f"co-simulation did not terminate within {self.MAX_EPOCHS} epochs"
            )

        makespan = max((s.finish_time for s in states if s.finished), default=0.0)
        interference = {
            s.spec.name: DynamicInterference(
                s.background_times,
                s.background_bandwidths,
                link=self.topology.link_of(s.node),
            )
            for s in states
            if s.background_times
        }
        outcomes = tuple(
            TenantOutcome(
                name=s.spec.name,
                workload=s.spec.workload.name,
                node=s.node,
                arrival=s.spec.arrival,
                start_time=s.lease.granted_at if s.lease is not None else None,
                finish_time=s.finish_time,
                baseline_runtime=s.baseline_runtime,
                lease_bytes=s.spec.lease_bytes,
                lease_state=s.lease.state if s.lease is not None else LEASE_REJECTED,
                mean_background_bandwidth=(
                    float(np.mean(s.background_bandwidths))
                    if s.background_bandwidths
                    else 0.0
                ),
            )
            for s in states
        )
        return RackCoSimResult(
            tenants=outcomes,
            telemetry=telemetry,
            makespan=makespan,
            pool_capacity_bytes=self.pool.capacity_bytes,
            max_leased_bytes=max_leased,
            epoch_seconds=epoch_seconds,
            _interference=interference,
        )

    def _advance(
        self, state: _TenantState, background: float, dt: float
    ) -> Optional[float]:
        """Advance a tenant by ``dt`` wall-seconds under ``background``.

        Returns the wall time actually consumed if the tenant finished inside
        the epoch, else None.  Phase boundaries inside the epoch are honoured:
        the next phase runs at its own rate (the background map, however, is
        only refreshed at epoch granularity).
        """
        used = 0.0
        while used < dt and state.phase_index < len(state.phases):
            profile = state.phases[state.phase_index]
            rate = self._progress_rate(state, profile, background)
            baseline_remaining = profile.runtime - state.phase_elapsed
            wall_needed = baseline_remaining / rate
            if wall_needed <= (dt - used) + 1e-12:
                used += wall_needed
                state.phase_index += 1
                state.phase_elapsed = 0.0
            else:
                state.phase_elapsed += (dt - used) * rate
                used = dt
        if state.phase_index >= len(state.phases):
            return used
        return None

    def _run_chaos(self) -> RackCoSimResult:
        """Closed-loop run for faulted or elastic scenarios.

        Drives the incremental API (admit / step / fault application) instead
        of the fixed-stride epoch loop in :meth:`_run`: faults need
        exact-time sub-chunking and lease retries that loop cannot express.
        :meth:`run` switches here automatically whenever a fault schedule was
        injected or the pool is elastic, so the fault-free non-elastic batch
        path stays untouched.
        """
        if self._inc_states:
            raise FabricError("run() cannot follow incremental admissions")
        if self._inc_epoch is None:
            # Match the batch loop's default epoch: ~1/40 of the longest
            # baseline runtime across all tenants (profiles are cached, so
            # the admissions below reuse these runs).
            longest = 0.0
            for spec in self.tenants:
                probe = _TenantState(spec, node=0)
                self._profile_tenant(probe, self._inc_cache)
                longest = max(longest, probe.baseline_runtime)
            self._inc_epoch = max(longest / 40.0, 1e-6)
        pending = sorted(
            range(len(self.tenants)), key=lambda i: self.tenants[i].arrival
        )
        released: set = set()
        max_leased = 0
        for _ in range(self.MAX_EPOCHS):
            if self._faults_active:
                self._apply_due_faults()
            # Admit due arrivals (tenant i runs on node i, as in the batch loop).
            while (
                pending
                and self.tenants[pending[0]].arrival <= self._inc_clock + 1e-12
            ):
                idx = pending.pop(0)
                self.admit(self.tenants[idx], node=idx)
            max_leased = max(max_leased, self.pool.leased_bytes)
            # Return leases of tenants that finished, admitting queued ones.
            freed = False
            for state in self._inc_states.values():
                if (
                    state.finished
                    and state.spec.name not in released
                    and state.lease is not None
                    and state.lease.state in (LEASE_GRANTED, LEASE_QUEUED)
                ):
                    self.pool.release(state.lease, time=self._inc_clock)
                    released.add(state.spec.name)
                    freed = True
            if freed:
                self._rollover_epoch(force=True)
            states = list(self._inc_states.values())
            if not pending and states and all(s.finished for s in states):
                break
            targets = []
            if pending:
                targets.append(self.tenants[pending[0]].arrival)
            nxt = self._next_fault_time()
            if nxt is not None:
                targets.append(nxt)
            future = [t for t in targets if t > self._inc_clock + 1e-12]
            moving = any(r > 0 for r in self.progress_rates().values()) or any(
                s.running and s.migration_debt > 0.0 for s in states
            )
            if moving:
                dt = self.horizon()
                if future:
                    dt = min(dt, min(future) - self._inc_clock)
                self.step(dt)
                continue
            if future:
                # Nothing progresses right now; jump to the next arrival or
                # fault, whichever changes the world first.
                self.step(min(future) - self._inc_clock)
                continue
            # Nothing moves, nothing arrives, no fault will fire: whoever is
            # still queued can never be admitted.
            for state in states:
                if (
                    state.lease is not None
                    and state.lease.state == LEASE_QUEUED
                    and not state.finished
                ):
                    self.pool.release(state.lease, time=self._inc_clock)
                    state.lease.state = LEASE_REJECTED
            break
        else:
            raise FabricError(
                f"co-simulation did not terminate within {self.MAX_EPOCHS} epochs"
            )

        ordered = [self._inc_states[spec.name] for spec in self.tenants]
        makespan = max((s.finish_time for s in ordered if s.finished), default=0.0)
        interference = {
            s.spec.name: DynamicInterference(
                s.background_times,
                s.background_bandwidths,
                link=self.topology.link_of(s.node),
            )
            for s in ordered
            if s.background_times
        }
        outcomes = tuple(
            TenantOutcome(
                name=s.spec.name,
                workload=s.spec.workload.name,
                node=s.node,
                arrival=s.spec.arrival,
                start_time=s.start_time,
                finish_time=s.finish_time,
                baseline_runtime=s.baseline_runtime,
                lease_bytes=s.spec.lease_bytes,
                lease_state=s.lease.state if s.lease is not None else LEASE_REJECTED,
                mean_background_bandwidth=(
                    float(np.mean(s.background_bandwidths))
                    if s.background_bandwidths
                    else 0.0
                ),
            )
            for s in ordered
        )
        return RackCoSimResult(
            tenants=outcomes,
            telemetry=self._inc_telemetry,
            makespan=makespan,
            pool_capacity_bytes=self.pool.capacity_bytes,
            max_leased_bytes=max_leased,
            epoch_seconds=self._inc_epoch,
            _interference=interference,
            blast_radius=self.blast_radius(),
        )

    # -- incremental (scheduler-driven) API -------------------------------------------
    #
    # The methods below let an external event loop — the cluster scheduler in
    # :mod:`repro.scheduler.progress` — drive one rack's co-simulation between
    # its own events instead of running it to completion.  See the module
    # docstring ("Coupling contract") for units and epoch semantics.

    @property
    def clock(self) -> float:
        """Simulated time of the incrementally-driven co-simulation, seconds."""
        return self._inc_clock

    @property
    def telemetry(self) -> RackTelemetry:
        """Epoch-rollover telemetry of the incrementally-driven co-simulation."""
        return self._inc_telemetry

    @property
    def tenant_states(self) -> dict:
        """Live per-tenant state, keyed by tenant name (read-only use)."""
        return dict(self._inc_states)

    def admit(
        self, spec: TenantSpec, node: Optional[int] = None, time: Optional[float] = None
    ) -> "Lease":
        """Admit one tenant into the running co-simulation.

        Profiles the tenant interference-free (cached per workload/fraction),
        requests its pool lease and rolls the epoch over so the new tenant's
        demand is part of the resolved backgrounds immediately.  ``node`` is
        the rack-local node index (first free node when omitted); ``time``
        may fast-forward an idle rack but can never move the clock backwards.
        Returns the tenant's lease so the caller can see whether it was
        granted or queued.
        """
        if spec.name in self._inc_states:
            raise FabricError(f"tenant {spec.name!r} is already admitted")
        occupied = {s.node for s in self._inc_states.values()}
        if node is None:
            free = [n for n in range(self.topology.n_nodes) if n not in occupied]
            if not free:
                raise FabricError("no free node in the rack fabric")
            node = free[0]
        elif not 0 <= node < self.topology.n_nodes:
            raise FabricError(
                f"node {node} is not part of this {self.topology.n_nodes}-node fabric"
            )
        elif node in occupied:
            raise FabricError(f"node {node} already hosts a tenant")
        if time is not None:
            if time < self._inc_clock - 1e-9:
                raise FabricError("cannot admit a tenant in the past")
            if time > self._inc_clock:
                self.step(time - self._inc_clock)
        metrics().counter("fabric.cosim.admitted").inc()
        state = _TenantState(spec, node=node)
        self._profile_tenant(state, self._inc_cache)
        if self._inc_epoch is None:
            self._inc_epoch = max(state.baseline_runtime / 40.0, 1e-6)
        state.lease = self.pool.request(spec.name, spec.lease_bytes, time=self._inc_clock)
        self._inc_states[spec.name] = state
        if self.pool.elastic:
            # An overcommitting pool may have shrunk co-tenants to fit the
            # newcomer; charge those reclaims before re-resolving the epoch.
            self._consume_pool_reclaims()
        self._rollover_epoch(force=True)
        return state.lease

    def withdraw(self, name: str, time: Optional[float] = None) -> None:
        """Remove a tenant (finished or cancelled) and return its lease.

        Releasing the lease admits queued co-tenants in FIFO order; the epoch
        is rolled over so the departed tenant's demand stops interfering in
        the same instant.
        """
        if name not in self._inc_states:
            raise FabricError(f"no admitted tenant named {name!r}")
        if time is not None and time > self._inc_clock:
            self.step(time - self._inc_clock)
        metrics().counter("fabric.cosim.withdrawn").inc()
        state = self._inc_states.pop(name)
        if state.lease is not None and state.lease.state in (LEASE_GRANTED, LEASE_QUEUED):
            self.pool.release(state.lease, time=self._inc_clock)
        self._rollover_epoch(force=True)

    def set_background_offset(self, node: int, bandwidth: float) -> None:
        """Impose extra background bandwidth on ``node`` from outside the rack.

        The offset models traffic the intra-rack solve cannot see — a cluster
        fabric's spine traffic landing on the node's pool path — and is simply
        added to whatever intra-rack background the node's co-runners
        generate.  It takes effect immediately (the current epoch's frozen
        background is adjusted in place, and the tenant's background history
        gets a point at the current clock) and persists across rollovers
        until replaced; pass 0 to clear.  Offsets are part of the dirty-epoch
        signature, so changing them always triggers a re-solve path update.
        """
        if not 0 <= node < self.topology.n_nodes:
            raise FabricError(
                f"node {node} is not part of this {self.topology.n_nodes}-node fabric"
            )
        if bandwidth < 0:
            raise FabricError("background offset must be >= 0")
        old = self._inc_offsets.get(node, 0.0)
        if bandwidth > 0:
            self._inc_offsets[node] = float(bandwidth)
        else:
            self._inc_offsets.pop(node, None)
        delta = float(bandwidth) - old
        if delta == 0.0:
            return
        if node in self._inc_backgrounds:
            self._inc_backgrounds[node] += delta
            for state in self._inc_states.values():
                if state.node != node or not state.running:
                    continue
                background = self._inc_backgrounds[node]
                if (
                    state.background_times
                    and state.background_times[-1] >= self._inc_clock - 1e-12
                ):
                    state.background_bandwidths[-1] = background
                else:
                    state.background_times.append(self._inc_clock)
                    state.background_bandwidths.append(background)

    def background_offset(self, node: int) -> float:
        """The external background offset currently imposed on ``node``."""
        return self._inc_offsets.get(node, 0.0)

    def baseline_runtime_of(self, name: str) -> float:
        """Interference-free total runtime of an admitted tenant, seconds."""
        return self._state_of(name).baseline_runtime

    def peak_offered_bandwidth(self, spec: TenantSpec) -> float:
        """Pool bandwidth of a tenant's hungriest phase, bytes/s.

        Profiles the workload on demand (cached), without admitting it — used
        by placement policies to project what a prospective tenant would add
        to a pool port.
        """
        probe = _TenantState(spec, node=0)
        self._profile_tenant(probe, self._inc_cache)
        return max((p.offered_bandwidth for p in probe.phases), default=0.0)

    def current_demands(self) -> dict[int, float]:
        """Offered pool bandwidth per node of the currently running tenants."""
        return {
            s.node: s.current_offered_bandwidth()
            for s in self._inc_states.values()
            if s.running
        }

    def progress_rates(self) -> dict[str, float]:
        """Baseline-seconds of progress per wall-second, per running tenant.

        Rates are exact under the current epoch's frozen backgrounds and the
        tenants' current phases; they stay valid for at most
        :meth:`horizon` seconds.  Fault-stalled tenants — revoked lease,
        killed port, or a migration drain in progress — report an **explicit
        0.0** rather than being omitted, so coupled schedulers observe the
        stall instead of falling back to a static estimate.
        """
        rates: dict[str, float] = {}
        for name, state in self._inc_states.items():
            if self._faults_active and not state.finished:
                if not state.running and state.revoked_at is not None and (
                    state.readmit_latency is None
                ):
                    # Revoked (or re-queued after revocation): stalled.
                    rates[name] = 0.0
                    continue
                if state.running and (
                    state.migration_debt > 0.0
                    or (
                        self._port_scales
                        and self._port_scales.get(
                            self.topology.port_of(state.node), 1.0
                        )
                        <= 0.0
                    )
                ):
                    rates[name] = 0.0
                    continue
            if not state.running or state.phase_index >= len(state.phases):
                continue
            profile = state.phases[state.phase_index]
            rates[name] = self._progress_rate(
                state, profile, self._inc_backgrounds.get(state.node, 0.0)
            )
        return rates

    def horizon(self) -> float:
        """Wall seconds the current :meth:`progress_rates` stay exact.

        Bounded by the next epoch rollover and by the nearest phase boundary
        of any running tenant (a new phase runs at a different rate).
        """
        if self._inc_epoch is None:
            raise FabricError(
                "the co-simulation has no epoch length yet: pass epoch_seconds "
                "or admit a tenant first"
            )
        bound = max(self._inc_epoch - self._inc_epoch_elapsed, 1e-12)
        if self._faults_active:
            nxt = self._next_fault_time()
            if nxt is not None:
                bound = min(bound, max(nxt - self._inc_clock, 1e-12))
            for state in self._inc_states.values():
                if state.running and state.migration_debt > 0.0:
                    # The rate flips from 0 back up once the drain finishes.
                    bound = min(bound, max(state.migration_debt, 1e-12))
        for name, rate in self.progress_rates().items():
            state = self._inc_states[name]
            if state.phase_index >= len(state.phases):
                continue
            profile = state.phases[state.phase_index]
            remaining = max(profile.runtime - state.phase_elapsed, 0.0)
            if rate > 0:
                bound = min(bound, remaining / rate)
        return max(bound, 1e-12)

    def step(self, dt: float) -> dict[str, float]:
        """Advance the co-simulation ``dt`` wall-seconds.

        Progress accrues under the current epoch's frozen backgrounds; epoch
        boundaries crossed inside ``dt`` trigger rollovers (backgrounds are
        re-resolved mid-step), so arbitrarily large ``dt`` values are legal —
        but only steps of at most :meth:`horizon` keep rates piecewise
        constant for the caller's own bookkeeping.  Tenants finishing inside
        the step get their ``finish_time`` set and stop demanding bandwidth;
        their leases stay held until :meth:`withdraw`.  Returns the baseline
        seconds each tenant completed during the step.
        """
        if dt < 0:
            raise FabricError("cannot step the co-simulation backwards")
        registry = metrics()
        registry.counter("fabric.cosim.step_calls").inc()
        registry.counter("fabric.cosim.stepped_seconds").inc(dt)
        done = {name: 0.0 for name in self._inc_states}
        remaining = float(dt)
        while remaining > 1e-15:
            if self._faults_active:
                self._apply_due_faults()
            if self._inc_epoch is None:
                # Nothing was ever admitted: time passes, no work happens —
                # but scheduled faults still fire at their exact times.
                if self._faults_active:
                    nxt = self._next_fault_time()
                    if nxt is not None and nxt <= self._inc_clock + remaining:
                        advance = max(nxt - self._inc_clock, 0.0)
                        self._inc_clock += advance
                        remaining -= advance
                        self._apply_due_faults()
                        continue
                self._inc_clock += remaining
                return done
            chunk = min(remaining, max(self._inc_epoch - self._inc_epoch_elapsed, 0.0))
            if self._faults_active:
                # Sub-chunk at the next fault time so events land exactly.
                nxt = self._next_fault_time()
                if nxt is not None:
                    chunk = min(chunk, max(nxt - self._inc_clock, 0.0))
            if chunk <= 0:
                self._rollover_epoch()
                continue
            if self._faults_active:
                for state in [s for s in self._inc_states.values() if s.running]:
                    avail = self._fault_chunk_available(state, chunk)
                    if avail <= 0.0:
                        continue
                    before = state.completed_baseline_seconds
                    used = self._advance(
                        state, self._inc_backgrounds.get(state.node, 0.0), avail
                    )
                    done[state.spec.name] += state.completed_baseline_seconds - before
                    if used is not None and state.finish_time is None:
                        state.finish_time = self._inc_clock + (chunk - avail) + used
                for state in self._inc_states.values():
                    # Between revocation and re-grant (the lease is REVOKED or
                    # back in the queue) the tenant makes no progress: all of
                    # that wall time is fault-induced stall.
                    if (
                        not state.finished
                        and not state.running
                        and state.revoked_at is not None
                        and state.readmit_latency is None
                    ):
                        self._record_stall(state, chunk)
            else:
                for state in [s for s in self._inc_states.values() if s.running]:
                    before = state.completed_baseline_seconds
                    used = self._advance(
                        state, self._inc_backgrounds.get(state.node, 0.0), chunk
                    )
                    done[state.spec.name] += state.completed_baseline_seconds - before
                    if used is not None and state.finish_time is None:
                        state.finish_time = self._inc_clock + used
            self._inc_clock += chunk
            self._inc_epoch_elapsed += chunk
            remaining -= chunk
            if self._inc_epoch_elapsed >= self._inc_epoch - 1e-12:
                self._rollover_epoch()
        return done

    def step_frozen(self, dt: float) -> dict[str, float]:
        """Advance ``dt`` wall-seconds under the current frozen backgrounds.

        The fused inner kernel of the cluster's batched epoch path: exactly
        the fault-free body of :meth:`step` for one intra-epoch chunk, with
        the epoch rollover lifted out — the caller (a
        :class:`~repro.fabric.cluster.ClusterCoSimulator`) rolls all racks
        over centrally so their re-solves batch into one vectorized call.
        ``dt`` must therefore not cross this rack's epoch boundary, and the
        fault layer must be disarmed (a faulted rack needs the sub-chunk
        fault scheduling of :meth:`step`).
        """
        if dt < 0:
            raise FabricError("cannot step the co-simulation backwards")
        if self._faults_active:
            raise FabricError(
                "step_frozen cannot run with the fault layer armed; "
                "use step() for faulted racks"
            )
        registry = metrics()
        registry.counter("fabric.cosim.step_calls").inc()
        registry.counter("fabric.cosim.stepped_seconds").inc(dt)
        done = {name: 0.0 for name in self._inc_states}
        if dt <= 1e-15:
            return done
        if self._inc_epoch is None:
            # Nothing was ever admitted: time passes, no work happens.
            self._inc_clock += dt
            return done
        if dt > max(self._inc_epoch - self._inc_epoch_elapsed, 0.0) + 1e-12:
            raise FabricError(
                "step_frozen cannot cross an epoch boundary; roll the epoch "
                "over first"
            )
        for state in [s for s in self._inc_states.values() if s.running]:
            before = state.completed_baseline_seconds
            used = self._advance(
                state, self._inc_backgrounds.get(state.node, 0.0), dt
            )
            done[state.spec.name] += state.completed_baseline_seconds - before
            if used is not None and state.finish_time is None:
                state.finish_time = self._inc_clock + used
        self._inc_clock += dt
        self._inc_epoch_elapsed += dt
        return done

    def epoch_due(self) -> bool:
        """Whether the current epoch has fully elapsed (a rollover is due)."""
        return (
            self._inc_epoch is not None
            and self._inc_epoch_elapsed >= self._inc_epoch - 1e-12
        )

    def checkpoint(self) -> EpochCheckpoint:
        """Snapshot the epoch state for a later :meth:`rollover`."""
        metrics().counter("fabric.cosim.checkpoints").inc()
        ordered = sorted(self._inc_states.items())
        return EpochCheckpoint(
            clock=self._inc_clock,
            epoch_elapsed=self._inc_epoch_elapsed,
            backgrounds=tuple(sorted(self._inc_backgrounds.items())),
            tenants=tuple(
                (name, s.phase_index, s.phase_elapsed, s.finish_time)
                for name, s in ordered
            ),
            histories=tuple((name, len(s.background_times)) for name, s in ordered),
            offsets=tuple(sorted(self._inc_offsets.items())),
            solve_key=self._inc_solve_key,
            fault_epoch=self._fault_mutations,
            fault_tenants=(
                tuple(
                    (
                        name,
                        s.stall_seconds,
                        s.migration_debt,
                        s.revoked_at,
                        s.readmit_latency,
                        s.revocations,
                        s.migrated_bytes,
                        s.first_granted_at,
                    )
                    for name, s in ordered
                )
                if self._faults_active
                else ()
            ),
        )

    def rollover(self, checkpoint: EpochCheckpoint) -> None:
        """Roll the co-simulation back to a previously captured checkpoint.

        Restores the clock, the intra-epoch elapsed time, the frozen
        backgrounds and every tenant's phase progress, and trims background /
        telemetry timelines recorded after the checkpoint.  Only legal while
        the tenant mix is unchanged — :meth:`admit` and :meth:`withdraw`
        mutate the pool's lease table, which a checkpoint deliberately does
        not capture.
        """
        names = {entry[0] for entry in checkpoint.tenants}
        if names != set(self._inc_states):
            raise FabricError(
                "checkpoint does not match the current tenant mix; checkpoints "
                "are invalidated by admit() and withdraw()"
            )
        if checkpoint.fault_epoch != self._fault_mutations:
            raise FabricError(
                "checkpoint predates applied fault events; fault application "
                "mutates pool and lease state that checkpoints do not capture, "
                "so rollback is only legal while faults are merely pending"
            )
        self._inc_clock = checkpoint.clock
        self._inc_epoch_elapsed = checkpoint.epoch_elapsed
        self._inc_backgrounds = dict(checkpoint.backgrounds)
        self._inc_offsets = dict(checkpoint.offsets)
        self._inc_solve_key = checkpoint.solve_key
        for name, phase_index, phase_elapsed, finish_time in checkpoint.tenants:
            state = self._inc_states[name]
            state.phase_index = phase_index
            state.phase_elapsed = phase_elapsed
            state.finish_time = finish_time
        for entry in checkpoint.fault_tenants:
            state = self._inc_states[entry[0]]
            (
                state.stall_seconds,
                state.migration_debt,
                state.revoked_at,
                state.readmit_latency,
                state.revocations,
                state.migrated_bytes,
                state.first_granted_at,
            ) = entry[1:]
        for name, length in checkpoint.histories:
            state = self._inc_states[name]
            del state.background_times[length:]
            del state.background_bandwidths[length:]
        self._inc_telemetry.trim_after(checkpoint.clock)
        metrics().counter("fabric.cosim.rollbacks").inc()

    # -- fault injection / elastic leasing --------------------------------------------
    #
    # The failure model these methods implement is documented in
    # ``docs/failure_model.md``.  Everything is inert until a schedule is
    # injected (or the pool reclaims an elastic lease): the step loop then
    # pays exactly one boolean check per chunk.

    def inject_faults(
        self,
        schedule: FaultSchedule,
        rack: int = 0,
        drain_bytes_per_s: Optional[float] = None,
    ) -> None:
        """Arm a fault schedule against this rack.

        ``rack`` selects which of the schedule's events apply (a rack
        simulator inside a cluster passes its own index; standalone racks use
        the default 0).  ``drain_bytes_per_s`` is the modeled page give-back
        rate: when a lease is shrunk or revoked, the reclaimed bytes drain
        back at this rate and the drain time is charged against the tenant's
        progress as a stall (migration debt).  Faults fire at exact simulated
        times during :meth:`step` (the step sub-chunks at fault times), and
        each applied fault forces an epoch rollover so the contention solve
        reflects the damage immediately.  Injection is one-shot per
        simulator; an *empty* schedule leaves the fault layer disarmed and
        every output bit-identical to a fault-free run.
        """
        if self._fault_schedule is not None:
            raise FabricError("a fault schedule is already injected")
        if not isinstance(schedule, FaultSchedule):
            raise FabricError("inject_faults() needs a FaultSchedule")
        if drain_bytes_per_s is not None:
            if drain_bytes_per_s <= 0:
                raise FabricError("drain_bytes_per_s must be positive")
            self._drain_bytes_per_s = float(drain_bytes_per_s)
        self._fault_schedule = schedule
        self._fault_events = schedule.events_for_rack(rack)
        self._fault_cursor = 0
        if self._fault_events:
            self._faults_active = True

    def faults_pending(self) -> bool:
        """True while injected fault events are still waiting to fire."""
        return self._fault_cursor < len(self._fault_events)

    def _next_fault_time(self) -> Optional[float]:
        if self._fault_cursor < len(self._fault_events):
            return self._fault_events[self._fault_cursor].time
        return None

    def port_health(self, port: int) -> float:
        """Residual capacity fraction of a pool port: 1.0 healthy, 0.0 killed."""
        return self._port_scales.get(port, 1.0)

    def _apply_due_faults(self) -> None:
        """Apply every scheduled event whose simulated time has been reached."""
        while True:
            nxt = self._next_fault_time()
            if nxt is None or nxt > self._inc_clock + 1e-12:
                return
            event = self._fault_events[self._fault_cursor]
            self._fault_cursor += 1
            self.apply_fault(event)

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one fault event at the current clock (scheduled events land
        here too, so ad-hoc chaos drivers share the exact same semantics).

        Port events retune :meth:`port_health`; lease events act on the named
        tenant's granted pool lease (an unknown, finished or not-yet-granted
        tenant is a documented no-op — the fault outlived its target);
        capacity loss shrinks the pool, reclaiming elastic leases first and
        revoking the youngest granted leases as a last resort.  Every applied
        fault bumps the mutation counter — invalidating earlier checkpoints,
        see :class:`EpochCheckpoint` — and forces an epoch rollover, so the
        solver key is dirtied and the next solve sees the new world.
        """
        self._faults_active = True
        self._fault_mutations += 1
        self._faults_applied += 1
        metrics().counter("fabric.faults.injected").inc()
        kind = event.kind
        if kind in (FAULT_PORT_KILL, FAULT_PORT_DEGRADE, FAULT_PORT_RESTORE):
            if not 0 <= event.port < self.topology.n_ports:
                raise FabricError(
                    f"fault targets port {event.port} but the fabric has "
                    f"{self.topology.n_ports} ports"
                )
            if kind == FAULT_PORT_KILL:
                self._port_scales[event.port] = 0.0
            elif kind == FAULT_PORT_DEGRADE:
                self._port_scales[event.port] = float(event.scale)
            else:
                self._port_scales.pop(event.port, None)
        elif kind in (FAULT_LEASE_REVOKE, FAULT_LEASE_SHRINK):
            state = self._inc_states.get(event.tenant)
            if state is not None and state.running:
                if kind == FAULT_LEASE_REVOKE:
                    self.pool.revoke(state.lease, time=self._inc_clock)
                else:
                    self.pool.shrink(
                        state.lease, int(event.nbytes), time=self._inc_clock
                    )
        elif kind == FAULT_POOL_CAPACITY_LOSS:
            self.pool.lose_capacity(int(event.nbytes), time=self._inc_clock)
        self._consume_pool_reclaims()
        self._rollover_epoch(force=True)

    def _consume_pool_reclaims(self) -> None:
        """Charge pool-side reclaims (shrink / revoke) to their tenants.

        Each reclaimed byte drains back to the pool at the modeled migration
        rate; the drain time lands on the tenant as migration debt, paid as a
        stall before any further progress.  The pool's reclaim log is
        consumed destructively, so every reclaim is charged exactly once.
        """
        records = self.pool.consume_reclaims()
        if not records:
            return
        self._faults_active = True
        registry = metrics()
        for record in records:
            state = self._inc_states.get(record.tenant)
            if state is None:
                continue
            state.migration_debt += record.nbytes / self._drain_bytes_per_s
            state.migrated_bytes += record.nbytes
            registry.counter("fabric.faults.migrated_bytes").inc(record.nbytes)
            if record.kind == "revoke":
                if (
                    state.first_granted_at is None
                    and state.lease is not None
                    and state.lease.granted_at is not None
                ):
                    state.first_granted_at = state.lease.granted_at
                state.revoked_at = record.time
                state.readmit_latency = None
                state.revocations += 1
                registry.counter("fabric.faults.revocations").inc()

    def _retry_revoked(self) -> None:
        """Re-request the lease of every revoked tenant (back of the queue).

        Runs at each epoch rollover while the fault layer is active: a
        revoked tenant rejoins the pool's FIFO admission queue and resumes
        once capacity allows.  The time from revocation to re-grant is its
        re-admission latency; on an uncontended pool that is 0 and the whole
        blast radius is the migration drain.
        """
        changed = False
        for name, state in self._inc_states.items():
            if (
                state.lease is not None
                and state.lease.state == LEASE_REVOKED
                and not state.finished
            ):
                state.lease = self.pool.request(
                    name, state.spec.lease_bytes, time=self._inc_clock
                )
                self._fault_mutations += 1
                changed = True
        if changed:
            self._consume_pool_reclaims()
        for state in self._inc_states.values():
            if (
                state.revoked_at is not None
                and state.readmit_latency is None
                and state.lease is not None
                and state.lease.state == LEASE_GRANTED
                and state.lease.granted_at is not None
                and state.lease.granted_at >= state.revoked_at
            ):
                state.readmit_latency = state.lease.granted_at - state.revoked_at
                metrics().counter("fabric.faults.readmissions").inc()

    def _record_stall(self, state: _TenantState, seconds: float) -> None:
        if seconds <= 0:
            return
        state.stall_seconds += seconds
        metrics().counter("fabric.faults.stall_seconds").inc(seconds)

    def _fault_chunk_available(self, state: _TenantState, chunk: float) -> float:
        """Wall time of ``chunk`` a running tenant can spend on real progress.

        A tenant on a killed port is fully stalled; a tenant owing migration
        debt pays it down first (stalled while its pages drain) and runs with
        whatever remains of the chunk.
        """
        if self._port_scales and (
            self._port_scales.get(self.topology.port_of(state.node), 1.0) <= 0.0
        ):
            self._record_stall(state, chunk)
            return 0.0
        if state.migration_debt > 0.0:
            pay = min(state.migration_debt, chunk)
            state.migration_debt -= pay
            if state.migration_debt < 1e-12:
                state.migration_debt = 0.0
            self._record_stall(state, pay)
            return chunk - pay
        return chunk

    def _impact_of(self, state: _TenantState) -> TenantImpact:
        return TenantImpact(
            name=state.spec.name,
            stall_seconds=state.stall_seconds,
            revocations=state.revocations,
            readmission_latency=state.readmit_latency,
            migrated_bytes=state.migrated_bytes,
            throughput_lost=state.stall_seconds,
        )

    def blast_radius(self) -> BlastRadiusReport:
        """Damage assessment of the fault layer so far (deterministic)."""
        states = sorted(self._inc_states.items())
        return BlastRadiusReport(
            faults_injected=self._faults_applied,
            revocations=sum(s.revocations for _, s in states),
            tenants=tuple(self._impact_of(s) for _, s in states),
        )

    def _state_of(self, name: str) -> _TenantState:
        try:
            return self._inc_states[name]
        except KeyError as exc:
            raise FabricError(f"no admitted tenant named {name!r}") from exc

    def _rollover_epoch(self, force: bool = False) -> None:
        """Close the current epoch: re-resolve backgrounds, restart the epoch.

        Called at every epoch boundary and on every tenant admission or
        withdrawal, so the frozen backgrounds always reflect the live tenant
        mix and their current phases.

        When :attr:`skip_unchanged_epochs` is on and neither the demand
        vector nor the external offsets changed since the last resolved
        epoch, the fixed-point solve is skipped — it would reproduce the
        backgrounds already frozen — while history and telemetry are still
        recorded exactly as on the resolve path, so trajectories are
        bit-identical with skipping on or off.  ``force`` (admission,
        withdrawal, rollback) always re-solves: those events change pool or
        lease state the demand signature alone cannot see.
        """
        registry = metrics()
        registry.counter("fabric.cosim.epoch_rollovers").inc()
        if self._faults_active:
            self._retry_revoked()
        running, demands, solve_key = self._epoch_demands()
        if (
            not force
            and self.skip_unchanged_epochs
            and solve_key == self._inc_solve_key
        ):
            registry.counter("fabric.cosim.epoch_skips").inc()
        else:
            registry.counter("fabric.cosim.epoch_resolves").inc()
            delivered = self.topology.resolve(demands) if demands else {}
            self._apply_epoch_solve(running, delivered, solve_key)
        self._complete_rollover(running, demands)

    def _epoch_demands(
        self,
    ) -> tuple[list[_TenantState], dict[int, float], tuple]:
        """The running tenants, their demand vector and its solve signature.

        The first of the three pieces :meth:`_rollover_epoch` is made of;
        split out so :class:`~repro.fabric.cluster.ClusterCoSimulator` can
        collect every rack's demands, batch the dirty ones through one
        vectorized solve, and finish each rack with the exact same
        bookkeeping as a self-driven rollover.
        """
        running = [s for s in self._inc_states.values() if s.running]
        if self._port_scales:
            # Tenants on killed ports demand nothing (they are stalled), and
            # port health is part of the solve signature so restoring or
            # degrading a port can never be skipped as "unchanged".
            demands = {
                s.node: s.current_offered_bandwidth()
                for s in running
                if self._port_scales.get(self.topology.port_of(s.node), 1.0) > 0.0
            }
            solve_key: tuple = (
                tuple(sorted(demands.items())),
                tuple(sorted(self._inc_offsets.items())),
                tuple(sorted(self._port_scales.items())),
            )
        else:
            demands = {s.node: s.current_offered_bandwidth() for s in running}
            solve_key = (
                tuple(sorted(demands.items())),
                tuple(sorted(self._inc_offsets.items())),
            )
        return running, demands, solve_key

    def _apply_epoch_solve(
        self,
        running: list[_TenantState],
        delivered: Mapping[int, float],
        solve_key: tuple,
    ) -> None:
        """Freeze new epoch backgrounds from a resolved allocation."""
        self._inc_backgrounds = {
            s.node: self.topology.background_for(s.node, delivered)
            + self._inc_offsets.get(s.node, 0.0)
            for s in running
        }
        if self._port_scales:
            # A degraded port's lost capacity behaves like permanent
            # background traffic occupying (1 - scale) of the port.
            for s in running:
                port = self.topology.port_of(s.node)
                scale = self._port_scales.get(port, 1.0)
                if scale < 1.0:
                    self._inc_backgrounds[s.node] += (
                        1.0 - scale
                    ) * self.topology.ports[port].data_capacity
        self._inc_solve_key = solve_key

    def _complete_rollover(
        self, running: list[_TenantState], demands: Mapping[int, float]
    ) -> None:
        """Restart the epoch and record background history + telemetry."""
        self._inc_epoch_elapsed = 0.0
        for state in running:
            background = self._inc_backgrounds[state.node]
            if (
                state.background_times
                and state.background_times[-1] >= self._inc_clock - 1e-12
            ):
                state.background_bandwidths[-1] = background
            else:
                state.background_times.append(self._inc_clock)
                state.background_bandwidths.append(background)
        if running:
            telemetry = self._inc_telemetry
            if telemetry.times and telemetry.times[-1] >= self._inc_clock - 1e-12:
                telemetry.drop_last()
            ports = {self.topology.port_of(s.node) for s in running}
            telemetry.record(
                self.pool.sample(self._inc_clock),
                utilization=max(
                    self.topology.port_utilization(p, demands) for p in ports
                ),
                waiting_seconds=max(
                    self.topology.port_waiting_time(p, demands) for p in ports
                ),
            )
