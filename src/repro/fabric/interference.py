"""Adapter feeding fabric-derived interference back into the single-node engine.

The existing interference sources (:mod:`repro.sim.interference`) inject a
*static or randomly redrawn* background level.  The rack co-simulation instead
*derives* each tenant's background from its co-runners' demand, epoch by
epoch.  :class:`DynamicInterference` packages such a derived timeline as an
:class:`~repro.sim.interference.InterferenceSource`, so a tenant's run can be
replayed through the ordinary :class:`~repro.sim.engine.ExecutionEngine` with
the interference the fabric actually produced — closing the loop the paper's
Section 7.2 extension sketches.

Units: timeline samples are (simulated seconds, bytes/s of background data
bandwidth); one sample per co-simulation epoch, piecewise constant until the
next sample (matching the epoch semantics of
:mod:`repro.fabric.cosim` — backgrounds only change at epoch rollovers).

There is deliberately no per-rack state here: a timeline is always recorded
against one tenant's own pool-port link, so the adapter works unchanged at
cluster scale (:mod:`repro.fabric.cluster`), where spilled tenants' uplink
and spine contention is already folded into the recorded bandwidths as
background offsets before they reach this class.  Fault-driven slowdowns
(``docs/failure_model.md``) arrive the same way: a degraded port's lost
capacity is folded into the recorded backgrounds, while full stalls (port
kills, migration drains) suspend progress in the co-simulator itself and
therefore never appear as bandwidth samples — a replayed timeline only ever
describes time the tenant actually spent running.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config.errors import FabricError
from ..interconnect.link import RemoteLink


class DynamicInterference:
    """A piecewise-constant background-bandwidth timeline from the fabric.

    Parameters
    ----------
    times:
        Start time of each sample (strictly increasing, first usually 0).
    bandwidths:
        Background data bandwidth (bytes/s) from each sample's start until the
        next; the last value holds beyond the end of the timeline.
    link:
        The pool-port link the timeline was recorded on — used to express the
        samples as Levels of Interference for reporting.
    """

    def __init__(
        self,
        times: Sequence[float],
        bandwidths: Sequence[float],
        link: RemoteLink,
    ) -> None:
        times_arr = np.asarray(list(times), dtype=np.float64)
        bw_arr = np.asarray(list(bandwidths), dtype=np.float64)
        if len(times_arr) == 0 or len(times_arr) != len(bw_arr):
            raise FabricError("need matching, non-empty time and bandwidth samples")
        if np.any(np.diff(times_arr) <= 0):
            raise FabricError("sample times must be strictly increasing")
        if np.any(bw_arr < 0):
            raise FabricError("background bandwidth cannot be negative")
        self.times = times_arr
        self.bandwidths = bw_arr
        self._lois = np.array([link.loi(bw) for bw in bw_arr])

    # -- InterferenceSource protocol ----------------------------------------------

    def background_bandwidth(self, link: RemoteLink, time: float) -> float:
        """Recorded background bandwidth at simulated ``time``, bytes/s.

        The ``link`` argument is part of the protocol but unused: the timeline
        already *is* bandwidth, derived on the fabric it was recorded on.
        """
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        return float(self.bandwidths[max(index, 0)])

    def mean_loi(self) -> float:
        """Average Level of Interference over the recorded timeline, percent."""
        return float(self._lois.mean())

    # -- reporting -----------------------------------------------------------------

    def loi_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        """(sample times, LoI values) of the recorded background."""
        return self.times.copy(), self._lois.copy()

    @property
    def peak_loi(self) -> float:
        """Highest Level of Interference in the timeline, percent."""
        return float(self._lois.max())
