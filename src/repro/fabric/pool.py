"""Shared memory pool with capacity leasing and admission control.

The paper's target architecture (Figure 2) gives every rack one
fabric-attached memory pool that all compute nodes borrow capacity from.
:class:`MemoryPool` models the pool-side resource manager sketched in the
Section 7.2 extension: tenants *request* remote capacity before they start,
the pool either **grants** the lease, **queues** the request until enough
capacity is released, or **rejects** it outright when it could never fit.
Leases are returned on job completion, at which point queued requests are
admitted in FIFO order.

The pool only manages *capacity*; bandwidth contention on the way to the pool
is the :class:`~repro.fabric.topology.FabricTopology`'s job.

Units and coupling: capacities and leases are **bytes**; timestamps are
simulated seconds supplied by whoever drives the pool (the batch
:meth:`~repro.fabric.cosim.RackCoSimulator.run` loop, or a scheduler stepping
the rack incrementally).  When the scheduler couples jobs to fabric tenants,
one lease mirrors one job's ``pool_gb`` reservation and lives exactly as long
as the job — the pool never expires leases on its own.

Elasticity (the failure-model extension, see ``docs/failure_model.md``):
an ``elastic=True`` pool may *overcommit* — instead of queueing a request
that does not fit, it shrinks running leases proportionally (never below
``min_lease_fraction`` of what each tenant originally asked for) to make
room.  Leases can also be shrunk or revoked explicitly (fault injection),
and capacity can be lost outright.  Every byte taken back from a granted
lease is logged exactly once as a :class:`ReclaimRecord`; the co-simulator
drains these via :meth:`MemoryPool.consume_reclaims` and charges the
modelled page-give-back migration cost against the victim tenant's
progress, so the accounting is charge-exactly-once by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..config.errors import FabricError
from ..telemetry import metrics

#: Lease lifecycle states.
LEASE_GRANTED = "granted"
LEASE_QUEUED = "queued"
LEASE_REJECTED = "rejected"
LEASE_RELEASED = "released"
LEASE_REVOKED = "revoked"


@dataclass
class Lease:
    """One tenant's claim on pool capacity.

    Attributes
    ----------
    lease_id:
        Monotonic identifier assigned by the pool.
    tenant:
        Name of the requesting tenant (job / node).
    nbytes:
        Currently granted pool capacity in bytes (an elastic pool may shrink
        this below ``requested_nbytes`` while the lease runs).
    requested_nbytes:
        What the tenant originally asked for — the base of the elastic
        shrink floor (``min_lease_fraction`` × this).
    state:
        One of ``granted``, ``queued``, ``rejected``, ``released`` or
        ``revoked``.  A revoked lease occupies no capacity; its tenant must
        request a fresh lease to run again (the co-simulator does this at
        the next epoch rollover).
    requested_at / granted_at / released_at / revoked_at:
        Simulated timestamps of the lease lifecycle (None until reached).
    """

    lease_id: int
    tenant: str
    nbytes: int
    state: str
    requested_at: float
    granted_at: Optional[float] = None
    released_at: Optional[float] = None
    revoked_at: Optional[float] = None
    requested_nbytes: int = 0

    @property
    def active(self) -> bool:
        """Whether the lease currently occupies pool capacity."""
        return self.state == LEASE_GRANTED

    @property
    def wait_time(self) -> float:
        """Time the request spent queued before being granted (0 if immediate)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.requested_at


@dataclass(frozen=True)
class PoolSample:
    """One telemetry sample of the pool's state."""

    time: float
    leased_bytes: int
    queue_depth: int
    active_leases: int


@dataclass(frozen=True)
class ReclaimRecord:
    """Bytes taken back from a granted lease (shrink or revoke).

    The pool appends one record per reclaim; whoever drives the pool drains
    them with :meth:`MemoryPool.consume_reclaims` and charges the migration
    cost (``nbytes / drain rate`` seconds of stall) against the tenant.
    Because each record is produced once and the queue is drained
    destructively, the cost is charged exactly once per reclaimed byte.
    """

    tenant: str
    lease_id: int
    nbytes: int
    time: float
    kind: str  # "shrink" | "revoke"


class MemoryPool:
    """Rack-level disaggregated memory pool with admission control.

    Parameters
    ----------
    capacity_bytes:
        Total capacity of the pool in bytes.
    name:
        Human-readable pool name used in telemetry/reports.
    elastic:
        Overcommit admission mode: a request that does not fit shrinks
        running leases proportionally (respecting each lease's floor)
        instead of queueing.  Default off — a non-elastic pool behaves
        bit-identically to the pre-fault-layer pool.
    min_lease_fraction:
        Elastic shrink floor, as a fraction of each lease's originally
        requested bytes (default 0.5: a lease is never squeezed below half
        of what its tenant asked for).

    Admission is first-come-first-served with head-of-line blocking: queued
    requests are admitted strictly in arrival order, so a large queued request
    is never starved by smaller ones arriving later.
    """

    def __init__(
        self,
        capacity_bytes: int,
        name: str = "pool-0",
        elastic: bool = False,
        min_lease_fraction: float = 0.5,
    ) -> None:
        if capacity_bytes <= 0:
            raise FabricError("pool capacity must be positive")
        if not 0.0 <= min_lease_fraction <= 1.0:
            raise FabricError("min_lease_fraction must be in [0, 1]")
        self.capacity_bytes = int(capacity_bytes)
        self.name = name
        self.elastic = bool(elastic)
        self.min_lease_fraction = float(min_lease_fraction)
        self._leases: list[Lease] = []
        self._queue: list[Lease] = []
        self._reclaims: list[ReclaimRecord] = []
        self._next_id = 0

    # -- state ---------------------------------------------------------------------

    @property
    def leased_bytes(self) -> int:
        """Capacity currently granted to tenants, bytes."""
        return sum(l.nbytes for l in self._leases if l.active)

    @property
    def free_bytes(self) -> int:
        """Capacity available for new grants, bytes."""
        return self.capacity_bytes - self.leased_bytes

    @property
    def queue_depth(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._queue)

    @property
    def active_leases(self) -> tuple[Lease, ...]:
        """All currently granted leases."""
        return tuple(l for l in self._leases if l.active)

    @property
    def utilization(self) -> float:
        """Fraction of pool capacity currently leased."""
        return self.leased_bytes / self.capacity_bytes

    def sample(self, time: float) -> PoolSample:
        """Capture a telemetry sample of the pool at ``time``."""
        return PoolSample(
            time=float(time),
            leased_bytes=self.leased_bytes,
            queue_depth=self.queue_depth,
            active_leases=len(self.active_leases),
        )

    # -- leasing -------------------------------------------------------------------

    def request(self, tenant: str, nbytes: int, time: float = 0.0) -> Lease:
        """Request ``nbytes`` of pool capacity for ``tenant``.

        Returns a :class:`Lease` whose state tells the caller what happened:
        ``granted`` (capacity reserved immediately), ``queued`` (will be
        granted by a later :meth:`release`) or ``rejected`` (the request can
        never be satisfied because it exceeds the pool's total capacity).
        A zero-byte request is granted trivially — the tenant simply does not
        use the pool.

        On an ``elastic`` pool a request that does not fit is granted anyway
        when shrinking the running leases (proportionally, never below their
        floors) can free enough capacity; it queues like on a rigid pool
        only when even full shrinkage would not fit it — and elastic
        reclamation never lets a request overtake earlier queued ones.
        """
        if nbytes < 0:
            raise FabricError("cannot request a negative amount of pool capacity")
        lease = Lease(
            lease_id=self._next_id,
            tenant=tenant,
            nbytes=int(nbytes),
            state=LEASE_QUEUED,
            requested_at=float(time),
            requested_nbytes=int(nbytes),
        )
        self._next_id += 1
        self._leases.append(lease)
        if lease.nbytes > self.capacity_bytes:
            lease.state = LEASE_REJECTED
            metrics().counter("fabric.pool.rejected").inc()
        elif lease.nbytes == 0 or (lease.nbytes <= self.free_bytes and not self._queue):
            # Zero-byte requests occupy nothing, so they never wait behind the
            # queue; non-zero requests must not overtake earlier queued ones.
            lease.state = LEASE_GRANTED
            lease.granted_at = float(time)
            metrics().counter("fabric.pool.granted").inc()
        elif (
            self.elastic
            and not self._queue
            and self.free_bytes + self._reclaimable_bytes() >= lease.nbytes
        ):
            self._reclaim(lease.nbytes - self.free_bytes, time)
            lease.state = LEASE_GRANTED
            lease.granted_at = float(time)
            metrics().counter("fabric.pool.granted").inc()
        else:
            self._queue.append(lease)
            metrics().counter("fabric.pool.queued").inc()
        return lease

    def release(self, lease: Lease, time: float = 0.0) -> list[Lease]:
        """Return a granted lease to the pool and admit queued requests.

        Returns the leases that became granted as a consequence (in FIFO
        order), so a co-simulator can start the corresponding tenants.
        """
        if lease.state == LEASE_QUEUED:
            # Cancelling a queued request is allowed (e.g. a tenant gives up).
            self._queue.remove(lease)
            lease.state = LEASE_RELEASED
            lease.released_at = float(time)
            metrics().counter("fabric.pool.released").inc()
            return self._admit(time)
        if lease.state != LEASE_GRANTED:
            raise FabricError(
                f"lease {lease.lease_id} of {lease.tenant!r} is {lease.state}, "
                "only granted or queued leases can be released"
            )
        lease.state = LEASE_RELEASED
        lease.released_at = float(time)
        metrics().counter("fabric.pool.released").inc()
        return self._admit(time)

    def _admit(self, time: float) -> list[Lease]:
        """Grant queued requests from the head of the queue while they fit."""
        admitted: list[Lease] = []
        while self._queue and self._queue[0].nbytes <= self.free_bytes:
            lease = self._queue.pop(0)
            lease.state = LEASE_GRANTED
            lease.granted_at = float(time)
            admitted.append(lease)
        if admitted:
            metrics().counter("fabric.pool.granted").inc(len(admitted))
        return admitted

    # -- elasticity / fault surface ------------------------------------------------

    def _floor_of(self, lease: Lease) -> int:
        """Bytes an elastic shrink must leave a granted lease."""
        return int(math.ceil(lease.requested_nbytes * self.min_lease_fraction))

    def _reclaimable_bytes(self) -> int:
        """Bytes elastic shrinking could free without breaching any floor."""
        return sum(
            max(l.nbytes - self._floor_of(l), 0) for l in self._leases if l.active
        )

    def _shrink_by(self, lease: Lease, nbytes: int, time: float) -> int:
        """Take up to ``nbytes`` from a granted lease; log one reclaim record."""
        take = min(int(nbytes), lease.nbytes)
        if take <= 0:
            return 0
        lease.nbytes -= take
        self._reclaims.append(
            ReclaimRecord(
                tenant=lease.tenant,
                lease_id=lease.lease_id,
                nbytes=take,
                time=float(time),
                kind="shrink",
            )
        )
        metrics().counter("fabric.pool.shrunk").inc()
        return take

    def _reclaim(self, needed: int, time: float) -> int:
        """Shrink active leases proportionally to free ``needed`` bytes.

        Each victim loses spare capacity (above its floor) in proportion to
        how much spare it has, rounded up, so the target is met with minimal
        overshoot; a greedy second pass covers any rounding shortfall.
        Returns the bytes actually freed (less than ``needed`` when floors
        bind).
        """
        victims = [l for l in self._leases if l.active]
        total_spare = sum(max(l.nbytes - self._floor_of(l), 0) for l in victims)
        if total_spare <= 0 or needed <= 0:
            return 0
        reclaimed = 0
        for lease in victims:
            if reclaimed >= needed:
                break
            spare = max(lease.nbytes - self._floor_of(lease), 0)
            share = -(-spare * int(needed) // total_spare)  # ceil
            reclaimed += self._shrink_by(
                lease, min(spare, share, needed - reclaimed), time
            )
        for lease in victims:
            if reclaimed >= needed:
                break
            spare = max(lease.nbytes - self._floor_of(lease), 0)
            reclaimed += self._shrink_by(lease, min(spare, needed - reclaimed), time)
        return reclaimed

    def shrink(self, lease: Lease, nbytes: int, time: float = 0.0) -> int:
        """Reclaim up to ``nbytes`` from a granted lease (fault injection).

        The lease keeps running with the smaller grant; its ``nbytes`` never
        goes below zero because the reclaim is clamped to the current grant.
        Freed capacity admits queued requests immediately.  Returns the bytes
        actually reclaimed.
        """
        if nbytes < 0:
            raise FabricError("cannot shrink a lease by a negative amount")
        if lease.state != LEASE_GRANTED:
            raise FabricError(
                f"lease {lease.lease_id} of {lease.tenant!r} is {lease.state}, "
                "only granted leases can be shrunk"
            )
        taken = self._shrink_by(lease, nbytes, time)
        if taken:
            self._admit(time)
        return taken

    def revoke(self, lease: Lease, time: float = 0.0) -> int:
        """Revoke a granted lease outright (fault injection).

        The lease stops occupying capacity but keeps its byte count, so the
        tenant (or the co-simulator on its behalf) can re-request the same
        amount later — the re-request joins the back of the FIFO queue like
        any new request.  Returns the bytes freed.
        """
        if lease.state != LEASE_GRANTED:
            raise FabricError(
                f"lease {lease.lease_id} of {lease.tenant!r} is {lease.state}, "
                "only granted leases can be revoked"
            )
        freed = lease.nbytes
        lease.state = LEASE_REVOKED
        lease.revoked_at = float(time)
        self._reclaims.append(
            ReclaimRecord(
                tenant=lease.tenant,
                lease_id=lease.lease_id,
                nbytes=freed,
                time=float(time),
                kind="revoke",
            )
        )
        metrics().counter("fabric.pool.revoked").inc()
        self._admit(time)
        return freed

    def lose_capacity(self, nbytes: int, time: float = 0.0) -> int:
        """Remove ``nbytes`` of capacity from the pool (fault injection).

        Capacity never drops below one byte.  Queued requests that can no
        longer ever fit are rejected; if the granted leases now exceed
        capacity, an elastic pool shrinks them toward their floors first,
        then (elastic or not) the youngest granted leases are revoked until
        the pool fits again.  Returns the bytes actually removed.
        """
        if nbytes <= 0:
            raise FabricError("lose_capacity requires nbytes > 0")
        lost = min(int(nbytes), self.capacity_bytes - 1)
        if lost <= 0:
            return 0
        self.capacity_bytes -= lost
        metrics().counter("fabric.pool.capacity_lost_bytes").inc(lost)
        for lease in list(self._queue):
            if lease.nbytes > self.capacity_bytes:
                self._queue.remove(lease)
                lease.state = LEASE_REJECTED
                metrics().counter("fabric.pool.rejected").inc()
        while self.leased_bytes > self.capacity_bytes:
            over = self.leased_bytes - self.capacity_bytes
            if self.elastic and self._reclaim(over, time) > 0:
                continue
            active = [l for l in self._leases if l.active]
            if not active:  # pragma: no cover - leased>capacity implies active
                break
            self.revoke(max(active, key=lambda l: l.lease_id), time)
        return lost

    def consume_reclaims(self) -> tuple[ReclaimRecord, ...]:
        """Drain the reclaim log (destructive — each record is returned once).

        The co-simulator calls this after every pool mutation and converts
        each record into migration debt for the named tenant; draining
        destructively is what makes the migration cost charge exactly once.
        """
        records = tuple(self._reclaims)
        self._reclaims.clear()
        return records

    def describe(self) -> dict:
        """Summary of the pool state."""
        return {
            "name": self.name,
            "capacity_bytes": self.capacity_bytes,
            "leased_bytes": self.leased_bytes,
            "free_bytes": self.free_bytes,
            "utilization": self.utilization,
            "queue_depth": self.queue_depth,
            "active_leases": len(self.active_leases),
        }
