"""Shared memory pool with capacity leasing and admission control.

The paper's target architecture (Figure 2) gives every rack one
fabric-attached memory pool that all compute nodes borrow capacity from.
:class:`MemoryPool` models the pool-side resource manager sketched in the
Section 7.2 extension: tenants *request* remote capacity before they start,
the pool either **grants** the lease, **queues** the request until enough
capacity is released, or **rejects** it outright when it could never fit.
Leases are returned on job completion, at which point queued requests are
admitted in FIFO order.

The pool only manages *capacity*; bandwidth contention on the way to the pool
is the :class:`~repro.fabric.topology.FabricTopology`'s job.

Units and coupling: capacities and leases are **bytes**; timestamps are
simulated seconds supplied by whoever drives the pool (the batch
:meth:`~repro.fabric.cosim.RackCoSimulator.run` loop, or a scheduler stepping
the rack incrementally).  When the scheduler couples jobs to fabric tenants,
one lease mirrors one job's ``pool_gb`` reservation and lives exactly as long
as the job — the pool never expires leases on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config.errors import FabricError
from ..telemetry import metrics

#: Lease lifecycle states.
LEASE_GRANTED = "granted"
LEASE_QUEUED = "queued"
LEASE_REJECTED = "rejected"
LEASE_RELEASED = "released"


@dataclass
class Lease:
    """One tenant's claim on pool capacity.

    Attributes
    ----------
    lease_id:
        Monotonic identifier assigned by the pool.
    tenant:
        Name of the requesting tenant (job / node).
    nbytes:
        Requested pool capacity in bytes.
    state:
        One of ``granted``, ``queued``, ``rejected`` or ``released``.
    requested_at / granted_at / released_at:
        Simulated timestamps of the lease lifecycle (None until reached).
    """

    lease_id: int
    tenant: str
    nbytes: int
    state: str
    requested_at: float
    granted_at: Optional[float] = None
    released_at: Optional[float] = None

    @property
    def active(self) -> bool:
        """Whether the lease currently occupies pool capacity."""
        return self.state == LEASE_GRANTED

    @property
    def wait_time(self) -> float:
        """Time the request spent queued before being granted (0 if immediate)."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.requested_at


@dataclass(frozen=True)
class PoolSample:
    """One telemetry sample of the pool's state."""

    time: float
    leased_bytes: int
    queue_depth: int
    active_leases: int


class MemoryPool:
    """Rack-level disaggregated memory pool with admission control.

    Parameters
    ----------
    capacity_bytes:
        Total capacity of the pool in bytes.
    name:
        Human-readable pool name used in telemetry/reports.

    Admission is first-come-first-served with head-of-line blocking: queued
    requests are admitted strictly in arrival order, so a large queued request
    is never starved by smaller ones arriving later.
    """

    def __init__(self, capacity_bytes: int, name: str = "pool-0") -> None:
        if capacity_bytes <= 0:
            raise FabricError("pool capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.name = name
        self._leases: list[Lease] = []
        self._queue: list[Lease] = []
        self._next_id = 0

    # -- state ---------------------------------------------------------------------

    @property
    def leased_bytes(self) -> int:
        """Capacity currently granted to tenants, bytes."""
        return sum(l.nbytes for l in self._leases if l.active)

    @property
    def free_bytes(self) -> int:
        """Capacity available for new grants, bytes."""
        return self.capacity_bytes - self.leased_bytes

    @property
    def queue_depth(self) -> int:
        """Number of requests waiting for capacity."""
        return len(self._queue)

    @property
    def active_leases(self) -> tuple[Lease, ...]:
        """All currently granted leases."""
        return tuple(l for l in self._leases if l.active)

    @property
    def utilization(self) -> float:
        """Fraction of pool capacity currently leased."""
        return self.leased_bytes / self.capacity_bytes

    def sample(self, time: float) -> PoolSample:
        """Capture a telemetry sample of the pool at ``time``."""
        return PoolSample(
            time=float(time),
            leased_bytes=self.leased_bytes,
            queue_depth=self.queue_depth,
            active_leases=len(self.active_leases),
        )

    # -- leasing -------------------------------------------------------------------

    def request(self, tenant: str, nbytes: int, time: float = 0.0) -> Lease:
        """Request ``nbytes`` of pool capacity for ``tenant``.

        Returns a :class:`Lease` whose state tells the caller what happened:
        ``granted`` (capacity reserved immediately), ``queued`` (will be
        granted by a later :meth:`release`) or ``rejected`` (the request can
        never be satisfied because it exceeds the pool's total capacity).
        A zero-byte request is granted trivially — the tenant simply does not
        use the pool.
        """
        if nbytes < 0:
            raise FabricError("cannot request a negative amount of pool capacity")
        lease = Lease(
            lease_id=self._next_id,
            tenant=tenant,
            nbytes=int(nbytes),
            state=LEASE_QUEUED,
            requested_at=float(time),
        )
        self._next_id += 1
        self._leases.append(lease)
        if lease.nbytes > self.capacity_bytes:
            lease.state = LEASE_REJECTED
            metrics().counter("fabric.pool.rejected").inc()
        elif lease.nbytes == 0 or (lease.nbytes <= self.free_bytes and not self._queue):
            # Zero-byte requests occupy nothing, so they never wait behind the
            # queue; non-zero requests must not overtake earlier queued ones.
            lease.state = LEASE_GRANTED
            lease.granted_at = float(time)
            metrics().counter("fabric.pool.granted").inc()
        else:
            self._queue.append(lease)
            metrics().counter("fabric.pool.queued").inc()
        return lease

    def release(self, lease: Lease, time: float = 0.0) -> list[Lease]:
        """Return a granted lease to the pool and admit queued requests.

        Returns the leases that became granted as a consequence (in FIFO
        order), so a co-simulator can start the corresponding tenants.
        """
        if lease.state == LEASE_QUEUED:
            # Cancelling a queued request is allowed (e.g. a tenant gives up).
            self._queue.remove(lease)
            lease.state = LEASE_RELEASED
            lease.released_at = float(time)
            metrics().counter("fabric.pool.released").inc()
            return self._admit(time)
        if lease.state != LEASE_GRANTED:
            raise FabricError(
                f"lease {lease.lease_id} of {lease.tenant!r} is {lease.state}, "
                "only granted or queued leases can be released"
            )
        lease.state = LEASE_RELEASED
        lease.released_at = float(time)
        metrics().counter("fabric.pool.released").inc()
        return self._admit(time)

    def _admit(self, time: float) -> list[Lease]:
        """Grant queued requests from the head of the queue while they fit."""
        admitted: list[Lease] = []
        while self._queue and self._queue[0].nbytes <= self.free_bytes:
            lease = self._queue.pop(0)
            lease.state = LEASE_GRANTED
            lease.granted_at = float(time)
            admitted.append(lease)
        if admitted:
            metrics().counter("fabric.pool.granted").inc(len(admitted))
        return admitted

    def describe(self) -> dict:
        """Summary of the pool state."""
        return {
            "name": self.name,
            "capacity_bytes": self.capacity_bytes,
            "leased_bytes": self.leased_bytes,
            "free_bytes": self.free_bytes,
            "utilization": self.utilization,
            "queue_depth": self.queue_depth,
            "active_leases": len(self.active_leases),
        }
