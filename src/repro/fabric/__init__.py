"""Rack-scale shared memory-pool fabric co-simulation.

The fabric subsystem models a whole rack of the paper's target architecture
(Figure 2): a shared :class:`MemoryPool` with capacity leasing and admission
control, a :class:`FabricTopology` of per-node links feeding shared pool
ports, and a :class:`RackCoSimulator` that advances all tenants in epochs so
interference between them is emergent rather than injected.
:class:`DynamicInterference` carries the derived background timelines back
into the single-node execution engine.

The co-simulator can also be driven incrementally — admit/withdraw tenants,
step between external events, checkpoint and roll epochs back — which is how
:mod:`repro.scheduler.progress` puts the fabric in the scheduling loop.  The
units, epoch semantics and tenant↔job mapping of that coupling are documented
in :mod:`repro.fabric.cosim`.

Above the rack, :mod:`repro.fabric.cluster` composes racks into a
:class:`ClusterFabric` (uplinks + shared spine + hierarchical pools) stepped
by a :class:`ClusterCoSimulator`; the batched NumPy contention solver and the
demand-keyed :class:`ContentionCache` that make it scale live in
:mod:`repro.fabric.solver`.

Finally, :mod:`repro.fabric.faults` makes the whole stack chaos-testable: a
deterministic :class:`FaultSchedule` of port-kill / port-degrade /
lease-revoke / capacity-loss events injected into either co-simulator, elastic
(overcommitting) pools with modeled page give-back migration costs, and a
:class:`BlastRadiusReport` quantifying the damage.  The failure model —
units, determinism and recovery contracts — is documented in
``docs/failure_model.md``.
"""

from .cluster import (
    ClusterCheckpoint,
    ClusterCoSimulator,
    ClusterFabric,
    ClusterSolve,
    ClusterTenantOutcome,
)
from .cosim import (
    EpochCheckpoint,
    RackCoSimResult,
    RackCoSimulator,
    RackTelemetry,
    TenantOutcome,
    TenantSpec,
    uniform_tenants,
)
from .faults import (
    DEFAULT_DRAIN_BYTES_PER_S,
    FAULT_KINDS,
    FAULT_LEASE_REVOKE,
    FAULT_LEASE_SHRINK,
    FAULT_POOL_CAPACITY_LOSS,
    FAULT_PORT_DEGRADE,
    FAULT_PORT_KILL,
    FAULT_PORT_RESTORE,
    BlastRadiusReport,
    FaultEvent,
    FaultSchedule,
    TenantImpact,
    parse_fault_spec,
)
from .interference import DynamicInterference
from .pool import (
    LEASE_GRANTED,
    LEASE_QUEUED,
    LEASE_REJECTED,
    LEASE_RELEASED,
    LEASE_REVOKED,
    Lease,
    MemoryPool,
    PoolSample,
    ReclaimRecord,
)
from .solver import (
    DEFAULT_CACHE_QUANTUM,
    SOLVER_SCALAR,
    SOLVER_VECTORIZED,
    SOLVERS,
    ContentionCache,
    FixedPointResult,
    quantize_demands,
    solve_fixed_point,
    validate_solver,
)
from .topology import FabricConvergenceWarning, FabricTopology, SolveDiagnostics

__all__ = [
    "FabricConvergenceWarning",
    "SolveDiagnostics",
    "ClusterCheckpoint",
    "ClusterCoSimulator",
    "ClusterFabric",
    "ClusterSolve",
    "ClusterTenantOutcome",
    "ContentionCache",
    "FixedPointResult",
    "DEFAULT_CACHE_QUANTUM",
    "SOLVERS",
    "SOLVER_SCALAR",
    "SOLVER_VECTORIZED",
    "quantize_demands",
    "solve_fixed_point",
    "validate_solver",
    "EpochCheckpoint",
    "RackCoSimResult",
    "RackCoSimulator",
    "RackTelemetry",
    "TenantOutcome",
    "TenantSpec",
    "uniform_tenants",
    "DynamicInterference",
    "BlastRadiusReport",
    "DEFAULT_DRAIN_BYTES_PER_S",
    "FAULT_KINDS",
    "FAULT_LEASE_REVOKE",
    "FAULT_LEASE_SHRINK",
    "FAULT_POOL_CAPACITY_LOSS",
    "FAULT_PORT_DEGRADE",
    "FAULT_PORT_KILL",
    "FAULT_PORT_RESTORE",
    "FaultEvent",
    "FaultSchedule",
    "TenantImpact",
    "parse_fault_spec",
    "LEASE_GRANTED",
    "LEASE_QUEUED",
    "LEASE_REJECTED",
    "LEASE_RELEASED",
    "LEASE_REVOKED",
    "Lease",
    "MemoryPool",
    "PoolSample",
    "ReclaimRecord",
    "FabricTopology",
]
