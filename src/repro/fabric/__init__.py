"""Rack-scale shared memory-pool fabric co-simulation.

The fabric subsystem models a whole rack of the paper's target architecture
(Figure 2): a shared :class:`MemoryPool` with capacity leasing and admission
control, a :class:`FabricTopology` of per-node links feeding shared pool
ports, and a :class:`RackCoSimulator` that advances all tenants in epochs so
interference between them is emergent rather than injected.
:class:`DynamicInterference` carries the derived background timelines back
into the single-node execution engine.
"""

from .cosim import (
    RackCoSimResult,
    RackCoSimulator,
    RackTelemetry,
    TenantOutcome,
    TenantSpec,
    uniform_tenants,
)
from .interference import DynamicInterference
from .pool import (
    LEASE_GRANTED,
    LEASE_QUEUED,
    LEASE_REJECTED,
    LEASE_RELEASED,
    Lease,
    MemoryPool,
    PoolSample,
)
from .topology import FabricTopology

__all__ = [
    "RackCoSimResult",
    "RackCoSimulator",
    "RackTelemetry",
    "TenantOutcome",
    "TenantSpec",
    "uniform_tenants",
    "DynamicInterference",
    "LEASE_GRANTED",
    "LEASE_QUEUED",
    "LEASE_REJECTED",
    "LEASE_RELEASED",
    "Lease",
    "MemoryPool",
    "PoolSample",
    "FabricTopology",
]
