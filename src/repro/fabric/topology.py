"""Fabric topology: per-node links feeding shared memory-pool ports.

Every compute node reaches the rack's memory pool through its own node link
(bounded by the testbed's per-node sustainable remote bandwidth) into one of a
small number of shared **pool ports**.  A port is where interference becomes
emergent: its utilisation is computed from *all* concurrent tenants' offered
bandwidth demands, and the contention-induced waiting time comes from the same
:mod:`repro.interconnect.queueing` models the single-node simulator uses
(Section 3.2's M/M/1 explanation of why contention keeps growing past counter
saturation).

The topology is stateless: callers pass the current per-node demand map and
get back background bandwidth, utilisation and link shares.  The
:class:`~repro.fabric.cosim.RackCoSimulator` drives it epoch by epoch, and
placement policies reuse the same resolution to *project* the pressure a
prospective tenant would add (statelessness is what makes such what-if
queries free of side effects).

Units: all demands, backgrounds and delivered values are **bytes/s of data
payload**; protocol overhead is applied inside the
:class:`~repro.interconnect.link.RemoteLink` when traffic and Levels of
Interference are derived.  Node indices are rack-local (0-based), matching
the tenant→node mapping of the co-simulator.

Statelessness also carries the failure model: the topology itself is never
mutated by faults.  A killed or degraded pool port
(``docs/failure_model.md``) lives entirely in the co-simulator's port-scale
map — killed ports drop their nodes from the demand vector, degraded ports
re-enter the resolution as extra background traffic — so once the fault is
lifted the very next resolve is indistinguishable from a never-faulted one
(the recovery contract: no residual topology state).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from ..config.errors import FabricError
from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig
from ..interconnect.link import LinkShare, RemoteLink
from ..interconnect.queueing import QueueingModel
from ..telemetry import metrics, trace_span
from .solver import (
    BACKOFF_IMPROVEMENT,
    BACKOFF_WINDOW,
    DEFAULT_CACHE_QUANTUM,
    SOLVER_SCALAR,
    SOLVER_VECTORIZED,
    ContentionCache,
    solve_fixed_point,
    validate_solver,
)


class FabricConvergenceWarning(RuntimeWarning):
    """The damped fixed-point solver exhausted its iteration budget."""


@dataclass(frozen=True)
class SolveDiagnostics:
    """What one fixed-point contention resolution actually did.

    Attributes
    ----------
    delivered:
        Resolved per-node delivered bandwidth, bytes/s (the solver's answer).
    iterations:
        Fixed-point iterations executed before convergence (or the budget).
    converged:
        Whether the final update moved every node by less than the tolerance.
    residual:
        The last iteration's largest per-node update, bytes/s — 0 exactly
        when no node moved, below the tolerance when ``converged``.
    damping:
        The damping factor actually used (derived from the sharing degree
        when the caller did not pass one).
    """

    delivered: dict[int, float]
    iterations: int
    converged: bool
    residual: float
    damping: float


class FabricTopology:
    """Rack fabric: ``n_nodes`` node links feeding ``n_ports`` shared pool ports.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes in the rack.
    n_ports:
        Number of pool-side fabric ports; nodes are assigned round-robin
        (node ``i`` uses port ``i % n_ports``).  One port shared by every node
        is the paper's emulation setup scaled out.
    testbed:
        Platform description providing the per-node link bandwidth, latency
        and the port's peak traffic / protocol overhead.
    port_capacity_scale:
        Multiplier (>= 1) on the testbed's peak link traffic for each pool
        port — a real pool port is often provisioned wider than one node link.
    queueing:
        Contention model shared by all ports (defaults to the link's M/M/1).
    solver:
        Default fixed-point implementation for :meth:`resolve` /
        :meth:`resolve_detailed`: ``"vectorized"`` (NumPy, the default) or
        ``"scalar"`` (the original pure-Python reference).  Both compute the
        same damped fixed point; they differ only in float-rounding of the
        per-port background sums, orders of magnitude below the solve
        tolerance.  A per-call ``solver=`` argument overrides this.
    """

    def __init__(
        self,
        n_nodes: int,
        n_ports: int = 1,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        port_capacity_scale: float = 1.0,
        queueing: QueueingModel | None = None,
        solver: str = SOLVER_VECTORIZED,
    ) -> None:
        if n_nodes <= 0:
            raise FabricError("a fabric needs at least one node")
        if n_ports <= 0:
            raise FabricError("a fabric needs at least one pool port")
        if port_capacity_scale < 1.0:
            raise FabricError("port_capacity_scale must be >= 1")
        self.n_nodes = int(n_nodes)
        self.n_ports = int(n_ports)
        self.testbed = testbed
        self.solver = validate_solver(solver)
        self._cache: ContentionCache | None = None
        port_testbed = (
            testbed
            if port_capacity_scale == 1.0
            else replace(
                testbed, link_peak_traffic=testbed.link_peak_traffic * port_capacity_scale
            )
        )
        #: One shared link model per pool port.
        self.ports: tuple[RemoteLink, ...] = tuple(
            RemoteLink(port_testbed, queueing) for _ in range(self.n_ports)
        )

    # -- wiring --------------------------------------------------------------------

    def port_of(self, node: int) -> int:
        """Index of the pool port node ``node`` is wired to."""
        if not 0 <= node < self.n_nodes:
            raise FabricError(f"node {node} is not part of this {self.n_nodes}-node fabric")
        return node % self.n_ports

    def nodes_on_port(self, port: int) -> tuple[int, ...]:
        """All nodes sharing pool port ``port``."""
        if not 0 <= port < self.n_ports:
            raise FabricError(f"port {port} does not exist (fabric has {self.n_ports})")
        return tuple(n for n in range(self.n_nodes) if n % self.n_ports == port)

    def link_of(self, node: int) -> RemoteLink:
        """The shared link model behind node ``node``'s pool port."""
        return self.ports[self.port_of(node)]

    # -- demand resolution ------------------------------------------------------------

    def _node_demand(self, node: int, demands: Mapping[int, float]) -> float:
        """One node's offered pool bandwidth, clipped to its node link."""
        return min(max(float(demands.get(node, 0.0)), 0.0), self.testbed.remote_bandwidth)

    def offered_on_port(self, port: int, demands: Mapping[int, float]) -> float:
        """Total data bandwidth offered to ``port`` by all its nodes, bytes/s."""
        return sum(self._node_demand(n, demands) for n in self.nodes_on_port(port))

    def background_for(self, node: int, demands: Mapping[int, float]) -> float:
        """Bandwidth a node's co-runners offer on its shared port, bytes/s.

        This is what the node experiences as *background interference*: the sum
        of every other tenant's demand on the same pool port, each clipped to
        what its own node link can carry.
        """
        port = self.port_of(node)
        return sum(
            self._node_demand(n, demands)
            for n in self.nodes_on_port(port)
            if n != node
        )

    def enable_solver_cache(
        self, maxsize: int = 4096, quantum: float = DEFAULT_CACHE_QUANTUM
    ) -> ContentionCache:
        """Attach (and return) an LRU cache of resolved contention states.

        Subsequent :meth:`resolve` / :meth:`resolve_detailed` calls serve
        repeat demand vectors — quantized to ``quantum`` bytes/s, so
        sub-quantum perturbations hit too — without re-running the fixed
        point.  The cache is keyed on demands and solve parameters only
        (one cache per topology; never share across differently-wired
        fabrics).  Call again to replace the cache with a fresh one; call
        :meth:`disable_solver_cache` to turn it off.
        """
        self._cache = ContentionCache(maxsize=maxsize, quantum=quantum)
        return self._cache

    def disable_solver_cache(self) -> None:
        """Drop the contention cache; every solve runs the fixed point again."""
        self._cache = None

    @property
    def solver_cache(self) -> ContentionCache | None:
        """The attached contention cache, or None when caching is off."""
        return self._cache

    def resolve(
        self,
        demands: Mapping[int, float],
        iterations: int = 64,
        damping: float | None = None,
        tolerance: float = 1e6,
        solver: str | None = None,
    ) -> dict[int, float]:
        """Delivered bandwidth per node under mutual port contention, bytes/s.

        Convenience wrapper over :meth:`resolve_detailed` for callers that
        only want the allocation; the full convergence diagnostics (and the
        non-convergence warning) live there.
        """
        return self.resolve_detailed(
            demands, iterations, damping, tolerance, solver
        ).delivered

    def resolve_detailed(
        self,
        demands: Mapping[int, float],
        iterations: int = 64,
        damping: float | None = None,
        tolerance: float = 1e6,
        solver: str | None = None,
    ) -> SolveDiagnostics:
        """Resolve port contention and report what the solver did.

        Every node's delivered bandwidth depends on how much its co-runners
        actually move (not on what they merely ask for: a throttled co-runner
        stops eating capacity it cannot use), so the allocation is resolved
        with a damped fixed point.  Symmetric overload converges to a fair
        share of the port's data capacity, which is how real coherent fabrics
        behave under saturation.

        A node's update direction couples to the sum of its co-runners'
        values, so the iteration map has a slope of about ``-(k - 1)`` for
        ``k`` nodes sharing a port; the default damping of ``1/k`` cancels
        that slope and makes the iteration contract for any sharing degree
        (an explicit ``damping`` overrides it).  ``tolerance`` is the
        convergence threshold in bytes/s (1 MB/s by default — far below any
        bandwidth that matters here).

        The returned :class:`SolveDiagnostics` records iterations used,
        convergence and the final residual; a solve that exhausts its budget
        additionally emits a :class:`FabricConvergenceWarning` and bumps the
        ``fabric.solve.nonconverged`` telemetry counter, so silent
        non-convergence cannot skew results unnoticed.  When a contention
        cache is attached (:meth:`enable_solver_cache`), a repeated demand
        vector returns the cached diagnostics — including the warning, so a
        cached non-convergence stays as loud as a fresh one.
        """
        solver = validate_solver(solver if solver is not None else self.solver)
        if damping is not None and not 0.0 < damping <= 1.0:
            raise FabricError("damping must be in (0, 1]")
        if damping is None:
            max_sharing = max(
                (
                    sum(1 for other in demands if self.port_of(other) == self.port_of(node))
                    for node in demands
                ),
                default=1,
            )
            damping = 1.0 / max(max_sharing, 1)
        cache_key = None
        if self._cache is not None:
            cache_key = self._cache.key(demands, iterations, damping, tolerance)
            cached = self._cache.get(cache_key)
            if cached is not None:
                metrics().counter("fabric.solve.calls").inc()
                self._warn_nonconverged(cached, tolerance)
                return replace(cached, delivered=dict(cached.delivered))
        with trace_span("fabric.solve", nodes=len(demands), solver=solver):
            if solver == SOLVER_SCALAR:
                delivered, used, converged, max_delta = self._solve_scalar(
                    demands, iterations, damping, tolerance
                )
            else:
                delivered, used, converged, max_delta = self._solve_vectorized(
                    demands, iterations, damping, tolerance
                )
        registry = metrics()
        registry.counter("fabric.solve.calls").inc()
        registry.histogram("fabric.solve.iterations").observe(used)
        diagnostics = SolveDiagnostics(
            delivered=delivered,
            iterations=used,
            converged=converged,
            residual=max_delta,
            damping=damping,
        )
        if cache_key is not None:
            self._cache.put(cache_key, diagnostics)
        self._warn_nonconverged(diagnostics, tolerance)
        return diagnostics

    def _solve_scalar(
        self,
        demands: Mapping[int, float],
        iterations: int,
        damping: float,
        tolerance: float,
    ) -> tuple[dict[int, float], int, bool, float]:
        """The pure-Python fixed point — the reference implementation the
        differential test suite checks the vectorized path against.  Applies
        the same adaptive damping backoff as
        :func:`repro.fabric.solver.solve_fixed_point` (the two rules must
        never drift, or the equivalence suite loses its meaning)."""
        delivered = {n: self._node_demand(n, demands) for n in demands}
        max_delta = 0.0
        converged = False
        used = 0
        window_residual: float | None = None
        for _ in range(max(int(iterations), 1)):
            used += 1
            max_delta = 0.0
            updated: dict[int, float] = {}
            for node in delivered:
                offered = self._node_demand(node, demands)
                background = sum(
                    delivered[other]
                    for other in self.nodes_on_port(self.port_of(node))
                    if other != node and other in delivered
                )
                share = self.link_of(node).share(offered, background)
                target = min(offered, share.available_bandwidth)
                new_value = delivered[node] + damping * (target - delivered[node])
                max_delta = max(max_delta, abs(new_value - delivered[node]))
                updated[node] = new_value
            delivered = updated
            if max_delta < tolerance:
                converged = True
                break
            if used % BACKOFF_WINDOW == 0:
                if (
                    window_residual is not None
                    and max_delta > BACKOFF_IMPROVEMENT * window_residual
                ):
                    damping = 1.0 - 0.5 * (1.0 - damping)
                window_residual = max_delta
        return delivered, used, converged, max_delta

    def _solve_vectorized(
        self,
        demands: Mapping[int, float],
        iterations: int,
        damping: float,
        tolerance: float,
    ) -> tuple[dict[int, float], int, bool, float]:
        """The NumPy fixed point: same update rule on flat arrays.

        All ports of one topology are built identically, so port capacity and
        node bandwidth are scalars here; :func:`solve_fixed_point` also takes
        per-entry arrays, which is how :class:`~repro.fabric.cluster.
        ClusterFabric` batches heterogeneous racks through the same kernel.
        """
        nodes = list(demands)
        port_index = np.array([self.port_of(n) for n in nodes], dtype=np.intp)
        offered = np.array([self._node_demand(n, demands) for n in nodes])
        link = self.ports[0]
        result = solve_fixed_point(
            offered,
            port_index,
            capacity=link.data_capacity,
            node_bandwidth=link.node_bandwidth,
            min_share=RemoteLink.MIN_SHARE,
            damping=damping,
            iterations=iterations,
            tolerance=tolerance,
        )
        delivered = {n: float(v) for n, v in zip(nodes, result.delivered)}
        return delivered, result.iterations, result.converged, result.residual

    def _warn_nonconverged(
        self, diagnostics: SolveDiagnostics, tolerance: float
    ) -> None:
        """Emit the non-convergence warning + counter for a finished solve."""
        if diagnostics.converged:
            return
        metrics().counter("fabric.solve.nonconverged").inc()
        warnings.warn(
            f"fixed-point contention solve did not converge within "
            f"{diagnostics.iterations} iterations (residual "
            f"{diagnostics.residual:.3g} bytes/s, tolerance {tolerance:.3g}); "
            f"results reflect the last iterate",
            FabricConvergenceWarning,
            stacklevel=3,
        )

    def share_for(self, node: int, demands: Mapping[int, float]) -> LinkShare:
        """Resolve port contention from one node's perspective.

        The node's own demand competes with the background from its
        co-runners; the returned :class:`LinkShare` carries the available
        bandwidth, total port utilisation and queueing delay.
        """
        link = self.link_of(node)
        return link.share(
            self._node_demand(node, demands), self.background_for(node, demands)
        )

    def port_utilization(self, port: int, demands: Mapping[int, float]) -> float:
        """Utilisation of a pool port under the given demands (can exceed 1)."""
        return self.ports[port].utilization(self.offered_on_port(port, demands))

    def port_waiting_time(self, port: int, demands: Mapping[int, float]) -> float:
        """Queueing delay at a pool port under the given demands, seconds."""
        link = self.ports[port]
        return link.latency_under_load(self.offered_on_port(port, demands)) - link.idle_latency

    def describe(self) -> dict:
        """Summary of the fabric wiring."""
        return {
            "n_nodes": self.n_nodes,
            "n_ports": self.n_ports,
            "node_bandwidth_gbs": self.testbed.remote_bandwidth / 1e9,
            "port_data_capacity_gbs": self.ports[0].data_capacity / 1e9,
            "port_map": {node: self.port_of(node) for node in range(self.n_nodes)},
        }
