"""Vectorized fixed-point contention solving and demand-keyed result caching.

The damped fixed point of :meth:`repro.fabric.topology.FabricTopology.resolve`
is the hot path of every co-simulation epoch, and at cluster scale it runs
once per rack per epoch.  This module provides the NumPy implementation that
makes it scale, plus the supporting machinery the incremental stepper uses:

* :func:`solve_fixed_point` — the Jacobi iteration of the scalar reference
  path expressed on flat arrays, so one call can resolve one rack *or* a
  whole cluster's racks batched into a single demand vector (racks are
  independent because every node belongs to exactly one port).
* :class:`ContentionCache` — a small LRU of resolved allocations keyed by
  *quantized* demand vectors, so what-if sweeps and steady-state epochs that
  re-pose an (almost) identical contention problem skip the iteration
  entirely.

The math mirrors the scalar reference exactly (same damping, same update
rule, same Jacobi scheduling of updates): per iteration every node's
available share is the port's data capacity minus what its co-runners
currently *deliver* (never below ``min_share`` of the capacity, never above
the per-node link), and the node moves a ``damping`` fraction of the way to
``min(offered, available)``.  The only numerical difference is that per-port
background sums are computed as ``port_total - own`` instead of an explicit
sum over co-runners, which differs by float rounding only (orders of
magnitude below the convergence tolerance).  The differential suite in
``tests/fabric/test_solver_equivalence.py`` holds the two paths together.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..telemetry import metrics

#: Solver names accepted everywhere a path is selectable.
SOLVER_SCALAR = "scalar"
SOLVER_VECTORIZED = "vectorized"
SOLVERS = (SOLVER_SCALAR, SOLVER_VECTORIZED)

#: Default demand quantum of the contention cache, bytes/s.  One cache cell
#: is 16 MB/s wide — an order of magnitude above the solver's default
#: convergence tolerance (1 MB/s), three orders below any bandwidth that
#: matters on the modelled fabrics.
DEFAULT_CACHE_QUANTUM = 16e6

#: Adaptive damping backoff: every ``BACKOFF_WINDOW`` iterations the solver
#: checks whether the residual has at least halved (``BACKOFF_IMPROVEMENT``)
#: since the previous window boundary.  A stalled residual means the
#: iteration is contracting too slowly (typically every node clamped to the
#: min-share floor, where the update is a pure geometric decay at rate
#: ``1 - damping``), so the solver halves the *retained* fraction —
#: ``damping ← 1 − (1 − damping) / 2`` — and continues.  Both the scalar
#: reference and this vectorized kernel apply the identical rule, keeping
#: the differential equivalence suite meaningful.
BACKOFF_WINDOW = 8
BACKOFF_IMPROVEMENT = 0.5


@dataclass(frozen=True)
class FixedPointResult:
    """Raw output of one (possibly batched) fixed-point solve.

    ``delivered`` and ``delta`` are aligned with the input arrays;
    ``iterations`` / ``converged`` / ``residual`` describe the global
    iteration (for a batched solve: iterations until *every* sub-problem
    converged, and the largest final update anywhere).  ``delta`` is the
    final iteration's per-entry |update|, letting a batched caller derive
    per-sub-problem residuals/convergence.
    """

    delivered: np.ndarray
    iterations: int
    converged: bool
    residual: float
    delta: np.ndarray


def solve_fixed_point(
    offered: np.ndarray,
    port_index: np.ndarray,
    *,
    capacity: float | np.ndarray,
    node_bandwidth: float | np.ndarray,
    min_share: float,
    damping: float | np.ndarray,
    iterations: int,
    tolerance: float,
) -> FixedPointResult:
    """Resolve port contention for ``offered`` demands on flat arrays.

    Parameters
    ----------
    offered:
        Demand per entry, already clipped to the node link, bytes/s.
    port_index:
        Dense port id per entry (entries sharing an id contend).  Ids only
        need to be non-negative ints; gaps are allowed.
    capacity / node_bandwidth:
        Port data capacity and per-node sustainable bandwidth, bytes/s —
        scalars for a homogeneous fabric or per-entry arrays for a batch of
        differently provisioned racks.
    min_share:
        Fraction of the capacity always left available (the link model's
        deadlock guard).
    damping:
        Initial fixed-point damping in (0, 1], scalar or per-entry (a
        batched solve uses each rack's own sharing-degree-derived damping).
        When the residual stalls across a :data:`BACKOFF_WINDOW` the solver
        adaptively moves the damping toward 1 (see the backoff constants);
        the reported diagnostics keep the initial value.
    iterations / tolerance:
        Iteration budget and convergence threshold in bytes/s.
    """
    offered = np.asarray(offered, dtype=np.float64)
    if offered.size == 0:
        return FixedPointResult(
            delivered=offered.copy(),
            iterations=1,
            converged=True,
            residual=0.0,
            delta=offered.copy(),
        )
    port_index = np.asarray(port_index, dtype=np.intp)
    n_ports = int(port_index.max()) + 1
    capacity = np.broadcast_to(np.asarray(capacity, dtype=np.float64), offered.shape)
    node_bandwidth = np.broadcast_to(
        np.asarray(node_bandwidth, dtype=np.float64), offered.shape
    )
    damping = np.broadcast_to(np.asarray(damping, dtype=np.float64), offered.shape)
    floor = min_share * capacity

    delivered = offered.copy()
    converged = False
    residual = 0.0
    delta = np.zeros_like(delivered)
    used = 0
    window_residual: float | None = None
    for _ in range(max(int(iterations), 1)):
        used += 1
        port_total = np.bincount(port_index, weights=delivered, minlength=n_ports)
        background = port_total[port_index] - delivered
        available = np.minimum(
            np.maximum(capacity - np.minimum(background, capacity), floor),
            node_bandwidth,
        )
        target = np.minimum(offered, available)
        updated = delivered + damping * (target - delivered)
        delta = np.abs(updated - delivered)
        residual = float(np.max(delta))
        delivered = updated
        if residual < tolerance:
            converged = True
            break
        if used % BACKOFF_WINDOW == 0:
            if window_residual is not None and residual > BACKOFF_IMPROVEMENT * window_residual:
                damping = 1.0 - 0.5 * (1.0 - damping)
            window_residual = residual
    return FixedPointResult(
        delivered=delivered,
        iterations=used,
        converged=converged,
        residual=residual,
        delta=delta,
    )


def quantize_demands(
    demands: Mapping[int, float], quantum: float = DEFAULT_CACHE_QUANTUM
) -> tuple[tuple[int, int], ...]:
    """A hashable, order-independent key of a demand map, ``quantum`` coarse.

    Demands within half a quantum of each other map to the same key, which is
    what lets the cache serve slightly perturbed re-poses of one contention
    problem.  The quantum must stay well above the solver tolerance for the
    served result to be within tolerance of a fresh solve.
    """
    return tuple(
        sorted((int(node), int(round(value / quantum))) for node, value in demands.items())
    )


class ContentionCache:
    """LRU cache of resolved contention states keyed by quantized demands.

    One cache belongs to one fabric wiring (the key deliberately does not
    include the topology — attach a fresh cache per
    :class:`~repro.fabric.topology.FabricTopology`).  Hits and misses are
    counted both locally (:attr:`hits` / :attr:`misses`, for tests) and on
    the telemetry registry (``fabric.solve.cache_hits`` /
    ``fabric.solve.cache_misses``).
    """

    def __init__(
        self, maxsize: int = 4096, quantum: float = DEFAULT_CACHE_QUANTUM
    ) -> None:
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        if quantum <= 0:
            raise ValueError("cache quantum must be positive")
        self.maxsize = int(maxsize)
        self.quantum = float(quantum)
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key(
        self,
        demands: Mapping[int, float],
        iterations: int,
        damping: float,
        tolerance: float,
    ) -> tuple:
        """Cache key: quantized demand vector + the solve parameters."""
        return (
            quantize_demands(demands, self.quantum),
            int(iterations),
            round(float(damping), 12),
            float(tolerance),
        )

    def get(self, key: tuple):
        """The cached solve for ``key`` (refreshing its LRU slot), else None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            metrics().counter("fabric.solve.cache_misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        metrics().counter("fabric.solve.cache_hits").inc()
        return entry

    def put(self, key: tuple, value) -> None:
        """Store a solve, evicting the least recently used entry when full."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()


def validate_solver(name: str) -> str:
    """Normalise and validate a solver name (raises ValueError otherwise)."""
    if name not in SOLVERS:
        raise ValueError(f"unknown solver {name!r}; known: {SOLVERS}")
    return name
