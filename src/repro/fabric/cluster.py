"""Cluster-scale fabric: racks composed over uplinks, a spine, and pooled spill.

This is ROADMAP item 1's datacenter layer on top of the single-rack
:mod:`repro.fabric` machinery:

* :class:`ClusterFabric` composes ``n_racks`` :class:`~repro.fabric.topology.
  FabricTopology` racks with per-rack **uplinks** and one shared **spine**
  (both ordinary :class:`~repro.interconnect.link.RemoteLink` models, so the
  capacity/overhead/queueing math is the same at every level of the
  hierarchy), and batches whole-cluster contention resolution through the
  vectorized kernel in :mod:`repro.fabric.solver` — one NumPy solve for all
  racks instead of ``n_racks`` Python loops.
* :class:`ClusterCoSimulator` steps every rack's incremental
  :class:`~repro.fabric.cosim.RackCoSimulator` in **one epoch loop** with
  hierarchical pools: a tenant that does not fit its rack's pool can spill
  into the cluster-level pool, and spilled tenants' pool traffic rides their
  rack's uplink onto the spine — cross-rack spine contention feeds back into
  their progress rates as per-node background offsets
  (:meth:`~repro.fabric.cosim.RackCoSimulator.set_background_offset`).

Scaling comes from three mechanisms, all testable against their slow
reference paths: the batched vectorized solver (``solver="scalar"`` falls
back to per-rack reference solves), the racks' dirty-epoch skip (a rack whose
demand vector is unchanged is not re-solved at rollover), and per-rack
contention caches (:meth:`ClusterFabric.enable_solver_cache`).

Spine coupling model
--------------------

Spilled tenants contend twice outside their rack: with same-rack spilled
tenants on the rack uplink, and with every other rack's spilled traffic on
the spine.  Both are expressed as an *equivalent background on the tenant's
pool port* by scaling foreign traffic with the ratio of port data capacity to
uplink/spine data capacity — i.e. 50% spine utilisation from other racks is
felt like 50%-utilisation-equivalent background on the tenant's own port.
The offsets refresh at every cluster epoch boundary from the racks' live
demands, so the inter-rack feedback loop closes at the same epoch granularity
as the intra-rack one.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from ..config.errors import FabricError
from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig
from ..interconnect.link import RemoteLink
from ..interconnect.queueing import QueueingModel
from ..telemetry import metrics, trace_span
from .cosim import EpochCheckpoint, RackCoSimulator, TenantSpec
from .faults import BlastRadiusReport, FaultSchedule, TenantImpact
from .pool import LEASE_GRANTED, LEASE_QUEUED, LEASE_REJECTED, MemoryPool
from .solver import (
    DEFAULT_CACHE_QUANTUM,
    SOLVER_SCALAR,
    SOLVER_VECTORIZED,
    solve_fixed_point,
    validate_solver,
)
from .topology import FabricConvergenceWarning, FabricTopology, SolveDiagnostics


@dataclass(frozen=True)
class ClusterSolve:
    """One whole-cluster contention resolution.

    ``racks[i]`` is rack ``i``'s :class:`~repro.fabric.topology.
    SolveDiagnostics`.  The cluster-level fields aggregate: ``iterations`` is
    the largest per-rack iteration count (scalar path) or the shared global
    count (vectorized batch), ``converged`` requires every rack to have
    converged, ``residual`` is the largest per-rack residual.
    """

    racks: tuple[SolveDiagnostics, ...]
    iterations: int
    converged: bool
    residual: float

    @property
    def delivered(self) -> tuple[dict[int, float], ...]:
        """Per-rack delivered-bandwidth maps (rack-local node -> bytes/s)."""
        return tuple(diag.delivered for diag in self.racks)


class ClusterFabric:
    """``n_racks`` rack fabrics composed over uplinks and one shared spine.

    Parameters
    ----------
    n_racks / nodes_per_rack / n_ports:
        Cluster shape: identical racks, each a
        :class:`~repro.fabric.topology.FabricTopology` with
        ``nodes_per_rack`` nodes over ``n_ports`` pool ports.
    testbed / port_capacity_scale / queueing:
        Forwarded to every rack topology (see there).
    uplink_capacity_scale:
        Multiplier (>= 1) on the testbed's peak link traffic for each rack's
        uplink into the spine — an uplink typically aggregates several node
        links.
    spine_capacity_scale:
        Multiplier for the shared spine; the default provisions it at half
        the combined uplink capacity (a 2:1 oversubscribed fat tree).
    solver:
        Default solver for :meth:`resolve_all` and every rack topology
        (``"vectorized"`` or ``"scalar"``).
    """

    def __init__(
        self,
        n_racks: int,
        nodes_per_rack: int,
        n_ports: int = 1,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        port_capacity_scale: float = 1.0,
        uplink_capacity_scale: float = 4.0,
        spine_capacity_scale: Optional[float] = None,
        queueing: QueueingModel | None = None,
        solver: str = SOLVER_VECTORIZED,
    ) -> None:
        if n_racks <= 0:
            raise FabricError("a cluster needs at least one rack")
        if uplink_capacity_scale < 1.0:
            raise FabricError("uplink_capacity_scale must be >= 1")
        if spine_capacity_scale is None:
            spine_capacity_scale = max(uplink_capacity_scale * n_racks / 2.0, 1.0)
        if spine_capacity_scale < 1.0:
            raise FabricError("spine_capacity_scale must be >= 1")
        self.n_racks = int(n_racks)
        self.nodes_per_rack = int(nodes_per_rack)
        self.n_ports = int(n_ports)
        self.testbed = testbed
        self.solver = validate_solver(solver)
        self.racks: tuple[FabricTopology, ...] = tuple(
            FabricTopology(
                n_nodes=nodes_per_rack,
                n_ports=n_ports,
                testbed=testbed,
                port_capacity_scale=port_capacity_scale,
                queueing=queueing,
                solver=solver,
            )
            for _ in range(self.n_racks)
        )
        uplink_testbed = replace(
            testbed, link_peak_traffic=testbed.link_peak_traffic * uplink_capacity_scale
        )
        #: One uplink per rack, aggregating its spilled tenants' pool traffic.
        self.uplinks: tuple[RemoteLink, ...] = tuple(
            RemoteLink(uplink_testbed, queueing) for _ in range(self.n_racks)
        )
        #: The shared spine all uplinks feed into.
        self.spine = RemoteLink(
            replace(
                testbed,
                link_peak_traffic=testbed.link_peak_traffic * spine_capacity_scale,
            ),
            queueing,
        )

    @property
    def total_nodes(self) -> int:
        """Compute nodes across all racks."""
        return self.n_racks * self.nodes_per_rack

    def rack(self, index: int) -> FabricTopology:
        """Rack ``index``'s topology (validating the index)."""
        if not 0 <= index < self.n_racks:
            raise FabricError(
                f"rack {index} is not part of this {self.n_racks}-rack cluster"
            )
        return self.racks[index]

    def enable_solver_cache(
        self, maxsize: int = 4096, quantum: float = DEFAULT_CACHE_QUANTUM
    ) -> None:
        """Attach a contention cache to every rack topology (see
        :meth:`~repro.fabric.topology.FabricTopology.enable_solver_cache`)."""
        for rack in self.racks:
            rack.enable_solver_cache(maxsize=maxsize, quantum=quantum)

    # -- whole-cluster demand resolution ---------------------------------------------

    def resolve_all(
        self,
        demands: Sequence[Mapping[int, float]],
        iterations: int = 64,
        damping: Optional[float] = None,
        tolerance: float = 1e6,
        solver: Optional[str] = None,
    ) -> ClusterSolve:
        """Resolve every rack's port contention in one call.

        ``demands[i]`` is rack ``i``'s demand map (rack-local node ->
        offered bytes/s).  Racks are independent sub-problems (each node
        contends only on its own rack's port), so the vectorized path
        flattens all racks into one array and runs a single batched
        fixed-point solve — this is the cluster-scale hot path the
        ``solver_vectorized`` benchmark group times.  ``solver="scalar"``
        instead resolves each rack through the reference implementation,
        giving the differential suite a slow ground truth.

        Per-rack :class:`~repro.fabric.topology.SolveDiagnostics` are
        returned either way.  Batched solves iterate until *every* rack
        converges, so per-rack iteration counts equal the global count and
        already-converged racks keep contracting toward the same fixed point
        (their values stay within solver tolerance of an early-stopped
        per-rack solve).
        """
        if len(demands) != self.n_racks:
            raise FabricError(
                f"expected {self.n_racks} demand maps, got {len(demands)}"
            )
        solver = validate_solver(solver if solver is not None else self.solver)
        if solver == SOLVER_SCALAR:
            diags = tuple(
                rack.resolve_detailed(
                    rack_demands, iterations, damping, tolerance, solver=SOLVER_SCALAR
                )
                for rack, rack_demands in zip(self.racks, demands)
            )
            return ClusterSolve(
                racks=diags,
                iterations=max(d.iterations for d in diags),
                converged=all(d.converged for d in diags),
                residual=max(d.residual for d in diags),
            )
        return self.resolve_racks(
            range(self.n_racks), demands, iterations, damping, tolerance
        )

    def resolve_racks(
        self,
        indices: Sequence[int],
        demands: Sequence[Mapping[int, float]],
        iterations: int = 64,
        damping: Optional[float] = None,
        tolerance: float = 1e6,
    ) -> ClusterSolve:
        """One batched NumPy solve across a subset of racks' demand maps.

        ``demands[i]`` belongs to rack ``indices[i]``; the returned
        :class:`ClusterSolve` carries diagnostics in the same order.  This is
        the kernel behind both :meth:`resolve_all` (all racks) and the
        cluster stepper's batched epoch rollover (dirty racks only).
        """
        if len(demands) != len(indices):
            raise FabricError(
                f"expected {len(indices)} demand maps, got {len(demands)}"
            )
        if damping is not None and not 0.0 < damping <= 1.0:
            raise FabricError("damping must be in (0, 1]")
        nodes_per_rack: list[list[int]] = []
        offered: list[float] = []
        port_index: list[int] = []
        capacity: list[float] = []
        node_bandwidth: list[float] = []
        damping_arr: list[float] = []
        rack_dampings: list[float] = []
        slices: list[tuple[int, int]] = []
        port_offset = 0
        for index, rack_demands in zip(indices, demands):
            rack = self.rack(index)
            nodes = list(rack_demands)
            rack_damping = damping
            if rack_damping is None:
                max_sharing = max(
                    (
                        sum(
                            1
                            for other in rack_demands
                            if rack.port_of(other) == rack.port_of(node)
                        )
                        for node in rack_demands
                    ),
                    default=1,
                )
                rack_damping = 1.0 / max(max_sharing, 1)
            start = len(offered)
            for node in nodes:
                port_index.append(port_offset + rack.port_of(node))
                offered.append(rack._node_demand(node, rack_demands))
                capacity.append(rack.ports[0].data_capacity)
                node_bandwidth.append(rack.ports[0].node_bandwidth)
                damping_arr.append(rack_damping)
            nodes_per_rack.append(nodes)
            rack_dampings.append(rack_damping)
            slices.append((start, len(offered)))
            port_offset += rack.n_ports
        registry = metrics()
        registry.counter("fabric.cluster.solve.calls").inc()
        with trace_span(
            "fabric.cluster.solve", racks=len(slices), nodes=len(offered)
        ):
            result = solve_fixed_point(
                np.asarray(offered),
                np.asarray(port_index, dtype=np.intp),
                capacity=np.asarray(capacity),
                node_bandwidth=np.asarray(node_bandwidth),
                min_share=RemoteLink.MIN_SHARE,
                damping=np.asarray(damping_arr),
                iterations=iterations,
                tolerance=tolerance,
            )
        registry.histogram("fabric.cluster.solve.iterations").observe(
            result.iterations
        )
        diags = []
        nonconverged = 0
        for (start, stop), nodes, rack_damping in zip(
            slices, nodes_per_rack, rack_dampings
        ):
            rack_delta = result.delta[start:stop]
            rack_residual = float(rack_delta.max()) if stop > start else 0.0
            rack_converged = result.converged or rack_residual < tolerance
            if not rack_converged:
                nonconverged += 1
            diags.append(
                SolveDiagnostics(
                    delivered={
                        n: float(v)
                        for n, v in zip(nodes, result.delivered[start:stop])
                    },
                    iterations=result.iterations,
                    converged=rack_converged,
                    residual=rack_residual,
                    damping=rack_damping,
                )
            )
        if nonconverged:
            registry.counter("fabric.solve.nonconverged").inc(nonconverged)
            warnings.warn(
                f"cluster contention solve did not converge on {nonconverged} "
                f"rack(s) within {result.iterations} iterations (worst residual "
                f"{result.residual:.3g} bytes/s, tolerance {tolerance:.3g}); "
                f"results reflect the last iterate",
                FabricConvergenceWarning,
                stacklevel=3,
            )
        return ClusterSolve(
            racks=tuple(diags),
            iterations=result.iterations,
            converged=result.converged,
            residual=result.residual,
        )

    def describe(self) -> dict:
        """Summary of the cluster wiring."""
        return {
            "n_racks": self.n_racks,
            "nodes_per_rack": self.nodes_per_rack,
            "n_ports": self.n_ports,
            "solver": self.solver,
            "uplink_data_capacity_gbs": self.uplinks[0].data_capacity / 1e9,
            "spine_data_capacity_gbs": self.spine.data_capacity / 1e9,
            "rack": self.racks[0].describe(),
        }


@dataclass(frozen=True)
class ClusterCheckpoint:
    """Snapshot of a :class:`ClusterCoSimulator`'s epoch state.

    Composes one :class:`~repro.fabric.cosim.EpochCheckpoint` per rack plus
    the cluster's own clock and intra-epoch progress.  Subject to the same
    contract as rack checkpoints: valid only while the (cluster-wide) tenant
    mix — and therefore the spill set — is unchanged.
    """

    clock: float
    epoch_elapsed: float
    racks: tuple[EpochCheckpoint, ...]


@dataclass(frozen=True)
class ClusterTenantOutcome:
    """Final statistics of one tenant of a closed-loop cluster run."""

    name: str
    rack: int
    node: int
    spilled: bool
    lease_state: str
    start_time: Optional[float]
    finish_time: Optional[float]
    baseline_runtime: float
    wait_time: float = 0.0

    @property
    def runtime(self) -> float:
        if self.start_time is None or self.finish_time is None:
            return 0.0
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> float:
        if self.runtime <= 0 or self.baseline_runtime <= 0:
            return 1.0
        return self.runtime / self.baseline_runtime


class ClusterCoSimulator:
    """All racks' co-simulations stepped in one cluster epoch loop.

    Parameters
    ----------
    fabric:
        The cluster wiring (rack topologies, uplinks, spine).
    rack_pool_bytes:
        Capacity of each rack's memory pool — one int for homogeneous racks
        or a per-rack sequence.  None sizes every rack pool generously
        (effectively unbounded, for callers doing their own admission).
    cluster_pool_bytes:
        Capacity of the cluster-level spill pool; 0/None disables spilling
        (tenants that do not fit their rack pool queue there, exactly like a
        standalone rack).
    epoch_seconds:
        Cluster epoch (inter-rack recoupling period) and every rack's
        co-simulation epoch.  None derives it from the first admitted
        tenant's baseline runtime and propagates the same value to all
        racks, keeping their rollovers aligned.
    seed:
        Engine seed shared by all racks; per-tenant baseline profiles are
        cached once across the whole cluster, so admitting the same workload
        to many racks costs one engine run, not ``n_racks``.
    overcommit:
        Make every rack pool *elastic*: a lease request that does not fit is
        granted anyway by shrinking running co-tenants toward their floors,
        charging them the modeled page give-back migration cost instead of
        queueing the newcomer (see :mod:`repro.fabric.pool`).
    """

    MAX_EPOCHS = 200_000

    def __init__(
        self,
        fabric: ClusterFabric,
        rack_pool_bytes: int | Sequence[int] | None = None,
        cluster_pool_bytes: Optional[int] = None,
        epoch_seconds: Optional[float] = None,
        seed: int = 0,
        overcommit: bool = False,
    ) -> None:
        self.fabric = fabric
        if rack_pool_bytes is None:
            capacities = [1 << 62] * fabric.n_racks
        elif isinstance(rack_pool_bytes, int):
            capacities = [rack_pool_bytes] * fabric.n_racks
        else:
            capacities = [int(c) for c in rack_pool_bytes]
            if len(capacities) != fabric.n_racks:
                raise FabricError(
                    f"expected {fabric.n_racks} rack pool capacities, "
                    f"got {len(capacities)}"
                )
        if epoch_seconds is not None and epoch_seconds <= 0:
            raise FabricError("epoch_seconds must be positive")
        self.rack_sims: tuple[RackCoSimulator, ...] = tuple(
            RackCoSimulator.incremental(
                n_nodes=fabric.nodes_per_rack,
                pool=MemoryPool(capacities[i], name=f"rack-{i}", elastic=overcommit),
                topology=fabric.racks[i],
                testbed=fabric.testbed,
                epoch_seconds=epoch_seconds,
                seed=seed,
            )
            for i in range(fabric.n_racks)
        )
        # One baseline-profile cache for the whole cluster: identical
        # (workload, local_fraction) tenants cost one engine run regardless
        # of which rack they land on.
        shared_cache: dict = {}
        for sim in self.rack_sims:
            sim._inc_cache = shared_cache
        self.cluster_pool = (
            MemoryPool(cluster_pool_bytes, name="cluster-pool")
            if cluster_pool_bytes
            else None
        )
        self.seed = int(seed)
        #: Stepping-path override: None (default) picks the fused batched
        #: epoch path whenever ``fabric.solver == "vectorized"``; True/False
        #: force it on/off (the ``cluster_step_batched`` bench uses False to
        #: time the per-rack reference loop under the same solver kernel).
        #: Faults always force the per-rack path regardless.
        self.batched_stepping: Optional[bool] = None
        self._clock = 0.0
        self._epoch: Optional[float] = epoch_seconds
        self._epoch_elapsed = 0.0
        self._tenant_rack: dict[str, int] = {}
        self._spilled: dict[str, object] = {}  # tenant name -> cluster-pool Lease
        self._offset_nodes: set[tuple[int, int]] = set()
        self._fault_schedule: Optional[FaultSchedule] = None
        #: Impacts of withdrawn tenants, so :meth:`blast_radius` stays
        #: complete after run_to_completion() retires everyone.
        self._fault_impacts: list[TenantImpact] = []

    # -- fault injection --------------------------------------------------------------

    def inject_faults(
        self, schedule: FaultSchedule, drain_bytes_per_s: Optional[float] = None
    ) -> None:
        """Arm one fault schedule across the whole cluster.

        Each rack simulator receives the schedule filtered to its own rack
        index (``FaultEvent.rack``); semantics per rack are exactly
        :meth:`~repro.fabric.cosim.RackCoSimulator.inject_faults`.  One-shot
        per cluster; an empty schedule leaves every rack disarmed and the
        cluster's outputs bit-identical to a fault-free run.
        """
        if self._fault_schedule is not None:
            raise FabricError("a fault schedule is already injected")
        self._fault_schedule = schedule
        for i, sim in enumerate(self.rack_sims):
            sim.inject_faults(schedule, rack=i, drain_bytes_per_s=drain_bytes_per_s)

    def faults_pending(self) -> bool:
        """True while any rack still has scheduled fault events to fire."""
        return any(sim.faults_pending() for sim in self.rack_sims)

    def blast_radius(self) -> BlastRadiusReport:
        """Cluster-wide damage assessment: live tenants plus withdrawn ones."""
        impacts = {impact.name: impact for impact in self._fault_impacts}
        for sim in self.rack_sims:
            for name, state in sim.tenant_states.items():
                impacts[name] = sim._impact_of(state)
        return BlastRadiusReport(
            faults_injected=sum(sim._faults_applied for sim in self.rack_sims),
            revocations=sum(i.revocations for i in impacts.values()),
            tenants=tuple(impacts[name] for name in sorted(impacts)),
        )

    @property
    def _faults_active(self) -> bool:
        return any(sim._faults_active for sim in self.rack_sims)

    # -- introspection ---------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Simulated cluster time, seconds."""
        return self._clock

    @property
    def epoch_seconds(self) -> Optional[float]:
        """The cluster epoch length (None until the first tenant derives it)."""
        return self._epoch

    def rack_sim(self, rack: int) -> RackCoSimulator:
        """Rack ``rack``'s incremental co-simulator."""
        if not 0 <= rack < self.fabric.n_racks:
            raise FabricError(
                f"rack {rack} is not part of this {self.fabric.n_racks}-rack cluster"
            )
        return self.rack_sims[rack]

    def rack_of(self, name: str) -> int:
        """The rack an admitted tenant lives in."""
        try:
            return self._tenant_rack[name]
        except KeyError as exc:
            raise FabricError(f"no admitted tenant named {name!r}") from exc

    def is_spilled(self, name: str) -> bool:
        """Whether a tenant's pool lease lives in the cluster-level pool."""
        return name in self._spilled

    @property
    def tenant_names(self) -> tuple[str, ...]:
        """Names of all currently admitted tenants, in admission order."""
        return tuple(self._tenant_rack)

    # -- tenant lifecycle -------------------------------------------------------------

    def admit(
        self,
        rack: int,
        spec: TenantSpec,
        node: Optional[int] = None,
        time: Optional[float] = None,
    ):
        """Admit a tenant into rack ``rack``, spilling to the cluster pool
        when the rack pool cannot grant the lease immediately.

        A spilled tenant holds its capacity lease in the cluster pool and is
        admitted into the rack with a zero-byte rack lease (the rack pool's
        accounting is untouched); its pool traffic rides the rack uplink and
        the spine from the next recoupling on.  Returns the lease that holds
        the tenant's actual capacity (rack- or cluster-pool).
        """
        if spec.name in self._tenant_rack:
            raise FabricError(f"tenant {spec.name!r} is already admitted")
        sim = self.rack_sim(rack)
        if time is not None and time > self._clock:
            self.step(time - self._clock)
        spill_lease = None
        rack_spec = spec
        if (
            self.cluster_pool is not None
            and spec.lease_bytes > 0
            and (spec.lease_bytes > sim.pool.free_bytes or sim.pool.queue_depth > 0)
            and spec.lease_bytes <= self.cluster_pool.free_bytes
            and self.cluster_pool.queue_depth == 0
        ):
            spill_lease = self.cluster_pool.request(
                spec.name, spec.lease_bytes, time=self._clock
            )
            rack_spec = replace(spec, pool_bytes=0)
            metrics().counter("fabric.cluster.spills").inc()
        rack_lease = sim.admit(rack_spec, node=node)
        self._tenant_rack[spec.name] = rack
        if spill_lease is not None:
            self._spilled[spec.name] = spill_lease
        if self._epoch is None and sim._inc_epoch is not None:
            self._epoch = sim._inc_epoch
        if self._epoch is not None:
            for other in self.rack_sims:
                if other._inc_epoch is None:
                    other._inc_epoch = self._epoch
        self._recouple()
        return spill_lease if spill_lease is not None else rack_lease

    def withdraw(self, name: str, time: Optional[float] = None) -> None:
        """Remove a tenant, returning its rack- or cluster-pool lease."""
        rack = self.rack_of(name)
        sim = self.rack_sims[rack]
        if time is not None and time > self._clock:
            self.step(time - self._clock)
        state = sim.tenant_states.get(name)
        if state is not None and sim._faults_active:
            self._fault_impacts.append(sim._impact_of(state))
        sim.withdraw(name)
        del self._tenant_rack[name]
        lease = self._spilled.pop(name, None)
        if lease is not None and lease.state in (LEASE_GRANTED, LEASE_QUEUED):
            self.cluster_pool.release(lease, time=self._clock)
        if state is not None and (rack, state.node) in self._offset_nodes:
            sim.set_background_offset(state.node, 0.0)
            self._offset_nodes.discard((rack, state.node))
        self._recouple()

    # -- epoch loop -------------------------------------------------------------------

    def step(self, dt: float) -> dict[str, float]:
        """Advance all racks ``dt`` wall-seconds in one cluster epoch loop.

        Racks step in lockstep chunks bounded by the cluster epoch; at every
        cluster epoch boundary the inter-rack coupling (uplink/spine
        backgrounds of spilled tenants) is refreshed from the racks' live
        demands.  Returns baseline-seconds completed per tenant, merged
        across racks.

        With ``solver="vectorized"`` (the default) and no fault schedule
        armed, racks advance through the **fused batched epoch path**: every
        rack's intra-epoch progress runs through
        :meth:`~repro.fabric.cosim.RackCoSimulator.step_frozen` and all dirty
        racks' epoch re-solves batch into one
        :meth:`ClusterFabric.resolve_racks` call at the boundary, instead of
        ``n_racks`` independent ``RackCoSimulator.step`` calls each running
        its own solve.  ``solver="scalar"`` keeps the original per-rack loop
        as the reference path (the ``cluster_step_batched`` bench group and
        the batched-equivalence tests hold the two together); a cluster with
        faults armed always uses the per-rack path, whose sub-chunk
        scheduling lands fault events at their exact times.
        """
        if dt < 0:
            raise FabricError("cannot step the cluster backwards")
        registry = metrics()
        registry.counter("fabric.cluster.step_calls").inc()
        done: dict[str, float] = {name: 0.0 for name in self._tenant_rack}
        remaining = float(dt)
        with trace_span("fabric.cluster.step", racks=self.fabric.n_racks):
            while remaining > 1e-15:
                if self._epoch is None:
                    # Nothing admitted anywhere: time passes, no work happens.
                    for sim in self.rack_sims:
                        sim.step(remaining)
                    self._clock += remaining
                    return done
                batched = self._batched_stepping
                chunk = min(
                    remaining, max(self._epoch - self._epoch_elapsed, 0.0)
                )
                if chunk <= 0:
                    self._rollover_cluster_epoch()
                    continue
                for sim in self.rack_sims:
                    if batched:
                        self._step_rack_frozen(sim, chunk, done)
                    else:
                        for name, amount in sim.step(chunk).items():
                            if amount:
                                done[name] = done.get(name, 0.0) + amount
                self._clock += chunk
                self._epoch_elapsed += chunk
                remaining -= chunk
                if self._epoch_elapsed >= self._epoch - 1e-12:
                    self._rollover_cluster_epoch()
        return done

    @property
    def _batched_stepping(self) -> bool:
        """Whether the fused batched epoch path is usable right now."""
        if self.batched_stepping is not None:
            return bool(self.batched_stepping) and not self._faults_active
        return self.fabric.solver == SOLVER_VECTORIZED and not self._faults_active

    def _step_rack_frozen(
        self, sim: RackCoSimulator, chunk: float, done: dict[str, float]
    ) -> None:
        """Advance one rack ``chunk`` seconds on the frozen-background path.

        In the common case (rack epochs aligned with the cluster epoch) this
        is a single :meth:`~repro.fabric.cosim.RackCoSimulator.step_frozen`
        call and the rack's rollover happens batched at the cluster boundary.
        A rack whose epoch phase drifted from the cluster's (a mid-epoch
        admission or withdrawal forces a rack rollover, restarting its epoch)
        rolls itself over mid-chunk exactly where :meth:`~repro.fabric.cosim.
        RackCoSimulator.step` would — those transitional solves run per-rack,
        and the rack re-enters the batch once its boundary realigns.
        """
        remaining = float(chunk)
        while remaining > 1e-15:
            if sim._inc_epoch is None:
                sim.step_frozen(remaining)
                return
            sub = min(
                remaining, max(sim._inc_epoch - sim._inc_epoch_elapsed, 0.0)
            )
            if sub <= 0:
                sim._rollover_epoch()
                continue
            for name, amount in sim.step_frozen(sub).items():
                if amount:
                    done[name] = done.get(name, 0.0) + amount
            remaining -= sub
            if remaining > 1e-15 and sim.epoch_due():
                sim._rollover_epoch()

    def _rollover_cluster_epoch(self) -> None:
        metrics().counter("fabric.cluster.epochs").inc()
        if self._batched_stepping:
            self._rollover_racks_batched()
        self._epoch_elapsed = 0.0
        self._recouple()

    def _rollover_racks_batched(self) -> None:
        """Roll every due rack's epoch with one batched contention solve.

        Mirrors :meth:`~repro.fabric.cosim.RackCoSimulator._rollover_epoch`
        exactly — same dirty-rack skip keyed on the solve signature, same
        telemetry counters, same history bookkeeping — except that the dirty
        racks' fixed-point solves run as one vectorized batch instead of one
        solve per rack.
        """
        registry = metrics()
        dirty: list[tuple[RackCoSimulator, list, tuple]] = []
        dirty_indices: list[int] = []
        dirty_demands: list[dict[int, float]] = []
        due: list[tuple[RackCoSimulator, list, dict[int, float]]] = []
        for index, sim in enumerate(self.rack_sims):
            if not sim.epoch_due():
                continue
            registry.counter("fabric.cosim.epoch_rollovers").inc()
            running, demands, solve_key = sim._epoch_demands()
            if sim.skip_unchanged_epochs and solve_key == sim._inc_solve_key:
                registry.counter("fabric.cosim.epoch_skips").inc()
            else:
                registry.counter("fabric.cosim.epoch_resolves").inc()
                dirty.append((sim, running, solve_key))
                dirty_indices.append(index)
                dirty_demands.append(demands)
            due.append((sim, running, demands))
        if dirty:
            solve = self.fabric.resolve_racks(dirty_indices, dirty_demands)
            for (sim, running, solve_key), diag in zip(dirty, solve.racks):
                sim._apply_epoch_solve(running, diag.delivered, solve_key)
        for sim, running, demands in due:
            sim._complete_rollover(running, demands)

    def _recouple(self) -> None:
        """Refresh spilled tenants' uplink/spine background offsets.

        See the module docstring for the coupling model.  Idempotent given
        unchanged rack demands, so calling it on admission, withdrawal and
        every cluster epoch boundary keeps the offsets exact without
        disturbing the racks' dirty-epoch tracking more than necessary.

        A cluster that never spills pays (almost) nothing here: with no
        spilled tenants and no stale offsets to clear, every offset below
        would compute to its current value, so the walk exits up front —
        ``fabric.cluster.recouples`` counts only the recouples that actually
        walked.
        """
        if not self._spilled and not self._offset_nodes:
            return
        metrics().counter("fabric.cluster.recouples").inc()
        uplink_traffic = [0.0] * self.fabric.n_racks
        spilled_nodes: list[tuple[int, int, float]] = []
        for name in self._spilled:
            rack = self._tenant_rack[name]
            state = self.rack_sims[rack].tenant_states.get(name)
            if state is None or not state.running:
                continue
            demand = state.current_offered_bandwidth()
            uplink_traffic[rack] += demand
            spilled_nodes.append((rack, state.node, demand))
        total = sum(uplink_traffic)
        metrics().gauge("fabric.cluster.spine_utilization").set(
            self.fabric.spine.utilization(total)
        )
        live: set[tuple[int, int]] = set()
        for rack, node, demand in spilled_nodes:
            same_rack = uplink_traffic[rack] - demand
            cross_rack = total - uplink_traffic[rack]
            port_capacity = self.fabric.racks[rack].ports[0].data_capacity
            offset = (
                same_rack * port_capacity / self.fabric.uplinks[rack].data_capacity
                + cross_rack * port_capacity / self.fabric.spine.data_capacity
            )
            self.rack_sims[rack].set_background_offset(node, offset)
            live.add((rack, node))
        for rack, node in self._offset_nodes - live:
            self.rack_sims[rack].set_background_offset(node, 0.0)
        self._offset_nodes = live

    # -- rates / horizon (for external event loops) ------------------------------------

    def progress_rates(self) -> dict[str, float]:
        """Per-tenant progress rates merged across all racks."""
        rates: dict[str, float] = {}
        for sim in self.rack_sims:
            rates.update(sim.progress_rates())
        return rates

    def horizon(self) -> float:
        """Wall seconds the current rates stay exact, cluster-wide.

        Bounded by the next cluster recoupling and every busy rack's own
        :meth:`~repro.fabric.cosim.RackCoSimulator.horizon`.
        """
        if self._epoch is None:
            raise FabricError(
                "the cluster has no epoch length yet: pass epoch_seconds or "
                "admit a tenant first"
            )
        bound = max(self._epoch - self._epoch_elapsed, 1e-12)
        for sim in self.rack_sims:
            if any(state.running for state in sim.tenant_states.values()):
                bound = min(bound, sim.horizon())
        return max(bound, 1e-12)

    # -- checkpoint / rollover ---------------------------------------------------------

    def checkpoint(self) -> ClusterCheckpoint:
        """Snapshot every rack's epoch state plus the cluster clock."""
        metrics().counter("fabric.cluster.checkpoints").inc()
        return ClusterCheckpoint(
            clock=self._clock,
            epoch_elapsed=self._epoch_elapsed,
            racks=tuple(sim.checkpoint() for sim in self.rack_sims),
        )

    def rollover(self, checkpoint: ClusterCheckpoint) -> None:
        """Roll every rack (and the cluster clock) back to a checkpoint."""
        if len(checkpoint.racks) != len(self.rack_sims):
            raise FabricError(
                "checkpoint does not match the cluster's rack count"
            )
        for sim, rack_checkpoint in zip(self.rack_sims, checkpoint.racks):
            sim.rollover(rack_checkpoint)
        self._clock = checkpoint.clock
        self._epoch_elapsed = checkpoint.epoch_elapsed
        metrics().counter("fabric.cluster.rollbacks").inc()

    # -- closed-loop convenience --------------------------------------------------------

    def run_to_completion(self) -> dict:
        """Step until every admitted tenant finishes (or can never run).

        Finished tenants are withdrawn automatically (releasing rack- or
        cluster-pool capacity, which admits queued tenants).  Returns a
        summary dict with per-tenant outcomes — the closed-loop driver
        behind the ``fabric --cluster`` CLI and the cluster bench group.
        """
        outcomes: list[ClusterTenantOutcome] = []
        for _ in range(self.MAX_EPOCHS):
            finished: list[str] = []
            running = 0
            for name, rack in self._tenant_rack.items():
                state = self.rack_sims[rack].tenant_states.get(name)
                if state is None:
                    continue
                if state.finished:
                    finished.append(name)
                elif state.running:
                    running += 1
            for name in finished:
                rack = self._tenant_rack[name]
                state = self.rack_sims[rack].tenant_states[name]
                outcomes.append(
                    ClusterTenantOutcome(
                        name=name,
                        rack=rack,
                        node=state.node,
                        spilled=name in self._spilled,
                        lease_state=LEASE_GRANTED,
                        start_time=(
                            state.lease.granted_at
                            if state.lease is not None
                            else None
                        ),
                        finish_time=state.finish_time,
                        baseline_runtime=state.baseline_runtime,
                        wait_time=(
                            state.lease.wait_time
                            if state.lease is not None
                            else 0.0
                        ),
                    )
                )
                self.withdraw(name)
            if not self._tenant_rack:
                break
            if running == 0 and not finished:
                # Everything left is queued behind capacity nothing will
                # release: record and stop rather than spinning.
                for name, rack in list(self._tenant_rack.items()):
                    state = self.rack_sims[rack].tenant_states.get(name)
                    outcomes.append(
                        ClusterTenantOutcome(
                            name=name,
                            rack=rack,
                            node=state.node if state is not None else -1,
                            spilled=name in self._spilled,
                            lease_state=(
                                state.lease.state
                                if state is not None and state.lease is not None
                                else LEASE_REJECTED
                            ),
                            start_time=None,
                            finish_time=None,
                            baseline_runtime=(
                                state.baseline_runtime if state is not None else 0.0
                            ),
                        )
                    )
                    self.withdraw(name)
                break
            if finished:
                continue
            if (
                running
                and self._faults_active
                and not self.faults_pending()
                and not any(r > 0.0 for r in self.progress_rates().values())
                and not any(
                    s.running and s.migration_debt > 0.0
                    for sim in self.rack_sims
                    for s in sim.tenant_states.values()
                )
            ):
                # Fault-stalled forever — e.g. a killed port that is never
                # restored: record the survivors as unfinished and stop.
                for name, rack in list(self._tenant_rack.items()):
                    state = self.rack_sims[rack].tenant_states.get(name)
                    outcomes.append(
                        ClusterTenantOutcome(
                            name=name,
                            rack=rack,
                            node=state.node if state is not None else -1,
                            spilled=name in self._spilled,
                            lease_state=(
                                state.lease.state
                                if state is not None and state.lease is not None
                                else LEASE_REJECTED
                            ),
                            start_time=None,
                            finish_time=None,
                            baseline_runtime=(
                                state.baseline_runtime if state is not None else 0.0
                            ),
                        )
                    )
                    self.withdraw(name)
                break
            self.step(self.horizon())
        else:
            raise FabricError(
                f"cluster co-simulation did not terminate within "
                f"{self.MAX_EPOCHS} iterations"
            )
        finished_outcomes = [o for o in outcomes if o.finish_time is not None]
        summary = {
            "makespan": max(
                (o.finish_time for o in finished_outcomes), default=0.0
            ),
            "mean_slowdown": (
                float(np.mean([o.slowdown for o in finished_outcomes]))
                if finished_outcomes
                else 1.0
            ),
            "n_racks": self.fabric.n_racks,
            "nodes_per_rack": self.fabric.nodes_per_rack,
            "solver": self.fabric.solver,
            "epoch_seconds": self._epoch,
            "spilled_tenants": sum(1 for o in outcomes if o.spilled),
            "cluster_pool_gb": (
                self.cluster_pool.capacity_bytes / 1e9
                if self.cluster_pool is not None
                else 0.0
            ),
            "tenants": [
                {
                    "name": o.name,
                    "rack": o.rack,
                    "node": o.node,
                    "spilled": o.spilled,
                    "lease_state": o.lease_state,
                    "wait_s": o.wait_time,
                    "runtime_s": o.runtime,
                    "baseline_s": o.baseline_runtime,
                    "slowdown": o.slowdown,
                }
                for o in sorted(outcomes, key=lambda o: (o.rack, o.name))
            ],
        }
        if self._faults_active:
            # Key is absent on fault-free runs, keeping the pre-fault summary
            # shape (and its consumers) bit-identical.
            summary["faults"] = self.blast_radius().summary()
        return summary
