"""Dynamic (runtime) data-placement policies for multi-tier memory."""

from .migration import MigratingExecutionEngine, MigrationPolicy, MigrationStats

__all__ = ["MigratingExecutionEngine", "MigrationPolicy", "MigrationStats"]
