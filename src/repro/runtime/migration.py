"""Transparent hot-page migration runtime (dynamic data placement).

Section 5.2 of the paper contrasts two ways of fixing a bad access-ratio on a
multi-tier system: *static* solutions (modify allocation sites — the BFS case
study) and *dynamic* solutions that detect hot pages at runtime and migrate
them into the fast tier (Thermostat, TPP and the NUMA-balancing family).  The
paper's argument against relying on dynamic runtimes in HPC is that they take
time to gather information, adapt slowly to phase changes, and therefore add
run-to-run performance variation.

This module provides such a runtime for the simulator so that the argument can
be evaluated quantitatively: :class:`MigratingExecutionEngine` executes each
phase in epochs; at every epoch boundary it promotes the hottest
remote-resident pages observed during the *previous* epoch (the detection lag)
into node-local memory, demoting cold local pages when space is needed, and
charges the migration traffic to the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.errors import ConfigurationError
from ..memory.objects import MemoryObject
from ..memory.tiered import TieredMemory
from ..sim.engine import ExecutionEngine
from ..sim.interference import InterferenceSource
from ..sim.results import PhaseResult, TimeBreakdown
from ..workloads.base import PhaseSpec
from ..cache import events
from ..cache.events import CounterSet
from ..sim.perfmodel import PhaseInputs


@dataclass(frozen=True)
class MigrationPolicy:
    """Behaviour of the page-migration runtime.

    Attributes
    ----------
    epoch_seconds:
        Length of one observation/migration epoch (simulated seconds).
    promotion_budget_pages:
        Maximum number of pages promoted per epoch (migration bandwidth is
        finite; NUMA balancing rate-limits promotions the same way).
    hotness_quantile:
        Only pages whose access count is above this quantile of the observed
        per-page counts are candidates for promotion.
    demote_cold_pages:
        Whether cold local pages may be demoted to make room for promotions
        when the local tier is full.
    migration_bandwidth:
        Bandwidth available for copying pages between tiers, bytes/s.
    """

    epoch_seconds: float = 5.0
    promotion_budget_pages: int = 16384
    hotness_quantile: float = 0.5
    demote_cold_pages: bool = True
    migration_bandwidth: float = 8.0e9

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ConfigurationError("epoch length must be positive")
        if self.promotion_budget_pages < 0:
            raise ConfigurationError("promotion budget must be >= 0")
        if not 0.0 <= self.hotness_quantile < 1.0:
            raise ConfigurationError("hotness quantile must be in [0, 1)")
        if self.migration_bandwidth <= 0:
            raise ConfigurationError("migration bandwidth must be positive")


@dataclass(frozen=True)
class MigrationStats:
    """What the runtime did over one run."""

    promoted_pages: int
    demoted_pages: int
    migration_seconds: float
    epochs: int


class MigratingExecutionEngine(ExecutionEngine):
    """Execution engine with a transparent hot-page promotion runtime.

    The engine behaves exactly like :class:`~repro.sim.engine.ExecutionEngine`
    except that each phase is executed in epochs of ``policy.epoch_seconds``:
    the hotness observed in epoch *k* drives the promotions applied before
    epoch *k+1*, and every promotion/demotion charges copy time.  Statistics
    of the last run are available as :attr:`last_migration_stats`.
    """

    def __init__(self, platform, policy: MigrationPolicy | None = None, seed: int = 0) -> None:
        super().__init__(platform, seed=seed)
        self.policy = policy if policy is not None else MigrationPolicy()
        self.last_migration_stats: MigrationStats | None = None
        self._promoted = 0
        self._demoted = 0
        self._migration_seconds = 0.0
        self._epochs = 0

    # -- hooks -------------------------------------------------------------------------

    def run(self, spec, prefetch_enabled=None, interference=None, reserved_local_bytes=0):
        self._promoted = 0
        self._demoted = 0
        self._migration_seconds = 0.0
        self._epochs = 0
        result = super().run(
            spec,
            prefetch_enabled=prefetch_enabled,
            interference=interference,
            reserved_local_bytes=reserved_local_bytes,
        )
        self.last_migration_stats = MigrationStats(
            promoted_pages=self._promoted,
            demoted_pages=self._demoted,
            migration_seconds=self._migration_seconds,
            epochs=self._epochs,
        )
        return result

    # -- hot-page accounting --------------------------------------------------------------

    def _page_hotness(
        self,
        phase: PhaseSpec,
        memory: TieredMemory,
        objects: dict[str, MemoryObject],
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(page ids, per-page access counts) of one phase's traffic."""
        pages: list[np.ndarray] = []
        counts: list[np.ndarray] = []
        line_bytes = self.platform.testbed.cacheline_bytes
        for name, fraction in phase.object_traffic.items():
            obj = objects[name]
            traffic_lines = phase.dram_bytes * fraction / line_bytes
            if traffic_lines <= 0 or obj.n_pages == 0:
                continue
            weights = obj.pattern.page_weights(obj.n_pages, rng)
            pages.append(obj.page_range())
            counts.append(weights * traffic_lines)
        if not pages:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(pages), np.concatenate(counts)

    def _promote_hot_pages(
        self,
        hot_pages: np.ndarray,
        hot_counts: np.ndarray,
        memory: TieredMemory,
    ) -> float:
        """Promote the hottest remote pages; returns the migration time charged."""
        if len(hot_pages) == 0 or self.policy.promotion_budget_pages == 0:
            return 0.0
        page_tiers = memory.page_tiers()
        resident_remote = page_tiers[hot_pages] == (len(memory.usage) - 1)
        if not resident_remote.any():
            return 0.0
        candidate_pages = hot_pages[resident_remote]
        candidate_counts = hot_counts[resident_remote]
        threshold = np.quantile(hot_counts, self.policy.hotness_quantile) if len(hot_counts) else 0.0
        hot_mask = candidate_counts >= threshold
        candidate_pages = candidate_pages[hot_mask]
        candidate_counts = candidate_counts[hot_mask]
        if len(candidate_pages) == 0:
            return 0.0
        order = np.argsort(candidate_counts)[::-1]
        to_promote = candidate_pages[order][: self.policy.promotion_budget_pages]

        page_bytes = memory.page_bytes
        free_local_pages = max(memory.usage[0].free_bytes // page_bytes, 0)
        demoted = 0
        if free_local_pages < len(to_promote) and self.policy.demote_cold_pages:
            # Demote the coldest local pages to make room.
            local_pages = np.flatnonzero(memory.page_tiers() == 0)
            if len(local_pages) > 0:
                cold_needed = int(len(to_promote) - free_local_pages)
                hotness_by_page = np.zeros(len(memory.page_tiers()))
                hotness_by_page[hot_pages] = hot_counts
                cold_order = np.argsort(hotness_by_page[local_pages])
                demote_pages = local_pages[cold_order][:cold_needed]
                demoted = self._move_pages(demote_pages, memory, to_tier=len(memory.usage) - 1)
        promoted = self._move_pages(to_promote, memory, to_tier=0)
        self._promoted += promoted
        self._demoted += demoted
        moved_bytes = (promoted + demoted) * page_bytes
        return moved_bytes / self.policy.migration_bandwidth

    @staticmethod
    def _move_pages(pages: np.ndarray, memory: TieredMemory, to_tier: int) -> int:
        """Move individual pages between tiers, respecting destination capacity."""
        page_bytes = memory.page_bytes
        free_pages = max(memory.usage[to_tier].free_bytes // page_bytes, 0)
        pages = pages[:free_pages]
        if len(pages) == 0:
            return 0
        tiers = memory._page_tier  # intentional: page-granular move, same invariants as migrate()
        for tier_index in range(len(memory.usage)):
            tier_pages = pages[tiers[pages] == tier_index]
            memory._usage[tier_index].used_bytes -= len(tier_pages) * page_bytes
        tiers[pages] = to_tier
        memory._usage[to_tier].used_bytes += len(pages) * page_bytes
        memory.migrations += len(pages)
        return int(len(pages))

    # -- phase execution in epochs -----------------------------------------------------------

    def _run_phase(self, spec, phase, memory, objects, rng, prefetch, interference, clock):
        baseline = super()._run_phase(spec, phase, memory, objects, rng, prefetch, interference, clock)
        n_epochs = max(int(np.ceil(baseline.runtime / self.policy.epoch_seconds)), 1)
        if n_epochs <= 1 or len(memory.usage) < 2:
            self._epochs += n_epochs
            return baseline

        hot_pages, hot_counts = self._page_hotness(phase, memory, objects, rng)
        line_bytes = self.platform.testbed.cacheline_bytes
        counters = CounterSet()
        total_runtime = 0.0
        total_local = 0.0
        total_remote = 0.0
        migration_time_total = 0.0
        breakdowns: list[TimeBreakdown] = []

        for epoch in range(n_epochs):
            if epoch > 0:
                # Promotion decisions use the hotness observed so far (lag of
                # one epoch) and charge the copy time.
                migration_time = self._promote_hot_pages(hot_pages, hot_counts, memory)
                migration_time_total += migration_time
                self._migration_seconds += migration_time
            epoch_fraction = 1.0 / n_epochs
            traffic = self._tier_traffic(phase, memory, objects, rng)
            local_bytes = traffic.local * epoch_fraction
            remote_bytes = traffic.remote * epoch_fraction
            stream_fraction = self._phase_stream_fraction(phase, objects)
            cache_stats = self.platform.cache_model.stats_from_fraction(
                demand_dram_bytes=phase.dram_bytes * epoch_fraction,
                stream_fraction=stream_fraction,
                write_fraction=phase.write_fraction,
                accuracy_hint=phase.prefetch_accuracy_hint,
                prefetch_enabled=prefetch,
            )
            background = interference.background_bandwidth(
                self.platform.link, clock + total_runtime
            )
            breakdown = self.platform.performance_model.phase_time(
                PhaseInputs(
                    flops=phase.flops * epoch_fraction,
                    local_demand_bytes=local_bytes,
                    remote_demand_bytes=remote_bytes,
                    prefetch_coverage=cache_stats.covered_fraction,
                    mlp=phase.mlp,
                    background_bandwidth=background,
                )
            )
            breakdowns.append(breakdown)
            counters = counters.merged(cache_stats.counters)
            total_runtime += breakdown.runtime
            total_local += local_bytes
            total_remote += remote_bytes

        total_runtime += migration_time_total
        self._epochs += n_epochs
        counters.set(events.FP_ARITH_OPS, phase.flops)
        counters.set(events.ELAPSED_SECONDS, total_runtime)
        counters.set(events.OFFCORE_LOCAL_DRAM, total_local / line_bytes)
        counters.set(events.OFFCORE_REMOTE_DRAM, total_remote / line_bytes)
        own_remote_bw = total_remote / max(total_runtime, 1e-12)
        background = interference.background_bandwidth(self.platform.link, clock)
        counters.set(
            events.UPI_TRAFFIC_BYTES,
            self.platform.link.measured_traffic(own_remote_bw + background) * total_runtime,
        )
        utilization = self.platform.link.utilization(own_remote_bw + background)
        counters.set(events.UPI_UTILIZATION, utilization)

        merged_breakdown = TimeBreakdown(
            compute_time=sum(b.compute_time for b in breakdowns),
            local_bandwidth_time=sum(b.local_bandwidth_time for b in breakdowns),
            remote_bandwidth_time=sum(b.remote_bandwidth_time for b in breakdowns),
            latency_stall_time=sum(b.latency_stall_time for b in breakdowns) + migration_time_total,
            runtime=total_runtime,
        )
        return PhaseResult(
            name=phase.name,
            runtime=total_runtime,
            flops=phase.flops,
            dram_bytes=phase.dram_bytes,
            local_bytes=total_local,
            remote_bytes=total_remote,
            prefetch_coverage=baseline.prefetch_coverage,
            prefetch_accuracy=baseline.prefetch_accuracy,
            excess_traffic_fraction=baseline.excess_traffic_fraction,
            counters=counters,
            breakdown=merged_breakdown,
            link_utilization=utilization,
            background_bandwidth=baseline.background_bandwidth,
        )
