"""Command-line interface: ``repro-dmem``.

Sub-commands map directly onto the paper's experiments::

    repro-dmem table 1                 # Table 1 (memory cost of Top-10 systems)
    repro-dmem table 2                 # Table 2 (evaluated workloads)
    repro-dmem profile XSBench         # three-level profile of one workload
    repro-dmem figure 8                # regenerate one figure's data
    repro-dmem bfs-case-study          # Section 7.1
    repro-dmem scheduling --runs 20    # Section 7.2 (reduced run count)
    repro-dmem scheduling --coupled    # rack-scale static vs fabric-coupled
    repro-dmem fabric --tenants 6      # rack co-simulation (Section 7.2 extension)
    repro-dmem fabric --inject port-kill@5.0:port=0,duration=2.0
                                       # chaos run: kill a pool port for 2 s
    repro-dmem fabric --overcommit     # elastic leases (shrink-on-admit)

Reference documentation for every subcommand lives in ``docs/cli.md``; the
fault taxonomy behind ``--inject`` is documented in ``docs/failure_model.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

import numpy as np

from . import analysis, telemetry
from .analysis.tables import format_table
from .casestudies.bfs_placement import BFSPlacementCaseStudy
from .casestudies.scheduling import SchedulingCaseStudy
from .config.units import gb_per_s
from .profiler.profiler import MultiLevelProfiler
from .telemetry.report import render_report
from .workloads.registry import build_workload, workload_names


# ---------------------------------------------------------------------------
# Argument validators: numeric flags fail with an actionable one-line message
# (argparse renders ArgumentTypeError as "argument --flag: <message>"),
# matching the repro.data.slurm error style — never a bare traceback.
# ---------------------------------------------------------------------------


def _number(text: str, kind: type, what: str) -> Any:
    try:
        value = kind(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not {what} (expected e.g. {'4' if kind is int else '4.0'})"
        ) from None
    if kind is float and not np.isfinite(value):
        raise argparse.ArgumentTypeError(f"{text!r} is not finite")
    return value


def positive_int(text: str) -> int:
    """Argparse type: an integer >= 1."""
    value = _number(text, int, "an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def positive_float(text: str) -> float:
    """Argparse type: a finite number > 0."""
    value = _number(text, float, "a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def nonnegative_float(text: str) -> float:
    """Argparse type: a finite number >= 0."""
    value = _number(text, float, "a number")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def fraction(text: str) -> float:
    """Argparse type: a finite number in (0, 1]."""
    value = _number(text, float, "a number")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1], got {value}")
    return value


def closed_fraction(text: str) -> float:
    """Argparse type: a finite number in [0, 1]."""
    value = _number(text, float, "a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value}")
    return value


def trace_window(text: str) -> tuple:
    """Argparse type for ``--trace-window START:END``.

    START/END are seconds relative to the first replayed job's submit time;
    either side may be empty for an open bound (``3600:`` = everything after
    the first hour).
    """
    head, sep, tail = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not START:END (seconds relative to the trace start; "
            "either side may be empty)"
        )
    lo = nonnegative_float(head) if head.strip() else None
    hi = nonnegative_float(tail) if tail.strip() else None
    if lo is not None and hi is not None and hi < lo:
        raise argparse.ArgumentTypeError(f"window end {hi} is before start {lo}")
    return (lo, hi)


def _to_jsonable(value: Any) -> Any:
    """Convert NumPy containers to plain Python for JSON output."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


def _emit(data: Any, as_json: bool) -> None:
    if as_json:
        print(json.dumps(_to_jsonable(data), indent=2))
    else:
        print(_pretty(data))


def _pretty(data: Any, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(data, dict):
        lines = []
        for key, value in data.items():
            if isinstance(value, (dict, list)) and value and not _is_scalar_list(value):
                lines.append(f"{pad}{key}:")
                lines.append(_pretty(value, indent + 1))
            else:
                lines.append(f"{pad}{key}: {_scalar(value)}")
        return "\n".join(lines)
    if isinstance(data, list):
        return "\n".join(f"{pad}- {_scalar(item) if not isinstance(item, dict) else ''}"
                         + ("\n" + _pretty(item, indent + 1) if isinstance(item, dict) else "")
                         for item in data)
    return f"{pad}{_scalar(data)}"


def _is_scalar_list(value: Any) -> bool:
    return isinstance(value, (list, tuple)) and all(
        not isinstance(v, (dict, list, tuple, np.ndarray)) for v in value
    )


def _scalar(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, np.ndarray):
        return np.array2string(value, precision=3, threshold=8)
    return str(value)


def cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        rows = analysis.table1_memory_cost()
    elif args.number == 2:
        rows = analysis.table2_workloads()
    else:
        print(f"unknown table {args.number}; the paper has tables 1 and 2", file=sys.stderr)
        return 2
    if args.json:
        _emit(rows, True)
    else:
        print(format_table(rows))
    return 0


FIGURE_BUILDERS = {
    1: lambda args: analysis.figure1_memory_evolution(),
    5: lambda args: analysis.figure5_roofline(seed=args.seed),
    6: lambda args: analysis.figure6_scaling_curves(seed=args.seed),
    7: lambda args: analysis.figure7_prefetch_timeline(seed=args.seed),
    8: lambda args: analysis.figure8_prefetch_metrics(seed=args.seed),
    9: lambda args: analysis.figure9_tier_access(seed=args.seed),
    10: lambda args: analysis.figure10_sensitivity(seed=args.seed),
    11: lambda args: analysis.figure11_lbench(seed=args.seed),
    12: lambda args: analysis.figure12_bfs_case_study(seed=args.seed),
    13: lambda args: analysis.figure13_scheduling(seed=args.seed, n_runs=args.runs),
}


def cmd_figure(args: argparse.Namespace) -> int:
    builder = FIGURE_BUILDERS.get(args.number)
    if builder is None:
        print(
            f"unknown figure {args.number}; available: {sorted(FIGURE_BUILDERS)}",
            file=sys.stderr,
        )
        return 2
    _emit(builder(args), args.json)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    spec = build_workload(args.workload, args.scale)
    profiler = MultiLevelProfiler(seed=args.seed)
    level1 = profiler.level1(spec)
    output: dict[str, Any] = {
        "workload": spec.name,
        "input": spec.input_label,
        "footprint_gb": spec.footprint_bytes / 1e9,
        "level1": {
            "phases": [
                {
                    "phase": p.phase,
                    "arithmetic_intensity": p.arithmetic_intensity,
                    "gflops": p.achieved_gflops,
                    "bandwidth_gbs": p.achieved_bandwidth_gbs,
                    "runtime_s": p.runtime,
                }
                for p in level1.phases
            ],
            "prefetch": {
                "accuracy": level1.prefetch.accuracy,
                "coverage": level1.prefetch.coverage,
                "excess_traffic": level1.prefetch.excess_traffic,
                "performance_gain": level1.prefetch.performance_gain,
            },
        },
    }
    if args.levels >= 2:
        level2 = profiler.level2(spec, local_fraction=args.local_fraction)
        output["level2"] = {
            "config": level2.config_label,
            "remote_capacity_ratio": level2.remote_capacity_ratio,
            "remote_bandwidth_ratio": level2.remote_bandwidth_ratio,
            "phases": [
                {
                    "phase": p.phase,
                    "remote_access_ratio": p.remote_access_ratio,
                    "headroom": p.optimization_headroom,
                }
                for p in level2.phases
            ],
        }
    if args.levels >= 3:
        level3 = profiler.level3(spec, local_fraction=args.local_fraction)
        output["level3"] = {
            "interference_coefficient": level3.interference_coefficient,
            "sensitivity": {
                "loi": list(level3.sensitivity.loi_levels),
                "relative_performance": list(level3.sensitivity.relative_performance),
            },
        }
    _emit(output, args.json)
    return 0


def cmd_bfs_case_study(args: argparse.Namespace) -> int:
    result = BFSPlacementCaseStudy(scale=args.scale, seed=args.seed).run(
        with_sensitivity=not args.no_sensitivity
    )
    _emit({"rows": result.summary_rows()}, args.json)
    return 0


def _fault_schedule_from(args: argparse.Namespace) -> Any:
    """Build a :class:`FaultSchedule` from repeated ``--inject`` specs (or None).

    Exits with status 2 (via ``SystemExit``) on a malformed spec so callers
    get an argparse-style diagnostic rather than a traceback.
    """
    specs = getattr(args, "inject", None)
    if not specs:
        return None
    from .config.errors import FabricError
    from .fabric.faults import FaultSchedule, parse_fault_spec

    try:
        return FaultSchedule(tuple(parse_fault_spec(spec) for spec in specs))
    except FabricError as exc:
        print(f"bad --inject spec: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _run_trace_replay(args: argparse.Namespace) -> int:
    """``scheduling --trace``: replay a recorded sacct dump (ROADMAP item 3)."""
    from .casestudies.trace_replay import TraceJobMapper, TraceReplayStudy
    from .config.errors import ReproError

    if args.coupled or getattr(args, "inject", None) or args.overcommit:
        print(
            "--trace replays a recorded workload and cannot be combined with "
            "--coupled/--inject/--overcommit",
            file=sys.stderr,
        )
        return 2
    study = TraceReplayStudy(
        n_racks=args.racks,
        nodes_per_rack=args.nodes_per_rack,
        pool_capacity_gb=args.pool_gb,
        policy=args.policy,
        seed=args.seed,
        mapper=TraceJobMapper(local_fraction=args.trace_local_fraction),
    )
    try:
        result = study.run(args.trace, limit=args.trace_limit, window=args.trace_window)
    except OSError as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"trace replay failed: {exc}", file=sys.stderr)
        return 2
    _emit(result.summary(), args.json)
    return 0


def cmd_scheduling(args: argparse.Namespace) -> int:
    if args.trace is not None:
        return _run_trace_replay(args)
    schedule = _fault_schedule_from(args)
    if (schedule is not None or args.overcommit) and not args.coupled:
        print("--inject/--overcommit require --coupled", file=sys.stderr)
        return 2
    if args.coupled:
        from .casestudies.scheduling import CoupledSchedulingStudy
        from .workloads.registry import build_workload as _build

        specs = [_build(name, args.scale) for name in args.workloads] if args.workloads else None
        study = CoupledSchedulingStudy(
            n_racks=args.racks,
            nodes_per_rack=args.nodes_per_rack,
            pool_capacity_gb=args.pool_gb,
            policy=args.policy,
            ports_per_rack=args.ports,
            epoch_seconds=args.epoch_seconds,
            scale=args.scale,
            seed=args.seed,
            solver=args.solver,
            cluster_pool_gb=args.cluster_pool_gb,
            fault_schedule=schedule,
            overcommit=args.overcommit,
            drain_bytes_per_s=gb_per_s(args.drain_gbs),
        )
        result = study.run(
            specs=specs,
            copies=args.copies,
            stagger=args.stagger,
            with_sensitivity=args.with_sensitivity,
        )
        _emit(result.summary(), args.json)
        return 0
    study = SchedulingCaseStudy(n_runs=args.runs, seed=args.seed)
    result = study.run(jobs=args.jobs)
    _emit({r.workload: r.summary() for r in result.results}, args.json)
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    """Rack-scale co-simulation: tenants sharing one memory pool (fabric extension)."""
    from dataclasses import replace

    from .config.units import gib
    from .fabric import FabricTopology, MemoryPool, RackCoSimulator, uniform_tenants

    spec = build_workload(args.workload, args.scale)
    tenants = uniform_tenants(
        spec, args.tenants, local_fraction=args.local_fraction, stagger=args.stagger
    )
    schedule = _fault_schedule_from(args)
    drain = gb_per_s(args.drain_gbs)
    if args.cluster:
        from .fabric import ClusterCoSimulator, ClusterFabric

        fabric = ClusterFabric(
            n_racks=args.cluster,
            nodes_per_rack=args.tenants,
            n_ports=args.ports,
            port_capacity_scale=args.port_capacity_scale,
            uplink_capacity_scale=args.uplink_scale,
            solver=args.solver,
        )
        simulator = ClusterCoSimulator(
            fabric,
            rack_pool_bytes=(
                int(gib(args.pool_gb)) if args.pool_gb is not None else None
            ),
            cluster_pool_bytes=(
                int(gib(args.cluster_pool_gb)) if args.cluster_pool_gb else None
            ),
            epoch_seconds=args.epoch_seconds,
            seed=args.seed,
            overcommit=args.overcommit,
        )
        if schedule is not None:
            simulator.inject_faults(schedule, drain_bytes_per_s=drain)
        # Admissions must happen in arrival order (an admission at time t
        # steps the whole cluster to t first).
        admissions = sorted(
            (
                (tenant.arrival, rack, replace(tenant, name=f"rack{rack}-{tenant.name}"))
                for rack in range(args.cluster)
                for tenant in tenants
            ),
            key=lambda item: item[0],
        )
        for arrival, rack, tenant in admissions:
            simulator.admit(rack, tenant, time=arrival)
        _emit(simulator.run_to_completion(), args.json)
        return 0
    if args.pool_gb is not None:
        pool = MemoryPool(int(gib(args.pool_gb)), elastic=args.overcommit)
    elif args.overcommit:
        # Elasticity only matters when leases contend, so the default
        # capacity with --overcommit is exactly the sum of all leases.
        pool = MemoryPool(sum(t.lease_bytes for t in tenants), elastic=True)
    else:
        pool = None
    topology = FabricTopology(
        n_nodes=args.tenants,
        n_ports=args.ports,
        port_capacity_scale=args.port_capacity_scale,
        solver=args.solver,
    )
    simulator = RackCoSimulator(
        tenants,
        pool=pool,
        topology=topology,
        epoch_seconds=args.epoch_seconds,
        seed=args.seed,
    )
    if schedule is not None:
        simulator.inject_faults(schedule, drain_bytes_per_s=drain)
    result = simulator.run()
    output = result.summary()
    if args.timeline:
        output["timeline"] = result.telemetry.series()
    _emit(output, args.json)
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Render a telemetry dump: metrics catalog plus top spans."""
    if args.action != "report":
        print(f"unknown telemetry action {args.action!r}", file=sys.stderr)
        return 2
    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            dump = telemetry.read_jsonl(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry dump {args.file!r}: {exc}", file=sys.stderr)
        return 2
    print(render_report(dump.registry, dump.tracer, top=args.top))
    return 0


def _add_fault_args(parser: argparse.ArgumentParser, target: str) -> None:
    """Attach the shared fault-injection / elasticity flags to a subcommand."""
    parser.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        default=None,
        help="inject a fault into " + target + "; SPEC is KIND@TIME[:key=value,...] "
        "(e.g. 'port-kill@5.0:port=0,duration=2.5'); repeatable; see "
        "docs/failure_model.md for the taxonomy",
    )
    parser.add_argument(
        "--overcommit",
        action="store_true",
        help="make the memory pool(s) elastic: new leases may shrink running "
        "tenants down to their floor, charging the modeled page-give-back "
        "migration cost against their progress",
    )
    parser.add_argument(
        "--drain-gbs",
        type=float,
        default=4.0,
        help="page-give-back drain rate in GB/s used to price migration "
        "stalls after a shrink or revocation (default 4.0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dmem",
        description="Reproduction toolkit for 'A Quantitative Approach for Adopting "
        "Disaggregated Memory in HPC Systems' (SC 2023).",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        metavar="N",
        help="worker processes for parameter sweeps (commands that sweep "
        "shard their runs over N processes; results are bit-identical to "
        "a serial run)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record metrics and trace spans during the command and print a "
        "telemetry report afterwards",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the recorded metrics + spans to PATH as JSONL "
        "(implies --telemetry; read it back with 'telemetry report PATH')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate a table")
    p_table.add_argument("number", type=int, choices=(1, 2))
    p_table.set_defaults(func=cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate a figure's data")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--runs", type=positive_int, default=100, help="runs for figure 13")
    p_fig.set_defaults(func=cmd_figure)

    p_prof = sub.add_parser("profile", help="three-level profile of one workload")
    p_prof.add_argument("workload", choices=list(workload_names()) + ["XS"])
    p_prof.add_argument("--scale", type=positive_float, default=1.0)
    p_prof.add_argument("--levels", type=int, default=3, choices=(1, 2, 3))
    p_prof.add_argument("--local-fraction", type=closed_fraction, default=0.5)
    p_prof.set_defaults(func=cmd_profile)

    p_bfs = sub.add_parser("bfs-case-study", help="Section 7.1 case study")
    p_bfs.add_argument("--scale", type=positive_float, default=1.0)
    p_bfs.add_argument("--no-sensitivity", action="store_true")
    p_bfs.set_defaults(func=cmd_bfs_case_study)

    p_sched = sub.add_parser("scheduling", help="Section 7.2 case study")
    p_sched.add_argument("--runs", type=positive_int, default=100)
    p_sched.add_argument(
        "--coupled",
        action="store_true",
        help="rack-scale comparison: static slowdown_at(LoI) pricing vs "
        "fabric-coupled progress (RackCoSimulator stepped between events)",
    )
    p_sched.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workloads in the coupled job stream (default: all six)",
    )
    p_sched.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="replay a Slurm 'sacct -P' dump through the cluster simulator "
        "instead of the synthetic Section 7.2 workloads (see docs/data.md)",
    )
    p_sched.add_argument(
        "--trace-limit",
        type=positive_int,
        default=None,
        metavar="N",
        help="replay only the first N trace jobs",
    )
    p_sched.add_argument(
        "--trace-window",
        type=trace_window,
        default=None,
        metavar="START:END",
        help="replay only jobs submitted between START and END seconds after "
        "the trace starts (either side may be empty for an open bound)",
    )
    p_sched.add_argument(
        "--trace-local-fraction",
        type=closed_fraction,
        default=0.5,
        help="fraction of each trace job's footprint served node-locally; "
        "the rest draws on the rack pool",
    )
    p_sched.add_argument("--copies", type=positive_int, default=2, help="jobs per workload")
    p_sched.add_argument("--racks", type=positive_int, default=2, help="racks in the cluster")
    p_sched.add_argument("--nodes-per-rack", type=positive_int, default=2)
    p_sched.add_argument(
        "--pool-gb", type=positive_float, default=2048.0, help="pool capacity per rack, GB"
    )
    p_sched.add_argument(
        "--policy",
        default="least-loaded",
        help="placement policy for the coupled comparison",
    )
    p_sched.add_argument("--ports", type=positive_int, default=1, help="pool ports per rack")
    p_sched.add_argument(
        "--scale", type=positive_float, default=1.0, help="workload input scale"
    )
    p_sched.add_argument(
        "--stagger", type=nonnegative_float, default=0.0, help="seconds between job arrivals"
    )
    p_sched.add_argument(
        "--epoch-seconds", type=positive_float, default=None, help="fabric co-simulation step"
    )
    p_sched.add_argument(
        "--with-sensitivity",
        action="store_true",
        help="measure Level-3 sensitivity curves so the static model prices "
        "co-location with the paper's full submission-time hints",
    )
    p_sched.add_argument(
        "--solver",
        choices=("vectorized", "scalar"),
        default="vectorized",
        help="contention solver of the coupled fabric (vectorized NumPy or "
        "the scalar reference path)",
    )
    p_sched.add_argument(
        "--cluster-pool-gb",
        type=nonnegative_float,
        default=0.0,
        help="cluster-level spill pool for the coupled fabric, decimal GB "
        "like every scheduler-layer capacity (0 disables spilling)",
    )
    _add_fault_args(p_sched, "the coupled fabric (requires --coupled)")
    p_sched.set_defaults(func=cmd_scheduling)

    p_fabric = sub.add_parser(
        "fabric", help="rack-scale shared memory-pool co-simulation"
    )
    p_fabric.add_argument("--tenants", type=positive_int, default=4, help="co-located tenants")
    p_fabric.add_argument("--workload", default="Hypre", help="tenant workload")
    p_fabric.add_argument(
        "--scale", type=positive_float, default=1.0, help="input scale factor"
    )
    p_fabric.add_argument(
        "--local-fraction",
        type=closed_fraction,
        default=0.5,
        help="fraction of each tenant's footprint served locally",
    )
    p_fabric.add_argument(
        "--pool-gb",
        type=positive_float,
        default=None,
        help="pool capacity in GiB — the fabric layer counts raw bytes "
        "(default: enough for all tenants)",
    )
    p_fabric.add_argument("--ports", type=positive_int, default=1, help="shared pool ports")
    p_fabric.add_argument(
        "--port-capacity-scale",
        type=positive_float,
        default=1.0,
        help="pool-port capacity as a multiple of one node link (>= 1)",
    )
    p_fabric.add_argument(
        "--stagger", type=nonnegative_float, default=0.0, help="seconds between tenant arrivals"
    )
    p_fabric.add_argument(
        "--epoch-seconds", type=positive_float, default=None, help="co-simulation step"
    )
    p_fabric.add_argument(
        "--timeline", action="store_true", help="include the pool telemetry timeline"
    )
    p_fabric.add_argument(
        "--cluster",
        type=int,
        default=0,  # 0 = single-rack mode, so positive_int does not apply
        metavar="N_RACKS",
        help="co-simulate N_RACKS racks (each with --tenants tenants) through "
        "the cluster fabric instead of a single rack",
    )
    p_fabric.add_argument(
        "--solver",
        choices=("vectorized", "scalar"),
        default="vectorized",
        help="contention solver: batched NumPy fixed point or the scalar "
        "reference path",
    )
    p_fabric.add_argument(
        "--cluster-pool-gb",
        type=nonnegative_float,
        default=0.0,
        help="cluster-level spill pool capacity in GiB (0 disables spilling; "
        "only with --cluster)",
    )
    p_fabric.add_argument(
        "--uplink-scale",
        type=positive_float,
        default=4.0,
        help="rack uplink capacity as a multiple of one node link "
        "(only with --cluster)",
    )
    _add_fault_args(p_fabric, "the rack (or every rack with --cluster)")
    p_fabric.set_defaults(func=cmd_fabric)

    p_tel = sub.add_parser(
        "telemetry", help="inspect recorded telemetry (metrics + trace spans)"
    )
    p_tel.add_argument("action", choices=("report",), help="what to do with the dump")
    p_tel.add_argument("file", help="JSONL dump written by --trace-out")
    p_tel.add_argument(
        "--top", type=int, default=10, help="span names to list (by total time)"
    )
    p_tel.set_defaults(func=cmd_telemetry)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    ``--telemetry`` / ``--trace-out`` bracket the whole command: recording is
    enabled (on a fresh registry/tracer) before the subcommand runs, the
    JSONL dump is written after it returns, and the in-process report is
    printed when no dump path was given.  Telemetry is switched off again
    before returning so repeated in-process calls (doctests, tests) stay
    independent.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    record = bool(getattr(args, "telemetry", False) or getattr(args, "trace_out", None))
    if record:
        telemetry.enable(reset=True)
    try:
        status = args.func(args)
    finally:
        if record:
            telemetry.disable()
    if record and status == 0:
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                telemetry.write_jsonl(fh)
            print(f"telemetry written to {args.trace_out}", file=sys.stderr)
        else:
            print(render_report(telemetry.registry(), telemetry.tracer()))
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
