"""Hardware performance event names used by the profiler.

The paper's profiler programs a small set of Skylake-X events; the simulator
produces counters under the same names so the profiler layer can apply the
paper's formulas verbatim (Equations 1 and 2 for prefetch accuracy and
coverage, the OFFCORE local/remote DRAM events for the Level-2 access ratios,
and the UPI ``sktXtraffic`` counters for Level-3 link traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping


# -- L2 prefetcher events (Level 1, Section 4.2) -----------------------------

#: Prefetch requests for data reads issued by the L2 hardware prefetcher.
PF_L2_DATA_RD = "PF_L2_DATA_RD"
#: Prefetch requests for stores (read-for-ownership) issued by the L2 prefetcher.
PF_L2_RFO = "PF_L2_RFO"
#: All cachelines brought into L2 (demand and prefetch).
L2_LINES_IN = "L2_LINES_IN"
#: Prefetched cachelines that were evicted without ever being accessed.
USELESS_HWPF = "USELESS_HWPF"

# -- Offcore response events (Levels 1 and 2) ---------------------------------

#: Bytes-equivalent count of cachelines that missed the L3 and went to memory.
OFFCORE_L3_MISS = "OFFCORE_RESPONSE.L3_MISS"
#: L3 misses served by the node-local DRAM tier.
OFFCORE_LOCAL_DRAM = "OFFCORE_RESPONSE.L3_MISS.LOCAL_DRAM"
#: L3 misses served by the remote tier (memory pool over the link).
OFFCORE_REMOTE_DRAM = "OFFCORE_RESPONSE.L3_MISS.REMOTE_DRAM"

# -- Floating point / timing events (Level 1 roofline placement) --------------

#: Retired double-precision floating point operations (scalar+vector, flop count).
FP_ARITH_OPS = "FP_ARITH_INST_RETIRED.ALL"
#: Elapsed wall-clock time of the measured region, seconds.
ELAPSED_SECONDS = "ELAPSED_SECONDS"

# -- UPI / link events (Level 3, Intel PCM sktXtraffic) -----------------------

#: Raw traffic injected on the link to the memory pool, bytes (incl. protocol overhead).
UPI_TRAFFIC_BYTES = "UPI.SKT_TRAFFIC_BYTES"
#: Average utilisation of the remote link during the measured region (0..1).
UPI_UTILIZATION = "UPI.UTILIZATION"

#: All event names the simulator can produce.
ALL_EVENTS = (
    PF_L2_DATA_RD,
    PF_L2_RFO,
    L2_LINES_IN,
    USELESS_HWPF,
    OFFCORE_L3_MISS,
    OFFCORE_LOCAL_DRAM,
    OFFCORE_REMOTE_DRAM,
    FP_ARITH_OPS,
    ELAPSED_SECONDS,
    UPI_TRAFFIC_BYTES,
    UPI_UTILIZATION,
)


@dataclass
class CounterSet:
    """A mutable bag of named performance counters.

    Counters are floats because sampled simulation scales raw sample counts by
    the sample weight.  The class supports merging (for aggregating phases
    into program totals) and dict-like access.
    """

    values: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, value: float) -> None:
        """Accumulate ``value`` into counter ``name``."""
        self.values[name] = self.values.get(name, 0.0) + float(value)

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name``."""
        self.values[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        """Read counter ``name`` (0 if never written)."""
        return self.values.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self.values.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def merged(self, other: "CounterSet") -> "CounterSet":
        """A new counter set with the sum of both operands."""
        result = CounterSet(dict(self.values))
        for name, value in other.values.items():
            result.add(name, value)
        return result

    def update_from(self, mapping: Mapping[str, float]) -> None:
        """Accumulate every entry of ``mapping``."""
        for name, value in mapping.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, float]:
        """A copy of the counter values."""
        return dict(self.values)
