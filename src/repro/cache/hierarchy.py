"""Cache hierarchy model connecting access patterns to memory-side counters.

The execution engine characterises each kernel by the memory traffic it
generates *past the last-level cache* (the quantity the roofline model and the
paper's offcore counters are defined on).  This module turns that traffic plus
the kernel's access pattern into the hardware-counter view the profiler
expects:

* ``L2_LINES_IN`` — all line fills (demand + prefetch),
* ``PF_L2_DATA_RD`` / ``PF_L2_RFO`` — prefetch requests issued,
* ``USELESS_HWPF`` — prefetched lines never used,
* the extra ("excessive") DRAM traffic caused by useless prefetches, and
* the fraction of demand traffic whose latency is hidden by prefetching,
  which the performance model uses to translate coverage into speedup.

Two analysis paths exist: a *sampled* path that inspects an actual ordered
cacheline stream (used when the workload provides one, and by the validation
tests against :class:`~repro.cache.setassoc.SetAssociativeCache`), and a
*closed-form* path driven by the pattern's stream fraction for large kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config.testbed import TestbedConfig
from ..trace.access import AccessBatch
from . import events
from .events import CounterSet
from .prefetcher import PrefetchOutcome, analyze_fraction, analyze_stream


@dataclass(frozen=True)
class KernelCacheStats:
    """Memory-hierarchy statistics of one kernel execution.

    Attributes
    ----------
    demand_dram_lines:
        Cachelines the kernel demands from memory (excludes prefetch waste).
    useless_prefetch_lines:
        Additional lines fetched by the prefetcher and never used.
    covered_fraction:
        Fraction of demand lines whose fetch was initiated by the prefetcher
        ahead of the demand access (prefetch coverage of this kernel).
    accuracy:
        Prefetch accuracy over this kernel.
    counters:
        Counter set with the event names from :mod:`repro.cache.events`.
    """

    demand_dram_lines: float
    useless_prefetch_lines: float
    covered_fraction: float
    accuracy: float
    counters: CounterSet

    @property
    def total_dram_lines(self) -> float:
        """All lines transferred from memory, including prefetch waste."""
        return self.demand_dram_lines + self.useless_prefetch_lines

    @property
    def excess_traffic_fraction(self) -> float:
        """Extra traffic from useless prefetches relative to demand traffic."""
        if self.demand_dram_lines <= 0:
            return 0.0
        return self.useless_prefetch_lines / self.demand_dram_lines


class CacheHierarchyModel:
    """Produces :class:`KernelCacheStats` for kernels running on a testbed."""

    def __init__(self, testbed: TestbedConfig) -> None:
        self.testbed = testbed
        self.line_bytes = testbed.cacheline_bytes

    # -- closed-form path -------------------------------------------------------

    def stats_from_fraction(
        self,
        demand_dram_bytes: float,
        stream_fraction: float,
        write_fraction: float = 0.0,
        accuracy_hint: Optional[float] = None,
        prefetch_enabled: Optional[bool] = None,
    ) -> KernelCacheStats:
        """Closed-form kernel statistics from the pattern's stream fraction.

        Parameters
        ----------
        demand_dram_bytes:
            Bytes the kernel must move from memory to execute (its roofline
            traffic).
        stream_fraction:
            Fraction of those accesses belonging to prefetchable streams.
        write_fraction:
            Fraction of traffic that is stores (RFO).
        accuracy_hint:
            Optional override of the prefetcher accuracy (workload models use
            this to pin application-specific behaviour such as SuperLU's
            37% excess traffic).
        prefetch_enabled:
            Override the testbed's prefetcher switch (used for the
            prefetch-on/off experiments of Figures 7 and 8).
        """
        enabled = (
            self.testbed.prefetcher.enabled if prefetch_enabled is None else prefetch_enabled
        )
        config = self.testbed.prefetcher
        if enabled != config.enabled:
            config = config.disabled() if not enabled else type(config)(
                enabled=True,
                degree=config.degree,
                detection_window=config.detection_window,
                max_streams=config.max_streams,
            )
        n_lines = int(round(max(demand_dram_bytes, 0.0) / self.line_bytes))
        outcome = analyze_fraction(
            n_accesses=n_lines,
            stream_fraction=stream_fraction,
            config=config,
            write_fraction=write_fraction,
            accuracy_hint=accuracy_hint,
        )
        return self._build_stats(n_lines, outcome)

    # -- sampled path -----------------------------------------------------------

    def stats_from_batch(
        self,
        batch: AccessBatch,
        demand_dram_bytes: float,
        prefetch_enabled: Optional[bool] = None,
        max_stride: int = 4,
    ) -> KernelCacheStats:
        """Kernel statistics from a sampled ordered access stream.

        The sampled stream determines coverage/accuracy; the absolute traffic
        is scaled to ``demand_dram_bytes``.
        """
        enabled = (
            self.testbed.prefetcher.enabled if prefetch_enabled is None else prefetch_enabled
        )
        config = self.testbed.prefetcher if enabled else self.testbed.prefetcher.disabled()
        outcome = analyze_stream(batch.lines, batch.is_write, config, max_stride=max_stride)
        n_lines = int(round(max(demand_dram_bytes, 0.0) / self.line_bytes))
        return self._build_stats(n_lines, outcome)

    # -- shared assembly ---------------------------------------------------------

    def _build_stats(self, demand_lines: int, outcome: PrefetchOutcome) -> KernelCacheStats:
        if outcome.demand_accesses > 0:
            scale = demand_lines / outcome.demand_accesses
        else:
            scale = 0.0
        covered = outcome.coverage
        accuracy = outcome.accuracy
        useless_lines = outcome.useless_prefetches * scale
        pf_data = outcome.prefetches_data_rd * scale
        pf_rfo = outcome.prefetches_rfo * scale

        counters = CounterSet()
        counters.add(events.L2_LINES_IN, demand_lines + useless_lines)
        counters.add(events.PF_L2_DATA_RD, pf_data)
        counters.add(events.PF_L2_RFO, pf_rfo)
        counters.add(events.USELESS_HWPF, useless_lines)
        counters.add(events.OFFCORE_L3_MISS, demand_lines + useless_lines)
        return KernelCacheStats(
            demand_dram_lines=float(demand_lines),
            useless_prefetch_lines=float(useless_lines),
            covered_fraction=float(covered),
            accuracy=float(accuracy),
            counters=counters,
        )

    # -- derived metric helpers (paper Eq. 1 and Eq. 2) ---------------------------

    @staticmethod
    def accuracy_from_counters(counters: CounterSet) -> float:
        """Prefetch accuracy from raw counters (paper Equation 1)."""
        issued = counters[events.PF_L2_DATA_RD] + counters[events.PF_L2_RFO]
        if issued <= 0:
            return 0.0
        return (issued - counters[events.USELESS_HWPF]) / issued

    @staticmethod
    def coverage_from_counters(counters: CounterSet) -> float:
        """Prefetch coverage from raw counters (paper Equation 2)."""
        useful_fills = counters[events.L2_LINES_IN] - counters[events.USELESS_HWPF]
        if useful_fills <= 0:
            return 0.0
        issued = counters[events.PF_L2_DATA_RD] + counters[events.PF_L2_RFO]
        useful_prefetches = issued - counters[events.USELESS_HWPF]
        return float(np.clip(useful_prefetches / useful_fills, 0.0, 1.0))
