"""L2 hardware stream/stride prefetcher model.

The paper quantifies the suitability of prefetching per application with two
metrics (Section 4.2):

* **Accuracy** — fraction of prefetched lines that the program actually used,
* **Coverage** — fraction of L2 line fills that were prefetched rather than
  demanded.

plus the *excessive memory traffic* caused by useless prefetches and the
*performance gain* of enabling prefetching.  This module computes the raw
ingredients from an ordered access stream: it detects sequential / constant
stride streams (like the Skylake L2 streamer), decides which accesses would
have been covered by a prefetch, and how many prefetched lines were never
used (overshoot past the end of each stream).

Two entry points are provided:

* :func:`analyze_stream` — vectorised analysis of a sampled cacheline stream,
* :func:`analyze_fraction` — closed-form analysis when only the pattern's
  stream fraction is known (used for very large kernels where sampling the
  stream would be wasteful).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.testbed import PrefetcherConfig


@dataclass(frozen=True)
class PrefetchOutcome:
    """Raw prefetcher activity over one access stream.

    All quantities are in units of cachelines of the *sampled* stream; callers
    scale them by the batch weight to full-traffic counts.
    """

    #: Demand accesses analysed.
    demand_accesses: int
    #: Demand accesses that hit on a previously prefetched line.
    covered_accesses: int
    #: Prefetch requests issued for data reads.
    prefetches_data_rd: int
    #: Prefetch requests issued for stores (RFO).
    prefetches_rfo: int
    #: Prefetched lines never demanded before eviction (useless prefetches).
    useless_prefetches: int

    @property
    def prefetches_issued(self) -> int:
        """Total prefetch requests issued."""
        return self.prefetches_data_rd + self.prefetches_rfo

    @property
    def useful_prefetches(self) -> int:
        """Prefetches that were eventually demanded."""
        return self.prefetches_issued - self.useless_prefetches

    @property
    def accuracy(self) -> float:
        """Fraction of prefetched lines that were used (paper Eq. 1 numerator/denominator)."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches_issued

    @property
    def coverage(self) -> float:
        """Fraction of useful line fills that were prefetched (paper Eq. 2)."""
        useful_fills = self.demand_accesses
        if useful_fills == 0:
            return 0.0
        return min(self.covered_accesses / useful_fills, 1.0)

    @property
    def excess_traffic_fraction(self) -> float:
        """Extra memory traffic caused by useless prefetches, as a fraction of demand traffic."""
        if self.demand_accesses == 0:
            return 0.0
        return self.useless_prefetches / self.demand_accesses

    @staticmethod
    def disabled(demand_accesses: int) -> "PrefetchOutcome":
        """The outcome when hardware prefetching is turned off."""
        return PrefetchOutcome(
            demand_accesses=int(demand_accesses),
            covered_accesses=0,
            prefetches_data_rd=0,
            prefetches_rfo=0,
            useless_prefetches=0,
        )


def _stream_run_lengths(lines: np.ndarray, max_stride: int) -> np.ndarray:
    """Lengths of maximal constant-small-stride runs in an access stream.

    A run is a maximal subsequence where consecutive accesses differ by a
    constant stride with ``1 <= |stride| <= max_stride``.  Single accesses that
    belong to no run are reported as runs of length 1.
    """
    n = len(lines)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.ones(1, dtype=np.int64)
    deltas = np.diff(lines.astype(np.int64))
    # Access i+1 extends a run when the step from access i is a small stride.
    continues = (np.abs(deltas) >= 1) & (np.abs(deltas) <= max_stride)
    # Run lengths: a stretch of k consecutive True values in `continues`
    # corresponds to a stream of k+1 accesses.  Run-length encode the mask.
    padded = np.concatenate([[False], continues, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = changes[::2], changes[1::2]
    true_runs = ends - starts  # lengths of True stretches in `continues`
    covered_positions = int(true_runs.sum())
    lengths = list(true_runs + 1)  # accesses per stream
    # Positions not covered by any stream are singleton runs.
    n_singletons = n - (covered_positions + len(true_runs))
    lengths.extend([1] * max(n_singletons, 0))
    return np.asarray(lengths, dtype=np.int64)


def analyze_stream(
    lines: np.ndarray,
    is_write: np.ndarray | None,
    config: PrefetcherConfig,
    max_stride: int = 4,
) -> PrefetchOutcome:
    """Analyse prefetcher behaviour over an ordered cacheline stream.

    The model mirrors a streamer prefetcher: once ``config.detection_window``
    accesses of a constant small stride are seen, the remaining accesses of
    that run are covered by prefetches, and the prefetcher overshoots each
    run's end by up to ``config.degree`` lines (those overshoot lines are the
    useless prefetches).
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    if not config.enabled or n == 0:
        return PrefetchOutcome.disabled(n)

    write_fraction = 0.0
    if is_write is not None and n > 0:
        write_fraction = float(np.asarray(is_write, dtype=bool).mean())

    runs = _stream_run_lengths(lines, max_stride=max_stride)
    window = config.detection_window
    # Covered accesses: portion of each run beyond the detection window.
    covered = np.clip(runs - window, 0, None)
    covered_total = int(covered.sum())
    # Issued prefetches: covered accesses plus overshoot at the end of every
    # detected stream (min(degree, run tail) lines fetched past the end).
    detected = runs > window
    overshoot = int(np.minimum(config.degree, np.maximum(runs[detected] // 2, 1)).sum()) if detected.any() else 0
    issued_total = covered_total + overshoot
    useless = overshoot

    pf_rfo = int(round(issued_total * write_fraction))
    pf_data = issued_total - pf_rfo
    return PrefetchOutcome(
        demand_accesses=n,
        covered_accesses=covered_total,
        prefetches_data_rd=pf_data,
        prefetches_rfo=pf_rfo,
        useless_prefetches=useless,
    )


def analyze_fraction(
    n_accesses: int,
    stream_fraction: float,
    config: PrefetcherConfig,
    write_fraction: float = 0.0,
    accuracy_hint: float | None = None,
) -> PrefetchOutcome:
    """Closed-form prefetcher outcome from a pattern's stream fraction.

    ``stream_fraction`` is the fraction of accesses that belong to
    prefetchable streams (a property of the access pattern).  The prefetcher
    covers that fraction (minus the detection window cost, folded into the
    stream fraction already) and wastes a small overshoot per stream, so the
    accuracy degrades gracefully as the stream fraction falls — matching the
    paper's observation that XSBench's prefetcher throttles itself down and
    produces little excess traffic despite low accuracy.
    """
    n_accesses = int(n_accesses)
    if not config.enabled or n_accesses == 0:
        return PrefetchOutcome.disabled(n_accesses)
    stream_fraction = float(np.clip(stream_fraction, 0.0, 1.0))
    covered = int(round(n_accesses * stream_fraction))
    if accuracy_hint is None:
        # Long streams (high stream fraction) waste proportionally less:
        # overshoot is one `degree` burst per stream, and streams are longer
        # when the stream fraction is higher.
        typical_run = max(8.0, 256.0 * stream_fraction)
        useless = int(round(covered * min(config.degree / typical_run, 1.0)))
    else:
        accuracy_hint = float(np.clip(accuracy_hint, 1e-6, 1.0))
        useless = int(round(covered * (1.0 - accuracy_hint) / accuracy_hint))
    issued = covered + useless
    pf_rfo = int(round(issued * float(np.clip(write_fraction, 0.0, 1.0))))
    return PrefetchOutcome(
        demand_accesses=n_accesses,
        covered_accesses=covered,
        prefetches_data_rd=issued - pf_rfo,
        prefetches_rfo=pf_rfo,
        useless_prefetches=useless,
    )


class StreamPrefetcher:
    """Stateful wrapper used by the detailed cache simulation.

    Tracks up to ``config.max_streams`` concurrent streams; when an access
    extends a tracked stream beyond the detection window, the next
    ``config.degree`` lines are prefetched into the supplied cache.
    """

    def __init__(self, config: PrefetcherConfig, max_stride: int = 4) -> None:
        self.config = config
        self.max_stride = max_stride
        # Each tracked stream: (last_line, stride, confirmations)
        self._streams: list[list[int]] = []
        self.issued = 0

    def observe(self, line: int) -> list[int]:
        """Observe a demand access; return the lines to prefetch (possibly empty)."""
        if not self.config.enabled:
            return []
        line = int(line)
        for stream in self._streams:
            last, stride, confirmations = stream
            delta = line - last
            if stride == 0:
                if 1 <= abs(delta) <= self.max_stride:
                    stream[0], stream[1], stream[2] = line, delta, confirmations + 1
                    return self._maybe_prefetch(stream)
            elif delta == stride:
                stream[0], stream[2] = line, confirmations + 1
                return self._maybe_prefetch(stream)
        # No stream matched: start tracking a new one (evict the oldest).
        self._streams.append([line, 0, 1])
        if len(self._streams) > self.config.max_streams:
            self._streams.pop(0)
        return []

    def _maybe_prefetch(self, stream: list[int]) -> list[int]:
        last, stride, confirmations = stream
        if confirmations < self.config.detection_window or stride == 0:
            return []
        lines = [last + stride * (i + 1) for i in range(self.config.degree)]
        self.issued += len(lines)
        return lines

    def reset(self) -> None:
        """Forget all tracked streams."""
        self._streams.clear()
        self.issued = 0
