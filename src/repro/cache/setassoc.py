"""Set-associative cache with LRU replacement.

A faithful (if deliberately simple) cache model used for small access streams,
unit tests and the detailed simulation mode.  The production execution engine
normally uses the faster analytical hit-rate model in
:mod:`repro.cache.hierarchy`; this class exists so that model has a ground
truth to be validated against (and so users can run detailed experiments on
reduced problem sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.testbed import CacheLevelConfig


@dataclass
class CacheAccessResult:
    """Outcome of replaying an access stream through a cache."""

    hits: np.ndarray
    misses: np.ndarray

    @property
    def n_hits(self) -> int:
        """Number of accesses that hit."""
        return int(self.hits.sum())

    @property
    def n_misses(self) -> int:
        """Number of accesses that missed."""
        return int(self.misses.sum())

    @property
    def hit_rate(self) -> float:
        """Hit rate over the replayed stream."""
        total = len(self.hits)
        return self.n_hits / total if total else 0.0

    @property
    def miss_lines(self) -> int:
        """Alias for :attr:`n_misses` (lines that had to be fetched)."""
        return self.n_misses


class SetAssociativeCache:
    """An LRU set-associative cache over global cacheline indices.

    The cache is indexed by cacheline index (byte address / line size), so the
    address space granularity matches :class:`repro.trace.AccessBatch`.
    """

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.associativity = config.associativity
        # Tag store: per set, a list of line indices in LRU order
        # (index 0 = least recently used, last = most recently used).
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        #: Lines inserted by the prefetcher that have not yet been demanded.
        self._prefetched_unused: set[int] = set()
        #: Count of prefetched lines evicted without ever being demanded.
        self.useless_prefetches = 0
        #: Total lines inserted (demand misses + prefetch fills).
        self.lines_in = 0

    # -- low-level operations ---------------------------------------------------

    def _set_of(self, line: int) -> int:
        return int(line) % self.n_sets

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Check whether ``line`` is resident; optionally refresh its LRU position."""
        line = int(line)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            if update_lru:
                ways.remove(line)
                ways.append(line)
            return True
        return False

    def _evict_if_needed(self, ways: list[int]) -> None:
        while len(ways) >= self.associativity:
            victim = ways.pop(0)
            if victim in self._prefetched_unused:
                self._prefetched_unused.discard(victim)
                self.useless_prefetches += 1

    def insert(self, line: int, prefetched: bool = False) -> None:
        """Insert ``line`` (fetching it from the next level)."""
        line = int(line)
        ways = self._sets[self._set_of(line)]
        if line in ways:
            # Already resident: a prefetch for a resident line is a no-op.
            return
        self._evict_if_needed(ways)
        ways.append(line)
        self.lines_in += 1
        if prefetched:
            self._prefetched_unused.add(line)

    def access(self, line: int, is_write: bool = False) -> bool:
        """Demand access to ``line``.  Returns True on hit, False on miss.

        A miss inserts the line.  A hit on a previously prefetched line marks
        that prefetch as useful.
        """
        line = int(line)
        if self.lookup(line):
            self._prefetched_unused.discard(line)
            return True
        self.insert(line, prefetched=False)
        return False

    # -- bulk interface -----------------------------------------------------------

    def run(self, lines: np.ndarray, is_write: np.ndarray | None = None) -> CacheAccessResult:
        """Replay an ordered access stream; returns per-access hit/miss flags."""
        lines = np.asarray(lines, dtype=np.int64)
        hits = np.zeros(len(lines), dtype=bool)
        for i, line in enumerate(lines):
            hits[i] = self.access(int(line))
        return CacheAccessResult(hits=hits, misses=~hits)

    def reset(self) -> None:
        """Empty the cache and clear statistics."""
        self._sets = [[] for _ in range(self.n_sets)]
        self._prefetched_unused.clear()
        self.useless_prefetches = 0
        self.lines_in = 0

    # -- statistics --------------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(w) for w in self._sets)

    @property
    def pending_prefetches(self) -> int:
        """Prefetched lines still resident and not yet demanded."""
        return len(self._prefetched_unused)
