"""Cache hierarchy, hardware prefetcher model and performance events."""

from . import events
from .events import CounterSet
from .hierarchy import CacheHierarchyModel, KernelCacheStats
from .prefetcher import (
    PrefetchOutcome,
    StreamPrefetcher,
    analyze_fraction,
    analyze_stream,
)
from .setassoc import CacheAccessResult, SetAssociativeCache

__all__ = [
    "events",
    "CounterSet",
    "CacheHierarchyModel",
    "KernelCacheStats",
    "PrefetchOutcome",
    "StreamPrefetcher",
    "analyze_fraction",
    "analyze_stream",
    "CacheAccessResult",
    "SetAssociativeCache",
]
