"""Behavioural model of SuperLU (sparse LU factorisation).

Table 2 uses three SuiteSparse matrices (SiO, H2O, Si34H36 with 1.3M, 2.2M and
5.2M non-zeros).  Characteristics reproduced here:

* Sparse factorisation has three distinguishable phases in the paper's
  fine-grained roofline (Figure 5): symbolic analysis / ordering (p1), the
  numerical factorisation (p2) and the triangular solves (p3).
* The bandwidth-capacity scaling curve *changes shape* with the input: the
  smallest matrix has a skewed access distribution (supernodes touched
  repeatedly), which moves towards uniform as fill-in grows with the larger
  matrices (Figure 6c) — unlike every other evaluated code.
* The prefetcher helps performance (≈31% gain) but at the price of by far the
  largest excessive memory traffic (+37% total traffic with prefetching on,
  Figure 8): supernodal panels are streamed speculatively past their ends.
* Moderate interference sensitivity and interference coefficient.
"""

from __future__ import annotations

from ..config.units import GB
from ..memory.objects import MemoryObject
from ..trace.patterns import BlockedPattern, GatherPattern, HotColdPattern
from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_BURSTY,
    TRAFFIC_PROFILE_FLAT,
    TRAFFIC_PROFILE_RAMP,
    WorkloadModel,
    WorkloadSpec,
)


class SuperLUModel(WorkloadModel):
    """SuperLU sparse LU factorisation (SuiteSparse chemistry matrices)."""

    name = "SuperLU"
    description = "Sparse LU factorization."
    parallelization = "MPI+OpenMP"
    input_labels = ("SiO nnz=1.3M", "H2O nnz=2.2M", "Si34H36 nnz=5.2M")
    input_scales = (1.0, 2.0, 4.0)

    #: L/U factor storage (grows with fill-in) at scale 1.
    BASE_FACTORS_BYTES = 0.85 * GB
    #: Original matrix + column structures at scale 1.
    BASE_MATRIX_BYTES = 0.25 * GB
    #: Supernodal work arrays at scale 1.
    BASE_WORK_BYTES = 0.20 * GB
    #: Factorisation flops at scale 1.
    BASE_FLOPS = 2.8e12
    #: Factorisation DRAM traffic at scale 1.
    BASE_TRAFFIC = 1.3e12

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        if scale <= 0:
            raise ValueError("scale must be positive")
        label = (
            self.input_labels[self.input_scales.index(scale)]
            if scale in self.input_scales
            else f"x{scale:g}"
        )
        # Hot-set concentration decreases with the matrix size: the small SiO
        # problem re-touches a few supernodes constantly, the large Si34H36
        # factors spread work much more uniformly (Figure 6c).
        hot_fraction = min(0.18 * scale, 0.8)
        hot_traffic = max(0.85 - 0.18 * (scale - 1.0), 0.45)

        objects = (
            MemoryObject(
                name="lu-factors",
                size_bytes=int(self.BASE_FACTORS_BYTES * scale),
                pattern=HotColdPattern(
                    hot_fraction=hot_fraction,
                    hot_traffic=hot_traffic,
                    stream_fraction=0.55,
                ),
                allocation_site="Glu/LUstruct",
            ),
            MemoryObject(
                name="sparse-matrix",
                size_bytes=int(self.BASE_MATRIX_BYTES * scale),
                pattern=GatherPattern(indexed_fraction=0.5, skew_alpha=0.7, stream_fraction=0.4),
                allocation_site="dCreate_CompCol_Matrix",
            ),
            MemoryObject(
                name="supernode-work",
                size_bytes=int(self.BASE_WORK_BYTES * scale),
                pattern=BlockedPattern(block_lines=256, stream_fraction=0.8),
                allocation_site="pdgstrf/work",
            ),
        )
        phases = (
            PhaseSpec(
                name="p1",
                flops=1.5e9 * scale,
                dram_bytes=3.0 * self.BASE_MATRIX_BYTES * scale,
                object_traffic={"sparse-matrix": 0.8, "lu-factors": 0.15, "supernode-work": 0.05},
                write_fraction=0.4,
                mlp=5.0,
                stream_fraction=0.4,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.1,
            ),
            PhaseSpec(
                name="p2",
                flops=self.BASE_FLOPS * scale,
                dram_bytes=self.BASE_TRAFFIC * scale,
                object_traffic={"lu-factors": 0.7, "sparse-matrix": 0.1, "supernode-work": 0.2},
                write_fraction=0.35,
                mlp=7.0,
                stream_fraction=0.55,
                prefetch_accuracy_hint=0.60,
                traffic_profile=TRAFFIC_PROFILE_RAMP,
                duration_weight=0.75,
            ),
            PhaseSpec(
                name="p3",
                flops=0.05 * self.BASE_FLOPS * scale,
                dram_bytes=0.2 * self.BASE_TRAFFIC * scale,
                object_traffic={"lu-factors": 0.85, "sparse-matrix": 0.05, "supernode-work": 0.1},
                write_fraction=0.2,
                mlp=4.0,
                stream_fraction=0.5,
                prefetch_accuracy_hint=0.75,
                traffic_profile=TRAFFIC_PROFILE_BURSTY,
                duration_weight=0.15,
            ),
        )
        return WorkloadSpec(
            name=self.name,
            input_label=label,
            scale=scale,
            objects=objects,
            phases=phases,
        )
