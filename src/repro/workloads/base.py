"""Workload specification model.

The paper evaluates six real HPC applications (Table 2).  Running those codes
is impossible here, so each application is represented by a **behavioural
model**: the memory objects it allocates (in program allocation order, with
sizes scaling like the paper's 1:2:4 input problems), and a sequence of
execution *phases*, each characterised by the properties the paper's
three-level methodology actually measures —

* floating-point work and DRAM traffic (arithmetic intensity, Figure 5),
* how that traffic is distributed over the allocated objects and their pages
  (bandwidth-capacity scaling curves, Figure 6; tier access ratios, Figure 9),
* how prefetchable the access stream is (prefetch accuracy/coverage/gain,
  Figures 7 and 8),
* how much memory-level parallelism the kernel has, i.e. how exposed it is to
  access latency (interference sensitivity, Figure 10).

The execution engine in :mod:`repro.sim.engine` turns these specifications
into placements, counters and runtimes on a given platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from ..config.errors import WorkloadError
from ..memory.objects import MemoryObject


#: Shapes of a phase's traffic over time, used for the Figure-7 timelines.
TRAFFIC_PROFILE_FLAT = "flat"
TRAFFIC_PROFILE_DECREASING = "decreasing"
TRAFFIC_PROFILE_RAMP = "ramp"
TRAFFIC_PROFILE_BURSTY = "bursty"

TRAFFIC_PROFILES = (
    TRAFFIC_PROFILE_FLAT,
    TRAFFIC_PROFILE_DECREASING,
    TRAFFIC_PROFILE_RAMP,
    TRAFFIC_PROFILE_BURSTY,
)


@dataclass(frozen=True)
class PhaseSpec:
    """One execution phase of a workload.

    Attributes
    ----------
    name:
        Phase label; the paper uses ``p1`` for initialisation and ``p2``
        (``p3``…) for compute phases.
    flops:
        Floating-point operations executed in the phase.
    dram_bytes:
        Demand traffic from main memory (past the LLC) in bytes — the
        denominator of the paper's arithmetic intensity.
    object_traffic:
        Mapping from object name to the fraction of ``dram_bytes`` that goes
        to that object.  Fractions must sum to 1 (within tolerance).
    write_fraction:
        Fraction of traffic that is stores (read-for-ownership).
    mlp:
        Effective memory-level parallelism of demand misses: how many
        outstanding misses the kernel sustains, which controls how much
        access latency is exposed when prefetching does not cover a miss.
        Pointer-chasing kernels have low values; blocked dense kernels high.
    stream_fraction:
        Optional override of the prefetchable fraction of the phase's access
        stream.  When None, the engine derives it from the traffic-weighted
        stream fractions of the accessed objects' patterns.
    prefetch_accuracy_hint:
        Optional override of the prefetcher accuracy for this phase (used to
        pin documented behaviour, e.g. SuperLU's high excess prefetch traffic).
    traffic_profile:
        Shape of the phase's traffic over time for timeline figures.
    duration_weight:
        Relative weight of this phase when the paper reports a single
        per-application number (the compute phase usually dominates).
    timeline_steps:
        Number of time buckets used when rendering this phase as a timeline.
    """

    name: str
    flops: float
    dram_bytes: float
    object_traffic: Mapping[str, float]
    write_fraction: float = 0.25
    mlp: float = 8.0
    stream_fraction: Optional[float] = None
    prefetch_accuracy_hint: Optional[float] = None
    traffic_profile: str = TRAFFIC_PROFILE_FLAT
    duration_weight: float = 1.0
    timeline_steps: int = 50

    def __post_init__(self) -> None:
        if self.flops < 0 or self.dram_bytes < 0:
            raise WorkloadError(f"phase {self.name!r}: flops and traffic must be >= 0")
        if self.flops == 0 and self.dram_bytes == 0:
            raise WorkloadError(f"phase {self.name!r}: phase does no work")
        if not self.object_traffic:
            raise WorkloadError(f"phase {self.name!r}: object_traffic must not be empty")
        total = float(sum(self.object_traffic.values()))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise WorkloadError(
                f"phase {self.name!r}: object traffic fractions sum to {total:.4f}, expected 1"
            )
        if any(v < 0 for v in self.object_traffic.values()):
            raise WorkloadError(f"phase {self.name!r}: traffic fractions must be >= 0")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise WorkloadError(f"phase {self.name!r}: write_fraction must be in [0, 1]")
        if self.mlp <= 0:
            raise WorkloadError(f"phase {self.name!r}: mlp must be positive")
        if self.stream_fraction is not None and not 0.0 <= self.stream_fraction <= 1.0:
            raise WorkloadError(f"phase {self.name!r}: stream_fraction must be in [0, 1]")
        if self.traffic_profile not in TRAFFIC_PROFILES:
            raise WorkloadError(
                f"phase {self.name!r}: unknown traffic profile {self.traffic_profile!r}"
            )
        if self.duration_weight <= 0:
            raise WorkloadError(f"phase {self.name!r}: duration_weight must be positive")
        if self.timeline_steps <= 0:
            raise WorkloadError(f"phase {self.name!r}: timeline_steps must be positive")

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of DRAM traffic (the paper's AI)."""
        if self.dram_bytes <= 0:
            return float("inf")
        return self.flops / self.dram_bytes

    def traffic_shape(self, steps: Optional[int] = None) -> np.ndarray:
        """Relative traffic per time bucket (sums to 1) for timeline figures."""
        n = int(steps if steps is not None else self.timeline_steps)
        if n <= 0:
            raise WorkloadError("timeline steps must be positive")
        x = np.linspace(0.0, 1.0, n)
        if self.traffic_profile == TRAFFIC_PROFILE_FLAT:
            shape = np.ones(n)
        elif self.traffic_profile == TRAFFIC_PROFILE_DECREASING:
            shape = 1.25 - x  # linear decline, e.g. shrinking trailing matrix in LU
        elif self.traffic_profile == TRAFFIC_PROFILE_RAMP:
            shape = 0.25 + x
        else:  # bursty
            shape = 1.0 + 0.5 * np.sin(x * np.pi * 6.0)
        shape = np.clip(shape, 0.05, None)
        return shape / shape.sum()


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully-instantiated workload at one input problem size.

    Attributes
    ----------
    name:
        Application name (``"HPL"``, ``"BFS"``...).
    input_label:
        Description of the input problem (e.g. ``"N=28280"``).
    scale:
        The footprint scale factor relative to the first input problem
        (1, 2 or 4 in Table 2).
    objects:
        Memory objects in **program allocation order**.  The order is what
        first-touch placement consumes; the BFS case study permutes it.
    phases:
        Execution phases in order.
    init_only_objects:
        Names of objects used only during initialisation; the optimised BFS
        variant frees them after the first phase to make room for dynamic
        allocations.
    late_objects:
        Names of objects allocated (first touched) only *after* the
        initialisation phase — dynamically allocated structures such as BFS's
        frontier buffers.  Under first-touch they are placed with whatever
        local memory is left at that point.
    """

    name: str
    input_label: str
    scale: float
    objects: tuple[MemoryObject, ...]
    phases: tuple[PhaseSpec, ...]
    init_only_objects: tuple[str, ...] = ()
    late_objects: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.objects:
            raise WorkloadError(f"workload {self.name!r} declares no memory objects")
        if not self.phases:
            raise WorkloadError(f"workload {self.name!r} declares no phases")
        names = [o.name for o in self.objects]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload {self.name!r} has duplicate object names")
        known = set(names)
        for phase in self.phases:
            unknown = set(phase.object_traffic) - known
            if unknown:
                raise WorkloadError(
                    f"workload {self.name!r} phase {phase.name!r} references unknown "
                    f"objects: {sorted(unknown)}"
                )
        for name in self.init_only_objects:
            if name not in known:
                raise WorkloadError(
                    f"workload {self.name!r}: init-only object {name!r} is not declared"
                )
        for name in self.late_objects:
            if name not in known:
                raise WorkloadError(
                    f"workload {self.name!r}: late object {name!r} is not declared"
                )
        if set(self.init_only_objects) & set(self.late_objects):
            raise WorkloadError(
                f"workload {self.name!r}: an object cannot be both init-only and late"
            )

    # -- derived properties --------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        """Peak memory footprint: the sum of all object sizes."""
        return int(sum(o.size_bytes for o in self.objects))

    @property
    def total_flops(self) -> float:
        """Total floating-point work across phases."""
        return float(sum(p.flops for p in self.phases))

    @property
    def total_dram_bytes(self) -> float:
        """Total DRAM traffic across phases."""
        return float(sum(p.dram_bytes for p in self.phases))

    @property
    def phase_names(self) -> tuple[str, ...]:
        """Names of all phases in order."""
        return tuple(p.name for p in self.phases)

    def phase(self, name: str) -> PhaseSpec:
        """Look up a phase by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"workload {self.name!r} has no phase {name!r}")

    def object(self, name: str) -> MemoryObject:
        """Look up a memory object by name."""
        for o in self.objects:
            if o.name == name:
                return o
        raise KeyError(f"workload {self.name!r} has no object {name!r}")

    def object_names(self) -> tuple[str, ...]:
        """Names of all objects in allocation order."""
        return tuple(o.name for o in self.objects)

    # -- transformations used by the case studies -----------------------------------

    def with_allocation_order(self, order: Sequence[str]) -> "WorkloadSpec":
        """A copy with the objects reordered (first-touch sees the new order).

        ``order`` must be a permutation of the object names.  This is the
        mechanism behind the first BFS optimisation of Section 7.1: allocating
        and initialising the hottest object first places it in local memory.
        """
        if sorted(order) != sorted(self.object_names()):
            raise WorkloadError("allocation order must be a permutation of object names")
        by_name = {o.name: o for o in self.objects}
        # Rebuild fresh MemoryObject instances so address-space registration
        # state from a previous run does not leak into the new spec.
        new_objects = tuple(
            MemoryObject(
                name=by_name[n].name,
                size_bytes=by_name[n].size_bytes,
                pattern=by_name[n].pattern,
                placement=by_name[n].placement,
                allocation_site=by_name[n].allocation_site,
                lifetime=by_name[n].lifetime,
            )
            for n in order
        )
        return replace(self, objects=new_objects)

    def with_init_only(self, names: Sequence[str]) -> "WorkloadSpec":
        """A copy that frees the named objects after the initialisation phase."""
        return replace(self, init_only_objects=tuple(names))

    def fresh_objects(self) -> tuple[MemoryObject, ...]:
        """Unregistered copies of the memory objects (for a new engine run)."""
        return tuple(
            MemoryObject(
                name=o.name,
                size_bytes=o.size_bytes,
                pattern=o.pattern,
                placement=o.placement,
                allocation_site=o.allocation_site,
                lifetime=o.lifetime,
            )
            for o in self.objects
        )


class WorkloadModel:
    """Base class for application models: builds a :class:`WorkloadSpec` per input.

    Subclasses implement :meth:`build` and provide the three input problems of
    Table 2 through :attr:`input_labels`.
    """

    #: Application name as used in the paper's figures.
    name: str = "workload"
    #: Labels of the three input problems (scale 1, 2, 4).
    input_labels: tuple[str, str, str] = ("x1", "x2", "x4")
    #: Footprint scale factor of each input problem.
    input_scales: tuple[float, float, float] = (1.0, 2.0, 4.0)
    #: Short description for Table 2.
    description: str = ""
    #: Parallelisation model reported in Table 2 (informational).
    parallelization: str = "MPI+OpenMP"

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        """Construct the workload at a given footprint scale factor."""
        raise NotImplementedError

    def build_input(self, index: int) -> WorkloadSpec:
        """Construct the workload for input problem ``index`` (0, 1 or 2)."""
        if not 0 <= index < len(self.input_scales):
            raise WorkloadError(f"{self.name}: input problem index {index} out of range")
        return self.build(self.input_scales[index])

    def inputs(self) -> list[WorkloadSpec]:
        """All three input problems of Table 2."""
        return [self.build(scale) for scale in self.input_scales]
