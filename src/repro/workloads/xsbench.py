"""Behavioural model of XSBench (Monte Carlo neutron transport proxy).

Table 2 uses the ``large`` problem with 2M particles and 11303, 22606 and
45212 grid points.  Characteristics reproduced here:

* XSBench allocates a very large unionised energy grid, but each particle
  history only looks up a tiny, random subset of it — so only a small share
  of the footprint is actively accessed (strongly skewed scaling curve,
  Figure 6f) and the hot set fits comfortably in node-local memory.
* As a consequence its remote access ratio stays below ~6% on every tier
  configuration (Figure 9) and both its interference sensitivity and the
  interference it induces are the lowest of all applications
  (Figures 10 and 11).
* The random lookups defeat the hardware prefetcher: lowest accuracy and <1%
  coverage (Figure 8), yet the prefetcher throttles itself so the excessive
  traffic stays around 3% — and because nothing is prefetched, the
  application is highly sensitive to raw access *latency* (the paper's
  argument for keeping its data out of the pool entirely).
"""

from __future__ import annotations

from ..config.units import GB
from ..memory.objects import MemoryObject
from ..trace.patterns import HotColdPattern, RandomPattern, SequentialPattern
from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_FLAT,
    WorkloadModel,
    WorkloadSpec,
)


class XSBenchModel(WorkloadModel):
    """XSBench Monte Carlo macroscopic cross-section lookup proxy."""

    name = "XSBench"
    description = "Monte Carlo neutron transport proxy application."
    parallelization = "MPI+OpenMP"
    input_labels = (
        "large 2M particles 11303 gridpoints",
        "large 2M particles 22606 gridpoints",
        "large 2M particles 45212 gridpoints",
    )
    input_scales = (1.0, 2.0, 4.0)

    #: Unionised energy grid at scale 1 (the big, mostly-cold allocation).
    BASE_GRID_BYTES = 3.4 * GB
    #: Nuclide cross-section data at scale 1 (hot).
    BASE_NUCLIDE_BYTES = 0.45 * GB
    #: Index / lookup tables at scale 1 (hot).
    BASE_INDEX_BYTES = 0.15 * GB
    #: Lookup-phase flops at scale 1 (interpolation arithmetic).
    BASE_FLOPS = 4.6e11
    #: Lookup-phase DRAM traffic at scale 1.
    BASE_TRAFFIC = 4.6e11

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        if scale <= 0:
            raise ValueError("scale must be positive")
        label = (
            self.input_labels[self.input_scales.index(scale)]
            if scale in self.input_scales
            else f"x{scale:g}"
        )
        objects = (
            MemoryObject(
                name="nuclide-grids",
                size_bytes=int(self.BASE_NUCLIDE_BYTES * scale),
                pattern=HotColdPattern(hot_fraction=0.5, hot_traffic=0.85, stream_fraction=0.1),
                allocation_site="generate_grids/nuclide",
            ),
            MemoryObject(
                name="index-grid",
                size_bytes=int(self.BASE_INDEX_BYTES * scale),
                pattern=RandomPattern(stream_fraction=0.05),
                allocation_site="generate_grids/index",
            ),
            MemoryObject(
                name="unionized-grid",
                size_bytes=int(self.BASE_GRID_BYTES * scale),
                pattern=HotColdPattern(hot_fraction=0.06, hot_traffic=0.92, stream_fraction=0.05),
                allocation_site="generate_grids/unionized",
            ),
        )
        phases = (
            PhaseSpec(
                name="p1",
                flops=2.0e9 * scale,
                dram_bytes=1.5 * (self.BASE_GRID_BYTES + self.BASE_NUCLIDE_BYTES + self.BASE_INDEX_BYTES) * scale,
                object_traffic={
                    "nuclide-grids": 0.1,
                    "index-grid": 0.05,
                    "unionized-grid": 0.85,
                },
                write_fraction=0.6,
                mlp=8.0,
                stream_fraction=0.85,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.2,
            ),
            PhaseSpec(
                name="p2",
                flops=self.BASE_FLOPS * scale,
                # Lookup traffic grows only mildly with the grid size: the
                # number of particle histories is fixed at 2M.
                dram_bytes=self.BASE_TRAFFIC * (1.0 + 0.15 * (scale - 1.0)),
                object_traffic={
                    "nuclide-grids": 0.45,
                    "index-grid": 0.20,
                    "unionized-grid": 0.35,
                },
                write_fraction=0.05,
                mlp=2.0,
                stream_fraction=0.008,
                prefetch_accuracy_hint=0.40,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.8,
            ),
        )
        return WorkloadSpec(
            name=self.name,
            input_label=label,
            scale=scale,
            objects=objects,
            phases=phases,
        )
