"""Workload registry: the paper's Table 2 in executable form.

The registry maps application names to their behavioural models and exposes
the three input problems of each (1x, 2x, 4x memory footprints).
"""

from __future__ import annotations

from typing import Iterable

from ..config.errors import WorkloadError
from .base import WorkloadModel, WorkloadSpec
from .bfs import BFSModel
from .hpl import HPLModel
from .hypre import HypreModel
from .nekrs import NekRSModel
from .superlu import SuperLUModel
from .xsbench import XSBenchModel

#: The evaluated applications in the order the paper lists them (Table 2).
WORKLOAD_MODELS: dict[str, type[WorkloadModel]] = {
    "HPL": HPLModel,
    "Hypre": HypreModel,
    "NekRS": NekRSModel,
    "BFS": BFSModel,
    "SuperLU": SuperLUModel,
    "XSBench": XSBenchModel,
}

#: Short aliases accepted by :func:`get_model` (the paper abbreviates XSBench as XS).
ALIASES = {
    "XS": "XSBench",
    "Nek": "NekRS",
    "LINPACK": "HPL",
}


def workload_names() -> tuple[str, ...]:
    """Names of all evaluated applications."""
    return tuple(WORKLOAD_MODELS)


def get_model(name: str) -> WorkloadModel:
    """Instantiate the behavioural model of one application by name."""
    canonical = ALIASES.get(name, name)
    try:
        return WORKLOAD_MODELS[canonical]()
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_MODELS)}"
        ) from exc


def all_models() -> list[WorkloadModel]:
    """Instantiate every evaluated application model."""
    return [cls() for cls in WORKLOAD_MODELS.values()]


def build_workload(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Build one application at the given footprint scale (1, 2 or 4)."""
    return get_model(name).build(scale)


def build_all(scale: float = 1.0) -> list[WorkloadSpec]:
    """Build every application at the given footprint scale."""
    return [model.build(scale) for model in all_models()]


def table2_rows() -> list[dict[str, str]]:
    """The rows of the paper's Table 2 (application, description, inputs)."""
    rows = []
    for model in all_models():
        rows.append(
            {
                "application": model.name,
                "description": model.description,
                "parallelization": model.parallelization,
                "input_problems": "; ".join(model.input_labels),
            }
        )
    return rows
