"""LBench: the interference injection and measurement micro-benchmark.

Section 3.2 of the paper introduces LBench, a benchmark that allocates an
array on the memory pool and runs a simple FMA kernel over it, with a
configurable number of floating-point operations per element::

    if (NFLOP % 2 == 1) beta = A[i] + alpha;
    for (int k = 0; k < NFLOP / 2; k++) beta = beta * A[i] + alpha;
    A[i] = beta;

Varying ``NFLOP`` trades arithmetic for memory traffic, so LBench can both

* **inject** a configurable Level of Interference (LoI: generated link traffic
  as a percentage of the peak link traffic, which is reached with 1 flop per
  element on 12 threads), and
* **measure** interference: the relative runtime of a 1-thread, 1-flop LBench
  probe under load defines the *interference coefficient* (IC); unlike a raw
  PCM traffic counter, the probe keeps responding after the link saturates,
  because queueing keeps slowing it down.

This module provides the analytical equivalent operating on the simulator's
link model, plus a small reference implementation of the kernel itself
(:func:`lbench_kernel`) so the arithmetic can be validated numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config.errors import ConfigurationError
from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig
from ..config.units import GB
from ..interconnect.link import RemoteLink


def lbench_kernel(array: np.ndarray, nflop: int, alpha: float = 0.5) -> np.ndarray:
    """Reference implementation of the LBench inner kernel (vectorised).

    Applies the paper's per-element recurrence to every element of ``array``
    and returns the updated array.  Each element receives exactly ``nflop``
    floating-point operations (one add if ``nflop`` is odd, then
    ``nflop // 2`` fused multiply-adds counted as two flops each).
    """
    if nflop < 1:
        raise ConfigurationError("NFLOP must be >= 1")
    a = np.asarray(array, dtype=np.float64)
    beta = np.zeros_like(a)
    if nflop % 2 == 1:
        beta = a + alpha
    for _ in range(nflop // 2):
        beta = beta * a + alpha
    return beta


@dataclass(frozen=True)
class LBenchMeasurement:
    """One LBench configuration point and what it generates/observes."""

    flops_per_element: int
    threads: int
    #: Data bandwidth LBench pushes onto the link, bytes/s (before contention).
    offered_bandwidth: float
    #: Level of Interference generated, percent of peak link traffic.
    loi: float
    #: Traffic a PCM counter would report, bytes/s (saturates at the link peak).
    pcm_traffic: float


class LBench:
    """Analytical LBench on the simulated platform.

    Parameters
    ----------
    testbed:
        Platform description (defines the link and per-core compute rate).
    link:
        Remote link shared with the interference (built from the testbed when
        not supplied).
    element_bytes:
        Bytes loaded per array element (8 for the double-precision kernel).
    per_thread_peak_bandwidth:
        The remote-link data bandwidth a single LBench thread can sustain at
        1 flop/element.  On the paper's testbed 12 threads saturate the link
        and 2 threads reach about 50% intensity, which pins this value to
        roughly 1/12 of the peak traffic (in data terms, ~link/4 per pair).
    """

    def __init__(
        self,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        link: RemoteLink | None = None,
        element_bytes: int = 8,
        per_thread_peak_bandwidth: float | None = None,
        kernel_flop_rate: float = 6.0e9,
    ) -> None:
        self.testbed = testbed
        self.link = link if link is not None else RemoteLink(testbed)
        self.element_bytes = int(element_bytes)
        if per_thread_peak_bandwidth is None:
            # 12 threads saturate the link; a single thread sustains ~1/4 of
            # the data capacity (it cannot keep enough requests in flight).
            per_thread_peak_bandwidth = RemoteLink(testbed).data_capacity / 4.0
        self.per_thread_peak_bandwidth = float(per_thread_peak_bandwidth)
        if self.per_thread_peak_bandwidth <= 0:
            raise ConfigurationError("per-thread peak bandwidth must be positive")
        #: Flop rate one thread achieves on the dependent-chain kernel, flop/s.
        #: Far below the core's AVX peak: the recurrence serialises on the FMA
        #: latency, which is precisely why raising NFLOP throttles the traffic.
        self.kernel_flop_rate = float(kernel_flop_rate)
        if self.kernel_flop_rate <= 0:
            raise ConfigurationError("kernel flop rate must be positive")

    # -- traffic generation ----------------------------------------------------------

    def per_thread_bandwidth(self, flops_per_element: int) -> float:
        """Data bandwidth one LBench thread generates for a given NFLOP (idle link)."""
        if flops_per_element < 1:
            raise ConfigurationError("NFLOP must be >= 1")
        compute_limited = self.element_bytes * self.kernel_flop_rate / flops_per_element
        return min(self.per_thread_peak_bandwidth, compute_limited)

    def offered_bandwidth(self, flops_per_element: int, threads: int) -> float:
        """Total data bandwidth offered to the link by an LBench instance."""
        if threads < 1:
            raise ConfigurationError("LBench needs at least one thread")
        return self.per_thread_bandwidth(flops_per_element) * threads

    def generated_loi(self, flops_per_element: int, threads: int) -> float:
        """Level of Interference the configuration generates (percent of peak traffic)."""
        offered = self.offered_bandwidth(flops_per_element, threads)
        delivered = min(offered, self.link.data_capacity)
        return self.link.loi(delivered)

    def measure(self, flops_per_element: int, threads: int) -> LBenchMeasurement:
        """Full measurement of one LBench configuration on an otherwise idle link."""
        offered = self.offered_bandwidth(flops_per_element, threads)
        delivered = min(offered, self.link.data_capacity)
        return LBenchMeasurement(
            flops_per_element=int(flops_per_element),
            threads=int(threads),
            offered_bandwidth=offered,
            loi=self.link.loi(delivered),
            pcm_traffic=self.link.measured_traffic(offered),
        )

    # -- LoI calibration (Section 3.2) --------------------------------------------------

    def bandwidth_for_loi(self, loi: float) -> float:
        """Data bandwidth corresponding to a Level of Interference."""
        return self.link.bandwidth_for_loi(loi)

    def flops_for_loi(self, loi: float, threads: int = 2) -> int:
        """NFLOP per element needed to generate approximately ``loi`` percent.

        Mirrors the paper's calibration step: sweep the kernel intensity and
        pick the flops/element whose generated traffic matches each LoI level.
        Returns at least 1 (the maximum-traffic configuration).
        """
        if loi <= 0:
            raise ConfigurationError("LoI must be positive for calibration")
        target_bw = self.bandwidth_for_loi(loi)
        per_thread_target = target_bw / max(threads, 1)
        if per_thread_target >= self.per_thread_peak_bandwidth:
            return 1
        nflop = self.element_bytes * self.kernel_flop_rate / per_thread_target
        return max(int(round(nflop)), 1)

    def calibrate_loi(
        self, lois: Sequence[float] = (10, 20, 30, 40, 50), threads: int = 2
    ) -> dict[float, int]:
        """Map each requested LoI level to the NFLOP setting that produces it."""
        return {float(loi): self.flops_for_loi(loi, threads) for loi in lois}

    def intensity_sweep(
        self, intensities: Sequence[float], threads: int = 2
    ) -> list[LBenchMeasurement]:
        """Measured LoI for a sweep of configured intensities (Figure 11 left).

        A configured intensity of X percent asks LBench for the NFLOP setting
        calibrated to X; the measurement reports the LoI actually generated.
        """
        results = []
        for intensity in intensities:
            nflop = self.flops_for_loi(intensity, threads)
            results.append(self.measure(nflop, threads))
        return results

    # -- interference measurement (probe / IC) -------------------------------------------

    def probe_bandwidth(self, background_bandwidth: float) -> float:
        """Effective bandwidth of the 1-thread, 1-flop probe under background load.

        The probe is latency-limited: the bandwidth a single thread sustains
        scales with the ratio of idle to contended access latency, and it can
        never exceed its fair share of the link.
        """
        probe_offered = self.per_thread_bandwidth(1)
        share = self.link.share(probe_offered, background_bandwidth)
        latency_scaling = self.link.idle_latency / max(share.latency, self.link.idle_latency)
        latency_limited = self.per_thread_peak_bandwidth * latency_scaling
        return max(min(latency_limited, max(share.delivered_bandwidth, 1e-3)), 1e-3)

    def probe_runtime(
        self,
        background_bandwidth: float,
        array_bytes: float = 1.0 * GB,
        iterations: int = 10,
    ) -> float:
        """Runtime of the probe kernel over ``iterations`` sweeps of its array."""
        if array_bytes <= 0 or iterations <= 0:
            raise ConfigurationError("array size and iterations must be positive")
        bandwidth = self.probe_bandwidth(background_bandwidth)
        return iterations * array_bytes / bandwidth

    def interference_coefficient(self, background_bandwidth: float) -> float:
        """IC = probe runtime under load / probe runtime on an idle system (>= 1)."""
        idle = self.probe_runtime(0.0)
        loaded = self.probe_runtime(background_bandwidth)
        return max(loaded / idle, 1.0)

    def contention_curve(
        self, flops_per_element: Sequence[int], threads: int = 12
    ) -> list[dict[str, float]]:
        """IC and PCM traffic versus background kernel intensity (Figure 11 middle).

        The background LBench instance sweeps ``flops_per_element``; for each
        setting we report the interference coefficient observed by the probe
        and the raw traffic a PCM counter reports.  Below ~8 flops/element the
        PCM measurement saturates while the IC keeps increasing.
        """
        curve = []
        for nflop in flops_per_element:
            background = self.offered_bandwidth(nflop, threads)
            curve.append(
                {
                    "flops_per_element": float(nflop),
                    "background_bandwidth": background,
                    "interference_coefficient": self.interference_coefficient(background),
                    "pcm_traffic": self.link.measured_traffic(background),
                }
            )
        return curve
