"""Workload models: the six evaluated HPC applications, LBench and RMAT/BFS kernels."""

from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_BURSTY,
    TRAFFIC_PROFILE_DECREASING,
    TRAFFIC_PROFILE_FLAT,
    TRAFFIC_PROFILE_RAMP,
    WorkloadModel,
    WorkloadSpec,
)
from .bfs import BFSModel
from .hpl import HPLModel
from .hypre import HypreModel
from .lbench import LBench, LBenchMeasurement, lbench_kernel
from .nekrs import NekRSModel
from .registry import (
    ALIASES,
    WORKLOAD_MODELS,
    all_models,
    build_all,
    build_workload,
    get_model,
    table2_rows,
    workload_names,
)
from .rmat import BFSResult, CSRGraph, adjacency_access_counts, bfs, build_csr, rmat_edges, rmat_graph
from .superlu import SuperLUModel
from .xsbench import XSBenchModel

__all__ = [
    "PhaseSpec",
    "TRAFFIC_PROFILE_BURSTY",
    "TRAFFIC_PROFILE_DECREASING",
    "TRAFFIC_PROFILE_FLAT",
    "TRAFFIC_PROFILE_RAMP",
    "WorkloadModel",
    "WorkloadSpec",
    "BFSModel",
    "HPLModel",
    "HypreModel",
    "LBench",
    "LBenchMeasurement",
    "lbench_kernel",
    "NekRSModel",
    "ALIASES",
    "WORKLOAD_MODELS",
    "all_models",
    "build_all",
    "build_workload",
    "get_model",
    "table2_rows",
    "workload_names",
    "BFSResult",
    "CSRGraph",
    "adjacency_access_counts",
    "bfs",
    "build_csr",
    "rmat_edges",
    "rmat_graph",
    "SuperLUModel",
    "XSBenchModel",
]
