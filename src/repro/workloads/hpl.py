"""Behavioural model of HPL (High Performance LINPACK).

HPL factorises a dense N×N matrix with partial pivoting (Table 2 uses
N = 20000, 28280 and 40000, giving the paper's ~1:2:4 memory footprints).
The properties the paper measures and that this model reproduces:

* Very high arithmetic intensity in the factorisation phase — HPL-p2 sits at
  the far right of the roofline (Figure 5), close to peak flops.
* Uniform memory access across the whole footprint: the trailing-matrix
  update sweeps essentially every panel every iteration, so the
  bandwidth-capacity scaling curve is the diagonal and overlaps across input
  sizes (Figure 6d).
* Good prefetchability (blocked streaming through panels, accuracy > 80%,
  moderate coverage) with low excess traffic (Figure 8).
* High access ratio to the memory pool when capacity forces spilling — but
  *low* sensitivity to interference, because the compute-bound DGEMM absorbs
  the extra memory latency (Figures 9 and 10), and a low interference
  coefficient (Figure 11).
"""

from __future__ import annotations

from ..config.units import GB
from ..memory.objects import MemoryObject
from ..trace.patterns import BlockedPattern, SequentialPattern
from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_DECREASING,
    TRAFFIC_PROFILE_FLAT,
    WorkloadModel,
    WorkloadSpec,
)


class HPLModel(WorkloadModel):
    """High Performance LINPACK: dense LU factorisation with partial pivoting."""

    name = "HPL"
    description = (
        "High Performance LINPACK benchmark, dense LU factorization with partial pivoting."
    )
    parallelization = "MPI+OpenMP"
    input_labels = ("N=20000", "N=28280", "N=40000")
    input_scales = (1.0, 2.0, 4.0)

    #: Matrix footprint at scale 1 (8 bytes × 20000², plus alignment slack).
    BASE_MATRIX_BYTES = 3.2 * GB
    #: Panel / pivot / workspace buffers at scale 1.
    BASE_WORKSPACE_BYTES = 0.20 * GB
    #: Factorisation flops at scale 1 (≈ 2/3 · N³).
    BASE_FLOPS = 5.0e13
    #: DRAM traffic of the factorisation at scale 1 (blocked update, high reuse).
    BASE_TRAFFIC = 5.0e11

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        if scale <= 0:
            raise ValueError("scale must be positive")
        label = self.input_labels[self.input_scales.index(scale)] if scale in self.input_scales else f"x{scale:g}"
        matrix_bytes = int(self.BASE_MATRIX_BYTES * scale)
        workspace_bytes = int(self.BASE_WORKSPACE_BYTES * scale)
        # LU work scales as N^3 = (footprint scale)^1.5.
        work_scale = scale**1.5

        objects = (
            MemoryObject(
                name="matrix",
                size_bytes=matrix_bytes,
                pattern=BlockedPattern(block_lines=1024, stream_fraction=0.62),
                allocation_site="HPL_pdgesv/matrix",
            ),
            MemoryObject(
                name="panel-workspace",
                size_bytes=workspace_bytes,
                pattern=SequentialPattern(),
                allocation_site="HPL_pdpanel_init/workspace",
            ),
        )
        phases = (
            PhaseSpec(
                name="p1",
                flops=2.0e9 * scale,
                dram_bytes=2.2 * matrix_bytes,
                object_traffic={"matrix": 0.95, "panel-workspace": 0.05},
                write_fraction=0.5,
                mlp=10.0,
                stream_fraction=0.9,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.1,
            ),
            PhaseSpec(
                name="p2",
                flops=self.BASE_FLOPS * work_scale,
                dram_bytes=self.BASE_TRAFFIC * work_scale,
                object_traffic={"matrix": 0.9, "panel-workspace": 0.1},
                write_fraction=0.3,
                mlp=8.0,
                stream_fraction=0.55,
                prefetch_accuracy_hint=0.88,
                traffic_profile=TRAFFIC_PROFILE_DECREASING,
                duration_weight=0.9,
            ),
        )
        return WorkloadSpec(
            name=self.name,
            input_label=label,
            scale=scale,
            objects=objects,
            phases=phases,
        )
