"""RMAT graph generation and a Ligra-style breadth-first search kernel.

The paper's BFS workload is Ligra's breadth-first search on symmetric RMAT
graphs (Table 2: N = 2^24..2^26 vertices).  Simulating the memory behaviour of
BFS does not require running it at that scale, but the repository still ships
a real, executable implementation so that

* the behavioural model's assumptions (a small, very hot ``Parents`` array;
  skewed access into the adjacency lists; frontier buffers allocated
  dynamically) can be checked against an actual traversal on reduced graphs,
* the examples can demonstrate the public API end to end on real data.

Both the generator and the traversal are vectorised NumPy (no per-edge Python
loops), per the hpc-parallel guidance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.errors import WorkloadError


@dataclass(frozen=True)
class CSRGraph:
    """A symmetric graph in compressed sparse row form."""

    offsets: np.ndarray
    edges: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "offsets", np.asarray(self.offsets, dtype=np.int64))
        object.__setattr__(self, "edges", np.asarray(self.edges, dtype=np.int64))
        if len(self.offsets) < 2:
            raise WorkloadError("a CSR graph needs at least one vertex")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.edges):
            raise WorkloadError("CSR offsets are inconsistent with the edge array")
        if np.any(np.diff(self.offsets) < 0):
            raise WorkloadError("CSR offsets must be non-decreasing")

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self.offsets) - 1

    @property
    def n_edges(self) -> int:
        """Number of directed edges stored (twice the undirected edge count)."""
        return len(self.edges)

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.offsets)

    def neighbours(self, vertex: int) -> np.ndarray:
        """Neighbour list of one vertex."""
        return self.edges[self.offsets[vertex] : self.offsets[vertex + 1]]

    def memory_bytes(self) -> int:
        """Bytes used by the CSR arrays."""
        return self.offsets.nbytes + self.edges.nbytes


def rmat_edges(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> np.ndarray:
    """Generate RMAT edge pairs (Graph500-style parameters by default).

    Parameters
    ----------
    scale:
        log2 of the number of vertices.
    edge_factor:
        Average undirected edges per vertex.
    a, b, c:
        RMAT quadrant probabilities (d = 1 - a - b - c).
    seed:
        RNG seed; generation is fully deterministic.

    Returns an ``(m, 2)`` int64 array of undirected edge endpoints.
    """
    if scale <= 0 or scale > 30:
        raise WorkloadError("rmat scale must be in 1..30")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise WorkloadError("rmat probabilities must be non-negative and sum to <= 1")
    n_vertices = 1 << scale
    n_edges = int(n_vertices * edge_factor)
    rng = np.random.default_rng(seed)

    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    # At every bit level, decide which quadrant each edge falls into.
    for level in range(scale):
        r = rng.random(n_edges)
        # Quadrants: [a | b / c | d] — top bit of src set for quadrants c,d;
        # top bit of dst set for quadrants b,d.
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    # Permute vertex ids so degree and id are uncorrelated (as Graph500 does).
    permutation = rng.permutation(n_vertices)
    return np.stack([permutation[src], permutation[dst]], axis=1)


def build_csr(edge_list: np.ndarray, n_vertices: int, symmetric: bool = True) -> CSRGraph:
    """Build a CSR graph from an edge list, optionally symmetrising it."""
    edge_list = np.asarray(edge_list, dtype=np.int64)
    if edge_list.ndim != 2 or edge_list.shape[1] != 2:
        raise WorkloadError("edge list must have shape (m, 2)")
    src, dst = edge_list[:, 0], edge_list[:, 1]
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    # Drop self loops.
    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n_vertices)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return CSRGraph(offsets=offsets, edges=dst)


def rmat_graph(scale: int, edge_factor: float = 16.0, seed: int = 0) -> CSRGraph:
    """Generate a symmetric RMAT graph in CSR form."""
    edges = rmat_edges(scale, edge_factor=edge_factor, seed=seed)
    return build_csr(edges, n_vertices=1 << scale, symmetric=True)


@dataclass(frozen=True)
class BFSResult:
    """Outcome of a breadth-first traversal."""

    parents: np.ndarray
    levels: np.ndarray
    n_reached: int
    n_iterations: int
    frontier_sizes: tuple[int, ...]
    edges_traversed: int

    @property
    def max_frontier(self) -> int:
        """Largest frontier encountered."""
        return max(self.frontier_sizes) if self.frontier_sizes else 0


def bfs(graph: CSRGraph, source: int = 0) -> BFSResult:
    """Level-synchronous BFS producing a parents array (Ligra's BFS semantics).

    The traversal is frontier-based and vectorised: each iteration gathers the
    neighbour lists of the whole frontier at once, discovers unvisited
    vertices and assigns parents.
    """
    n = graph.n_vertices
    if not 0 <= source < n:
        raise WorkloadError(f"source vertex {source} out of range")
    parents = np.full(n, -1, dtype=np.int64)
    levels = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    frontier_sizes = []
    edges_traversed = 0
    iteration = 0
    while len(frontier):
        frontier_sizes.append(int(len(frontier)))
        starts = graph.offsets[frontier]
        ends = graph.offsets[frontier + 1]
        degs = ends - starts
        edges_traversed += int(degs.sum())
        if degs.sum() == 0:
            break
        # Gather all neighbour indices of the frontier in one shot.
        idx = np.repeat(starts, degs) + _ranges(degs)
        neighbours = graph.edges[idx]
        sources = np.repeat(frontier, degs)
        # Keep first discovery of each unvisited neighbour.
        unvisited = parents[neighbours] == -1
        neighbours = neighbours[unvisited]
        sources = sources[unvisited]
        if len(neighbours) == 0:
            iteration += 1
            break
        uniq, first_idx = np.unique(neighbours, return_index=True)
        parents[uniq] = sources[first_idx]
        levels[uniq] = iteration + 1
        frontier = uniq
        iteration += 1
    return BFSResult(
        parents=parents,
        levels=levels,
        n_reached=int((parents >= 0).sum()),
        n_iterations=iteration,
        frontier_sizes=tuple(frontier_sizes),
        edges_traversed=edges_traversed,
    )


def _ranges(lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange`` for each length: [0..l0-1, 0..l1-1, ...]."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.sum() == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return np.arange(ends[-1], dtype=np.int64) - np.repeat(starts, lengths)


def adjacency_access_counts(graph: CSRGraph, result: BFSResult) -> np.ndarray:
    """Per-vertex adjacency-list access counts implied by a traversal.

    Used to validate the behavioural model's claim that BFS's adjacency
    traffic is skewed: high-degree vertices dominate the edge traffic.
    """
    counts = np.zeros(graph.n_vertices, dtype=np.int64)
    visited = result.parents >= 0
    counts[visited] = graph.degrees()[visited]
    return counts
