"""Behavioural model of NekRS (spectral-element computational fluid dynamics).

The paper runs the ``turbPipePeriodic`` case at polynomial orders 5, 7 and 9
(Table 2).  Relevant characteristics:

* Moderately low arithmetic intensity: small dense element operators applied
  to many elements, plus gather/scatter of the solution fields — NekRS-p2
  sits in the memory-bound region of the roofline but above Hypre (Figure 5).
* Near-uniform access over the footprint, curves overlapping across input
  sizes (Figure 6a).
* The highest prefetch coverage together with Hypre (~70%), and the largest
  performance gain from prefetching (57%, Figure 8): with prefetching on, its
  memory bandwidth consumption rises sharply while total traffic grows only
  ~3% (Figure 7a).
* High interference sensitivity (13% loss at LoI=50 on the 50-50 system) and
  a high interference coefficient (Figures 10 and 11).
"""

from __future__ import annotations

from ..config.units import GB
from ..memory.objects import MemoryObject
from ..trace.patterns import GatherPattern, SequentialPattern
from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_FLAT,
    WorkloadModel,
    WorkloadSpec,
)


class NekRSModel(WorkloadModel):
    """NekRS spectral-element Navier-Stokes solver (turbPipePeriodic)."""

    name = "NekRS"
    description = "Computational fluid dynamics based on the spectral element method."
    parallelization = "MPI"
    input_labels = (
        "turbPipePeriodic p=5 dt=1e-2",
        "turbPipePeriodic p=7 dt=6e-3",
        "turbPipePeriodic p=9 dt=1e-3",
    )
    input_scales = (1.0, 2.0, 4.0)

    #: Solution fields (velocity, pressure, scratch) at scale 1.
    BASE_FIELDS_BYTES = 1.4 * GB
    #: Element geometry / operator factors at scale 1.
    BASE_GEOMETRY_BYTES = 0.7 * GB
    #: Time-stepping flops at scale 1.
    BASE_FLOPS = 2.1e12
    #: Time-stepping DRAM traffic at scale 1.
    BASE_TRAFFIC = 3.5e12

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        if scale <= 0:
            raise ValueError("scale must be positive")
        label = (
            self.input_labels[self.input_scales.index(scale)]
            if scale in self.input_scales
            else f"x{scale:g}"
        )
        fields_bytes = int(self.BASE_FIELDS_BYTES * scale)
        geometry_bytes = int(self.BASE_GEOMETRY_BYTES * scale)

        objects = (
            MemoryObject(
                name="solution-fields",
                size_bytes=fields_bytes,
                pattern=SequentialPattern(),
                allocation_site="nrs_setup/fields",
            ),
            MemoryObject(
                name="element-operators",
                size_bytes=geometry_bytes,
                pattern=GatherPattern(indexed_fraction=0.3, skew_alpha=0.5, stream_fraction=0.6),
                allocation_site="mesh_setup/operators",
            ),
        )
        phases = (
            PhaseSpec(
                name="p1",
                flops=5.0e9 * scale,
                dram_bytes=2.5 * (fields_bytes + geometry_bytes),
                object_traffic={"solution-fields": 0.6, "element-operators": 0.4},
                write_fraction=0.5,
                mlp=8.0,
                stream_fraction=0.85,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.15,
            ),
            PhaseSpec(
                name="p2",
                flops=self.BASE_FLOPS * scale,
                dram_bytes=self.BASE_TRAFFIC * scale,
                object_traffic={"solution-fields": 0.7, "element-operators": 0.3},
                write_fraction=0.35,
                mlp=5.5,
                stream_fraction=0.72,
                prefetch_accuracy_hint=0.9,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.85,
            ),
        )
        return WorkloadSpec(
            name=self.name,
            input_label=label,
            scale=scale,
            objects=objects,
            phases=phases,
        )
