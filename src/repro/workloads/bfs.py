"""Behavioural model of Ligra BFS on symmetric RMAT graphs.

Table 2 evaluates breadth-first search in the Ligra framework on symmetric
RMAT graphs with N = 2^24, 2^25 and 2^26 vertices.  The characteristics the
paper reports, which this model reproduces:

* A small fraction of the footprint receives most of the accesses: the graph
  structure (offsets + adjacency) is large, but the per-vertex ``Parents``
  array and the current frontier are the hottest objects, and adjacency
  traffic concentrates on high-degree vertices.  The bandwidth-capacity
  scaling curve is therefore strongly skewed, and it shifts further left as
  the graph grows (Figure 6b) — degree skew increases with RMAT scale.
* Low prefetch accuracy and coverage (irregular gathers, Figure 8).
* In the allocation order of the original Ligra code, several large graph
  objects are allocated **before** ``Parents``, so under first-touch with 75%
  of the footprint on the pool, ``Parents`` and the dynamically-allocated
  frontier land almost entirely in remote memory — the paper measures a 99%
  remote access ratio (Section 7.1).  The case study in
  :mod:`repro.casestudies.bfs_placement` permutes this order and frees the
  initialisation-only buffer, exactly like the paper's two optimisations.
"""

from __future__ import annotations

from ..config.units import GB, MB
from ..memory.objects import MemoryObject
from ..trace.patterns import (
    HotColdPattern,
    RandomPattern,
    SequentialPattern,
    ZipfPattern,
)
from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_BURSTY,
    TRAFFIC_PROFILE_FLAT,
    WorkloadModel,
    WorkloadSpec,
)


class BFSModel(WorkloadModel):
    """Ligra breadth-first search on symmetric RMAT graphs."""

    name = "BFS"
    description = (
        "Graph processing benchmark of the breadth-first search algorithm in the Ligra framework."
    )
    parallelization = "OpenMP"
    input_labels = (
        "rMat N=2^24 M=2^28.24",
        "rMat N=2^25 M=2^29.25",
        "rMat N=2^26 M=2^30.25",
    )
    input_scales = (1.0, 2.0, 4.0)

    #: Adjacency (edge) arrays at scale 1.
    BASE_ADJACENCY_BYTES = 2.0 * GB
    #: CSR offsets / vertex metadata at scale 1.
    BASE_OFFSETS_BYTES = 0.15 * GB
    #: Temporary buffers used only while building the graph (left unfreed by
    #: the original code because freeing them costs 3% on a local-only system).
    BASE_INIT_TEMP_BYTES = 0.30 * GB
    #: Parents array at scale 1 (one word per vertex -- small but very hot).
    BASE_PARENTS_BYTES = 0.067 * GB
    #: Dynamically allocated frontier / dense-bitmap buffers at scale 1.
    BASE_FRONTIER_BYTES = 0.12 * GB
    #: Traversal DRAM traffic at scale 1 (many BFS runs from random sources).
    BASE_TRAFFIC = 2.6e12
    #: Traversal flops at scale 1 (BFS is integer-dominated; tiny flop count).
    BASE_FLOPS = 2.0e10

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        if scale <= 0:
            raise ValueError("scale must be positive")
        label = (
            self.input_labels[self.input_scales.index(scale)]
            if scale in self.input_scales
            else f"x{scale:g}"
        )
        # Degree skew grows with the RMAT scale: the access distribution over
        # the adjacency pages becomes more concentrated (Figure 6b).
        import math

        adjacency_alpha = 0.95 + 0.22 * math.log2(max(scale, 1.0))

        objects = (
            MemoryObject(
                name="offsets",
                size_bytes=int(self.BASE_OFFSETS_BYTES * scale),
                pattern=SequentialPattern(),
                allocation_site="graphIO/offsets",
            ),
            MemoryObject(
                name="init-temp",
                size_bytes=int(self.BASE_INIT_TEMP_BYTES * scale),
                pattern=SequentialPattern(),
                allocation_site="graphIO/temp",
            ),
            MemoryObject(
                name="adjacency",
                size_bytes=int(self.BASE_ADJACENCY_BYTES * scale),
                pattern=ZipfPattern(alpha=adjacency_alpha, stream_fraction=0.25),
                allocation_site="graphIO/edges",
            ),
            MemoryObject(
                name="parents",
                size_bytes=int(self.BASE_PARENTS_BYTES * scale),
                pattern=HotColdPattern(hot_fraction=0.6, hot_traffic=0.9, stream_fraction=0.2),
                allocation_site="BFS/Parents",
            ),
            MemoryObject(
                name="frontier-heap",
                size_bytes=int(self.BASE_FRONTIER_BYTES * scale),
                pattern=RandomPattern(stream_fraction=0.1),
                allocation_site="ligra/vertexSubset (dynamic)",
            ),
        )
        phases = (
            PhaseSpec(
                name="p1",
                flops=1.0e9 * scale,
                dram_bytes=3.0 * (self.BASE_ADJACENCY_BYTES + self.BASE_OFFSETS_BYTES + self.BASE_INIT_TEMP_BYTES) * scale,
                object_traffic={
                    "offsets": 0.1,
                    "adjacency": 0.6,
                    "init-temp": 0.25,
                    "parents": 0.05,
                },
                write_fraction=0.55,
                mlp=6.0,
                stream_fraction=0.75,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.2,
            ),
            PhaseSpec(
                name="p2",
                flops=self.BASE_FLOPS * scale,
                dram_bytes=self.BASE_TRAFFIC * scale,
                object_traffic={
                    "offsets": 0.05,
                    "adjacency": 0.40,
                    "init-temp": 0.0,
                    "parents": 0.33,
                    "frontier-heap": 0.22,
                },
                write_fraction=0.3,
                mlp=6.5,
                stream_fraction=0.22,
                prefetch_accuracy_hint=0.62,
                traffic_profile=TRAFFIC_PROFILE_BURSTY,
                duration_weight=0.8,
            ),
        )
        return WorkloadSpec(
            name=self.name,
            input_label=label,
            scale=scale,
            objects=objects,
            phases=phases,
            late_objects=("frontier-heap",),
        )
