"""Behavioural model of Hypre (structured-interface linear solvers).

The paper runs Hypre's ``ex4`` example (structured interface, SMG-style
multigrid solve) ten times with n = 6300 on 1, 2 and 4 ranks.  Relevant
characteristics:

* Low arithmetic intensity: stencil relaxation and residual sweeps stream
  large vectors with only a handful of flops per point, so Hypre sits near
  the memory-bandwidth roof (Figure 5).
* Uniform access over the footprint and overlapping scaling curves across
  input sizes (Figure 6e).
* Excellent prefetchability: structured sweeps give the highest prefetch
  coverage (~70%) of all evaluated codes (Figure 8).
* Because it is bandwidth-bound *and* a sizable share of its traffic goes to
  the pool when capacity forces spilling, Hypre is the most
  interference-sensitive application (15% loss at LoI=50 on the 50-50 system,
  Figure 10) and also causes the highest interference coefficient
  (Figure 11 right) — its compute phase floods the link.
"""

from __future__ import annotations

from ..config.units import GB
from ..memory.objects import MemoryObject
from ..trace.patterns import SequentialPattern, StridedPattern
from .base import (
    PhaseSpec,
    TRAFFIC_PROFILE_FLAT,
    WorkloadModel,
    WorkloadSpec,
)


class HypreModel(WorkloadModel):
    """Hypre structured-interface solver (ex4, SMG/PFMG-style cycles)."""

    name = "Hypre"
    description = "Library of high-performance linear solvers; structured interface (ex4)."
    parallelization = "MPI+OpenMP"
    input_labels = ("ex4 n=6300 ranks=1", "ex4 n=6300 ranks=2", "ex4 n=6300 ranks=4")
    input_scales = (1.0, 2.0, 4.0)

    #: Grid vectors (solution, rhs, residual, coarse levels) at scale 1.
    BASE_VECTORS_BYTES = 1.3 * GB
    #: Stencil coefficient arrays at scale 1.
    BASE_STENCIL_BYTES = 1.1 * GB
    #: Solve-phase flops at scale 1 (10 solves).
    BASE_FLOPS = 1.2e12
    #: Solve-phase DRAM traffic at scale 1.
    BASE_TRAFFIC = 4.7e12

    def build(self, scale: float = 1.0) -> WorkloadSpec:
        if scale <= 0:
            raise ValueError("scale must be positive")
        label = (
            self.input_labels[self.input_scales.index(scale)]
            if scale in self.input_scales
            else f"x{scale:g}"
        )
        vectors_bytes = int(self.BASE_VECTORS_BYTES * scale)
        stencil_bytes = int(self.BASE_STENCIL_BYTES * scale)

        objects = (
            MemoryObject(
                name="grid-vectors",
                size_bytes=vectors_bytes,
                pattern=SequentialPattern(),
                allocation_site="HYPRE_StructVectorCreate",
            ),
            MemoryObject(
                name="stencil-coefficients",
                size_bytes=stencil_bytes,
                pattern=StridedPattern(stride_lines=1, stream_fraction=0.92),
                allocation_site="HYPRE_StructMatrixCreate",
            ),
        )
        phases = (
            PhaseSpec(
                name="p1",
                flops=2.0e9 * scale,
                dram_bytes=2.0 * (vectors_bytes + stencil_bytes),
                object_traffic={"grid-vectors": 0.5, "stencil-coefficients": 0.5},
                write_fraction=0.55,
                mlp=8.0,
                stream_fraction=0.9,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.1,
            ),
            PhaseSpec(
                name="p2",
                flops=self.BASE_FLOPS * scale,
                dram_bytes=self.BASE_TRAFFIC * scale,
                object_traffic={"grid-vectors": 0.55, "stencil-coefficients": 0.45},
                write_fraction=0.3,
                mlp=8.0,
                stream_fraction=0.70,
                prefetch_accuracy_hint=0.9,
                traffic_profile=TRAFFIC_PROFILE_FLAT,
                duration_weight=0.9,
            ),
        )
        return WorkloadSpec(
            name=self.name,
            input_label=label,
            scale=scale,
            objects=objects,
            phases=phases,
        )
