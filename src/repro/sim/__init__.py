"""Execution: platform assembly, performance model, interference, engine."""

from .engine import ExecutionEngine, TierTraffic
from .interference import (
    ConstantInterference,
    InterferenceSource,
    NoInterference,
    RandomInterference,
)
from .perfmodel import PerformanceModel, PhaseInputs
from .platform import Platform
from .results import (
    ObjectPlacementResult,
    PhaseResult,
    RunResult,
    TimeBreakdown,
)

__all__ = [
    "ExecutionEngine",
    "TierTraffic",
    "ConstantInterference",
    "InterferenceSource",
    "NoInterference",
    "RandomInterference",
    "PerformanceModel",
    "PhaseInputs",
    "Platform",
    "ObjectPlacementResult",
    "PhaseResult",
    "RunResult",
    "TimeBreakdown",
]
