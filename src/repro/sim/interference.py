"""Interference sources: background traffic injected on the remote link.

Section 6 of the paper uses LBench to inject a configurable Level of
Interference (LoI) on the link to the memory pool, and Section 7.2 varies the
LoI randomly over time to emulate other jobs being scheduled onto the same
pool.  These classes describe that background traffic for the execution
engine; the LBench workload itself (which also *measures* interference) lives
in :mod:`repro.workloads.lbench`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from ..config.errors import ConfigurationError
from ..interconnect.link import RemoteLink


class InterferenceSource(Protocol):
    """Anything that can report background link bandwidth at a point in time."""

    def background_bandwidth(self, link: RemoteLink, time: float) -> float:
        """Background data bandwidth on the link at simulated ``time``, bytes/s."""
        ...

    def mean_loi(self) -> float:
        """Average Level of Interference generated, percent of peak traffic."""
        ...


@dataclass(frozen=True)
class NoInterference:
    """An idle memory pool: no background traffic."""

    def background_bandwidth(self, link: RemoteLink, time: float) -> float:
        return 0.0

    def mean_loi(self) -> float:
        return 0.0


@dataclass(frozen=True)
class ConstantInterference:
    """A constant Level of Interference, as used for the sensitivity sweeps.

    ``loi`` is the percentage of the link's peak traffic that the background
    (an LBench instance on another node, in the paper's setup) generates.
    """

    loi: float

    def __post_init__(self) -> None:
        if self.loi < 0:
            raise ConfigurationError("LoI must be non-negative")

    def background_bandwidth(self, link: RemoteLink, time: float) -> float:
        return link.bandwidth_for_loi(self.loi)

    def mean_loi(self) -> float:
        return float(self.loi)


@dataclass(frozen=True)
class RandomInterference:
    """LoI redrawn uniformly from ``[low, high]`` every ``interval`` seconds.

    This reproduces the scheduling study's background: "the level of
    interference changes randomly between 0–50% every 60 s" for the random
    baseline, and 0–20% for the interference-aware scheduler (Section 7.2).
    The draw sequence is deterministic given the seed.
    """

    low: float
    high: float
    interval: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError("need 0 <= low <= high for random interference")
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")

    def _loi_at(self, time: float) -> float:
        slot = int(max(time, 0.0) // self.interval)
        # One independent generator per slot keeps draws stable regardless of
        # the order in which times are queried.
        rng = np.random.default_rng((self.seed, slot))
        return float(rng.uniform(self.low, self.high))

    def background_bandwidth(self, link: RemoteLink, time: float) -> float:
        return link.bandwidth_for_loi(self._loi_at(time))

    def mean_loi(self) -> float:
        return (self.low + self.high) / 2.0

    def loi_timeline(self, duration: float) -> tuple[np.ndarray, np.ndarray]:
        """(slot start times, LoI values) covering ``duration`` seconds."""
        n_slots = int(np.ceil(max(duration, 0.0) / self.interval)) or 1
        times = np.arange(n_slots) * self.interval
        lois = np.array([self._loi_at(t) for t in times])
        return times, lois

    def average_loi_over(self, duration: float) -> float:
        """Time-averaged LoI over ``duration`` seconds (deterministic)."""
        _, lois = self.loi_timeline(duration)
        return float(lois.mean()) if len(lois) else 0.0
