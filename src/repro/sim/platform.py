"""Platform assembly: testbed + tiered memory + remote link + models.

A :class:`Platform` bundles everything needed to execute a workload
specification: the hardware description, the tier geometry (how much of the
footprint fits in node-local memory), the remote link with its contention
model, the cache-hierarchy model and the performance model.  It corresponds to
one configured instance of the paper's emulation platform (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache.hierarchy import CacheHierarchyModel
from ..config.errors import ConfigurationError
from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig
from ..config.tiers import (
    TieredMemoryConfig,
    capacity_ratio_config,
    single_tier_config,
    two_tier_config,
)
from ..interconnect.link import RemoteLink
from ..interconnect.queueing import QueueingModel
from .perfmodel import PerformanceModel


class Platform:
    """One configured emulation platform.

    Parameters
    ----------
    testbed:
        Hardware description (bandwidths, latencies, caches, prefetcher).
    tier_config:
        Tier geometry.  ``None`` means "decide per workload" — the execution
        engine will then build a single-tier (local only) system big enough
        for the workload, which is the Level-1 profiling setup.
    label:
        Human-readable configuration label used in results
        (``"50-50"``, ``"local-only"``...).
    queueing:
        Contention model for the remote link (defaults to M/M/1).
    """

    def __init__(
        self,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        tier_config: Optional[TieredMemoryConfig] = None,
        label: Optional[str] = None,
        queueing: Optional[QueueingModel] = None,
    ) -> None:
        self.testbed = testbed
        self.tier_config = tier_config
        self.label = label if label is not None else self._default_label()
        self.link = RemoteLink(testbed, queueing)
        self.cache_model = CacheHierarchyModel(testbed)
        self.performance_model = PerformanceModel(testbed, self.link)

    def _default_label(self) -> str:
        if self.tier_config is None:
            return "local-only"
        ratios = self.tier_config.capacity_ratios
        return "-".join(f"{int(round(r * 100))}" for r in ratios)

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def local_only(cls, testbed: TestbedConfig = SKYLAKE_EMULATION) -> "Platform":
        """A platform whose memory system is sized per-workload, local tier only."""
        return cls(testbed=testbed, tier_config=None, label="local-only")

    @classmethod
    def pooled(
        cls,
        footprint_bytes: int,
        local_fraction: float,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        queueing: Optional[QueueingModel] = None,
    ) -> "Platform":
        """A two-tier platform where ``local_fraction`` of the footprint fits locally.

        Mirrors the paper's `setup_waste` configurations: ``local_fraction``
        of 0.75, 0.50 and 0.25 give the 75-25, 50-50 and 25-75 systems of
        Figures 9 and 10.
        """
        config = capacity_ratio_config(footprint_bytes, local_fraction, testbed)
        label = (
            f"{int(round(local_fraction * 100))}-"
            f"{int(round((1.0 - local_fraction) * 100))}"
        )
        return cls(testbed=testbed, tier_config=config, label=label, queueing=queueing)

    @classmethod
    def explicit(
        cls,
        local_capacity: int,
        remote_capacity: int,
        testbed: TestbedConfig = SKYLAKE_EMULATION,
        label: Optional[str] = None,
        queueing: Optional[QueueingModel] = None,
    ) -> "Platform":
        """A two-tier platform with explicit capacities."""
        config = two_tier_config(local_capacity, remote_capacity, testbed)
        return cls(testbed=testbed, tier_config=config, label=label, queueing=queueing)

    # -- per-workload tier geometry ------------------------------------------------------

    def tier_config_for(self, footprint_bytes: int) -> TieredMemoryConfig:
        """The tier geometry used when running a workload of the given footprint.

        If the platform was given an explicit tier configuration it is used as
        is (and must be able to hold the footprint); otherwise a generous
        single-tier local system is created.
        """
        if footprint_bytes <= 0:
            raise ConfigurationError("footprint must be positive")
        if self.tier_config is not None:
            if self.tier_config.total_capacity < footprint_bytes:
                raise ConfigurationError(
                    f"platform {self.label!r}: total tier capacity "
                    f"({self.tier_config.total_capacity} B) cannot hold the workload "
                    f"footprint ({footprint_bytes} B)"
                )
            return self.tier_config
        # Local-only: size the single tier with 10% headroom.
        return single_tier_config(int(footprint_bytes * 1.1) + 1, self.testbed)

    @property
    def is_pooled(self) -> bool:
        """True when the platform has a remote/pooled tier."""
        return self.tier_config is not None and self.tier_config.n_tiers > 1

    def describe(self) -> dict:
        """Summary of the platform configuration."""
        return {
            "label": self.label,
            "testbed": self.testbed.describe(),
            "tiers": None if self.tier_config is None else self.tier_config.describe(),
        }
