"""Result containers produced by the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..cache.events import CounterSet


@dataclass(frozen=True)
class TimeBreakdown:
    """Where a phase's time went, according to the performance model.

    The components are not additive — the model overlaps compute with
    bandwidth-bound transfers — but each is reported so users can see which
    resource bound the phase.
    """

    compute_time: float
    local_bandwidth_time: float
    remote_bandwidth_time: float
    latency_stall_time: float
    runtime: float

    @property
    def bound_by(self) -> str:
        """Which component dominates the phase ("compute", "local-bw", "remote-bw", "latency")."""
        components = {
            "compute": self.compute_time,
            "local-bw": self.local_bandwidth_time,
            "remote-bw": self.remote_bandwidth_time,
            "latency": self.latency_stall_time,
        }
        return max(components, key=components.get)


@dataclass(frozen=True)
class PhaseResult:
    """Measured (simulated) outcome of one workload phase.

    The fields mirror what the paper's multi-level profiler extracts: Level 1
    quantities (flops, traffic, arithmetic intensity, prefetch metrics),
    Level 2 quantities (per-tier bytes and the remote access ratio) and the
    Level 3 link traffic counters.
    """

    name: str
    runtime: float
    flops: float
    dram_bytes: float
    local_bytes: float
    remote_bytes: float
    prefetch_coverage: float
    prefetch_accuracy: float
    excess_traffic_fraction: float
    counters: CounterSet
    breakdown: TimeBreakdown
    link_utilization: float = 0.0
    background_bandwidth: float = 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (local + remote demand traffic)."""
        if self.dram_bytes <= 0:
            return float("inf")
        return self.flops / self.dram_bytes

    @property
    def achieved_flops(self) -> float:
        """Achieved throughput in flop/s."""
        if self.runtime <= 0:
            return 0.0
        return self.flops / self.runtime

    @property
    def remote_access_ratio(self) -> float:
        """Fraction of demand DRAM traffic served by the remote tier (Level-2 metric)."""
        total = self.local_bytes + self.remote_bytes
        if total <= 0:
            return 0.0
        return self.remote_bytes / total

    @property
    def achieved_bandwidth(self) -> float:
        """Achieved aggregate memory bandwidth, bytes/s."""
        if self.runtime <= 0:
            return 0.0
        return self.dram_bytes / self.runtime

    @property
    def remote_bandwidth_demand(self) -> float:
        """Average data bandwidth this phase pushed onto the remote link, bytes/s."""
        if self.runtime <= 0:
            return 0.0
        return self.remote_bytes / self.runtime


@dataclass(frozen=True)
class ObjectPlacementResult:
    """Final placement of one memory object across the tiers."""

    name: str
    size_bytes: int
    bytes_per_tier: tuple[int, ...]
    placement_policy: str

    @property
    def remote_fraction(self) -> float:
        """Fraction of the object's pages that ended up in the bottom tier."""
        total = sum(self.bytes_per_tier)
        if total <= 0:
            return 0.0
        return self.bytes_per_tier[-1] / total


@dataclass(frozen=True)
class RunResult:
    """Full outcome of executing one workload on one platform configuration."""

    workload: str
    input_label: str
    scale: float
    config_label: str
    phases: tuple[PhaseResult, ...]
    placements: tuple[ObjectPlacementResult, ...]
    remote_capacity_ratio: float
    footprint_bytes: int
    prefetch_enabled: bool
    interference_loi: float

    # -- aggregates ---------------------------------------------------------------

    @property
    def total_runtime(self) -> float:
        """End-to-end runtime (sum of phases), seconds."""
        return float(sum(p.runtime for p in self.phases))

    @property
    def total_flops(self) -> float:
        """Total floating-point operations across phases."""
        return float(sum(p.flops for p in self.phases))

    @property
    def total_dram_bytes(self) -> float:
        """Total demand DRAM traffic across phases, bytes."""
        return float(sum(p.dram_bytes for p in self.phases))

    @property
    def total_remote_bytes(self) -> float:
        """Total remote-tier traffic across phases, bytes."""
        return float(sum(p.remote_bytes for p in self.phases))

    @property
    def total_local_bytes(self) -> float:
        """Total local-tier traffic across phases, bytes."""
        return float(sum(p.local_bytes for p in self.phases))

    @property
    def remote_access_ratio(self) -> float:
        """Traffic-weighted remote access ratio over the whole run."""
        total = self.total_local_bytes + self.total_remote_bytes
        if total <= 0:
            return 0.0
        return self.total_remote_bytes / total

    @property
    def counters(self) -> CounterSet:
        """Merged counters over all phases."""
        merged = CounterSet()
        for phase in self.phases:
            merged = merged.merged(phase.counters)
        return merged

    def phase(self, name: str) -> PhaseResult:
        """Look a phase result up by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"run has no phase {name!r}")

    def placement(self, object_name: str) -> ObjectPlacementResult:
        """Look an object placement up by name."""
        for p in self.placements:
            if p.name == object_name:
                return p
        raise KeyError(f"run has no placement for object {object_name!r}")

    def phase_label(self, phase_name: str) -> str:
        """The paper's ``App-pN`` label for a phase of this run."""
        return f"{self.workload}-{phase_name}"

    def summary(self) -> dict:
        """Compact dictionary summary for reports."""
        return {
            "workload": self.workload,
            "input": self.input_label,
            "config": self.config_label,
            "runtime_s": self.total_runtime,
            "gflops": self.total_flops / 1e9,
            "dram_gb": self.total_dram_bytes / 1e9,
            "remote_access_ratio": self.remote_access_ratio,
            "remote_capacity_ratio": self.remote_capacity_ratio,
            "prefetch_enabled": self.prefetch_enabled,
            "interference_loi": self.interference_loi,
        }
