"""Phase performance model.

Translates a phase's work (flops), per-tier traffic, prefetch coverage and
memory-level parallelism into a runtime on the emulated platform.  The model
is an extended roofline:

* **Compute bound**: ``flops / peak_flops``.
* **Bandwidth bound**: each tier streams concurrently (the paper's point that
  an extra tier *adds* bandwidth), so the bandwidth time is the maximum of the
  per-tier transfer times.  Remote transfers only get the bandwidth left over
  by the background interference sharing the link, and writes are carried at
  the same cost as reads.
* **Latency bound**: demand misses not covered by the prefetcher expose the
  access latency; with ``mlp`` outstanding misses per core the exposed time is
  ``uncovered_lines × latency / (mlp × cores)``.  Remote latency includes the
  queueing delay caused by total link utilisation, which is how interference
  hurts even bandwidth-light but latency-sensitive phases.

The compute and memory components are combined with a smooth maximum so that
strongly compute-bound phases (HPL) still show a small — but not zero —
sensitivity to memory interference, matching Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.testbed import TestbedConfig
from ..interconnect.link import RemoteLink
from .results import TimeBreakdown


@dataclass(frozen=True)
class PhaseInputs:
    """Everything the performance model needs to know about a phase execution."""

    flops: float
    local_demand_bytes: float
    remote_demand_bytes: float
    local_extra_bytes: float = 0.0
    remote_extra_bytes: float = 0.0
    prefetch_coverage: float = 0.0
    mlp: float = 8.0
    background_bandwidth: float = 0.0

    @property
    def local_bytes(self) -> float:
        """All local-tier traffic including prefetch waste."""
        return self.local_demand_bytes + self.local_extra_bytes

    @property
    def remote_bytes(self) -> float:
        """All remote-tier traffic including prefetch waste."""
        return self.remote_demand_bytes + self.remote_extra_bytes


class PerformanceModel:
    """Extended-roofline phase performance model for a testbed + link."""

    #: Exponent of the smooth-max combining compute and memory time.
    SMOOTH_MAX_P = 6.0
    #: Number of fixed-point iterations used to resolve the phase's own link load.
    FIXED_POINT_ITERATIONS = 4
    #: Fraction of the contention-induced queueing delay an application
    #: actually exposes.  Out-of-order cores and prefetch streams overlap most
    #: of the added latency with useful work; a dependent-chain probe such as
    #: LBench exposes all of it, which is why the probe is a far more
    #: sensitive interference detector than application slowdown (Section 3.2).
    CONTENTION_LATENCY_EXPOSURE = 0.25

    def __init__(self, testbed: TestbedConfig, link: RemoteLink) -> None:
        self.testbed = testbed
        self.link = link

    # -- helpers -------------------------------------------------------------------

    def _latency_limited_bandwidth(self, latency: float, mlp_total: float) -> float:
        """Little's-law bandwidth achievable with ``mlp_total`` outstanding lines."""
        if latency <= 0:
            return float("inf")
        return mlp_total * self.testbed.cacheline_bytes / latency

    def _tier_time(
        self,
        total_bytes: float,
        coverage: float,
        tier_bandwidth: float,
        latency: float,
        mlp_total: float,
    ) -> tuple[float, float]:
        """(bandwidth-bound time, latency-stall time) for one tier's traffic.

        Prefetched (covered) traffic streams at the tier bandwidth; uncovered
        demand misses are additionally limited by the latency the core can
        hide with its outstanding-miss budget.
        """
        if total_bytes <= 0:
            return 0.0, 0.0
        # Pure-Python clamp: np.clip on a scalar costs ~µs of array-dispatch
        # overhead, and this runs once per tier per fixed-point iteration of
        # every phase evaluation — the hottest scalar path in the simulator.
        coverage = min(max(float(coverage), 0.0), 1.0)
        covered_bytes = total_bytes * coverage
        uncovered_bytes = total_bytes - covered_bytes
        bw_time = total_bytes / tier_bandwidth
        demand_bandwidth = min(
            tier_bandwidth, self._latency_limited_bandwidth(latency, mlp_total)
        )
        # Time the uncovered traffic *additionally* needs beyond streaming at
        # the tier bandwidth — the exposed latency cost.
        uncovered_time = uncovered_bytes / demand_bandwidth
        latency_stall = max(uncovered_time - uncovered_bytes / tier_bandwidth, 0.0)
        return bw_time, latency_stall

    def _smooth_max(self, a: float, b: float) -> float:
        p = self.SMOOTH_MAX_P
        if a <= 0:
            return b
        if b <= 0:
            return a
        return float((a**p + b**p) ** (1.0 / p))

    # -- main entry point -------------------------------------------------------------

    def phase_time(self, inputs: PhaseInputs) -> TimeBreakdown:
        """Runtime and breakdown for one phase execution."""
        t_compute = inputs.flops / self.testbed.peak_flops if inputs.flops > 0 else 0.0
        mlp_total = max(inputs.mlp, 0.1) * self.testbed.cores

        # Local tier: full bandwidth, idle latency.
        t_local_bw, t_local_lat = self._tier_time(
            inputs.local_bytes,
            inputs.prefetch_coverage,
            self.testbed.local_bandwidth,
            self.testbed.local_latency,
            mlp_total,
        )

        # Remote tier: the bandwidth available for remote streaming and the
        # effective latency both depend on link contention.  The *available*
        # bandwidth only depends on the background load, but the queueing
        # delay also depends on the phase's own offered load, which in turn
        # depends on the runtime — resolved with a short fixed point.
        t_remote_bw, t_remote_lat = 0.0, 0.0
        remote_bytes = inputs.remote_bytes
        runtime_estimate = max(self._smooth_max(t_compute, max(t_local_bw, 1e-12)), 1e-9)
        if remote_bytes > 0:
            idle_share = self.link.share(0.0, inputs.background_bandwidth)
            remote_bandwidth = max(idle_share.available_bandwidth, 1e-3)
            runtime_estimate = max(runtime_estimate, remote_bytes / remote_bandwidth)
            for _ in range(self.FIXED_POINT_ITERATIONS):
                own_offered = remote_bytes / runtime_estimate
                share = self.link.share(own_offered, inputs.background_bandwidth)
                remote_bandwidth = max(share.available_bandwidth, 1e-3)
                remote_latency = (
                    self.testbed.remote_latency
                    + self.CONTENTION_LATENCY_EXPOSURE * share.queueing_delay
                )
                t_remote_bw, t_remote_lat = self._tier_time(
                    remote_bytes,
                    inputs.prefetch_coverage,
                    remote_bandwidth,
                    remote_latency,
                    mlp_total,
                )
                new_estimate = self._combine(
                    t_compute, t_local_bw, t_remote_bw, t_local_lat + t_remote_lat
                )
                if abs(new_estimate - runtime_estimate) < 1e-9:
                    runtime_estimate = new_estimate
                    break
                runtime_estimate = new_estimate

        runtime = self._combine(t_compute, t_local_bw, t_remote_bw, t_local_lat + t_remote_lat)
        return TimeBreakdown(
            compute_time=t_compute,
            local_bandwidth_time=t_local_bw,
            remote_bandwidth_time=t_remote_bw,
            latency_stall_time=t_local_lat + t_remote_lat,
            runtime=runtime,
        )

    def _combine(
        self,
        t_compute: float,
        t_local_bw: float,
        t_remote_bw: float,
        t_latency: float,
    ) -> float:
        # Tiers stream concurrently; the memory time is the slower tier plus
        # the exposed latency stalls (which overlap with neither tier).
        t_memory = max(t_local_bw, t_remote_bw) + t_latency
        return self._smooth_max(t_compute, t_memory)

    # -- convenience -------------------------------------------------------------------

    def roofline_time(self, flops: float, dram_bytes: float) -> float:
        """Classic single-tier roofline time (used for validation tests)."""
        t_compute = flops / self.testbed.peak_flops
        t_memory = dram_bytes / self.testbed.local_bandwidth
        return max(t_compute, t_memory)
