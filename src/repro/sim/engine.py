"""Execution engine: runs workload specifications on a platform.

The engine is the simulator's stand-in for "running the application on the
testbed".  It

1. lays the workload's memory objects out in a virtual address space in
   allocation order,
2. places their pages on the platform's memory tiers with the first-touch
   policy (or whatever explicit placement an object requests),
3. executes the phases: for each phase it splits the phase's DRAM traffic over
   the tiers according to which pages of which objects the traffic targets,
   derives the prefetcher's behaviour from the access patterns, asks the
   performance model for the runtime under the configured interference, and
4. emits the counters the multi-level profiler consumes.

Dynamic (late) allocations and objects freed after initialisation are applied
between the first and second phase, which is what the BFS case study of
Section 7.1 manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cache import events
from ..cache.events import CounterSet
from ..config.errors import ConfigurationError, WorkloadError
from ..memory.objects import AddressSpace, MemoryObject
from ..memory.tiered import TieredMemory
from ..telemetry import metrics, trace_span
from ..trace.access import PageAccessProfile
from ..workloads.base import PhaseSpec, WorkloadSpec
from .interference import InterferenceSource, NoInterference
from .perfmodel import PhaseInputs
from .platform import Platform
from .results import ObjectPlacementResult, PhaseResult, RunResult


@dataclass(frozen=True)
class TierTraffic:
    """Per-tier demand traffic of one phase, bytes.

    The performance model distinguishes two paths: node-local memory and
    memory reached over the fabric link.  ``pooled`` records which tiers sit
    behind the link; on systems with three or more tiers this is what routes
    the *middle* tiers' bytes explicitly, so ``local + remote`` always covers
    the whole demand instead of silently dropping intermediate tiers.
    """

    per_tier: tuple[float, ...]
    #: Which tiers are fabric-attached (pooled).  When empty, defaults to
    #: "top tier is node-local, every other tier is behind the link".
    pooled: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if self.pooled and len(self.pooled) != len(self.per_tier):
            raise ConfigurationError(
                f"pooled mask has {len(self.pooled)} entries for "
                f"{len(self.per_tier)} tiers"
            )

    def _pooled_mask(self) -> tuple[bool, ...]:
        if self.pooled:
            return self.pooled
        return tuple(i > 0 for i in range(len(self.per_tier)))

    @property
    def local(self) -> float:
        """Traffic served by node-local (non-pooled) tiers."""
        mask = self._pooled_mask()
        return float(sum(t for t, pooled in zip(self.per_tier, mask) if not pooled))

    @property
    def remote(self) -> float:
        """Traffic served by fabric-attached (pooled) tiers; 0 on single-tier systems."""
        mask = self._pooled_mask()
        return float(sum(t for t, pooled in zip(self.per_tier, mask) if pooled))

    @property
    def total(self) -> float:
        """All demand traffic."""
        return float(sum(self.per_tier))


class ExecutionEngine:
    """Runs :class:`~repro.workloads.base.WorkloadSpec` objects on a :class:`Platform`."""

    def __init__(self, platform: Platform, seed: int = 0) -> None:
        self.platform = platform
        self.seed = int(seed)

    # -- public API --------------------------------------------------------------------

    def run(
        self,
        spec: WorkloadSpec,
        prefetch_enabled: Optional[bool] = None,
        interference: Optional[InterferenceSource] = None,
        reserved_local_bytes: int = 0,
    ) -> RunResult:
        """Execute ``spec`` and return the full :class:`RunResult`.

        Parameters
        ----------
        spec:
            The workload at a specific input problem.
        prefetch_enabled:
            Override the testbed's hardware-prefetching switch (None keeps the
            platform default) — the lever behind Figures 7 and 8.
        interference:
            Background traffic on the link to the memory pool (None = idle).
        reserved_local_bytes:
            Local memory occupied by other software (`setup_waste`), reducing
            what first-touch placement can use.
        """
        interference = interference if interference is not None else NoInterference()
        rng = np.random.default_rng(self.seed)
        registry = metrics()
        registry.counter("engine.runs").inc()
        registry.counter("engine.phases").inc(len(spec.phases))

        with trace_span("engine.run", workload=spec.name):
            space, memory, objects = self._build_memory(spec, reserved_local_bytes)
            prefetch = (
                self.platform.testbed.prefetcher.enabled
                if prefetch_enabled is None
                else bool(prefetch_enabled)
            )

            phase_results: list[PhaseResult] = []
            clock = 0.0
            for index, phase in enumerate(spec.phases):
                if index == 1:
                    self._apply_post_init_changes(spec, memory, objects)
                result = self._run_phase(
                    spec, phase, memory, objects, rng, prefetch, interference, clock
                )
                phase_results.append(result)
                clock += result.runtime

        placements = tuple(
            ObjectPlacementResult(
                name=obj.name,
                size_bytes=obj.size_bytes,
                bytes_per_tier=tuple(
                    memory.object_tier_bytes(obj)[usage.name] for usage in memory.usage
                ),
                placement_policy=obj.placement,
            )
            for obj in objects.values()
        )
        return RunResult(
            workload=spec.name,
            input_label=spec.input_label,
            scale=spec.scale,
            config_label=self.platform.label,
            phases=tuple(phase_results),
            placements=placements,
            remote_capacity_ratio=memory.remote_capacity_ratio(),
            footprint_bytes=spec.footprint_bytes,
            prefetch_enabled=prefetch,
            interference_loi=interference.mean_loi(),
        )

    def access_profile(self, spec: WorkloadSpec, phases: Optional[Sequence[str]] = None) -> PageAccessProfile:
        """Aggregate page-level access counts of a run (for the Figure-6 curves).

        The profile is placement-independent: it reflects how the workload
        spreads its traffic over its own footprint, which is what the
        bandwidth-capacity scaling curve visualises.
        """
        rng = np.random.default_rng(self.seed)
        space = AddressSpace(
            page_bytes=self.platform.testbed.page_bytes,
            line_bytes=self.platform.testbed.cacheline_bytes,
        )
        objects = {o.name: o for o in space.register_all(spec.fresh_objects())}
        selected = set(phases) if phases is not None else None
        profile = PageAccessProfile(np.empty(0, dtype=np.int64), np.empty(0))
        for phase in spec.phases:
            if selected is not None and phase.name not in selected:
                continue
            for name, fraction in phase.object_traffic.items():
                obj = objects[name]
                traffic_lines = (
                    phase.dram_bytes * fraction / self.platform.testbed.cacheline_bytes
                )
                if traffic_lines <= 0 or obj.n_pages == 0:
                    continue
                weights = obj.pattern.page_weights(obj.n_pages, rng)
                counts = weights * traffic_lines
                profile = profile.merged(PageAccessProfile(obj.page_range(), counts))
        return profile

    def l2_timeline(
        self,
        spec: WorkloadSpec,
        result: RunResult,
        steps_per_phase: Optional[int] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Timeline of L2 cachelines fetched per time bucket (Figure 7).

        Returns ``(bucket_end_times, lines_per_bucket)`` covering the whole
        run; each phase's traffic follows its declared temporal profile.
        """
        times: list[np.ndarray] = []
        lines: list[np.ndarray] = []
        clock = 0.0
        for phase_spec, phase_result in zip(spec.phases, result.phases):
            steps = steps_per_phase if steps_per_phase is not None else phase_spec.timeline_steps
            shape = phase_spec.traffic_shape(steps)
            total_lines = phase_result.counters[events.L2_LINES_IN]
            bucket_times = clock + np.linspace(
                phase_result.runtime / steps, phase_result.runtime, steps
            )
            times.append(bucket_times)
            lines.append(shape * total_lines)
            clock += phase_result.runtime
        if not times:
            return np.empty(0), np.empty(0)
        return np.concatenate(times), np.concatenate(lines)

    # -- internals -----------------------------------------------------------------------

    def _build_memory(
        self, spec: WorkloadSpec, reserved_local_bytes: int
    ) -> tuple[AddressSpace, TieredMemory, dict[str, MemoryObject]]:
        space = AddressSpace(
            page_bytes=self.platform.testbed.page_bytes,
            line_bytes=self.platform.testbed.cacheline_bytes,
        )
        fresh = spec.fresh_objects()
        space.register_all(fresh)
        objects = {o.name: o for o in fresh}
        tier_config = self.platform.tier_config_for(spec.footprint_bytes)
        memory = TieredMemory(tier_config, space, reserved_local_bytes=reserved_local_bytes)
        late = set(spec.late_objects)
        # First-touch everything that exists before the compute phases, in
        # program allocation order.
        memory.touch_in_order([o for o in fresh if o.name not in late])
        return space, memory, objects

    def _apply_post_init_changes(
        self,
        spec: WorkloadSpec,
        memory: TieredMemory,
        objects: dict[str, MemoryObject],
    ) -> None:
        """Free init-only objects, then place late (dynamic) allocations."""
        for name in spec.init_only_objects:
            memory.free(objects[name])
        for name in spec.late_objects:
            memory.touch(objects[name])

    def _tier_traffic(
        self,
        phase: PhaseSpec,
        memory: TieredMemory,
        objects: dict[str, MemoryObject],
        rng: np.random.Generator,
    ) -> TierTraffic:
        """Split the phase's demand traffic over the memory tiers."""
        n_tiers = len(memory.usage)
        per_tier = np.zeros(n_tiers, dtype=np.float64)
        for name, fraction in phase.object_traffic.items():
            obj = objects[name]
            traffic = phase.dram_bytes * fraction
            if traffic <= 0 or obj.n_pages == 0:
                continue
            placement = memory.placement_of(obj)
            weights = obj.pattern.page_weights(obj.n_pages, rng)
            for tier in range(n_tiers):
                mask = placement == tier
                if mask.any():
                    per_tier[tier] += traffic * float(weights[mask].sum())
            # Pages that were freed (UNPLACED) no longer generate traffic —
            # attribute their share to the local tier, as a freed-and-reused
            # region would be.
            unplaced = placement < 0
            if unplaced.any():
                per_tier[0] += traffic * float(weights[unplaced].sum())
        return TierTraffic(
            per_tier=tuple(per_tier),
            pooled=tuple(t.pooled for t in memory.config.tiers),
        )

    def _phase_stream_fraction(
        self, phase: PhaseSpec, objects: dict[str, MemoryObject]
    ) -> float:
        if phase.stream_fraction is not None:
            return phase.stream_fraction
        total = 0.0
        for name, fraction in phase.object_traffic.items():
            total += fraction * objects[name].pattern.stream_fraction
        return float(np.clip(total, 0.0, 1.0))

    def _run_phase(
        self,
        spec: WorkloadSpec,
        phase: PhaseSpec,
        memory: TieredMemory,
        objects: dict[str, MemoryObject],
        rng: np.random.Generator,
        prefetch: bool,
        interference: InterferenceSource,
        clock: float,
    ) -> PhaseResult:
        traffic = self._tier_traffic(phase, memory, objects, rng)
        stream_fraction = self._phase_stream_fraction(phase, objects)
        cache_stats = self.platform.cache_model.stats_from_fraction(
            demand_dram_bytes=phase.dram_bytes,
            stream_fraction=stream_fraction,
            write_fraction=phase.write_fraction,
            accuracy_hint=phase.prefetch_accuracy_hint,
            prefetch_enabled=prefetch,
        )
        line_bytes = self.platform.testbed.cacheline_bytes
        extra_bytes = cache_stats.useless_prefetch_lines * line_bytes
        total_demand = max(traffic.total, 1e-12)
        local_share = traffic.local / total_demand
        remote_share = traffic.remote / total_demand

        background_bw = interference.background_bandwidth(self.platform.link, clock)
        # Useless prefetch traffic is charged to the traffic counters but not
        # to the runtime: hardware prefetchers throttle under bandwidth
        # pressure, so the wasted fetches mostly consume otherwise-idle
        # bandwidth (SuperLU's 37% extra traffic still yields a net speedup
        # in the paper).
        perf_inputs = PhaseInputs(
            flops=phase.flops,
            local_demand_bytes=traffic.local,
            remote_demand_bytes=traffic.remote,
            local_extra_bytes=0.0,
            remote_extra_bytes=0.0,
            prefetch_coverage=cache_stats.covered_fraction,
            mlp=phase.mlp,
            background_bandwidth=background_bw,
        )
        breakdown = self.platform.performance_model.phase_time(perf_inputs)
        runtime = breakdown.runtime

        counters = CounterSet(cache_stats.counters.as_dict())
        counters.set(events.FP_ARITH_OPS, phase.flops)
        counters.set(events.ELAPSED_SECONDS, runtime)
        counters.set(events.OFFCORE_LOCAL_DRAM, traffic.local / line_bytes)
        counters.set(events.OFFCORE_REMOTE_DRAM, traffic.remote / line_bytes)
        own_remote_bw = (traffic.remote + extra_bytes * remote_share) / max(runtime, 1e-12)
        measured_bw = self.platform.link.measured_traffic(own_remote_bw + background_bw)
        counters.set(events.UPI_TRAFFIC_BYTES, measured_bw * runtime)
        utilization = self.platform.link.utilization(own_remote_bw + background_bw)
        counters.set(events.UPI_UTILIZATION, utilization)

        return PhaseResult(
            name=phase.name,
            runtime=runtime,
            flops=phase.flops,
            dram_bytes=phase.dram_bytes,
            local_bytes=traffic.local,
            remote_bytes=traffic.remote,
            prefetch_coverage=cache_stats.covered_fraction,
            prefetch_accuracy=cache_stats.accuracy,
            excess_traffic_fraction=cache_stats.excess_traffic_fraction,
            counters=counters,
            breakdown=breakdown,
            link_utilization=utilization,
            background_bandwidth=background_bw,
        )
