"""Case study 2: interference-aware job scheduling (Section 7.2, Figure 13).

Each evaluated workload runs 100 times at 50% memory-pool capacity against a
background interference whose Level of Interference is redrawn every 60 s —
uniformly from 0-50% for the random baseline and from 0-20% for the
interference-aware scheduler (which refuses to co-locate interference-heavy
jobs with sensitive ones).  The paper reports mean speedups of roughly
4% (Hypre), 2% (NekRS, SuperLU), 1% (BFS, HPL) and 0% (XSBench), and a
reduction of the 75th-percentile execution time of 1-5%.

:class:`CoupledSchedulingStudy` extends the study to the rack-scale
:class:`~repro.scheduler.simulator.ClusterSimulator`: the *same* job stream is
scheduled once with the paper's static ``slowdown_at(LoI)`` pricing and once
with :class:`~repro.scheduler.progress.FabricCoupledProgress`, which steps a
:class:`~repro.fabric.cosim.RackCoSimulator` per rack between scheduler
events.  The delta between the two outcomes is the study's result: how much
the emergent contention the fabric resolves changes completion times compared
to the submission-time hints alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..config.units import bytes_to_gb
from ..fabric.solver import SOLVER_VECTORIZED
from ..profiler.level3 import Level3Profiler, SensitivityCurve
from ..scheduler.cluster import Cluster
from ..scheduler.job import JobProfile
from ..scheduler.policies import make_policy
from ..scheduler.progress import FabricCoupledProgress, StaticCurveProgress, fabric_job_profile
from ..scheduler.simulator import ClusterSimulator, CoLocationResult, CoLocationStudy, ScheduleOutcome
from ..sim.platform import Platform
from ..workloads.base import WorkloadSpec
from ..workloads.registry import build_all


@dataclass(frozen=True)
class WorkloadSchedulingResult:
    """Baseline vs interference-aware execution-time distributions for one workload."""

    workload: str
    baseline: CoLocationResult
    aware: CoLocationResult

    @property
    def mean_speedup(self) -> float:
        """Relative reduction of the mean execution time."""
        if self.aware.mean <= 0:
            return 0.0
        return self.baseline.mean / self.aware.mean - 1.0

    @property
    def p75_reduction(self) -> float:
        """Relative reduction of the 75th-percentile execution time."""
        p75 = self.baseline.percentile(75)
        if p75 <= 0:
            return 0.0
        return 1.0 - self.aware.percentile(75) / p75

    @property
    def variability_reduction(self) -> float:
        """Relative reduction of the interquartile range."""
        if self.baseline.variability <= 0:
            return 0.0
        return 1.0 - self.aware.variability / self.baseline.variability

    def summary(self) -> dict:
        """Row used by the Figure-13 benchmark and EXPERIMENTS.md."""
        return {
            "workload": self.workload,
            "baseline": self.baseline.five_number_summary(),
            "interference_aware": self.aware.five_number_summary(),
            "mean_speedup": self.mean_speedup,
            "p75_reduction": self.p75_reduction,
        }


@dataclass(frozen=True)
class SchedulingCaseStudyResult:
    """Results for all evaluated workloads."""

    results: tuple[WorkloadSchedulingResult, ...]

    def result(self, workload: str) -> WorkloadSchedulingResult:
        """Look one workload's result up by name."""
        for r in self.results:
            if r.workload == workload:
                return r
        raise KeyError(f"no scheduling result for {workload!r}")

    def speedups(self) -> dict[str, float]:
        """Mean speedup per workload."""
        return {r.workload: r.mean_speedup for r in self.results}

    def most_improved(self) -> str:
        """The workload benefitting most from interference awareness."""
        return max(self.results, key=lambda r: r.mean_speedup).workload


class SchedulingCaseStudy:
    """Runs the interference-aware scheduling comparison for a set of workloads."""

    def __init__(
        self,
        local_fraction: float = 0.50,
        n_runs: int = 100,
        interval: float = 60.0,
        seed: int = 0,
    ) -> None:
        self.local_fraction = local_fraction
        self.n_runs = n_runs
        self.interval = interval
        self.seed = seed

    def sensitivity_of(self, spec: WorkloadSpec) -> SensitivityCurve:
        """Measure one workload's sensitivity curve on the pooled platform."""
        platform = Platform.pooled(spec.footprint_bytes, self.local_fraction)
        return Level3Profiler(seed=self.seed).sensitivity(spec, platform)

    def job_profile_of(self, spec: WorkloadSpec) -> JobProfile:
        """Build the submission-time job profile the scheduler would receive."""
        sensitivity = self.sensitivity_of(spec)
        remote_fraction = 1.0 - self.local_fraction
        return JobProfile(
            workload=spec.name,
            baseline_runtime=sensitivity.baseline_runtime,
            sensitivity=sensitivity,
            pool_gb=bytes_to_gb(spec.footprint_bytes * remote_fraction),
        )

    def study_workload(
        self,
        spec: WorkloadSpec,
        baseline_range: tuple[float, float] = (0.0, 50.0),
        aware_range: tuple[float, float] = (0.0, 20.0),
    ) -> WorkloadSchedulingResult:
        """Run the 100-repetition comparison for one workload."""
        sensitivity = self.sensitivity_of(spec)
        study = CoLocationStudy(
            baseline_runtime=sensitivity.baseline_runtime,
            sensitivity=sensitivity,
            interval=self.interval,
        )
        outcomes = study.compare_policies(
            n_runs=self.n_runs,
            baseline_range=baseline_range,
            aware_range=aware_range,
            seed=self.seed,
        )
        return WorkloadSchedulingResult(
            workload=spec.name,
            baseline=outcomes["baseline"],
            aware=outcomes["interference-aware"],
        )

    def run(
        self,
        specs: Optional[Sequence[WorkloadSpec]] = None,
        jobs: int = 1,
    ) -> SchedulingCaseStudyResult:
        """Run the case study for all (or the given) workloads.

        ``jobs > 1`` shards the per-workload studies over worker processes
        via :class:`repro.parallel.SweepRunner`; results are bit-identical to
        the serial run (each workload's study is seeded by ``self.seed``,
        independent of sharding).
        """
        from ..parallel import SweepRunner

        specs = list(specs) if specs is not None else build_all(1.0)
        runner = SweepRunner(jobs=jobs, base_seed=self.seed)
        results = runner.map(
            _study_workload_task,
            [{"study": self, "spec": spec} for spec in specs],
            seed_param=None,
        )
        return SchedulingCaseStudyResult(results=tuple(results))


def _study_workload_task(study: SchedulingCaseStudy, spec: WorkloadSpec):
    """Picklable sweep task: one workload's 100-repetition comparison."""
    return study.study_workload(spec)


# ---------------------------------------------------------------------------
# Rack-scale extension: static-curve versus fabric-coupled scheduling.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoupledSchedulingResult:
    """One job stream scheduled under static and fabric-coupled progress."""

    static: ScheduleOutcome
    coupled: ScheduleOutcome

    @property
    def makespan_delta(self) -> float:
        """Relative makespan change when the fabric is coupled in (>0 = longer)."""
        if self.static.makespan <= 0:
            return 0.0
        return self.coupled.makespan / self.static.makespan - 1.0

    @property
    def mean_slowdown_delta(self) -> float:
        """Absolute change of the mean job slowdown under coupling."""
        return self.coupled.mean_slowdown - self.static.mean_slowdown

    @property
    def max_finish_time_shift(self) -> float:
        """Largest per-job |finish-time| difference between the two schedules.

        Non-zero values mean the static proxy mispredicted completion times —
        the quantity an interference-aware scheduler would act on.
        """
        shifts = [
            abs(a.finish_time - b.finish_time)
            for a, b in zip(self.static.jobs, self.coupled.jobs)
            if a.finished and b.finished
        ]
        return max(shifts, default=0.0)

    def summary(self) -> dict:
        """CLI/README-friendly comparison rows."""

        def row(outcome: ScheduleOutcome) -> dict:
            return {
                "makespan_s": outcome.makespan,
                "mean_slowdown": outcome.mean_slowdown,
                "p75_slowdown": outcome.p75_slowdown,
                "mean_wait_s": outcome.mean_wait,
            }

        return {
            "policy": self.static.policy,
            "static": row(self.static),
            "fabric_coupled": row(self.coupled),
            "makespan_delta": self.makespan_delta,
            "mean_slowdown_delta": self.mean_slowdown_delta,
            "max_finish_time_shift_s": self.max_finish_time_shift,
        }


class CoupledSchedulingStudy:
    """Schedules one job stream with and without the fabric in the loop.

    Job profiles are measured on the fabric's own models
    (:func:`~repro.scheduler.progress.fabric_job_profile`), so both pricing
    machineries see the same baseline runtimes, induced-LoI hints and pool
    shares; any outcome difference comes from *how* interference is resolved,
    not from different inputs.
    """

    #: Policies that score racks through the live progress model and must be
    #: handed the same instance the simulator steps.
    COUPLED_POLICIES = ("fabric-coupled", "cluster-fabric")

    def __init__(
        self,
        n_racks: int = 2,
        nodes_per_rack: int = 2,
        pool_capacity_gb: float = 2048.0,
        local_fraction: float = 0.5,
        policy: str = "least-loaded",
        ports_per_rack: int = 1,
        epoch_seconds: Optional[float] = None,
        scale: float = 1.0,
        seed: int = 0,
        solver: str = SOLVER_VECTORIZED,
        cluster_pool_gb: float = 0.0,
        fault_schedule=None,
        overcommit: bool = False,
        drain_bytes_per_s: Optional[float] = None,
    ) -> None:
        self.n_racks = n_racks
        self.nodes_per_rack = nodes_per_rack
        self.pool_capacity_gb = pool_capacity_gb
        self.local_fraction = local_fraction
        self.policy = policy
        self.ports_per_rack = ports_per_rack
        self.epoch_seconds = epoch_seconds
        self.scale = scale
        self.seed = seed
        self.solver = solver
        self.cluster_pool_gb = cluster_pool_gb
        #: Fault schedule injected into the *coupled* leg only: the static
        #: leg has no fabric to break, which is exactly the comparison the
        #: chaos study makes (what does the static model miss under faults?).
        self.fault_schedule = fault_schedule
        self.overcommit = overcommit
        self.drain_bytes_per_s = drain_bytes_per_s

    def _cluster(self) -> Cluster:
        return Cluster.build(
            n_racks=self.n_racks,
            nodes_per_rack=self.nodes_per_rack,
            pool_capacity_gb=self.pool_capacity_gb,
        )

    def job_stream(
        self,
        specs: Optional[Sequence[WorkloadSpec]] = None,
        copies: int = 2,
        stagger: float = 0.0,
        with_sensitivity: bool = False,
    ) -> tuple[list[JobProfile], list[float], dict[str, WorkloadSpec]]:
        """(profiles, arrivals, workload mapping) of the study's job stream.

        With ``with_sensitivity`` each profile also carries its measured
        Level-3 sensitivity curve, giving the static model the paper's full
        submission-time hints instead of pricing every co-location at 1.
        """
        specs = list(specs) if specs is not None else build_all(self.scale)
        workloads = {spec.name: spec for spec in specs}
        profiles: list[JobProfile] = []
        for spec in specs:
            sensitivity = None
            if with_sensitivity:
                platform = Platform.pooled(spec.footprint_bytes, self.local_fraction)
                sensitivity = Level3Profiler(seed=self.seed).sensitivity(spec, platform)
            profile = fabric_job_profile(
                spec,
                local_fraction=self.local_fraction,
                seed=self.seed,
                sensitivity=sensitivity,
            )
            profiles.extend([profile] * copies)
        arrivals = [i * stagger for i in range(len(profiles))]
        return profiles, arrivals, workloads

    def run(
        self,
        specs: Optional[Sequence[WorkloadSpec]] = None,
        copies: int = 2,
        stagger: float = 0.0,
        with_sensitivity: bool = False,
    ) -> CoupledSchedulingResult:
        """Schedule the stream twice — static pricing vs fabric coupling."""
        profiles, arrivals, workloads = self.job_stream(
            specs, copies, stagger, with_sensitivity=with_sensitivity
        )
        static_outcome = ClusterSimulator(
            self._cluster(),
            make_policy(self.policy),
            seed=self.seed,
            progress=StaticCurveProgress(),
        ).run(profiles, arrivals=arrivals)
        progress = FabricCoupledProgress(
            workloads=workloads,
            local_fraction=self.local_fraction,
            ports_per_rack=self.ports_per_rack,
            epoch_seconds=self.epoch_seconds,
            seed=self.seed,
            solver=self.solver,
            cluster_pool_gb=self.cluster_pool_gb,
            fault_schedule=self.fault_schedule,
            overcommit=self.overcommit,
            drain_bytes_per_s=self.drain_bytes_per_s,
        )
        coupled_policy = (
            make_policy(self.policy, progress=progress)
            if self.policy in self.COUPLED_POLICIES
            else make_policy(self.policy)
        )
        coupled_outcome = ClusterSimulator(
            self._cluster(),
            coupled_policy,
            seed=self.seed,
            progress=progress,
        ).run(profiles, arrivals=arrivals)
        return CoupledSchedulingResult(static=static_outcome, coupled=coupled_outcome)

    @classmethod
    def sweep(
        cls,
        param_sets: Sequence[dict],
        jobs: int = 1,
        base_seed: int = 0,
    ) -> list[dict]:
        """Run one study per parameter dict, sharded over ``jobs`` processes.

        Each dict holds :class:`CoupledSchedulingStudy` constructor kwargs
        plus an optional ``"run"`` sub-dict forwarded to :meth:`run`; each
        point returns its :meth:`CoupledSchedulingResult.summary`.  Points
        without an explicit ``seed`` get a deterministic one derived from
        ``base_seed`` and the point's own configuration, so results do not
        depend on sweep order or worker count.  Repeated configurations are
        fingerprint-memoized and solved once.
        """
        from ..parallel import SweepRunner

        runner = SweepRunner(jobs=jobs, base_seed=base_seed)
        return runner.map(run_coupled_study, param_sets)


def run_coupled_study(seed: int = 0, run: Optional[dict] = None, **config) -> dict:
    """Picklable sweep task: one coupled-scheduling study, summarised."""
    study = CoupledSchedulingStudy(seed=seed, **config)
    return study.run(**(run or {})).summary()
